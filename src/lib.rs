//! # flatalg — Flattening an Object Algebra to Provide Performance
//!
//! Umbrella crate of the reproduction of *Boncz, Wilschut, Kersten (ICDE
//! 1998)*. It re-exports the workspace crates and hosts the cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! * [`monet`] — the binary-relational kernel (BATs, BAT algebra, MIL,
//!   accelerators, simulated pager, cost model);
//! * [`moa`] — the MOA object data model, structure functions, query
//!   algebra, MOA→MIL translator and reference evaluator;
//! * [`tpcd`] — DBGEN-equivalent generator and the Section 6 load pipeline;
//! * [`relstore`] — the n-ary relational baseline;
//! * [`tpcd_queries`] — the TPC-D queries Q1–Q15 in MOA and as reference
//!   plans, with the Figure 9 statistics harness.

pub use moa;
pub use monet;
pub use relstore;
pub use tpcd;
pub use tpcd_queries;
