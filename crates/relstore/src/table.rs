//! N-ary (non-decomposed) table storage.
//!
//! This is the "relational strategy" the paper's cost model compares
//! against (Section 5.2.2): tuples are stored contiguously, `(n+1)·w`
//! bytes wide, so fetching one attribute of a row pages in the whole row.
//! In memory we reuse the kernel's typed columns for the values, but the
//! *pager* sees a single row-major heap: touching any attribute of row `i`
//! touches the page containing byte `i × row_width` — which is exactly
//! what makes unclustered retrieval expensive and gives `E_rel` its second
//! term.

use monet::atom::{AtomType, AtomValue, Date, Oid};
use monet::column::{Column, ColumnId};
use monet::pager::{HeapKind, Pager};

/// A named, typed n-ary table.
pub struct Table {
    name: String,
    cols: Vec<(String, Column)>,
    rows: usize,
    /// Identity of the simulated row-major heap.
    heap: ColumnId,
    /// Bytes per row: sum of column widths plus the row header word the
    /// cost model's `(n+1)` accounts for.
    row_width: usize,
}

impl Table {
    /// Build from equally long columns.
    pub fn new(name: &str, cols: Vec<(String, Column)>) -> Table {
        assert!(!cols.is_empty(), "table needs at least one column");
        let rows = cols[0].1.len();
        assert!(cols.iter().all(|(_, c)| c.len() == rows), "all columns must have equal length");
        // Mint a heap identity for the pager.
        let heap = Column::void(0, 0).storage_id();
        let width: usize = cols.iter().map(|(_, c)| c.atom_type().width().max(1)).sum();
        // +--- one extra value width models the row header / oid slot, the
        // `(n+1)·w` of the cost model.
        let row_width = width + 8;
        Table { name: name.to_string(), cols, rows, heap, row_width }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Total simulated heap bytes.
    pub fn bytes(&self) -> usize {
        self.rows * self.row_width
    }

    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.cols.iter().map(|(n, _)| n.as_str())
    }

    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }

    /// The backing column (for index building and typed scans).
    pub fn col(&self, idx: usize) -> &Column {
        &self.cols[idx].1
    }

    /// The backing column by name; panics on unknown names (schema bugs).
    pub fn column(&self, name: &str) -> &Column {
        let idx = self
            .col_index(name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name));
        self.col(idx)
    }

    /// Touch the row's page (unclustered row access).
    pub fn touch_row(&self, pager: &Pager, row: usize) {
        pager.touch_byte(self.heap, HeapKind::Fixed, (row * self.row_width) as u64);
    }

    /// Touch the pages of a full scan.
    pub fn touch_scan(&self, pager: &Pager) {
        if self.rows > 0 {
            pager.touch_range(self.heap, HeapKind::Fixed, 0, (self.rows * self.row_width) as u64);
        }
    }

    /// Generic accessor (fetches go through [`Table::touch_row`] by the
    /// caller when fault accounting is on).
    pub fn value(&self, col: usize, row: usize) -> AtomValue {
        self.cols[col].1.get(row)
    }

    pub fn oid_v(&self, col: usize, row: usize) -> Oid {
        self.cols[col].1.oid_at(row)
    }

    pub fn int_v(&self, col: usize, row: usize) -> i32 {
        self.cols[col].1.int_at(row)
    }

    pub fn dbl_v(&self, col: usize, row: usize) -> f64 {
        self.cols[col].1.dbl_at(row)
    }

    pub fn chr_v(&self, col: usize, row: usize) -> u8 {
        self.cols[col].1.chr_at(row)
    }

    pub fn date_v(&self, col: usize, row: usize) -> Date {
        self.cols[col].1.date_at(row)
    }

    pub fn str_v(&self, col: usize, row: usize) -> &str {
        self.cols[col].1.str_at(row)
    }

    pub fn col_type(&self, col: usize) -> AtomType {
        self.cols[col].1.atom_type()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "part",
            vec![
                ("oid".into(), Column::from_oids(vec![1, 2, 3])),
                ("size".into(), Column::from_ints(vec![10, 20, 30])),
                ("name".into(), Column::from_strs(["a", "b", "c"])),
            ],
        )
    }

    #[test]
    fn shape_and_access() {
        let t = t();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.col_index("size"), Some(1));
        assert_eq!(t.int_v(1, 2), 30);
        assert_eq!(t.str_v(2, 0), "a");
        assert_eq!(t.row_width(), 8 + 4 + 4 + 8);
    }

    #[test]
    fn row_touch_is_row_major() {
        let t = t();
        let pager = Pager::new(16); // tiny pages: 24B rows span pages
        t.touch_row(&pager, 0);
        t.touch_row(&pager, 0);
        assert_eq!(pager.faults(), 1);
        t.touch_row(&pager, 2);
        assert_eq!(pager.faults(), 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_columns_panic() {
        Table::new(
            "bad",
            vec![
                ("a".into(), Column::from_ints(vec![1])),
                ("b".into(), Column::from_ints(vec![1, 2])),
            ],
        );
    }
}
