//! The baseline database: named tables plus their inverted-list indexes.

use std::collections::HashMap;

use crate::index::InvertedList;
use crate::table::Table;

/// A collection of n-ary tables with optional per-column inverted lists.
#[derive(Default)]
pub struct RelDb {
    tables: HashMap<String, Table>,
    indexes: HashMap<(String, String), InvertedList>,
}

impl RelDb {
    pub fn new() -> RelDb {
        RelDb::default()
    }

    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Panics on unknown table names (schema bugs, not data errors).
    pub fn table(&self, name: &str) -> &Table {
        self.tables.get(name).unwrap_or_else(|| panic!("no table named {name}"))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Build (or rebuild) an inverted list on a column.
    pub fn build_index(&mut self, table: &str, col: &str) {
        let t = self.table(table);
        let ci = t.col_index(col).unwrap_or_else(|| panic!("table {table} has no column {col}"));
        let idx = InvertedList::build(t.col(ci));
        self.indexes.insert((table.to_string(), col.to_string()), idx);
    }

    pub fn index(&self, table: &str, col: &str) -> Option<&InvertedList> {
        self.indexes.get(&(table.to_string(), col.to_string()))
    }

    /// Total simulated table bytes.
    pub fn bytes(&self) -> usize {
        self.tables.values().map(Table::bytes).sum()
    }

    /// Total index bytes.
    pub fn index_bytes(&self) -> usize {
        self.indexes.values().map(InvertedList::bytes).sum()
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monet::column::Column;

    #[test]
    fn tables_and_indexes() {
        let mut db = RelDb::new();
        db.add_table(Table::new("t", vec![("k".into(), Column::from_ints(vec![3, 1, 2]))]));
        assert!(db.has_table("t"));
        assert!(db.index("t", "k").is_none());
        db.build_index("t", "k");
        assert!(db.index("t", "k").is_some());
        assert!(db.bytes() > 0);
        assert!(db.index_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn unknown_table_panics() {
        RelDb::new().table("nope");
    }
}
