//! Inverted-list indexes for the n-ary baseline.
//!
//! The cost model's `E_rel` first term assumes "an inverted list,
//! implemented as an array of [value, tuple-pointer] records" — `C_inv =
//! B/2w` entries per page. We store a value-sorted permutation of row ids;
//! lookups binary-search it (touching log pages) and then scan the
//! qualifying range (touching `sX/C_inv` pages).

use monet::atom::AtomValue;
use monet::column::{Column, ColumnId};
use monet::pager::{HeapKind, Pager};

use crate::table::Table;

/// Inverted list over one column of a table.
pub struct InvertedList {
    /// Row ids in ascending value order.
    perm: Vec<u32>,
    /// Heap identity of the [value, rowid] entry array.
    heap: ColumnId,
    /// Bytes per entry (value + pointer — the model's `2w`).
    entry_width: usize,
}

impl InvertedList {
    pub fn build(col: &Column) -> InvertedList {
        InvertedList {
            perm: col.sort_perm(),
            heap: Column::void(0, 0).storage_id(),
            entry_width: col.atom_type().width().max(4) + 4,
        }
    }

    pub fn len(&self) -> usize {
        self.perm.len()
    }

    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.perm.len() * self.entry_width
    }

    fn touch_probe(&self, pager: &Pager) {
        let (mut lo, mut hi) = (0usize, self.perm.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            pager.touch_byte(self.heap, HeapKind::Fixed, (mid * self.entry_width) as u64);
            hi = mid;
            let _ = &mut lo;
        }
    }

    fn touch_range(&self, pager: &Pager, start: usize, len: usize) {
        if len > 0 {
            pager.touch_range(
                self.heap,
                HeapKind::Fixed,
                (start * self.entry_width) as u64,
                (len * self.entry_width) as u64,
            );
        }
    }

    /// Row ids whose value is within `[lo, hi]` (inclusive bounds given as
    /// options), in value order. Touches probe + qualifying-range pages.
    pub fn lookup_range(
        &self,
        table: &Table,
        col: usize,
        lo: Option<&AtomValue>,
        hi: Option<&AtomValue>,
        inc_lo: bool,
        inc_hi: bool,
        pager: Option<&Pager>,
    ) -> Vec<u32> {
        let c = table.col(col);
        let cmp_pos = |i: usize, v: &AtomValue| c.cmp_val(self.perm[i] as usize, v);
        let lower = |v: &AtomValue, strict_after: bool| -> usize {
            let (mut l, mut h) = (0usize, self.perm.len());
            while l < h {
                let m = (l + h) / 2;
                let ord = cmp_pos(m, v);
                let go_right = if strict_after { ord.is_le() } else { ord.is_lt() };
                if go_right {
                    l = m + 1;
                } else {
                    h = m;
                }
            }
            l
        };
        if let Some(p) = pager {
            self.touch_probe(p);
        }
        let start = match lo {
            Some(v) => lower(v, !inc_lo),
            None => 0,
        };
        let end = match hi {
            Some(v) => lower(v, inc_hi),
            None => self.perm.len(),
        };
        if start >= end {
            return Vec::new();
        }
        if let Some(p) = pager {
            self.touch_range(p, start, end - start);
        }
        self.perm[start..end].to_vec()
    }

    /// Point lookup.
    pub fn lookup_eq(
        &self,
        table: &Table,
        col: usize,
        v: &AtomValue,
        pager: Option<&Pager>,
    ) -> Vec<u32> {
        self.lookup_range(table, col, Some(v), Some(v), true, true, pager)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("k".into(), Column::from_ints(vec![5, 1, 3, 5, 2])),
                ("v".into(), Column::from_strs(["a", "b", "c", "d", "e"])),
            ],
        )
    }

    #[test]
    fn eq_lookup() {
        let t = table();
        let idx = InvertedList::build(t.col(0));
        let rows = idx.lookup_eq(&t, 0, &AtomValue::Int(5), None);
        assert_eq!(rows, vec![0, 3]);
        assert!(idx.lookup_eq(&t, 0, &AtomValue::Int(9), None).is_empty());
    }

    #[test]
    fn range_lookup() {
        let t = table();
        let idx = InvertedList::build(t.col(0));
        let rows = idx.lookup_range(
            &t,
            0,
            Some(&AtomValue::Int(2)),
            Some(&AtomValue::Int(5)),
            true,
            false,
            None,
        );
        assert_eq!(rows, vec![4, 2]);
        let all = idx.lookup_range(&t, 0, None, None, true, true, None);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn faults_scale_with_selectivity() {
        let big = Table::new("big", vec![("k".into(), Column::from_ints((0..100_000).collect()))]);
        let idx = InvertedList::build(big.col(0));
        let pager = Pager::new(4096);
        let few = idx.lookup_eq(&big, 0, &AtomValue::Int(5), Some(&pager));
        assert_eq!(few.len(), 1);
        let probe_faults = pager.faults();
        pager.reset();
        let many = idx.lookup_range(
            &big,
            0,
            Some(&AtomValue::Int(0)),
            Some(&AtomValue::Int(49_999)),
            true,
            true,
            Some(&pager),
        );
        assert_eq!(many.len(), 50_000);
        assert!(pager.faults() > probe_faults * 5);
    }
}
