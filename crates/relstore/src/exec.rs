//! Row-at-a-time execution primitives for the n-ary baseline.
//!
//! Deliberately a conventional executor: index or scan selection producing
//! row-id lists, unclustered row fetches (paged per row), hash joins and
//! hash aggregation over accessor closures. The TPC-D reference plans in
//! `tpcd-queries` are built from these.

use std::collections::HashMap;

use monet::atom::AtomValue;
use monet::pager::Pager;

use crate::db::RelDb;
use crate::table::Table;

/// Selection predicate over one column.
pub enum ColPred<'a> {
    Eq(&'a AtomValue),
    Range { lo: Option<&'a AtomValue>, hi: Option<&'a AtomValue>, inc_lo: bool, inc_hi: bool },
}

/// Select row ids of `table` matching `pred` on `col`, using an inverted
/// list when available. Fault accounting covers the index probe/range (or
/// a full scan) — *not* the row fetches; apply [`fetch`] for those.
pub fn select_rows(
    db: &RelDb,
    table: &str,
    col: &str,
    pred: &ColPred<'_>,
    pager: Option<&Pager>,
) -> Vec<u32> {
    let t = db.table(table);
    let ci = t.col_index(col).unwrap_or_else(|| panic!("no column {col}"));
    if let Some(idx) = db.index(table, col) {
        return match pred {
            ColPred::Eq(v) => idx.lookup_eq(t, ci, v, pager),
            ColPred::Range { lo, hi, inc_lo, inc_hi } => {
                idx.lookup_range(t, ci, *lo, *hi, *inc_lo, *inc_hi, pager)
            }
        };
    }
    if let Some(p) = pager {
        t.touch_scan(p);
    }
    let c = t.col(ci);
    (0..t.rows() as u32)
        .filter(|&r| {
            let i = r as usize;
            match pred {
                ColPred::Eq(v) => c.cmp_val(i, v).is_eq(),
                ColPred::Range { lo, hi, inc_lo, inc_hi } => {
                    let lo_ok = match lo {
                        Some(v) => {
                            let o = c.cmp_val(i, v);
                            o.is_gt() || (*inc_lo && o.is_eq())
                        }
                        None => true,
                    };
                    let hi_ok = match hi {
                        Some(v) => {
                            let o = c.cmp_val(i, v);
                            o.is_lt() || (*inc_hi && o.is_eq())
                        }
                        None => true,
                    };
                    lo_ok && hi_ok
                }
            }
        })
        .collect()
}

/// Refine an existing row-id list with a further predicate (row fetches:
/// each surviving candidate pages in its row).
pub fn refine_rows(
    db: &RelDb,
    table: &str,
    rows: &[u32],
    pager: Option<&Pager>,
    keep: impl Fn(&Table, usize) -> bool,
) -> Vec<u32> {
    let t = db.table(table);
    rows.iter()
        .copied()
        .filter(|&r| {
            if let Some(p) = pager {
                t.touch_row(p, r as usize);
            }
            keep(t, r as usize)
        })
        .collect()
}

/// Unclustered fetch: page in each row (the `E_rel` second term) and map
/// it through `f`.
pub fn fetch<T>(
    db: &RelDb,
    table: &str,
    rows: &[u32],
    pager: Option<&Pager>,
    f: impl Fn(&Table, usize) -> T,
) -> Vec<T> {
    let t = db.table(table);
    rows.iter()
        .map(|&r| {
            if let Some(p) = pager {
                t.touch_row(p, r as usize);
            }
            f(t, r as usize)
        })
        .collect()
}

/// All row ids of a table (full scan).
pub fn scan(db: &RelDb, table: &str, pager: Option<&Pager>) -> Vec<u32> {
    let t = db.table(table);
    if let Some(p) = pager {
        t.touch_scan(p);
    }
    (0..t.rows() as u32).collect()
}

/// Hash join: build on `build_key(row)` over `build_rows` of
/// `build_table`, probe with `probe_key`; emits (probe_row, build_row).
#[allow(clippy::too_many_arguments)]
pub fn hash_join(
    db: &RelDb,
    build_table: &str,
    build_rows: &[u32],
    build_key: impl Fn(&Table, usize) -> AtomValue,
    probe_table: &str,
    probe_rows: &[u32],
    probe_key: impl Fn(&Table, usize) -> AtomValue,
    pager: Option<&Pager>,
) -> Vec<(u32, u32)> {
    let bt = db.table(build_table);
    let pt = db.table(probe_table);
    let mut ht: HashMap<AtomValue, Vec<u32>> = HashMap::with_capacity(build_rows.len());
    for &r in build_rows {
        if let Some(p) = pager {
            bt.touch_row(p, r as usize);
        }
        ht.entry(build_key(bt, r as usize)).or_default().push(r);
    }
    let mut out = Vec::new();
    for &r in probe_rows {
        if let Some(p) = pager {
            pt.touch_row(p, r as usize);
        }
        if let Some(matches) = ht.get(&probe_key(pt, r as usize)) {
            for &b in matches {
                out.push((r, b));
            }
        }
    }
    out
}

/// Hash aggregation: group `rows` by `key` and fold each group with
/// `init`/`step`. Returns (key, accumulator) pairs in first-seen order.
pub fn group_fold<K, A>(
    db: &RelDb,
    table: &str,
    rows: &[u32],
    pager: Option<&Pager>,
    key: impl Fn(&Table, usize) -> K,
    init: impl Fn() -> A,
    step: impl Fn(&mut A, &Table, usize),
) -> Vec<(K, A)>
where
    K: std::hash::Hash + Eq + Clone,
{
    let t = db.table(table);
    let mut order: Vec<K> = Vec::new();
    let mut groups: HashMap<K, A> = HashMap::new();
    for &r in rows {
        if let Some(p) = pager {
            t.touch_row(p, r as usize);
        }
        let k = key(t, r as usize);
        let acc = groups.entry(k.clone()).or_insert_with(|| {
            order.push(k.clone());
            init()
        });
        step(acc, t, r as usize);
    }
    order
        .into_iter()
        .map(|k| {
            let a = groups.remove(&k).expect("group exists");
            (k, a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use monet::column::Column;

    fn db() -> RelDb {
        let mut db = RelDb::new();
        db.add_table(Table::new(
            "item",
            vec![
                ("order".into(), Column::from_oids(vec![1, 1, 2, 2, 3])),
                ("price".into(), Column::from_dbls(vec![10.0, 20.0, 30.0, 40.0, 50.0])),
                ("flag".into(), Column::from_chrs(vec![b'R', b'N', b'R', b'R', b'N'])),
            ],
        ));
        db.build_index("item", "flag");
        db.add_table(Table::new(
            "ord",
            vec![
                ("oid".into(), Column::from_oids(vec![1, 2, 3])),
                ("clerk".into(), Column::from_strs(["a", "b", "a"])),
            ],
        ));
        db
    }

    #[test]
    fn select_with_and_without_index() {
        let db = db();
        let via_index = select_rows(&db, "item", "flag", &ColPred::Eq(&AtomValue::Chr(b'R')), None);
        let mut vi = via_index.clone();
        vi.sort_unstable();
        assert_eq!(vi, vec![0, 2, 3]);
        let via_scan = select_rows(
            &db,
            "item",
            "price",
            &ColPred::Range {
                lo: Some(&AtomValue::Dbl(20.0)),
                hi: None,
                inc_lo: false,
                inc_hi: true,
            },
            None,
        );
        assert_eq!(via_scan, vec![2, 3, 4]);
    }

    #[test]
    fn join_and_group() {
        let db = db();
        let items = scan(&db, "item", None);
        let orders = scan(&db, "ord", None);
        let pairs = hash_join(
            &db,
            "ord",
            &orders,
            |t, r| t.value(0, r),
            "item",
            &items,
            |t, r| t.value(0, r),
            None,
        );
        assert_eq!(pairs.len(), 5);
        let groups = group_fold(
            &db,
            "item",
            &items,
            None,
            |t, r| t.oid_v(0, r),
            || 0.0f64,
            |acc, t, r| *acc += t.dbl_v(1, r),
        );
        let m: HashMap<u64, f64> = groups.into_iter().collect();
        assert_eq!(m[&1], 30.0);
        assert_eq!(m[&2], 70.0);
        assert_eq!(m[&3], 50.0);
    }

    #[test]
    fn refine_filters() {
        let db = db();
        let all = scan(&db, "item", None);
        let r = refine_rows(&db, "item", &all, None, |t, i| t.chr_v(2, i) == b'N');
        assert_eq!(r, vec![1, 4]);
    }
}
