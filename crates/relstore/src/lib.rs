//! # relstore — the n-ary relational baseline
//!
//! A deliberately conventional, non-decomposed storage engine: rows stored
//! contiguously (`(n+1)·w` bytes wide), inverted-list indexes per column,
//! and a row-at-a-time executor. It plays two roles in this reproduction
//! (DESIGN.md §5.2):
//!
//! 1. the **`E_rel` strategy** of the paper's IO cost model (Section
//!    5.2.2/Figure 8): index probe + unclustered row retrieval, with page
//!    faults accounted through the same simulated pager as the kernel;
//! 2. the **comparison engine** standing in for the DB2 column of Figure 9
//!    — and, since it is independent of the MOA/MIL path, the correctness
//!    oracle for every TPC-D query.

pub mod db;
pub mod exec;
pub mod index;
pub mod table;

pub use db::RelDb;
pub use exec::{fetch, group_fold, hash_join, refine_rows, scan, select_rows, ColPred};
pub use index::InvertedList;
pub use table::Table;
