//! Every TPC-D query's MOA-on-Monet result must equal the n-ary reference
//! result — the end-to-end correctness gate of the reproduction.
//!
//! The oracle runs twice: once per query at the benchmark scale (SF 0.01,
//! the `bench` harness seed, one shared world), and once as a sweep over a
//! second, smaller database so agreement is not an artifact of one dataset.

use std::sync::OnceLock;

use bench::{World, SEED};
use monet::ctx::ExecCtx;
use tpcd_queries::{all_queries, Params};

/// The benchmark-scale world, shared by the per-query oracle tests below.
fn bench_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(0.01))
}

/// MOA-on-Monet vs the n-ary reference for one query id (1-based).
fn check_query_agrees(id: usize) {
    let w = bench_world();
    let q = &all_queries()[id - 1];
    assert_eq!(q.id, id);
    let ctx = ExecCtx::new();
    let moa_rows =
        (q.run_moa)(&w.cat, &ctx, &w.params).unwrap_or_else(|e| panic!("Q{id} MOA failed: {e}"));
    let ref_out = (q.run_ref)(&w.rel, &w.params, None);
    assert!(
        moa_rows.approx_eq(&ref_out.rows, 1e-6),
        "Q{id} disagrees at SF 0.01 / seed {SEED} ({}):\nMOA ({} rows):\n{}\nreference ({} rows):\n{}",
        q.comment,
        moa_rows.len(),
        moa_rows.clone().sorted().preview(12),
        ref_out.rows.len(),
        ref_out.rows.clone().sorted().preview(12),
    );
}

macro_rules! oracle_tests {
    ($($name:ident => $id:expr),+ $(,)?) => {$(
        #[test]
        fn $name() {
            check_query_agrees($id);
        }
    )+};
}

oracle_tests! {
    q1_agrees => 1,
    q2_agrees => 2,
    q3_agrees => 3,
    q4_agrees => 4,
    q5_agrees => 5,
    q6_agrees => 6,
    q7_agrees => 7,
    q8_agrees => 8,
    q9_agrees => 9,
    q10_agrees => 10,
    q11_agrees => 11,
    q12_agrees => 12,
    q13_agrees => 13,
    q14_agrees => 14,
    q15_agrees => 15,
}

#[test]
fn all_fifteen_queries_agree_threaded_and_match_serial_exactly() {
    // Q1-Q15 with the morsel executor forced on (4 workers, tiny row
    // threshold, odd morsels small enough that the SF 0.01 operands split
    // into many): every query must produce *bit-identical* rows to its
    // serial run under the same morsel grid, and still agree with the
    // n-ary reference. This is the end-to-end leg of the
    // parallel-vs-serial oracle rule (see tests/par_determinism.rs for
    // the per-kernel leg).
    let w = bench_world();
    for q in all_queries() {
        let ctx = ExecCtx::new();
        let threaded = monet::par::with_par_config(Some(4), Some(1024), Some(4099), || {
            (q.run_moa)(&w.cat, &ctx, &w.params)
        })
        .unwrap_or_else(|e| panic!("Q{} threaded MOA failed: {e}", q.id));
        let serial = monet::par::with_par_config(Some(1), Some(1024), Some(4099), || {
            (q.run_moa)(&w.cat, &ctx, &w.params)
        })
        .unwrap_or_else(|e| panic!("Q{} serial MOA failed: {e}", q.id));
        assert!(
            threaded.approx_eq(&serial, 0.0),
            "Q{} threaded result differs from serial ({}):\nthreaded ({} rows):\n{}\nserial ({} rows):\n{}",
            q.id,
            q.comment,
            threaded.len(),
            threaded.clone().sorted().preview(12),
            serial.len(),
            serial.clone().sorted().preview(12),
        );
        let ref_out = (q.run_ref)(&w.rel, &w.params, None);
        assert!(
            threaded.approx_eq(&ref_out.rows, 1e-6),
            "Q{} threaded disagrees with reference ({})",
            q.id,
            q.comment,
        );
    }
}

#[test]
fn all_fifteen_queries_bit_identical_with_optimizer_on_and_off() {
    // The plan optimizer must be invisible in results: every query,
    // executed from the optimized MIL program, produces rows *bit-equal*
    // (eps 0.0 — float aggregation order preserved) to the raw translator
    // emission (`FLATALG_OPT=0` oracle), serial and threaded.
    use tpcd_queries::runner::{with_opt_level, OptLevel};
    let w = bench_world();
    for q in all_queries() {
        for threads in [1usize, 4] {
            let ctx = ExecCtx::new();
            let run = |level: OptLevel| {
                with_opt_level(level, || {
                    monet::par::with_par_config(Some(threads), Some(1024), Some(4099), || {
                        (q.run_moa)(&w.cat, &ctx, &w.params)
                    })
                })
                .unwrap_or_else(|e| panic!("Q{} ({level:?}, {threads} threads) failed: {e}", q.id))
            };
            let optimized = run(OptLevel::Full);
            let raw = run(OptLevel::Off);
            assert!(
                optimized.approx_eq(&raw, 0.0),
                "Q{} at {threads} threads: optimized plan differs from raw emission ({}):\n\
                 optimized ({} rows):\n{}\nraw ({} rows):\n{}",
                q.id,
                q.comment,
                optimized.len(),
                optimized.clone().sorted().preview(12),
                raw.len(),
                raw.clone().sorted().preview(12),
            );
        }
    }
}

#[test]
fn all_fifteen_queries_bit_identical_fused_and_unfused() {
    // Pipeline fusion must be invisible in results: every query, executed
    // with fused pipelines, produces rows *bit-equal* (eps 0.0 — fusion
    // admits no float re-association) to the unfused emission
    // (`FLATALG_FUSE=0` oracle), serial and threaded.
    let w = bench_world();
    for q in all_queries() {
        for threads in [1usize, 4] {
            let ctx = ExecCtx::new();
            let run = |fuse: bool| {
                monet::fuse::with_fuse(fuse, || {
                    monet::par::with_par_config(Some(threads), Some(1024), Some(4099), || {
                        (q.run_moa)(&w.cat, &ctx, &w.params)
                    })
                })
                .unwrap_or_else(|e| {
                    panic!("Q{} (fuse={fuse}, {threads} threads) failed: {e}", q.id)
                })
            };
            let fused = run(true);
            let unfused = run(false);
            assert!(
                fused.approx_eq(&unfused, 0.0),
                "Q{} at {threads} threads: fused pipelines differ from unfused ({}):\n\
                 fused ({} rows):\n{}\nunfused ({} rows):\n{}",
                q.id,
                q.comment,
                fused.len(),
                fused.clone().sorted().preview(12),
                unfused.len(),
                unfused.clone().sorted().preview(12),
            );
        }
    }
}

#[test]
fn all_fifteen_queries_bit_identical_encoded_vs_raw_layouts() {
    // Encoded column layouts must be invisible in results: every query,
    // run against the default world (dict/FOR/RLE columns built at load
    // time), produces rows *bit-equal* (eps 0.0) to the same query on a
    // raw-layout world (`FLATALG_ENC=0` oracle), serial and threaded.
    // Both worlds come from the same generator seed, so any divergence is
    // the encoding layer's fault, not the data's.
    use monet::props::Enc;
    // The shared world follows the ambient leg (`FLATALG_ENC`); the second
    // world is built with the *opposite* setting, so this test compares
    // encoded vs raw layouts no matter which CI leg it runs under.
    let ambient = bench_world();
    let flipped = monet::enc::with_enc(!monet::enc::enc_enabled(), || World::build(0.01));
    let enc_of = |w: &World| w.cat.db().get("Order_clerk").unwrap().tail().encoding();
    let (encoded, raw): (&World, &World) =
        if enc_of(ambient) == Enc::Dict { (ambient, &flipped) } else { (&flipped, ambient) };
    // Guard against a vacuous same-vs-same comparison: one side must hold
    // encoded columns, the other must not.
    assert_eq!(enc_of(encoded), Enc::Dict, "one world must dict-encode the clerk column");
    assert_eq!(enc_of(raw), Enc::None, "the other world must stay raw");
    for q in all_queries() {
        for threads in [1usize, 4] {
            let ctx = ExecCtx::new();
            let run = |w: &World| {
                monet::par::with_par_config(Some(threads), Some(1024), Some(4099), || {
                    (q.run_moa)(&w.cat, &ctx, &w.params)
                })
                .unwrap_or_else(|e| panic!("Q{} ({threads} threads) failed: {e}", q.id))
            };
            let enc_rows = run(encoded);
            let raw_rows = run(raw);
            assert!(
                enc_rows.approx_eq(&raw_rows, 0.0),
                "Q{} at {threads} threads: encoded layouts differ from raw layouts ({}):\n\
                 encoded ({} rows):\n{}\nraw ({} rows):\n{}",
                q.id,
                q.comment,
                enc_rows.len(),
                enc_rows.clone().sorted().preview(12),
                raw_rows.len(),
                raw_rows.clone().sorted().preview(12),
            );
        }
    }
}

#[test]
fn optimizer_cuts_executed_statements_by_at_least_15_percent() {
    // The plan-level acceptance number: across all fifteen queries the
    // optimizer's EXPLAIN counters must report >= 15% fewer executed MIL
    // statements than the raw translator emission (straight-line programs
    // execute every statement exactly once).
    use tpcd_queries::runner::{with_opt_level, OptLevel};
    let w = bench_world();
    let ctx = ExecCtx::new();
    with_opt_level(OptLevel::Full, || {
        monet::mil::opt::reset_cumulative();
        for q in all_queries() {
            (q.run_moa)(&w.cat, &ctx, &w.params)
                .unwrap_or_else(|e| panic!("Q{} failed: {e}", q.id));
        }
    });
    let (raw, optimized) = monet::mil::opt::cumulative();
    assert!(raw > 0, "no programs were optimized");
    let reduction = 1.0 - optimized as f64 / raw as f64;
    assert!(
        reduction >= 0.15,
        "optimizer cut executed MIL statements by only {:.1}% ({raw} -> {optimized}) \
         across Q1-Q15; the plan-level acceptance floor is 15%",
        reduction * 100.0,
    );
}

#[test]
fn all_fifteen_queries_agree_on_a_second_database() {
    let data = tpcd::generate(0.002, 20260610);
    let (cat, _report) = tpcd::load_bats(&data);
    let rel = tpcd::load_rowstore(&data);
    let params = Params::for_data(&data);
    let ctx = ExecCtx::new();
    let mut checked = 0;
    for q in all_queries() {
        let moa_rows = (q.run_moa)(&cat, &ctx, &params)
            .unwrap_or_else(|e| panic!("Q{} MOA failed: {e}", q.id));
        let ref_out = (q.run_ref)(&rel, &params, None);
        assert!(
            moa_rows.approx_eq(&ref_out.rows, 1e-6),
            "Q{} disagrees ({}):\nMOA ({} rows):\n{}\nreference ({} rows):\n{}",
            q.id,
            q.comment,
            moa_rows.len(),
            moa_rows.clone().sorted().preview(12),
            ref_out.rows.len(),
            ref_out.rows.clone().sorted().preview(12),
        );
        checked += 1;
    }
    assert_eq!(checked, 15);
}

#[test]
fn q13_returns_per_year_losses() {
    let data = tpcd::generate(0.002, 7);
    let (cat, _) = tpcd::load_bats(&data);
    let params = Params::for_data(&data);
    let ctx = ExecCtx::new();
    let rows = (all_queries()[12].run_moa)(&cat, &ctx, &params).unwrap();
    // The clerk's returned orders span a handful of years; all losses > 0.
    assert!(!rows.is_empty());
    for row in &rows.0 {
        assert_eq!(row.len(), 2);
        match (&row[0], &row[1]) {
            (monet::atom::AtomValue::Int(y), monet::atom::AtomValue::Dbl(l)) => {
                assert!((1992..=1998).contains(y));
                assert!(*l > 0.0);
            }
            other => panic!("unexpected Q13 row {other:?}"),
        }
    }
}

#[test]
fn queries_stable_across_runs() {
    let data = tpcd::generate(0.001, 5);
    let (cat, _) = tpcd::load_bats(&data);
    let params = Params::for_data(&data);
    let ctx = ExecCtx::new();
    let q3 = &all_queries()[2];
    let a = (q3.run_moa)(&cat, &ctx, &params).unwrap();
    let b = (q3.run_moa)(&cat, &ctx, &params).unwrap();
    assert!(a.approx_eq(&b, 0.0));
}
