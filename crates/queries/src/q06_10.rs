//! TPC-D queries 6–10: forecast revenue change, volume shipping, market
//! share, product-type profit, returned-item reporting.

use std::collections::HashMap;

use moa::catalog::Catalog;
use moa::prelude::*;
use monet::atom::{AtomValue, Oid};
use monet::ctx::ExecCtx;
use monet::ops::{AggFunc, ScalarFunc};
use monet::pager::Pager;
use relstore::{select_rows, ColPred, RelDb};

use crate::params::{pid, Params};
use crate::q01_05::revenue_expr;
use crate::refutil::*;
use crate::runner::{run_moa_rows, run_moa_scalar, QueryResult};
use crate::RefOutput;

// ---------------------------------------------------------------------------
// Q6 — benefits if discounts were abolished (scalar aggregate).
// ---------------------------------------------------------------------------

fn q6_selection(p: &Params) -> SetExpr {
    SetExpr::extent("Item").select(and_all(vec![
        cmp(ScalarFunc::Ge, attr("shipdate"), prm(pid::Q6_DATE_LO, AtomValue::Date(p.q6_date))),
        cmp(
            ScalarFunc::Lt,
            attr("shipdate"),
            prm(pid::Q6_DATE_HI, AtomValue::Date(p.q6_date.add_months(12))),
        ),
        cmp(
            ScalarFunc::Ge,
            attr("discount"),
            prm(pid::Q6_DISC_LO, AtomValue::Dbl(p.q6_disc_lo - 0.001)),
        ),
        cmp(
            ScalarFunc::Le,
            attr("discount"),
            prm(pid::Q6_DISC_HI, AtomValue::Dbl(p.q6_disc_hi + 0.001)),
        ),
        cmp(ScalarFunc::Lt, attr("quantity"), prm(pid::Q6_QTY, AtomValue::Int(p.q6_qty))),
    ]))
}

pub fn q6_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    let total = run_moa_scalar(
        cat,
        ctx,
        q6_selection(p),
        bin(ScalarFunc::Mul, attr("extendedprice"), attr("discount")),
        AggFunc::Sum,
    )?;
    Ok(QueryResult(vec![vec![total]]))
}

pub fn q6_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let hi = p.q6_date.add_months(12);
    let rows = select_rows(
        db,
        "lineitem",
        "shipdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q6_date)),
            hi: Some(&AtomValue::Date(hi)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    let li = db.table("lineitem");
    let (ld, lq, le) = (
        li.col_index("discount").unwrap(),
        li.col_index("quantity").unwrap(),
        li.col_index("extendedprice").unwrap(),
    );
    let mut total = 0.0;
    let mut item_rows = 0usize;
    for r in rows {
        touch(db, "lineitem", r, pager);
        let r = r as usize;
        let d = li.dbl_v(ld, r);
        if d >= p.q6_disc_lo - 0.001 && d <= p.q6_disc_hi + 0.001 && li.int_v(lq, r) < p.q6_qty {
            item_rows += 1;
            total += li.dbl_v(le, r) * d;
        }
    }
    RefOutput { rows: QueryResult(vec![vec![dbl(total)]]), item_rows }
}

// ---------------------------------------------------------------------------
// Q7 — value of shipped goods between two nations, per year.
// ---------------------------------------------------------------------------

pub fn q7_moa(p: &Params) -> SetExpr {
    let pair = |aid: u32, a: &str, bid: u32, b: &str| {
        and(
            eq(attr("supplier.nation.name"), prm(aid, AtomValue::str(a))),
            eq(attr("order.cust.nation.name"), prm(bid, AtomValue::str(b))),
        )
    };
    SetExpr::extent("Item")
        .select(and_all(vec![
            cmp(
                ScalarFunc::Ge,
                attr("shipdate"),
                prm(pid::Q7_DATE_LO, AtomValue::Date(monet::atom::Date::from_ymd(1995, 1, 1))),
            ),
            cmp(
                ScalarFunc::Le,
                attr("shipdate"),
                prm(pid::Q7_DATE_HI, AtomValue::Date(monet::atom::Date::from_ymd(1996, 12, 31))),
            ),
            or(
                pair(pid::Q7_NATION1, &p.q7_nation1, pid::Q7_NATION2, &p.q7_nation2),
                pair(pid::Q7_NATION2, &p.q7_nation2, pid::Q7_NATION1, &p.q7_nation1),
            ),
        ]))
        .project(vec![
            ProjItem::new("supp_nation", attr("supplier.nation.name")),
            ProjItem::new("cust_nation", attr("order.cust.nation.name")),
            ProjItem::new("year", un(ScalarFunc::Year, attr("shipdate"))),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![
            ProjItem::new("supp_nation", attr("supp_nation")),
            ProjItem::new("cust_nation", attr("cust_nation")),
            ProjItem::new("year", attr("year")),
        ])
        .project(vec![
            ProjItem::new("supp_nation", attr("supp_nation")),
            ProjItem::new("cust_nation", attr("cust_nation")),
            ProjItem::new("year", attr("year")),
            ProjItem::new("revenue", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ])
}

pub fn q7_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q7_moa(p))
}

pub fn q7_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let n1 = nation_oid(db, &p.q7_nation1);
    let n2 = nation_oid(db, &p.q7_nation2);
    let names = nation_names(db);
    let sup_nation: HashMap<Oid, Oid> = {
        let t = db.table("supplier");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let cust_nation: HashMap<Oid, Oid> = {
        let t = db.table("customer");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let order_cust: HashMap<Oid, Oid> = {
        let t = db.table("orders");
        let (co, cc) = (t.col_index("oid").unwrap(), t.col_index("cust").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cc, r))).collect()
    };
    let rows = select_rows(
        db,
        "lineitem",
        "shipdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(monet::atom::Date::from_ymd(1995, 1, 1))),
            hi: Some(&AtomValue::Date(monet::atom::Date::from_ymd(1996, 12, 31))),
            inc_lo: true,
            inc_hi: true,
        },
        pager,
    );
    let li = db.table("lineitem");
    let (lo, lsup, le, ld, ls) = (
        li.col_index("order").unwrap(),
        li.col_index("supplier").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
        li.col_index("shipdate").unwrap(),
    );
    let mut rev: HashMap<(Oid, Oid, i32), f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in rows {
        touch(db, "lineitem", r, pager);
        let r = r as usize;
        let sn = sup_nation[&li.oid_v(lsup, r)];
        let cn = cust_nation[&order_cust[&li.oid_v(lo, r)]];
        let ok = (sn == n1 && cn == n2) || (sn == n2 && cn == n1);
        if !ok {
            continue;
        }
        item_rows += 1;
        let year = li.date_v(ls, r).year();
        *rev.entry((sn, cn, year)).or_insert(0.0) += li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
    }
    let out = rev
        .into_iter()
        .map(|((sn, cn, y), v)| {
            vec![
                AtomValue::str(names[&sn].as_str()),
                AtomValue::str(names[&cn].as_str()),
                AtomValue::Int(y),
                dbl(v),
            ]
        })
        .collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q8 — national market share within a region, per year.
// ---------------------------------------------------------------------------

fn q8_base(p: &Params) -> SetExpr {
    SetExpr::extent("Item").select(and_all(vec![
        eq(
            attr("order.cust.nation.region.name"),
            prm(pid::Q8_REGION, AtomValue::str(p.q8_region.as_str())),
        ),
        cmp(
            ScalarFunc::Ge,
            attr("order.orderdate"),
            prm(pid::Q8_DATE_LO, AtomValue::Date(monet::atom::Date::from_ymd(1995, 1, 1))),
        ),
        cmp(
            ScalarFunc::Le,
            attr("order.orderdate"),
            prm(pid::Q8_DATE_HI, AtomValue::Date(monet::atom::Date::from_ymd(1996, 12, 31))),
        ),
        cmp(
            ScalarFunc::StrContains,
            attr("part.type"),
            prm(pid::Q8_TYPE, AtomValue::str(p.q8_type_contains.as_str())),
        ),
    ]))
}

fn yearly_revenue(input: SetExpr) -> SetExpr {
    input
        .project(vec![
            ProjItem::new("year", un(ScalarFunc::Year, attr("order.orderdate"))),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![ProjItem::new("year", attr("year"))])
        .project(vec![
            ProjItem::new("year", attr("year")),
            ProjItem::new("revenue", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ])
}

pub fn q8_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    let total = run_moa_rows(cat, ctx, &yearly_revenue(q8_base(p)))?;
    let nat = run_moa_rows(
        cat,
        ctx,
        &yearly_revenue(q8_base(p).select(eq(
            attr("supplier.nation.name"),
            prm(pid::Q8_NATION, AtomValue::str(p.q8_nation.as_str())),
        ))),
    )?;
    // share(year) = nation revenue / total revenue (0 when absent).
    let nat_by_year: HashMap<i32, f64> = nat
        .0
        .iter()
        .map(|row| match (&row[0], &row[1]) {
            (AtomValue::Int(y), AtomValue::Dbl(v)) => (*y, *v),
            other => panic!("unexpected q8 row {other:?}"),
        })
        .collect();
    let mut out = Vec::new();
    for row in total.0 {
        let (AtomValue::Int(y), AtomValue::Dbl(t)) = (&row[0], &row[1]) else {
            panic!("unexpected q8 row");
        };
        let share = nat_by_year.get(y).copied().unwrap_or(0.0) / t;
        out.push(vec![AtomValue::Int(*y), dbl(share)]);
    }
    Ok(QueryResult(out))
}

pub fn q8_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let region_nations = nations_of_region(db, &p.q8_region);
    let brazil = nation_oid(db, &p.q8_nation);
    let sup_nation: HashMap<Oid, Oid> = {
        let t = db.table("supplier");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let cust_nation: HashMap<Oid, Oid> = {
        let t = db.table("customer");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let part_ok: std::collections::HashSet<Oid> = {
        let t = db.table("part");
        let (co, ct) = (t.col_index("oid").unwrap(), t.col_index("type").unwrap());
        (0..t.rows())
            .filter(|&r| t.str_v(ct, r).contains(&p.q8_type_contains))
            .map(|r| t.oid_v(co, r))
            .collect()
    };
    let orders = db.table("orders");
    let (oo, oc, od) = (
        orders.col_index("oid").unwrap(),
        orders.col_index("cust").unwrap(),
        orders.col_index("orderdate").unwrap(),
    );
    let orows = select_rows(
        db,
        "orders",
        "orderdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(monet::atom::Date::from_ymd(1995, 1, 1))),
            hi: Some(&AtomValue::Date(monet::atom::Date::from_ymd(1996, 12, 31))),
            inc_lo: true,
            inc_hi: true,
        },
        pager,
    );
    let mut order_year: HashMap<Oid, i32> = HashMap::new();
    for r in orows {
        touch(db, "orders", r, pager);
        let r = r as usize;
        if region_nations.contains(&cust_nation[&orders.oid_v(oc, r)]) {
            order_year.insert(orders.oid_v(oo, r), orders.date_v(od, r).year());
        }
    }
    let li = db.table("lineitem");
    let (lo, lp, lsup, le, ld) = (
        li.col_index("order").unwrap(),
        li.col_index("part").unwrap(),
        li.col_index("supplier").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let mut total: HashMap<i32, f64> = HashMap::new();
    let mut nat: HashMap<i32, f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in 0..li.rows() {
        if let Some(pg) = pager {
            li.touch_row(pg, r);
        }
        let Some(&year) = order_year.get(&li.oid_v(lo, r)) else { continue };
        if !part_ok.contains(&li.oid_v(lp, r)) {
            continue;
        }
        item_rows += 1;
        let v = li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
        *total.entry(year).or_insert(0.0) += v;
        if sup_nation[&li.oid_v(lsup, r)] == brazil {
            *nat.entry(year).or_insert(0.0) += v;
        }
    }
    let out = total
        .into_iter()
        .map(|(y, t)| vec![AtomValue::Int(y), dbl(nat.get(&y).copied().unwrap_or(0.0) / t)])
        .collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q9 — product-type profit, by nation and year.
// ---------------------------------------------------------------------------

pub fn q9_moa(p: &Params) -> SetExpr {
    let items = SetExpr::extent("Item").select(cmp(
        ScalarFunc::StrContains,
        attr("part.name"),
        prm(pid::Q9_COLOR, AtomValue::str(p.q9_color.as_str())),
    ));
    let supplies = SetExpr::extent("Supplier").unnest(sattr("supplies"), "sup", "sp");
    items
        .join_eq(supplies, attr("part"), attr("sp.part"), "i", "x")
        .select(eq(attr("i.supplier"), attr("x.sup")))
        .project(vec![
            ProjItem::new("nation", attr("i.supplier.nation.name")),
            ProjItem::new("year", un(ScalarFunc::Year, attr("i.order.orderdate"))),
            ProjItem::new(
                "profit",
                bin(
                    ScalarFunc::Sub,
                    bin(
                        ScalarFunc::Mul,
                        attr("i.extendedprice"),
                        bin(ScalarFunc::Sub, lit_d(1.0), attr("i.discount")),
                    ),
                    bin(ScalarFunc::Mul, attr("x.sp.cost"), attr("i.quantity")),
                ),
            ),
        ])
        .nest(vec![ProjItem::new("nation", attr("nation")), ProjItem::new("year", attr("year"))])
        .project(vec![
            ProjItem::new("nation", attr("nation")),
            ProjItem::new("year", attr("year")),
            ProjItem::new("profit", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("profit"))),
        ])
}

pub fn q9_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q9_moa(p))
}

pub fn q9_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let names = nation_names(db);
    let part_ok: std::collections::HashSet<Oid> = {
        let t = db.table("part");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("name").unwrap());
        (0..t.rows())
            .filter(|&r| t.str_v(cn, r).contains(&p.q9_color))
            .map(|r| t.oid_v(co, r))
            .collect()
    };
    let sup_nation: HashMap<Oid, Oid> = {
        let t = db.table("supplier");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let supply_cost: HashMap<(Oid, Oid), f64> = {
        let t = db.table("partsupp");
        let (cs, cp, cc) = (
            t.col_index("supplier").unwrap(),
            t.col_index("part").unwrap(),
            t.col_index("cost").unwrap(),
        );
        (0..t.rows()).map(|r| ((t.oid_v(cp, r), t.oid_v(cs, r)), t.dbl_v(cc, r))).collect()
    };
    let order_year: HashMap<Oid, i32> = {
        let t = db.table("orders");
        let (co, cd) = (t.col_index("oid").unwrap(), t.col_index("orderdate").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.date_v(cd, r).year())).collect()
    };
    let li = db.table("lineitem");
    let (lo, lp, lsup, le, ld, lq) = (
        li.col_index("order").unwrap(),
        li.col_index("part").unwrap(),
        li.col_index("supplier").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
        li.col_index("quantity").unwrap(),
    );
    let mut profit: HashMap<(Oid, i32), f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in 0..li.rows() {
        if let Some(pg) = pager {
            li.touch_row(pg, r);
        }
        let part = li.oid_v(lp, r);
        if !part_ok.contains(&part) {
            continue;
        }
        let sup = li.oid_v(lsup, r);
        // Items reference (part, supplier) pairs that may not exist in
        // partsupp (independent generation); both engines join, so both
        // drop those items.
        let Some(&cost) = supply_cost.get(&(part, sup)) else { continue };
        item_rows += 1;
        let year = order_year[&li.oid_v(lo, r)];
        let v = li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r)) - cost * li.int_v(lq, r) as f64;
        *profit.entry((sup_nation[&sup], year)).or_insert(0.0) += v;
    }
    let out = profit
        .into_iter()
        .map(|((n, y), v)| vec![AtomValue::str(names[&n].as_str()), AtomValue::Int(y), dbl(v)])
        .collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q10 — top 20 customers with problematic (returned) parts.
// ---------------------------------------------------------------------------

pub fn q10_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(and_all(vec![
            eq(attr("returnflag"), lit_c('R')),
            cmp(
                ScalarFunc::Ge,
                attr("order.orderdate"),
                prm(pid::Q10_DATE_LO, AtomValue::Date(p.q10_date)),
            ),
            cmp(
                ScalarFunc::Lt,
                attr("order.orderdate"),
                prm(pid::Q10_DATE_HI, AtomValue::Date(p.q10_date.add_months(3))),
            ),
        ]))
        .project(vec![
            ProjItem::new("cust", attr("order.cust")),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![ProjItem::new("cust", attr("cust"))])
        .project(vec![
            ProjItem::new("cust", attr("cust")),
            ProjItem::new("name", attr("cust.name")),
            ProjItem::new("acctbal", attr("cust.acctbal")),
            ProjItem::new("revenue", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ])
        .top(attr("revenue"), 20, true)
}

pub fn q10_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q10_moa(p))
}

pub fn q10_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let hi = p.q10_date.add_months(3);
    let orows = select_rows(
        db,
        "orders",
        "orderdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q10_date)),
            hi: Some(&AtomValue::Date(hi)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    let orders = db.table("orders");
    let (oo, oc) = (orders.col_index("oid").unwrap(), orders.col_index("cust").unwrap());
    let order_cust: HashMap<Oid, Oid> = orows
        .iter()
        .map(|&r| {
            touch(db, "orders", r, pager);
            (orders.oid_v(oo, r as usize), orders.oid_v(oc, r as usize))
        })
        .collect();
    let rrows =
        select_rows(db, "lineitem", "returnflag", &ColPred::Eq(&AtomValue::Chr(b'R')), pager);
    let li = db.table("lineitem");
    let (lo, le, ld) = (
        li.col_index("order").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let mut rev: HashMap<Oid, f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in rrows {
        touch(db, "lineitem", r, pager);
        let r = r as usize;
        let Some(&cust) = order_cust.get(&li.oid_v(lo, r)) else { continue };
        item_rows += 1;
        *rev.entry(cust).or_insert(0.0) += li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
    }
    let cust = db.table("customer");
    let cmap = oid_map(db, "customer");
    let (cn, cb) = (cust.col_index("name").unwrap(), cust.col_index("acctbal").unwrap());
    let mut entries: Vec<(Oid, f64)> = rev.into_iter().collect();
    entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(20);
    let out = entries
        .into_iter()
        .map(|(c, v)| {
            let row = cmap[&c];
            touch(db, "customer", row, pager);
            vec![
                AtomValue::Oid(c),
                AtomValue::str(cust.str_v(cn, row as usize)),
                dbl(cust.dbl_v(cb, row as usize)),
                dbl(v),
            ]
        })
        .collect();
    RefOutput { rows: QueryResult(out), item_rows }
}
