//! TPC-D queries 1–5: pricing summary, minimum-cost supplier, shipping
//! priority, order-priority checking, local supplier volume.

use std::collections::HashMap;

use moa::catalog::Catalog;
use moa::prelude::*;
use monet::atom::{AtomValue, Oid};
use monet::ctx::ExecCtx;
use monet::ops::{AggFunc, ScalarFunc};
use monet::pager::Pager;
use relstore::{fetch, group_fold, select_rows, ColPred, RelDb};

use crate::params::{pid, Params};
use crate::refutil::*;
use crate::runner::{run_moa_rows, QueryResult};
use crate::RefOutput;

/// The discounted-price expression `extendedprice * (1 - discount)`.
pub fn revenue_expr() -> Scalar {
    bin(ScalarFunc::Mul, attr("extendedprice"), bin(ScalarFunc::Sub, lit_d(1.0), attr("discount")))
}

fn charge_expr() -> Scalar {
    bin(ScalarFunc::Mul, revenue_expr(), bin(ScalarFunc::Add, lit_d(1.0), attr("tax")))
}

// ---------------------------------------------------------------------------
// Q1 — billing aggregates over the big table (98% selectivity).
// ---------------------------------------------------------------------------

pub fn q1_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(cmp(
            ScalarFunc::Le,
            attr("shipdate"),
            prm(pid::Q1_CUTOFF, AtomValue::Date(p.q1_cutoff)),
        ))
        .project(vec![
            ProjItem::new("flag", attr("returnflag")),
            ProjItem::new("status", attr("linestatus")),
            ProjItem::new("qty", attr("quantity")),
            ProjItem::new("base", attr("extendedprice")),
            ProjItem::new("disc_price", revenue_expr()),
            ProjItem::new("charge", charge_expr()),
            ProjItem::new("discount", attr("discount")),
        ])
        .nest(vec![ProjItem::new("flag", attr("flag")), ProjItem::new("status", attr("status"))])
        .project(vec![
            ProjItem::new("flag", attr("flag")),
            ProjItem::new("status", attr("status")),
            ProjItem::new("sum_qty", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("qty"))),
            ProjItem::new("sum_base", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("base"))),
            ProjItem::new(
                "sum_disc_price",
                agg_over(AggFunc::Sum, sattr(NEST_REST), attr("disc_price")),
            ),
            ProjItem::new("sum_charge", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("charge"))),
            ProjItem::new("avg_qty", agg_over(AggFunc::Avg, sattr(NEST_REST), attr("qty"))),
            ProjItem::new("avg_price", agg_over(AggFunc::Avg, sattr(NEST_REST), attr("base"))),
            ProjItem::new("avg_disc", agg_over(AggFunc::Avg, sattr(NEST_REST), attr("discount"))),
            ProjItem::new("count", agg(AggFunc::Count, sattr(NEST_REST))),
        ])
}

pub fn q1_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let rows = select_rows(
        db,
        "lineitem",
        "shipdate",
        &ColPred::Range {
            lo: None,
            hi: Some(&AtomValue::Date(p.q1_cutoff)),
            inc_lo: true,
            inc_hi: true,
        },
        pager,
    );
    #[derive(Default, Clone)]
    struct Acc {
        qty: i64,
        base: f64,
        disc_price: f64,
        charge: f64,
        disc: f64,
        n: i64,
    }
    let li = db.table("lineitem");
    let (cq, ce, cd, ct, cf, cs) = (
        li.col_index("quantity").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
        li.col_index("tax").unwrap(),
        li.col_index("returnflag").unwrap(),
        li.col_index("linestatus").unwrap(),
    );
    let groups = group_fold(
        db,
        "lineitem",
        &rows,
        pager,
        |t, r| (t.chr_v(cf, r), t.chr_v(cs, r)),
        Acc::default,
        |a, t, r| {
            let (e, d, tx) = (t.dbl_v(ce, r), t.dbl_v(cd, r), t.dbl_v(ct, r));
            a.qty += t.int_v(cq, r) as i64;
            a.base += e;
            a.disc_price += e * (1.0 - d);
            a.charge += e * (1.0 - d) * (1.0 + tx);
            a.disc += d;
            a.n += 1;
        },
    );
    let out = groups
        .into_iter()
        .map(|((f, s), a)| {
            vec![
                AtomValue::Chr(f),
                AtomValue::Chr(s),
                lng(a.qty),
                dbl(a.base),
                dbl(a.disc_price),
                dbl(a.charge),
                dbl(a.qty as f64 / a.n as f64),
                dbl(a.base / a.n as f64),
                dbl(a.disc / a.n as f64),
                lng(a.n),
            ]
        })
        .collect();
    RefOutput { rows: QueryResult(out), item_rows: rows.len() }
}

// ---------------------------------------------------------------------------
// Q2 — cheapest part supplier for a region.
// ---------------------------------------------------------------------------

pub fn q2_moa(p: &Params) -> SetExpr {
    let candidates =
        SetExpr::extent("Supplier").unnest(sattr("supplies"), "sup", "sp").select(and_all(vec![
            eq(
                attr("sup.nation.region.name"),
                prm(pid::Q2_REGION, AtomValue::str(p.q2_region.as_str())),
            ),
            eq(attr("sp.part.size"), prm(pid::Q2_SIZE, AtomValue::Int(p.q2_size))),
            cmp(
                ScalarFunc::StrContains,
                attr("sp.part.type"),
                prm(pid::Q2_TYPE, AtomValue::str(p.q2_type_contains.as_str())),
            ),
        ]));
    let min_per_part =
        candidates.clone().nest(vec![ProjItem::new("part", attr("sp.part"))]).project(vec![
            ProjItem::new("part", attr("part")),
            ProjItem::new("mincost", agg_over(AggFunc::Min, sattr(NEST_REST), attr("sp.cost"))),
        ]);
    candidates
        .join_eq(min_per_part, attr("sp.part"), attr("part"), "x", "m")
        .select(eq(attr("x.sp.cost"), attr("m.mincost")))
        .project(vec![
            ProjItem::new("part", attr("m.part")),
            ProjItem::new("sname", attr("x.sup.name")),
            ProjItem::new("cost", attr("x.sp.cost")),
        ])
}

pub fn q2_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let nations = nations_of_region(db, &p.q2_region);
    let sup = db.table("supplier");
    let (so, sn, snm) = (
        sup.col_index("oid").unwrap(),
        sup.col_index("nation").unwrap(),
        sup.col_index("name").unwrap(),
    );
    let sup_rows: HashMap<Oid, u32> = oid_map(db, "supplier");
    let good_sup: HashMap<Oid, String> = (0..sup.rows())
        .filter(|&r| nations.contains(&sup.oid_v(sn, r)))
        .map(|r| (sup.oid_v(so, r), sup.str_v(snm, r).to_string()))
        .collect();
    let part = db.table("part");
    let (psize, ptype) = (part.col_index("size").unwrap(), part.col_index("type").unwrap());
    let part_rows = oid_map(db, "part");
    let ps = db.table("partsupp");
    let (pp, psup, pc) = (
        ps.col_index("part").unwrap(),
        ps.col_index("supplier").unwrap(),
        ps.col_index("cost").unwrap(),
    );
    // qualifying partsupp entries
    let mut per_part: HashMap<Oid, Vec<(f64, Oid)>> = HashMap::new();
    for r in 0..ps.rows() {
        if let Some(p2) = pager {
            ps.touch_row(p2, r);
        }
        let s = ps.oid_v(psup, r);
        if !good_sup.contains_key(&s) {
            continue;
        }
        let poid = ps.oid_v(pp, r);
        let prow = part_rows[&poid] as usize;
        touch(db, "part", prow as u32, pager);
        if part.int_v(psize, prow) != p.q2_size
            || !part.str_v(ptype, prow).contains(&p.q2_type_contains)
        {
            continue;
        }
        per_part.entry(poid).or_default().push((ps.dbl_v(pc, r), s));
    }
    let mut out = Vec::new();
    for (poid, entries) in per_part {
        let min = entries.iter().map(|(c, _)| *c).fold(f64::INFINITY, f64::min);
        for (c, s) in entries {
            if c == min {
                touch(db, "supplier", sup_rows[&s], pager);
                out.push(vec![AtomValue::Oid(poid), AtomValue::str(good_sup[&s].as_str()), dbl(c)]);
            }
        }
    }
    RefOutput { rows: QueryResult(out), item_rows: 0 }
}

// ---------------------------------------------------------------------------
// Q3 — the ten most valuable unshipped orders.
// ---------------------------------------------------------------------------

pub fn q3_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(and_all(vec![
            eq(
                attr("order.cust.mktsegment"),
                prm(pid::Q3_SEGMENT, AtomValue::str(p.q3_segment.as_str())),
            ),
            cmp(
                ScalarFunc::Lt,
                attr("order.orderdate"),
                prm(pid::Q3_DATE_ORDER, AtomValue::Date(p.q3_date)),
            ),
            cmp(
                ScalarFunc::Gt,
                attr("shipdate"),
                prm(pid::Q3_DATE_SHIP, AtomValue::Date(p.q3_date)),
            ),
        ]))
        .project(vec![
            ProjItem::new("ord", attr("order")),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![ProjItem::new("ord", attr("ord"))])
        .project(vec![
            ProjItem::new("ord", attr("ord")),
            ProjItem::new("revenue", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
            ProjItem::new("orderdate", attr("ord.orderdate")),
            ProjItem::new("shippriority", attr("ord.shippriority")),
        ])
        .top(attr("revenue"), 10, true)
}

pub fn q3_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let cust = db.table("customer");
    let cseg = cust.col_index("mktsegment").unwrap();
    let building: std::collections::HashSet<Oid> = select_rows(
        db,
        "customer",
        "mktsegment",
        &ColPred::Eq(&AtomValue::str(p.q3_segment.as_str())),
        pager,
    )
    .into_iter()
    .map(|r| db.table("customer").oid_v(cust.col_index("oid").unwrap(), r as usize))
    .collect();
    let _ = cseg;
    let orders = db.table("orders");
    let (oo, oc, od, osp) = (
        orders.col_index("oid").unwrap(),
        orders.col_index("cust").unwrap(),
        orders.col_index("orderdate").unwrap(),
        orders.col_index("shippriority").unwrap(),
    );
    let mut qualifying: HashMap<Oid, (monet::atom::Date, String)> = HashMap::new();
    let early = select_rows(
        db,
        "orders",
        "orderdate",
        &ColPred::Range {
            lo: None,
            hi: Some(&AtomValue::Date(p.q3_date)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    for r in early {
        touch(db, "orders", r, pager);
        let r = r as usize;
        if building.contains(&orders.oid_v(oc, r)) {
            qualifying.insert(
                orders.oid_v(oo, r),
                (orders.date_v(od, r), orders.str_v(osp, r).to_string()),
            );
        }
    }
    let li = db.table("lineitem");
    let (lo, ls, le, ld) = (
        li.col_index("order").unwrap(),
        li.col_index("shipdate").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let late = select_rows(
        db,
        "lineitem",
        "shipdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q3_date)),
            hi: None,
            inc_lo: false,
            inc_hi: true,
        },
        pager,
    );
    let _ = ls;
    let mut rev: HashMap<Oid, f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in &late {
        touch(db, "lineitem", *r, pager);
        let r = *r as usize;
        let ord = li.oid_v(lo, r);
        if qualifying.contains_key(&ord) {
            item_rows += 1;
            *rev.entry(ord).or_insert(0.0) += li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
        }
    }
    let mut rows: Vec<(Oid, f64)> = rev.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(10);
    let out = rows
        .into_iter()
        .map(|(ord, revenue)| {
            let (date, sp) = &qualifying[&ord];
            vec![
                AtomValue::Oid(ord),
                dbl(revenue),
                AtomValue::Date(*date),
                AtomValue::str(sp.as_str()),
            ]
        })
        .collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q4 — order priority checking (EXISTS a late item).
// ---------------------------------------------------------------------------

pub fn q4_moa(p: &Params) -> SetExpr {
    let late_items = SetExpr::extent("Item").select(cmp(
        ScalarFunc::Lt,
        attr("commitdate"),
        attr("receiptdate"),
    ));
    SetExpr::extent("Order")
        .select(and(
            cmp(
                ScalarFunc::Ge,
                attr("orderdate"),
                prm(pid::Q4_DATE_LO, AtomValue::Date(p.q4_date)),
            ),
            cmp(
                ScalarFunc::Lt,
                attr("orderdate"),
                prm(pid::Q4_DATE_HI, AtomValue::Date(p.q4_date.add_months(3))),
            ),
        ))
        .semijoin_eq(late_items, this(), attr("order"))
        .nest(vec![ProjItem::new("priority", attr("orderpriority"))])
        .project(vec![
            ProjItem::new("priority", attr("priority")),
            ProjItem::new("count", agg(AggFunc::Count, sattr(NEST_REST))),
        ])
}

pub fn q4_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let hi = p.q4_date.add_months(3);
    let orows = select_rows(
        db,
        "orders",
        "orderdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q4_date)),
            hi: Some(&AtomValue::Date(hi)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    let li = db.table("lineitem");
    let (lo, lc, lr) = (
        li.col_index("order").unwrap(),
        li.col_index("commitdate").unwrap(),
        li.col_index("receiptdate").unwrap(),
    );
    let mut late_orders: std::collections::HashSet<Oid> = std::collections::HashSet::new();
    let mut item_rows = 0usize;
    for r in 0..li.rows() {
        if let Some(pg) = pager {
            li.touch_row(pg, r);
        }
        if li.date_v(lc, r) < li.date_v(lr, r) {
            item_rows += 1;
            late_orders.insert(li.oid_v(lo, r));
        }
    }
    let orders = db.table("orders");
    let (oo, op) = (orders.col_index("oid").unwrap(), orders.col_index("orderpriority").unwrap());
    let mut counts: HashMap<String, i64> = HashMap::new();
    for r in orows {
        touch(db, "orders", r, pager);
        let r = r as usize;
        if late_orders.contains(&orders.oid_v(oo, r)) {
            *counts.entry(orders.str_v(op, r).to_string()).or_insert(0) += 1;
        }
    }
    let out = counts.into_iter().map(|(k, v)| vec![AtomValue::str(k.as_str()), lng(v)]).collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q5 — revenue per local supplier (customer and supplier in same nation,
// nation in a region, orders of one year).
// ---------------------------------------------------------------------------

pub fn q5_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(and_all(vec![
            eq(
                attr("supplier.nation.region.name"),
                prm(pid::Q5_REGION, AtomValue::str(p.q5_region.as_str())),
            ),
            cmp(
                ScalarFunc::Ge,
                attr("order.orderdate"),
                prm(pid::Q5_DATE_LO, AtomValue::Date(p.q5_date)),
            ),
            cmp(
                ScalarFunc::Lt,
                attr("order.orderdate"),
                prm(pid::Q5_DATE_HI, AtomValue::Date(p.q5_date.add_months(12))),
            ),
            eq(attr("order.cust.nation"), attr("supplier.nation")),
        ]))
        .project(vec![
            ProjItem::new("nation", attr("supplier.nation.name")),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![ProjItem::new("nation", attr("nation"))])
        .project(vec![
            ProjItem::new("nation", attr("nation")),
            ProjItem::new("revenue", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ])
}

pub fn q5_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let nations = nations_of_region(db, &p.q5_region);
    let names = nation_names(db);
    let sup_nation: HashMap<Oid, Oid> = {
        let t = db.table("supplier");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let cust_nation: HashMap<Oid, Oid> = {
        let t = db.table("customer");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.oid_v(cn, r))).collect()
    };
    let hi = p.q5_date.add_months(12);
    let orows = select_rows(
        db,
        "orders",
        "orderdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q5_date)),
            hi: Some(&AtomValue::Date(hi)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    let orders = db.table("orders");
    let (oo, oc) = (orders.col_index("oid").unwrap(), orders.col_index("cust").unwrap());
    let order_cust: HashMap<Oid, Oid> =
        fetch(db, "orders", &orows, pager, |t, r| (t.oid_v(oo, r), t.oid_v(oc, r)))
            .into_iter()
            .collect();
    let li = db.table("lineitem");
    let (lo, lsup, le, ld) = (
        li.col_index("order").unwrap(),
        li.col_index("supplier").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let mut rev: HashMap<Oid, f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in 0..li.rows() {
        if let Some(pg) = pager {
            li.touch_row(pg, r);
        }
        let Some(&cust) = order_cust.get(&li.oid_v(lo, r)) else { continue };
        let snat = sup_nation[&li.oid_v(lsup, r)];
        if !nations.contains(&snat) || cust_nation[&cust] != snat {
            continue;
        }
        item_rows += 1;
        *rev.entry(snat).or_insert(0.0) += li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
    }
    let out =
        rev.into_iter().map(|(n, v)| vec![AtomValue::str(names[&n].as_str()), dbl(v)]).collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

/// Run Q1..Q5's MOA side.
pub fn q1_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q1_moa(p))
}

pub fn q2_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q2_moa(p))
}

pub fn q3_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q3_moa(p))
}

pub fn q4_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q4_moa(p))
}

pub fn q5_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q5_moa(p))
}
