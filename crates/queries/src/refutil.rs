//! Shared helpers for the n-ary reference plans.

use std::collections::HashMap;

use monet::atom::{AtomValue, Oid};
use monet::pager::Pager;
use relstore::RelDb;

/// `oid -> row` map of a dimension table.
pub fn oid_map(db: &RelDb, table: &str) -> HashMap<Oid, u32> {
    let t = db.table(table);
    let c = t.col_index("oid").expect("oid column");
    (0..t.rows() as u32).map(|r| (t.oid_v(c, r as usize), r)).collect()
}

/// Oid of the nation with the given name.
pub fn nation_oid(db: &RelDb, name: &str) -> Oid {
    let t = db.table("nation");
    let (cn, co) = (t.col_index("name").unwrap(), t.col_index("oid").unwrap());
    (0..t.rows())
        .find(|&r| t.str_v(cn, r) == name)
        .map(|r| t.oid_v(co, r))
        .unwrap_or_else(|| panic!("no nation {name}"))
}

/// Oid of the region with the given name.
pub fn region_oid(db: &RelDb, name: &str) -> Oid {
    let t = db.table("region");
    let (cn, co) = (t.col_index("name").unwrap(), t.col_index("oid").unwrap());
    (0..t.rows())
        .find(|&r| t.str_v(cn, r) == name)
        .map(|r| t.oid_v(co, r))
        .unwrap_or_else(|| panic!("no region {name}"))
}

/// Set of nation oids belonging to a region.
pub fn nations_of_region(db: &RelDb, region: &str) -> std::collections::HashSet<Oid> {
    let rid = region_oid(db, region);
    let t = db.table("nation");
    let (co, cr) = (t.col_index("oid").unwrap(), t.col_index("region").unwrap());
    (0..t.rows()).filter(|&r| t.oid_v(cr, r) == rid).map(|r| t.oid_v(co, r)).collect()
}

/// `nation oid -> name` map.
pub fn nation_names(db: &RelDb) -> HashMap<Oid, String> {
    let t = db.table("nation");
    let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("name").unwrap());
    (0..t.rows()).map(|r| (t.oid_v(co, r), t.str_v(cn, r).to_string())).collect()
}

/// Touch a dimension row if fault accounting is on.
pub fn touch(db: &RelDb, table: &str, row: u32, pager: Option<&Pager>) {
    if let Some(p) = pager {
        db.table(table).touch_row(p, row as usize);
    }
}

/// Wrap an f64 sum as the kernel's `sum` over doubles would type it.
pub fn dbl(v: f64) -> AtomValue {
    AtomValue::Dbl(v)
}

pub fn lng(v: i64) -> AtomValue {
    AtomValue::Lng(v)
}
