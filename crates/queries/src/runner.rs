//! Execution helpers: run MOA plans on the kernel, flatten structured
//! results to rows, compare row sets.

use moa::catalog::Catalog;
use moa::error::{MoaError, Result};
use moa::prelude::{ProjItem, Scalar, SetExpr};
use moa::translate::{translate, StructSpec};
use moa::value::Value;
use monet::atom::AtomValue;
use monet::ctx::ExecCtx;
use monet::mil::MilOp;
use monet::ops::AggFunc;

// Plan-optimizer controls, re-exported so query drivers and tests can pin
// the optimizer on or off around any `run_moa` entry point:
// `with_opt_level(OptLevel::Off, || (q.run_moa)(..))` executes the
// translator's raw emission (the `FLATALG_OPT=0` oracle).
pub use monet::mil::opt::{with_opt_config, with_opt_level, OptLevel};

/// A query result: bag of rows of atoms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult(pub Vec<Vec<AtomValue>>);

impl QueryResult {
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sort rows canonically (for order-insensitive comparison).
    pub fn sorted(mut self) -> QueryResult {
        self.0.sort_by(|a, b| cmp_rows(a, b));
        self
    }

    /// Order-insensitive comparison with relative float tolerance.
    ///
    /// Rows are paired through sorted index vectors — the rows themselves
    /// are never cloned. When the positional pairing after a full-order
    /// sort fails, the failure may be an artifact of the sort itself: two
    /// rows whose float cells differ only within `eps` can land at
    /// different positions on each side. The fallback re-pairs rows
    /// tolerance-aware — grouped by their non-float cells, floats matched
    /// greedily within each group — so comparison never depends on how
    /// eps-close floats happened to order.
    pub fn approx_eq(&self, other: &QueryResult, eps: f64) -> bool {
        if self.0.len() != other.0.len() {
            return false;
        }
        let mut ia: Vec<usize> = (0..self.0.len()).collect();
        let mut ib: Vec<usize> = (0..other.0.len()).collect();
        ia.sort_by(|&x, &y| cmp_rows(&self.0[x], &self.0[y]));
        ib.sort_by(|&x, &y| cmp_rows(&other.0[x], &other.0[y]));
        if ia.iter().zip(&ib).all(|(&x, &y)| row_approx_eq(&self.0[x], &other.0[y], eps)) {
            return true;
        }
        let mut groups: std::collections::HashMap<String, (Vec<usize>, Vec<usize>)> =
            std::collections::HashMap::new();
        for (i, row) in self.0.iter().enumerate() {
            groups.entry(non_float_key(row)).or_default().0.push(i);
        }
        for (i, row) in other.0.iter().enumerate() {
            groups.entry(non_float_key(row)).or_default().1.push(i);
        }
        groups.values().all(|(ga, gb)| {
            if ga.len() != gb.len() {
                return false;
            }
            let mut used = vec![false; gb.len()];
            ga.iter().all(|&x| {
                let found = gb
                    .iter()
                    .enumerate()
                    .find(|&(j, &y)| !used[j] && row_approx_eq(&self.0[x], &other.0[y], eps));
                match found {
                    Some((j, _)) => {
                        used[j] = true;
                        true
                    }
                    None => false,
                }
            })
        })
    }

    /// Render the first rows as a small text table.
    pub fn preview(&self, limit: usize) -> String {
        let mut s = String::new();
        for row in self.0.iter().take(limit) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            s.push_str(&cells.join(" | "));
            s.push('\n');
        }
        if self.0.len() > limit {
            s.push_str(&format!("... {} more rows\n", self.0.len() - limit));
        }
        s
    }
}

fn cmp_atoms(a: &AtomValue, b: &AtomValue) -> std::cmp::Ordering {
    if a.atom_type() == b.atom_type() {
        a.cmp_same_type(b)
    } else {
        format!("{:?}", a.atom_type()).cmp(&format!("{:?}", b.atom_type()))
    }
}

fn cmp_rows(a: &[AtomValue], b: &[AtomValue]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = cmp_atoms(x, y);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

fn atom_approx_eq(a: &AtomValue, b: &AtomValue, eps: f64) -> bool {
    match (a, b) {
        // Same relative tolerance as `Value::approx_eq`.
        (AtomValue::Dbl(x), AtomValue::Dbl(y)) => {
            (x - y).abs() <= eps * (1.0 + x.abs().max(y.abs()))
        }
        _ => a == b,
    }
}

fn row_approx_eq(a: &[AtomValue], b: &[AtomValue], eps: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| atom_approx_eq(x, y, eps))
}

/// Grouping key for tolerance-aware pairing: the row with every float
/// cell erased (position-preserving), so two rows that can only differ
/// by float noise land in the same group.
fn non_float_key(row: &[AtomValue]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (i, v) in row.iter().enumerate() {
        match v {
            AtomValue::Dbl(_) => {
                let _ = write!(s, "{i}:f|");
            }
            other => {
                let _ = write!(s, "{i}:{other:?}|");
            }
        }
    }
    s
}

fn value_to_row(v: Value) -> Result<Vec<AtomValue>> {
    match v {
        Value::Tuple(fields) => fields
            .into_iter()
            .map(|f| match f {
                Value::Atom(a) => Ok(a),
                Value::Ref(o) => Ok(AtomValue::Oid(o)),
                other => {
                    Err(MoaError::Type(format!("cannot flatten nested value {other} into a row")))
                }
            })
            .collect(),
        Value::Atom(a) => Ok(vec![a]),
        Value::Ref(o) => Ok(vec![AtomValue::Oid(o)]),
        other => Err(MoaError::Type(format!("cannot flatten {other} into a row"))),
    }
}

/// Translate + execute a MOA set expression and flatten the structured
/// result into rows.
pub fn run_moa_rows(cat: &Catalog, ctx: &ExecCtx, q: &SetExpr) -> Result<QueryResult> {
    let t = translate(cat, q)?;
    let (set, _env) = t.run(ctx, cat.db())?;
    let vals = set.materialize()?;
    let rows: Result<Vec<Vec<AtomValue>>> = vals.into_iter().map(value_to_row).collect();
    Ok(QueryResult(rows?))
}

/// Translate `project[<item : v>](input)`, then extend the MIL program
/// with a whole-BAT scalar aggregate over the projected value BAT — the
/// aggregation runs in MIL, not in the driver.
pub fn run_moa_scalar(
    cat: &Catalog,
    ctx: &ExecCtx,
    input: SetExpr,
    item: Scalar,
    f: AggFunc,
) -> Result<AtomValue> {
    let q = input.project(vec![ProjItem::new("v", item)]);
    let mut t = translate(cat, &q)?;
    let StructSpec::Tuple(fields) = &t.spec else {
        return Err(MoaError::Type("scalar aggregate needs a projected input".into()));
    };
    let (StructSpec::Atom(var) | StructSpec::Ref { bat: var, .. }) = &fields[0].1 else {
        return Err(MoaError::Type("scalar aggregate needs an atomic item".into()));
    };
    let agg_var = t.prog.emit("TOTAL", MilOp::AggrScalar { f, src: *var });
    t.keep.push(agg_var);
    let env = monet::mil::execute(ctx, cat.db(), &t.prog, &t.keep)?;
    Ok(env.scalar(agg_var)?.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa::prelude::*;
    use moa::testkit::mini_catalog;

    #[test]
    fn rows_roundtrip() {
        let cat = mini_catalog();
        let ctx = ExecCtx::new();
        let q = SetExpr::extent("Item").project(vec![
            ProjItem::new("o", attr("order")),
            ProjItem::new("p", attr("extendedprice")),
        ]);
        let rows = run_moa_rows(&cat, &ctx, &q).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows.0[0].len(), 2);
    }

    #[test]
    fn scalar_aggregate_in_mil() {
        let cat = mini_catalog();
        let ctx = ExecCtx::new();
        let total = run_moa_scalar(
            &cat,
            &ctx,
            SetExpr::extent("Item"),
            attr("extendedprice"),
            AggFunc::Sum,
        )
        .unwrap();
        assert_eq!(total, AtomValue::Dbl(1000.0));
        let count = run_moa_scalar(
            &cat,
            &ctx,
            SetExpr::extent("Item").select(eq(attr("returnflag"), lit_c('R'))),
            attr("extendedprice"),
            AggFunc::Count,
        )
        .unwrap();
        assert_eq!(count, AtomValue::Lng(3));
    }

    #[test]
    fn result_comparison() {
        let a = QueryResult(vec![
            vec![AtomValue::Int(1), AtomValue::Dbl(2.0)],
            vec![AtomValue::Int(2), AtomValue::Dbl(3.0)],
        ]);
        let b = QueryResult(vec![
            vec![AtomValue::Int(2), AtomValue::Dbl(3.0 + 1e-12)],
            vec![AtomValue::Int(1), AtomValue::Dbl(2.0)],
        ]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = QueryResult(vec![vec![AtomValue::Int(1), AtomValue::Dbl(2.0)]]);
        assert!(!a.approx_eq(&c, 1e-9));
        assert!(!a.preview(1).is_empty());
    }

    #[test]
    fn approx_eq_pairs_eps_close_floats_by_nonfloat_columns() {
        // The leading float cells differ only within eps, so the two rows
        // sort to opposite positions on each side; positional pairing after
        // the sort would compare Int(1) against Int(2). The tolerance-aware
        // fallback must re-pair them by the non-float column.
        let a = QueryResult(vec![
            vec![AtomValue::Dbl(1.0), AtomValue::Int(1)],
            vec![AtomValue::Dbl(1.0 + 1e-12), AtomValue::Int(2)],
        ]);
        let b = QueryResult(vec![
            vec![AtomValue::Dbl(1.0), AtomValue::Int(2)],
            vec![AtomValue::Dbl(1.0 + 1e-12), AtomValue::Int(1)],
        ]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(b.approx_eq(&a, 1e-9));
        // A genuinely different float is still a mismatch.
        let c = QueryResult(vec![
            vec![AtomValue::Dbl(1.0), AtomValue::Int(1)],
            vec![AtomValue::Dbl(2.0), AtomValue::Int(2)],
        ]);
        assert!(!a.approx_eq(&c, 1e-9));
    }
}
