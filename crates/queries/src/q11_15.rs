//! TPC-D queries 11–15: important stock, shipping modes, the paper's Q13,
//! promotion effect, top supplier.

use std::collections::HashMap;

use moa::catalog::Catalog;
use moa::prelude::*;
use monet::atom::{AtomValue, Oid};
use monet::ctx::ExecCtx;
use monet::ops::{AggFunc, ScalarFunc};
use monet::pager::Pager;
use relstore::{select_rows, ColPred, RelDb};

use crate::params::{pid, Params};
use crate::q01_05::revenue_expr;
use crate::refutil::*;
use crate::runner::{run_moa_rows, run_moa_scalar, QueryResult};
use crate::RefOutput;

// ---------------------------------------------------------------------------
// Q11 — significant stock per nation (value > fraction of the total).
// ---------------------------------------------------------------------------

fn q11_base(p: &Params) -> SetExpr {
    SetExpr::extent("Supplier")
        .select(eq(
            attr("nation.name"),
            prm(pid::Q11_NATION, AtomValue::str(p.q11_nation.as_str())),
        ))
        .unnest(sattr("supplies"), "sup", "sp")
}

fn q11_value() -> Scalar {
    bin(ScalarFunc::Mul, attr("sp.cost"), attr("sp.available"))
}

pub fn q11_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    // Phase 1: the total stock value (scalar, in MIL).
    let total = run_moa_scalar(cat, ctx, q11_base(p), q11_value(), AggFunc::Sum)?;
    let AtomValue::Dbl(total) = total else {
        return Err(moa::error::MoaError::Type("q11 total must be dbl".into()));
    };
    let threshold = total * p.q11_fraction;
    // Phase 2: per-part values above the threshold.
    let q = q11_base(p)
        .nest(vec![ProjItem::new("part", attr("sp.part"))])
        .project(vec![
            ProjItem::new("part", attr("part")),
            ProjItem::new(
                "value",
                agg_over(
                    AggFunc::Sum,
                    sattr(NEST_REST),
                    bin(ScalarFunc::Mul, attr("sp.cost"), attr("sp.available")),
                ),
            ),
        ])
        .select(cmp(
            ScalarFunc::Gt,
            attr("value"),
            prm(pid::Q11_THRESHOLD, AtomValue::Dbl(threshold)),
        ));
    run_moa_rows(cat, ctx, &q)
}

pub fn q11_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let nation = nation_oid(db, &p.q11_nation);
    let german_sup: std::collections::HashSet<Oid> = {
        let t = db.table("supplier");
        let (co, cn) = (t.col_index("oid").unwrap(), t.col_index("nation").unwrap());
        (0..t.rows()).filter(|&r| t.oid_v(cn, r) == nation).map(|r| t.oid_v(co, r)).collect()
    };
    let ps = db.table("partsupp");
    let (cs, cp, cc, ca) = (
        ps.col_index("supplier").unwrap(),
        ps.col_index("part").unwrap(),
        ps.col_index("cost").unwrap(),
        ps.col_index("available").unwrap(),
    );
    let mut per_part: HashMap<Oid, f64> = HashMap::new();
    let mut total = 0.0;
    for r in 0..ps.rows() {
        if let Some(pg) = pager {
            ps.touch_row(pg, r);
        }
        if !german_sup.contains(&ps.oid_v(cs, r)) {
            continue;
        }
        let v = ps.dbl_v(cc, r) * ps.int_v(ca, r) as f64;
        total += v;
        *per_part.entry(ps.oid_v(cp, r)).or_insert(0.0) += v;
    }
    let threshold = total * p.q11_fraction;
    let out = per_part
        .into_iter()
        .filter(|(_, v)| *v > threshold)
        .map(|(part, v)| vec![AtomValue::Oid(part), dbl(v)])
        .collect();
    RefOutput { rows: QueryResult(out), item_rows: 0 }
}

// ---------------------------------------------------------------------------
// Q12 — cheap shipping modes vs. critical orders.
// ---------------------------------------------------------------------------

pub fn q12_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(and_all(vec![
            or(
                eq(attr("shipmode"), prm(pid::Q12_MODE1, AtomValue::str(p.q12_mode1.as_str()))),
                eq(attr("shipmode"), prm(pid::Q12_MODE2, AtomValue::str(p.q12_mode2.as_str()))),
            ),
            cmp(
                ScalarFunc::Ge,
                attr("receiptdate"),
                prm(pid::Q12_DATE_LO, AtomValue::Date(p.q12_date)),
            ),
            cmp(
                ScalarFunc::Lt,
                attr("receiptdate"),
                prm(pid::Q12_DATE_HI, AtomValue::Date(p.q12_date.add_months(12))),
            ),
            cmp(ScalarFunc::Lt, attr("commitdate"), attr("receiptdate")),
            cmp(ScalarFunc::Lt, attr("shipdate"), attr("commitdate")),
        ]))
        .project(vec![
            ProjItem::new("mode", attr("shipmode")),
            ProjItem::new("priority", attr("order.orderpriority")),
        ])
        .nest(vec![
            ProjItem::new("mode", attr("mode")),
            ProjItem::new("priority", attr("priority")),
        ])
        .project(vec![
            ProjItem::new("mode", attr("mode")),
            ProjItem::new("priority", attr("priority")),
            ProjItem::new("count", agg(AggFunc::Count, sattr(NEST_REST))),
        ])
}

pub fn q12_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q12_moa(p))
}

pub fn q12_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let order_prio: HashMap<Oid, String> = {
        let t = db.table("orders");
        let (co, cp) = (t.col_index("oid").unwrap(), t.col_index("orderpriority").unwrap());
        (0..t.rows()).map(|r| (t.oid_v(co, r), t.str_v(cp, r).to_string())).collect()
    };
    let li = db.table("lineitem");
    let (lo, lm, lr, lc, ls) = (
        li.col_index("order").unwrap(),
        li.col_index("shipmode").unwrap(),
        li.col_index("receiptdate").unwrap(),
        li.col_index("commitdate").unwrap(),
        li.col_index("shipdate").unwrap(),
    );
    let hi = p.q12_date.add_months(12);
    let mut counts: HashMap<(String, String), i64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in 0..li.rows() {
        if let Some(pg) = pager {
            li.touch_row(pg, r);
        }
        let mode = li.str_v(lm, r);
        if mode != p.q12_mode1 && mode != p.q12_mode2 {
            continue;
        }
        let receipt = li.date_v(lr, r);
        if receipt < p.q12_date || receipt >= hi {
            continue;
        }
        if !(li.date_v(lc, r) < receipt && li.date_v(ls, r) < li.date_v(lc, r)) {
            continue;
        }
        item_rows += 1;
        let prio = order_prio[&li.oid_v(lo, r)].clone();
        *counts.entry((mode.to_string(), prio)).or_insert(0) += 1;
    }
    let out = counts
        .into_iter()
        .map(|((m, pr), c)| vec![AtomValue::str(m.as_str()), AtomValue::str(pr.as_str()), lng(c)])
        .collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q13 — the paper's running example: loss due to returned orders of one
// clerk, per year (Section 4.1, Figures 5 and 10).
// ---------------------------------------------------------------------------

pub fn q13_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(and(
            eq(attr("order.clerk"), prm(pid::Q13_CLERK, AtomValue::str(p.q13_clerk.as_str()))),
            eq(attr("returnflag"), lit_c('R')),
        ))
        .project(vec![
            ProjItem::new("date", un(ScalarFunc::Year, attr("order.orderdate"))),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![ProjItem::new("date", attr("date"))])
        .project(vec![
            ProjItem::new("date", attr("date")),
            ProjItem::new("loss", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ])
}

pub fn q13_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q13_moa(p))
}

pub fn q13_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let orows = select_rows(
        db,
        "orders",
        "clerk",
        &ColPred::Eq(&AtomValue::str(p.q13_clerk.as_str())),
        pager,
    );
    let orders = db.table("orders");
    let (oo, od) = (orders.col_index("oid").unwrap(), orders.col_index("orderdate").unwrap());
    let order_year: HashMap<Oid, i32> = orows
        .iter()
        .map(|&r| {
            touch(db, "orders", r, pager);
            (orders.oid_v(oo, r as usize), orders.date_v(od, r as usize).year())
        })
        .collect();
    let li = db.table("lineitem");
    let (lo, lf, le, ld) = (
        li.col_index("order").unwrap(),
        li.col_index("returnflag").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let mut loss: HashMap<i32, f64> = HashMap::new();
    let mut item_rows = 0usize;
    for r in 0..li.rows() {
        if let Some(pg) = pager {
            li.touch_row(pg, r);
        }
        let Some(&year) = order_year.get(&li.oid_v(lo, r)) else { continue };
        if li.chr_v(lf, r) != b'R' {
            continue;
        }
        item_rows += 1;
        *loss.entry(year).or_insert(0.0) += li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
    }
    let out = loss.into_iter().map(|(y, v)| vec![AtomValue::Int(y), dbl(v)]).collect();
    RefOutput { rows: QueryResult(out), item_rows }
}

// ---------------------------------------------------------------------------
// Q14 — promotion effect (share of promo-part revenue in one month).
// ---------------------------------------------------------------------------

fn q14_month(p: &Params) -> Pred {
    and(
        cmp(ScalarFunc::Ge, attr("shipdate"), prm(pid::Q14_DATE_LO, AtomValue::Date(p.q14_date))),
        cmp(
            ScalarFunc::Lt,
            attr("shipdate"),
            prm(pid::Q14_DATE_HI, AtomValue::Date(p.q14_date.add_months(1))),
        ),
    )
}

pub fn q14_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    let total = run_moa_scalar(
        cat,
        ctx,
        SetExpr::extent("Item").select(q14_month(p)),
        revenue_expr(),
        AggFunc::Sum,
    )?;
    let promo = run_moa_scalar(
        cat,
        ctx,
        SetExpr::extent("Item").select(and(
            q14_month(p),
            cmp(ScalarFunc::StrPrefix, attr("part.type"), lit_s("PROMO")),
        )),
        revenue_expr(),
        AggFunc::Sum,
    )?;
    let (AtomValue::Dbl(t), AtomValue::Dbl(pr)) = (total, promo) else {
        return Err(moa::error::MoaError::Type("q14 sums must be dbl".into()));
    };
    Ok(QueryResult(vec![vec![dbl(100.0 * pr / t)]]))
}

pub fn q14_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let promo_parts: std::collections::HashSet<Oid> = {
        let t = db.table("part");
        let (co, ct) = (t.col_index("oid").unwrap(), t.col_index("type").unwrap());
        (0..t.rows())
            .filter(|&r| t.str_v(ct, r).starts_with("PROMO"))
            .map(|r| t.oid_v(co, r))
            .collect()
    };
    let hi = p.q14_date.add_months(1);
    let rows = select_rows(
        db,
        "lineitem",
        "shipdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q14_date)),
            hi: Some(&AtomValue::Date(hi)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    let li = db.table("lineitem");
    let (lp, le, ld) = (
        li.col_index("part").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let mut total = 0.0;
    let mut promo = 0.0;
    for r in &rows {
        touch(db, "lineitem", *r, pager);
        let r = *r as usize;
        let v = li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
        total += v;
        if promo_parts.contains(&li.oid_v(lp, r)) {
            promo += v;
        }
    }
    RefOutput { rows: QueryResult(vec![vec![dbl(100.0 * promo / total)]]), item_rows: rows.len() }
}

// ---------------------------------------------------------------------------
// Q15 — identify the top supplier of a quarter.
// ---------------------------------------------------------------------------

pub fn q15_moa(p: &Params) -> SetExpr {
    SetExpr::extent("Item")
        .select(and(
            cmp(
                ScalarFunc::Ge,
                attr("shipdate"),
                prm(pid::Q15_DATE_LO, AtomValue::Date(p.q15_date)),
            ),
            cmp(
                ScalarFunc::Lt,
                attr("shipdate"),
                prm(pid::Q15_DATE_HI, AtomValue::Date(p.q15_date.add_months(3))),
            ),
        ))
        .project(vec![
            ProjItem::new("sup", attr("supplier")),
            ProjItem::new("revenue", revenue_expr()),
        ])
        .nest(vec![ProjItem::new("sup", attr("sup"))])
        .project(vec![
            ProjItem::new("name", attr("sup.name")),
            ProjItem::new("total", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ])
        .top(attr("total"), 1, true)
}

pub fn q15_run(cat: &Catalog, ctx: &ExecCtx, p: &Params) -> moa::error::Result<QueryResult> {
    run_moa_rows(cat, ctx, &q15_moa(p))
}

pub fn q15_ref(db: &RelDb, p: &Params, pager: Option<&Pager>) -> RefOutput {
    let hi = p.q15_date.add_months(3);
    let rows = select_rows(
        db,
        "lineitem",
        "shipdate",
        &ColPred::Range {
            lo: Some(&AtomValue::Date(p.q15_date)),
            hi: Some(&AtomValue::Date(hi)),
            inc_lo: true,
            inc_hi: false,
        },
        pager,
    );
    let li = db.table("lineitem");
    let (lsup, le, ld) = (
        li.col_index("supplier").unwrap(),
        li.col_index("extendedprice").unwrap(),
        li.col_index("discount").unwrap(),
    );
    let mut rev: HashMap<Oid, f64> = HashMap::new();
    for r in &rows {
        touch(db, "lineitem", *r, pager);
        let r = *r as usize;
        *rev.entry(li.oid_v(lsup, r)).or_insert(0.0) += li.dbl_v(le, r) * (1.0 - li.dbl_v(ld, r));
    }
    let best = rev.iter().max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)));
    let out = match best {
        Some((&sup, &total)) => {
            let cmap = oid_map(db, "supplier");
            let t = db.table("supplier");
            let cn = t.col_index("name").unwrap();
            let row = cmap[&sup];
            touch(db, "supplier", row, pager);
            vec![vec![AtomValue::str(t.str_v(cn, row as usize)), dbl(total)]]
        }
        None => Vec::new(),
    };
    RefOutput { rows: QueryResult(out), item_rows: rows.len() }
}
