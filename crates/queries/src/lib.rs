//! # tpcd-queries — the evaluation workload of Figure 9
//!
//! The fifteen TPC-D decision-support queries, each in two forms:
//!
//! * **MOA**: built with the [`moa::algebra`] constructors, translated to
//!   MIL by the term rewriter and executed on the [`monet`] kernel — the
//!   paper's execution path;
//! * **reference**: a conventional row-at-a-time plan on the
//!   [`relstore`] n-ary baseline — standing in for the DB2 column of
//!   Figure 9 and doubling as the correctness oracle.
//!
//! Multi-statement queries (Q8's market share, Q11's threshold, Q14's
//! ratio) run several MIL programs and combine the scalars in the driver,
//! exactly as a client application would.

pub mod params;
pub mod q01_05;
pub mod q06_10;
pub mod q11_15;
pub mod refutil;
pub mod runner;

use moa::catalog::Catalog;
use monet::ctx::ExecCtx;
use monet::pager::Pager;
use relstore::RelDb;

pub use params::Params;
pub use runner::{run_moa_rows, run_moa_scalar, QueryResult};

/// Output of a reference plan: the rows plus the number of `Item` rows the
/// query's item-level predicates selected (the "Item select%" column of
/// Figure 9; 0 marks the paper's "n.a.").
pub struct RefOutput {
    pub rows: QueryResult,
    pub item_rows: usize,
}

/// One benchmark query: id, Figure 9 comment, and both execution paths.
pub struct Query {
    pub id: usize,
    pub comment: &'static str,
    pub run_moa: fn(&Catalog, &ExecCtx, &Params) -> moa::error::Result<QueryResult>,
    pub run_ref: fn(&RelDb, &Params, Option<&Pager>) -> RefOutput,
}

/// All fifteen queries in benchmark order, with the comments of Figure 9.
pub fn all_queries() -> Vec<Query> {
    vec![
        Query {
            id: 1,
            comment: "billing aggregates over the big table",
            run_moa: q01_05::q1_run,
            run_ref: q01_05::q1_ref,
        },
        Query {
            id: 2,
            comment: "cheapest part supplier for a region",
            run_moa: q01_05::q2_run,
            run_ref: q01_05::q2_ref,
        },
        Query {
            id: 3,
            comment: "find top-10 valuable orders",
            run_moa: q01_05::q3_run,
            run_ref: q01_05::q3_ref,
        },
        Query {
            id: 4,
            comment: "priority assessment, customer satisfaction",
            run_moa: q01_05::q4_run,
            run_ref: q01_05::q4_ref,
        },
        Query {
            id: 5,
            comment: "revenue per local supplier",
            run_moa: q01_05::q5_run,
            run_ref: q01_05::q5_ref,
        },
        Query {
            id: 6,
            comment: "benefits if discounts abolished",
            run_moa: q06_10::q6_run,
            run_ref: q06_10::q6_ref,
        },
        Query {
            id: 7,
            comment: "value of shipped goods between 2 nations",
            run_moa: q06_10::q7_run,
            run_ref: q06_10::q7_ref,
        },
        Query {
            id: 8,
            comment: "part market share change for a region",
            run_moa: q06_10::q8_run,
            run_ref: q06_10::q8_ref,
        },
        Query {
            id: 9,
            comment: "line of parts profit for year and nation",
            run_moa: q06_10::q9_run,
            run_ref: q06_10::q9_ref,
        },
        Query {
            id: 10,
            comment: "top-20 customers with problematic parts",
            run_moa: q06_10::q10_run,
            run_ref: q06_10::q10_ref,
        },
        Query {
            id: 11,
            comment: "significant stock per nation",
            run_moa: q11_15::q11_run,
            run_ref: q11_15::q11_ref,
        },
        Query {
            id: 12,
            comment: "cheap shipping affecting critical orders",
            run_moa: q11_15::q12_run,
            run_ref: q11_15::q12_ref,
        },
        Query {
            id: 13,
            comment: "loss due to returned orders of a clerk",
            run_moa: q11_15::q13_run,
            run_ref: q11_15::q13_ref,
        },
        Query {
            id: 14,
            comment: "market change after a campaign date",
            run_moa: q11_15::q14_run,
            run_ref: q11_15::q14_ref,
        },
        Query {
            id: 15,
            comment: "identify the top supplier",
            run_moa: q11_15::q15_run,
            run_ref: q11_15::q15_ref,
        },
    ]
}
