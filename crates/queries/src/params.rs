//! Substitution parameters of the TPC-D queries.
//!
//! TPC-D draws its predicate constants from fixed families; we pin one
//! deterministic choice per query (the paper likewise ran one validated
//! parameter set). The clerk for Q13 is `Clerk#000000088` when the scale
//! factor provides that many clerks, else the highest-numbered clerk —
//! keeping the "one clerk out of SF·1000" selectivity of Figure 9.

use monet::atom::Date;
use tpcd::gen::TpcdData;
use tpcd::text;

/// Parameter-slot ids for the prepared-statement plan cache.
///
/// Each `prm(pid::…, value)` site in a query marks a substitution
/// parameter: the translated plan is cached by shape (with the parameter
/// value erased) and re-executing with different values only re-binds the
/// slots. Ids must be unique within one query expression; we keep them
/// globally unique (query number × 100 + ordinal) for readability.
pub mod pid {
    pub const Q1_CUTOFF: u32 = 101;
    pub const Q2_REGION: u32 = 201;
    pub const Q2_SIZE: u32 = 202;
    pub const Q2_TYPE: u32 = 203;
    pub const Q3_SEGMENT: u32 = 301;
    pub const Q3_DATE_ORDER: u32 = 302;
    pub const Q3_DATE_SHIP: u32 = 303;
    pub const Q4_DATE_LO: u32 = 401;
    pub const Q4_DATE_HI: u32 = 402;
    pub const Q5_REGION: u32 = 501;
    pub const Q5_DATE_LO: u32 = 502;
    pub const Q5_DATE_HI: u32 = 503;
    pub const Q6_DATE_LO: u32 = 601;
    pub const Q6_DATE_HI: u32 = 602;
    pub const Q6_DISC_LO: u32 = 603;
    pub const Q6_DISC_HI: u32 = 604;
    pub const Q6_QTY: u32 = 605;
    pub const Q7_NATION1: u32 = 701;
    pub const Q7_NATION2: u32 = 702;
    pub const Q7_DATE_LO: u32 = 703;
    pub const Q7_DATE_HI: u32 = 704;
    pub const Q8_REGION: u32 = 801;
    pub const Q8_TYPE: u32 = 802;
    pub const Q8_DATE_LO: u32 = 803;
    pub const Q8_DATE_HI: u32 = 804;
    pub const Q8_NATION: u32 = 805;
    pub const Q9_COLOR: u32 = 901;
    pub const Q10_DATE_LO: u32 = 1001;
    pub const Q10_DATE_HI: u32 = 1002;
    pub const Q11_NATION: u32 = 1101;
    pub const Q11_THRESHOLD: u32 = 1102;
    pub const Q12_MODE1: u32 = 1201;
    pub const Q12_MODE2: u32 = 1202;
    pub const Q12_DATE_LO: u32 = 1203;
    pub const Q12_DATE_HI: u32 = 1204;
    pub const Q13_CLERK: u32 = 1301;
    pub const Q14_DATE_LO: u32 = 1401;
    pub const Q14_DATE_HI: u32 = 1402;
    pub const Q15_DATE_LO: u32 = 1501;
    pub const Q15_DATE_HI: u32 = 1502;
}

/// Bound query parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Q1: shipdate cutoff (`1998-12-01 - 90 days`).
    pub q1_cutoff: Date,
    /// Q2: region name and part filters.
    pub q2_region: String,
    pub q2_size: i32,
    pub q2_type_contains: String,
    /// Q3: market segment and pivot date.
    pub q3_segment: String,
    pub q3_date: Date,
    /// Q4: order-date quarter start.
    pub q4_date: Date,
    /// Q5: region and year start.
    pub q5_region: String,
    pub q5_date: Date,
    /// Q6: year start, discount band, quantity bound.
    pub q6_date: Date,
    pub q6_disc_lo: f64,
    pub q6_disc_hi: f64,
    pub q6_qty: i32,
    /// Q7: the two trading nations.
    pub q7_nation1: String,
    pub q7_nation2: String,
    /// Q8: region, nation whose share is measured, part-type filter.
    pub q8_region: String,
    pub q8_nation: String,
    pub q8_type_contains: String,
    /// Q9: part-name fragment.
    pub q9_color: String,
    /// Q10: quarter start.
    pub q10_date: Date,
    /// Q11: nation and "significant" fraction.
    pub q11_nation: String,
    pub q11_fraction: f64,
    /// Q12: the two ship modes and the receipt year start.
    pub q12_mode1: String,
    pub q12_mode2: String,
    pub q12_date: Date,
    /// Q13: the clerk under scrutiny.
    pub q13_clerk: String,
    /// Q14: campaign month start.
    pub q14_date: Date,
    /// Q15: quarter start.
    pub q15_date: Date,
}

impl Params {
    /// The pinned parameter set, adapted to the generated database.
    pub fn for_data(data: &TpcdData) -> Params {
        let mut p = Params::for_sf(data.sf);
        p.q11_fraction = 0.0001 / data.sf.max(0.0001);
        p.q13_clerk = text::clerk_name(88.min(data.clerk_count));
        p
    }

    /// The pinned parameter set from the scale factor alone — the same
    /// values [`Params::for_data`] derives on generated data, rebuildable
    /// when only a persistent store (which records its `sf`) is at hand.
    pub fn for_sf(sf: f64) -> Params {
        Params {
            q1_cutoff: Date::from_ymd(1998, 12, 1).add_days(-90),
            q2_region: "EUROPE".into(),
            q2_size: 15,
            q2_type_contains: "BRASS".into(),
            q3_segment: "BUILDING".into(),
            q3_date: Date::from_ymd(1995, 3, 15),
            q4_date: Date::from_ymd(1993, 7, 1),
            q5_region: "ASIA".into(),
            q5_date: Date::from_ymd(1994, 1, 1),
            q6_date: Date::from_ymd(1994, 1, 1),
            q6_disc_lo: 0.05,
            q6_disc_hi: 0.07,
            q6_qty: 24,
            q7_nation1: "FRANCE".into(),
            q7_nation2: "GERMANY".into(),
            q8_region: "AMERICA".into(),
            q8_nation: "BRAZIL".into(),
            q8_type_contains: "STEEL".into(),
            // A colour that occurs in the generator's part-name vocabulary.
            q9_color: "blue".into(),
            q10_date: Date::from_ymd(1993, 10, 1),
            q11_nation: "GERMANY".into(),
            q11_fraction: 0.0001 / sf.max(0.0001),
            q12_mode1: "MAIL".into(),
            q12_mode2: "SHIP".into(),
            q12_date: Date::from_ymd(1994, 1, 1),
            q13_clerk: text::clerk_name(88.min(tpcd::gen::clerk_count_for_sf(sf))),
            q14_date: Date::from_ymd(1995, 9, 1),
            q15_date: Date::from_ymd(1996, 1, 1),
        }
    }
}
