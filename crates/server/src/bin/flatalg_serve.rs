//! Drive the in-process query service with M concurrent client threads
//! running the mixed Q1–Q15 workload, and report throughput plus plan-cache
//! amortization.
//!
//! ```text
//! FLATALG_SF=0.01 FLATALG_CLIENTS=4 FLATALG_REPS=5 flatalg_serve
//! ```
//!
//! Environment:
//! * `FLATALG_SF`        — scale factor (default 0.01)
//! * `FLATALG_CLIENTS`   — concurrent client threads (default 4)
//! * `FLATALG_REPS`      — mixed-workload passes per client (default 5)
//! * `FLATALG_ADMIT`     — admission limit (default: worker-thread count)
//! * `FLATALG_PLAN_CACHE`— plan-cache capacity, 0 disables (default 64)
//! * `FLATALG_THREADS`   — worker threads per statement (kernel knob)

use std::time::Instant;

use flatalg_server::{Server, ServerConfig};
use tpcd_queries::{all_queries, Params};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(default)
}

fn main() {
    let sf = env_f64("FLATALG_SF", 0.01);
    let clients = env_usize("FLATALG_CLIENTS", 4);
    let reps = env_usize("FLATALG_REPS", 5);
    let config = ServerConfig::from_env();

    let t0 = Instant::now();
    let data = match tpcd::try_generate(sf, 19980223) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("flatalg_serve: cannot generate world: {e}");
            std::process::exit(1);
        }
    };
    let (cat, report) = match tpcd::try_load_bats(&data) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("flatalg_serve: cannot load world: {e}");
            std::process::exit(1);
        }
    };
    let params = Params::for_data(&data);
    println!(
        "flatalg_serve: sf={sf} ({} BATs, {} items) loaded in {:.2}s",
        report.bat_count,
        data.items.len(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "config: clients={clients} reps={reps} admit={} plan_cache={:?} threads={}",
        config.max_concurrent,
        config.plan_cache,
        monet::par::config_key().0
    );

    let server = Server::with_config(&cat, config);
    let queries = all_queries();

    // Warm pass: one session prepares every workload shape.
    let warm = Instant::now();
    {
        let session = server.session();
        for q in &queries {
            if let Err(e) = session.run_query(q, &params) {
                eprintln!("q{} failed during warmup: {e}", q.id);
                std::process::exit(1);
            }
        }
    }
    println!("warmup: mixed workload prepared in {:.3}s", warm.elapsed().as_secs_f64());

    // Measured phase: M clients, each running `reps` mixed passes with a
    // rotated start so different queries collide at the gate.
    let t1 = Instant::now();
    let failures = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for c in 0..clients {
            let (server, queries, params, failures) = (&server, &queries, &params, &failures);
            s.spawn(move || {
                let session = server.session();
                for rep in 0..reps {
                    for i in 0..queries.len() {
                        let q = &queries[(i + c * 5 + rep) % queries.len()];
                        if session.run_query(q, params).is_err() {
                            failures.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = t1.elapsed().as_secs_f64();
    let served = clients * reps * queries.len();
    let stats = server.stats();
    println!(
        "served {served} queries from {clients} clients in {wall:.3}s — {:.1} qps",
        served as f64 / wall
    );
    println!(
        "admission: executed={} waited={} (limit {})",
        stats.executed,
        stats.waited,
        ServerConfig::from_env().max_concurrent
    );
    if let Some(c) = stats.cache {
        println!(
            "plan cache: hits={} misses={} evictions={} bypasses={} resident={}",
            c.hits, c.misses, c.evictions, c.bypasses, c.len
        );
    } else {
        println!("plan cache: disabled");
    }
    let fails = failures.load(std::sync::atomic::Ordering::Relaxed);
    if fails > 0 {
        eprintln!("{fails} queries failed");
        std::process::exit(1);
    }
}
