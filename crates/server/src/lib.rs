//! # flatalg-server — an in-process query service over the flattened algebra
//!
//! One shared [`Catalog`] (schema + BATs) and the process-wide `monet::par`
//! worker pool serve many concurrent client sessions. There is no wire
//! protocol: a [`Server`] is embedded in the host process and clients are
//! threads holding a [`Session`] each.
//!
//! The service adds two things over calling the translator directly:
//!
//! * **Prepared statements.** Every translation a session performs goes
//!   through the server's shared [`PlanCache`]: the first execution of a
//!   query shape translates and optimizes the MIL program, subsequent
//!   executions re-bind the `prm(id, value)` parameter slots of the cached
//!   plan without re-running the translator or the optimizer. Catalog
//!   changes invalidate silently (the `Db` epoch is part of the cache key),
//!   and scoped optimizer/thread-config overrides can never be served a
//!   plan cached under a different configuration.
//! * **Admission control.** Statements are admitted through a FIFO ticket
//!   gate bounding how many run at once, so a burst of sessions cannot
//!   oversubscribe the shared worker pool; waiting statements are served
//!   strictly in arrival order (no starvation). The permit is released on
//!   unwind, so a panicking query cannot wedge the gate or the pool.
//!
//! ```
//! use flatalg_server::{Server, ServerConfig};
//! use tpcd_queries::{all_queries, Params};
//!
//! let data = tpcd::generate(0.001, 42);
//! let (cat, _report) = tpcd::load_bats(&data);
//! let params = Params::for_data(&data);
//! let server = Server::with_config(&cat, ServerConfig::default());
//! let session = server.session();
//! for q in all_queries() {
//!     session.run_query(&q, &params).unwrap();
//! }
//! // Second round: every plan comes from the cache.
//! let before = server.stats();
//! for q in all_queries() {
//!     session.run_query(&q, &params).unwrap();
//! }
//! let after = server.stats();
//! assert_eq!(after.cache.unwrap().misses, before.cache.unwrap().misses);
//! ```

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use moa::catalog::Catalog;
use moa::error::{MoaError, Result};
use moa::plancache::{self, with_plan_cache, PlanCache, PlanCacheStats};
use moa::prelude::SetExpr;
use monet::ctx::ExecCtx;
use monet::error::MonetError;
use monet::gov::CancelToken;
use tpcd_queries::runner::{run_moa_rows, QueryResult};
use tpcd_queries::{Params, Query};

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

struct GateState {
    next_ticket: u64,
    now_serving: u64,
    running: usize,
    /// Tickets whose waiters gave up (admission timeout). `now_serving`
    /// skips over them so the FIFO order of the remaining waiters is
    /// undisturbed.
    abandoned: HashSet<u64>,
}

/// FIFO ticket gate: at most `limit` statements run at once and waiting
/// statements are admitted strictly in arrival order.
struct Gate {
    limit: usize,
    state: Mutex<GateState>,
    cv: Condvar,
    waited: AtomicU64,
}

/// RAII admission permit; dropping it (including on unwind) frees a slot.
struct Permit<'g> {
    gate: &'g Gate,
}

impl Gate {
    fn new(limit: usize) -> Gate {
        Gate {
            limit: limit.max(1),
            state: Mutex::new(GateState {
                next_ticket: 0,
                now_serving: 0,
                running: 0,
                abandoned: HashSet::new(),
            }),
            cv: Condvar::new(),
            waited: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        // A panic inside an admitted statement happens outside this mutex,
        // but survive poisoning anyway: the state transitions below are
        // all panic-free.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[cfg(test)]
    fn acquire(&self) -> Permit<'_> {
        self.acquire_timeout(None).expect("untimed acquire cannot time out")
    }

    /// Acquire a permit, giving up after `timeout` (None waits forever).
    /// A timed-out ticket is marked abandoned and skipped by `now_serving`,
    /// so the waiters behind it keep their FIFO positions. On timeout the
    /// milliseconds actually waited are returned.
    fn acquire_timeout(&self, timeout: Option<Duration>) -> std::result::Result<Permit<'_>, u64> {
        let started = Instant::now();
        let mut st = self.lock();
        let me = st.next_ticket;
        st.next_ticket += 1;
        let admissible = |st: &mut GateState| {
            while st.abandoned.remove(&st.now_serving) {
                st.now_serving += 1;
            }
            st.now_serving == me && st.running < self.limit
        };
        if !admissible(&mut st) {
            self.waited.fetch_add(1, Ordering::Relaxed);
        }
        while !admissible(&mut st) {
            match timeout {
                None => st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
                Some(t) => {
                    let left = t.saturating_sub(started.elapsed());
                    if left.is_zero() {
                        st.abandoned.insert(me);
                        drop(st);
                        // The ticket behind us may now be at the front.
                        self.cv.notify_all();
                        return Err(started.elapsed().as_millis() as u64);
                    }
                    let (g, _) =
                        self.cv.wait_timeout(st, left).unwrap_or_else(PoisonError::into_inner);
                    st = g;
                }
            }
        }
        st.now_serving += 1;
        st.running += 1;
        drop(st);
        // The next ticket may be admissible right away (free slots left).
        self.cv.notify_all();
        Ok(Permit { gate: self })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock();
        st.running -= 1;
        drop(st);
        self.gate.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum statements executing concurrently (minimum 1). Defaults to
    /// the configured worker-thread count — admitting more would only
    /// oversubscribe the shared pool.
    pub max_concurrent: usize,
    /// Plan-cache capacity; `None` disables caching (every execution
    /// translates and optimizes from scratch — the oracle configuration).
    pub plan_cache: Option<usize>,
    /// Per-statement wall-clock deadline; an admitted statement exceeding
    /// it aborts with [`MonetError::DeadlineExceeded`] at the next
    /// governor probe. `None` runs without a deadline.
    pub deadline: Option<Duration>,
    /// How long a statement may wait at the admission gate before being
    /// shed with [`MonetError::AdmissionTimeout`]. `None` waits forever.
    pub admit_timeout: Option<Duration>,
}

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: monet::par::config_key().0.max(1),
            plan_cache: Some(plancache::DEFAULT_CAPACITY),
            deadline: None,
            admit_timeout: None,
        }
    }
}

impl ServerConfig {
    /// Configuration from the environment: `FLATALG_ADMIT` overrides the
    /// admission limit, `FLATALG_PLAN_CACHE` the cache capacity (0 turns
    /// caching off), `FLATALG_DEADLINE_MS` the per-statement deadline and
    /// `FLATALG_ADMIT_TIMEOUT_MS` the admission-queue timeout (0 or unset
    /// disables either).
    pub fn from_env() -> ServerConfig {
        let admit = std::env::var("FLATALG_ADMIT")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        ServerConfig {
            max_concurrent: admit.unwrap_or_else(|| monet::par::config_key().0.max(1)),
            plan_cache: plancache::env_capacity(),
            deadline: env_ms("FLATALG_DEADLINE_MS"),
            admit_timeout: env_ms("FLATALG_ADMIT_TIMEOUT_MS"),
        }
    }
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Statements admitted and executed (including failed ones).
    pub executed: u64,
    /// Statements that had to wait at the admission gate.
    pub waited: u64,
    /// Admitted statements that returned an error (budget, deadline,
    /// cancellation, malformed input, injected fault, ...).
    pub failed: u64,
    /// Statements shed at the admission gate (queue timeout) — never
    /// admitted, so not counted in `executed`.
    pub shed: u64,
    /// Plan-cache counters, when caching is enabled.
    pub cache: Option<PlanCacheStats>,
}

/// The in-process query service: one shared catalog, one plan cache, one
/// admission gate. Create one per database; hand out [`Session`]s to
/// client threads (`Server` is `Sync`, sessions are cheap).
pub struct Server<'db> {
    cat: &'db Catalog,
    cache: Option<Arc<PlanCache>>,
    gate: Gate,
    deadline: Option<Duration>,
    admit_timeout: Option<Duration>,
    executed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
}

impl<'db> Server<'db> {
    /// A server configured from the environment (see
    /// [`ServerConfig::from_env`]).
    pub fn new(cat: &'db Catalog) -> Server<'db> {
        Server::with_config(cat, ServerConfig::from_env())
    }

    pub fn with_config(cat: &'db Catalog, config: ServerConfig) -> Server<'db> {
        Server {
            cat,
            cache: config.plan_cache.map(PlanCache::with_capacity),
            gate: Gate::new(config.max_concurrent),
            deadline: config.deadline,
            admit_timeout: config.admit_timeout,
            executed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Open a client session. Each session owns its execution context;
    /// any number may run concurrently.
    pub fn session(&self) -> Session<'_, 'db> {
        Session { server: self, ctx: ExecCtx::new() }
    }

    /// The shared catalog this server serves.
    pub fn catalog(&self) -> &'db Catalog {
        self.cat
    }

    pub fn stats(&self) -> ServerStats {
        ServerStats {
            executed: self.executed.load(Ordering::Relaxed),
            waited: self.gate.waited.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }

    /// Drop every cached plan (e.g. after mutating the catalog through an
    /// external handle). Plans cached before a `Db` epoch bump are already
    /// unreachable — this reclaims their memory.
    pub fn invalidate_plans(&self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A prepared statement: the query shape has been translated and
/// optimized, and the plan is resident in the server's cache. Executing
/// it — or any expression of the same shape with different `prm` values —
/// only re-binds the parameter slots.
pub struct Prepared {
    expr: SetExpr,
}

impl Prepared {
    /// The expression this statement was prepared from.
    pub fn expr(&self) -> &SetExpr {
        &self.expr
    }
}

/// One client's handle on the service. Sessions are single-threaded (one
/// statement at a time per session); concurrency comes from many sessions.
pub struct Session<'srv, 'db> {
    server: &'srv Server<'db>,
    ctx: ExecCtx,
}

impl<'srv, 'db> Session<'srv, 'db> {
    /// Run a closure as one admitted statement: it holds an admission
    /// permit, runs under the server's per-statement deadline (when one is
    /// configured), and sees the server's plan cache as the ambient cache,
    /// so every `translate` inside it is served from / recorded into the
    /// cache. The permit is released and the deadline disarmed whether the
    /// closure returns `Ok`, returns `Err`, or panics; a statement that
    /// cannot be admitted within the configured queue timeout is shed with
    /// [`MonetError::AdmissionTimeout`] without ever holding a permit.
    pub fn scoped<R>(&self, f: impl FnOnce() -> Result<R>) -> Result<R> {
        let _permit = match self.server.gate.acquire_timeout(self.server.admit_timeout) {
            Ok(p) => p,
            Err(waited_ms) => {
                self.server.shed.fetch_add(1, Ordering::Relaxed);
                return Err(MoaError::Kernel(MonetError::AdmissionTimeout { waited_ms }));
            }
        };
        self.server.executed.fetch_add(1, Ordering::Relaxed);
        // RAII deadline: armed for exactly this statement, disarmed on any
        // exit path (a leaked deadline would fail the session's next
        // statement spuriously).
        struct Disarm<'a>(&'a ExecCtx);
        impl Drop for Disarm<'_> {
            fn drop(&mut self) {
                self.0.gov.set_deadline(None);
            }
        }
        let _deadline = self.server.deadline.map(|d| {
            self.ctx.gov.set_deadline(Some(d));
            Disarm(&self.ctx)
        });
        let out = match &self.server.cache {
            Some(c) => with_plan_cache(Arc::clone(c), f),
            None => f(),
        };
        if out.is_err() {
            self.server.failed.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// A handle that cancels whatever statement this session is running
    /// (or the next one admitted): the statement aborts with
    /// [`MonetError::Cancelled`] at the next governor probe. Call
    /// [`CancelToken::clear`] before reusing the session.
    pub fn cancel_handle(&self) -> CancelToken {
        self.ctx.cancel_token()
    }

    /// The session's execution context (per-session governor and memory
    /// budget live here).
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// Translate and optimize `expr` now, so later executions of this
    /// shape are pure cache hits (parameter re-binding only).
    pub fn prepare(&self, expr: SetExpr) -> Result<Prepared> {
        self.scoped(|| moa::translate::translate(self.server.cat, &expr).map(|_| ()))?;
        Ok(Prepared { expr })
    }

    /// Execute a prepared statement with the parameter values it was
    /// prepared with.
    pub fn execute(&self, stmt: &Prepared) -> Result<QueryResult> {
        self.execute_expr(&stmt.expr)
    }

    /// Execute a set expression. To re-bind a prepared statement with new
    /// parameter values, pass a freshly built expression of the same shape
    /// (same `prm` ids, new values): the cached plan is re-bound, not
    /// re-translated.
    pub fn execute_expr(&self, expr: &SetExpr) -> Result<QueryResult> {
        self.scoped(|| run_moa_rows(self.server.cat, &self.ctx, expr))
    }

    /// Run one of the TPC-D workload queries. Multi-statement drivers
    /// (Q8, Q11, Q14) run all their programs under a single admission
    /// permit, like a client transaction would.
    pub fn run_query(&self, q: &Query, params: &Params) -> Result<QueryResult> {
        self.scoped(|| (q.run_moa)(self.server.cat, &self.ctx, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn gate_is_fifo_and_bounded() {
        let gate = Arc::new(Gate::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let _p = gate.acquire();
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        running.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission limit exceeded");
    }

    #[test]
    fn timed_out_ticket_is_abandoned_not_blocking() {
        let gate = Arc::new(Gate::new(1));
        let held = gate.acquire();
        // A waiter with a tiny timeout is shed while the slot is taken...
        let g2 = Arc::clone(&gate);
        let shed =
            std::thread::spawn(move || g2.acquire_timeout(Some(Duration::from_millis(5))).is_err())
                .join()
                .unwrap();
        assert!(shed, "waiter should have timed out");
        // ...and its abandoned ticket must not block later arrivals.
        drop(held);
        assert!(gate.acquire_timeout(Some(Duration::from_secs(5))).is_ok());
    }

    #[test]
    fn abandoned_ticket_preserves_fifo_for_later_waiters() {
        let gate = Arc::new(Gate::new(1));
        let held = gate.acquire();
        // Two waiters: the first times out, the second waits patiently.
        let g1 = Arc::clone(&gate);
        let t1 =
            std::thread::spawn(move || g1.acquire_timeout(Some(Duration::from_millis(5))).is_err());
        assert!(t1.join().unwrap());
        let g2 = Arc::clone(&gate);
        let t2 =
            std::thread::spawn(move || g2.acquire_timeout(Some(Duration::from_secs(5))).is_ok());
        // Releasing the held permit must admit the patient waiter even
        // though an earlier (abandoned) ticket sits in front of it.
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        assert!(t2.join().unwrap(), "patient waiter starved behind an abandoned ticket");
    }

    #[test]
    fn permit_released_on_panic() {
        let gate = Arc::new(Gate::new(1));
        let g2 = Arc::clone(&gate);
        let r = std::thread::spawn(move || {
            let _p = g2.acquire();
            panic!("statement died");
        })
        .join();
        assert!(r.is_err());
        // The slot must be free again: this would deadlock otherwise.
        let _p = gate.acquire();
    }
}
