//! Store-backed catalogs in the service layer: an opened store mints a
//! fresh `Db` identity, so a plan cache shared across catalogs can never
//! serve a plan compiled against a same-named in-memory world — the
//! store world's plans miss, translate fresh, and produce bit-identical
//! results.

use std::sync::Arc;

use flatalg_server::{Server, ServerConfig};
use moa::plancache::{with_plan_cache, PlanCache};
use monet::ctx::ExecCtx;
use tpcd_queries::all_queries;

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("flatalg-server-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn shared_plan_cache_never_aliases_store_and_in_memory_worlds() {
    let w = bench::World::build(0.002);
    let dir = tmpdir();
    w.save_store(&dir).expect("save");
    let sw = bench::StoreWorld::open(&dir).expect("open");
    assert_ne!(sw.cat.db().id(), w.cat.db().id(), "opened store must mint a fresh Db id");

    let cache = PlanCache::with_capacity(256);
    let queries = all_queries();

    // Warm the cache with the in-memory world, then re-run: second round
    // is served from the cache.
    let warm: Vec<_> = with_plan_cache(Arc::clone(&cache), || {
        queries.iter().map(|q| (q.run_moa)(&w.cat, &ExecCtx::new(), &w.params).unwrap()).collect()
    });
    let s0 = cache.stats();
    assert!(s0.misses > 0 && s0.hits == 0);
    let _again: Vec<_> = with_plan_cache(Arc::clone(&cache), || {
        queries
            .iter()
            .map(|q| (q.run_moa)(&w.cat, &ExecCtx::new(), &w.params).unwrap())
            .collect::<Vec<_>>()
    });
    let s1 = cache.stats();
    assert!(s1.hits > 0, "in-memory re-run must hit its own plans");

    // The store-backed catalog shares the cache but must not hit a single
    // in-memory plan: same query shapes, different catalog identity.
    let opened: Vec<_> = with_plan_cache(Arc::clone(&cache), || {
        queries
            .iter()
            .map(|q| (q.run_moa)(&sw.cat, &ExecCtx::new(), &sw.params).unwrap())
            .collect::<Vec<_>>()
    });
    let s2 = cache.stats();
    assert_eq!(s2.hits, s1.hits, "store-backed catalog must not reuse in-memory plans");
    assert!(s2.misses > s1.misses, "store-backed plans translate fresh");

    for ((q, a), b) in queries.iter().zip(&warm).zip(&opened) {
        assert!(b.approx_eq(a, 0.0), "Q{}: store-backed result differs", q.id);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn service_runs_the_workload_on_an_opened_store() {
    let w = bench::World::build(0.002);
    let dir = tmpdir_svc();
    w.save_store(&dir).expect("save");
    let sw = bench::StoreWorld::open(&dir).expect("open");
    let server = Server::with_config(
        &sw.cat,
        ServerConfig { max_concurrent: 2, plan_cache: Some(64), ..ServerConfig::default() },
    );
    let session = server.session();
    for q in all_queries() {
        let got = session.run_query(&q, &sw.params).unwrap_or_else(|e| panic!("Q{}: {e}", q.id));
        let want = (q.run_moa)(&w.cat, &ExecCtx::new(), &w.params).unwrap();
        assert!(got.approx_eq(&want, 0.0), "Q{}: served store result differs", q.id);
    }
    assert_eq!(server.stats().failed, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn tmpdir_svc() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("flatalg-server-store-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}
