//! End-to-end tests of the query service: concurrent prepared-statement
//! sessions over one shared `Db` must be bit-identical to single-shot
//! uncached execution, the plan cache must count hits/misses/evictions
//! faithfully, scoped config overrides must never be served a plan cached
//! under a different configuration, and a panicking statement must not
//! wedge the admission gate or the shared worker pool.

use std::time::Duration;

use flatalg_server::{Server, ServerConfig};
use moa::error::MoaError;
use monet::error::MonetError;
use monet::mil::opt::{self, with_opt_level, OptLevel};
use monet::par;
use tpcd_queries::q11_15::q13_moa;
use tpcd_queries::{all_queries, QueryResult};

fn cfg(admit: usize, cache: usize) -> ServerConfig {
    ServerConfig { max_concurrent: admit, plan_cache: Some(cache), ..ServerConfig::default() }
}

/// N sessions running the mixed Q1–Q15 workload concurrently (rotated
/// start points, shared plan cache) must reproduce the single-shot
/// uncached oracles bit-for-bit — at one worker thread and at four.
#[test]
fn concurrent_sessions_match_single_shot_oracles() {
    let w = bench::world();
    let queries = all_queries();
    // Single-shot oracles: no server, no cache, serial execution.
    let oracles: Vec<QueryResult> = par::with_threads(1, || {
        let ctx = monet::ctx::ExecCtx::new();
        queries.iter().map(|q| (q.run_moa)(&w.cat, &ctx, &w.params).unwrap()).collect()
    });
    for threads in [1usize, 4] {
        let server = Server::with_config(&w.cat, cfg(3, 64));
        let drivers = 3usize;
        std::thread::scope(|s| {
            for d in 0..drivers {
                let (server, queries, oracles) = (&server, &queries, &oracles);
                s.spawn(move || {
                    // Thread configuration is per client thread.
                    par::with_threads(threads, || {
                        let session = server.session();
                        for i in 0..queries.len() {
                            let i = (i + d * 5) % queries.len();
                            let got = session.run_query(&queries[i], &w.params).unwrap();
                            assert_eq!(
                                got, oracles[i],
                                "query {} diverged at {threads} threads",
                                queries[i].id
                            );
                        }
                    });
                });
            }
        });
        let cache = server.stats().cache.unwrap();
        assert_eq!(cache.bypasses, 0, "every workload plan must be cacheable");
        assert!(cache.hits > 0, "concurrent drivers must share plans");
    }
}

/// Prepared statements: the first execution misses and pays translation,
/// repeats hit, and a hit performs zero translate/optimize work. Fresh
/// parameter values re-bind the cached plan and still match the uncached
/// oracle.
#[test]
fn prepared_statements_hit_rebind_and_skip_the_optimizer() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 16));
    let session = server.session();
    let stmt = session.prepare(q13_moa(&w.params)).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 1));
    let r1 = session.execute(&stmt).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (1, 1));
    // A cache hit runs no optimizer passes at all.
    opt::reset_cumulative();
    let r2 = session.execute(&stmt).unwrap();
    assert_eq!(opt::cumulative(), (0, 0), "hits must skip translate+optimize");
    assert_eq!(r1, r2);
    // Re-bind: same shape, different clerk. Still a hit, still correct.
    let mut p2 = w.params.clone();
    p2.q13_clerk = tpcd::text::clerk_name(1);
    let rebound = session.execute_expr(&q13_moa(&p2)).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (3, 1));
    let oracle = {
        let ctx = monet::ctx::ExecCtx::new();
        tpcd_queries::run_moa_rows(&w.cat, &ctx, &q13_moa(&p2)).unwrap()
    };
    assert_eq!(rebound, oracle, "re-bound plan diverged from uncached oracle");
}

/// A second pass over the full mixed workload translates nothing: every
/// plan (including the multi-statement drivers' phases) is served from
/// the cache with zero optimizer work.
#[test]
fn second_round_of_the_full_workload_is_all_cache_hits() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 64));
    let session = server.session();
    let queries = all_queries();
    for q in &queries {
        session.run_query(q, &w.params).unwrap();
    }
    let s1 = server.stats().cache.unwrap();
    assert_eq!(s1.bypasses, 0, "every workload plan must be cacheable");
    opt::reset_cumulative();
    for q in &queries {
        session.run_query(q, &w.params).unwrap();
    }
    assert_eq!(opt::cumulative(), (0, 0), "round 2 must run zero translate/optimize");
    let s2 = server.stats().cache.unwrap();
    assert_eq!(s2.misses, s1.misses, "round 2 must not translate");
    // Round 2 repeats round 1's translate calls exactly, all as hits.
    assert_eq!(s2.hits - s1.hits, s1.misses + s1.hits);
}

/// The LRU bound is enforced: with capacity 2, a third shape evicts and
/// the evicted shape misses again on return.
#[test]
fn small_cache_evicts_least_recently_used_plans() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 2));
    let session = server.session();
    let a = q13_moa(&w.params);
    let b = tpcd_queries::q11_15::q15_moa(&w.params);
    let c = tpcd_queries::q01_05::q4_moa(&w.params);
    session.execute_expr(&a).unwrap();
    session.execute_expr(&b).unwrap();
    session.execute_expr(&c).unwrap(); // evicts a
    let s = server.stats().cache.unwrap();
    assert_eq!(s.evictions, 1);
    assert_eq!(s.len, 2);
    session.execute_expr(&a).unwrap(); // miss again
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 4));
}

/// Satellite 3 regression: a scoped `OptLevel` or thread-config override
/// must never be served a plan cached under a different effective config —
/// and returning to the original config must still hit the original plans.
#[test]
fn scoped_config_overrides_never_reuse_wrong_plans() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 16));
    let session = server.session();
    let q = q13_moa(&w.params);
    // Pin both levels explicitly so the test holds under any ambient
    // config (CI also runs the whole suite with FLATALG_OPT=0).
    let full = with_opt_level(OptLevel::Full, || session.execute_expr(&q)).unwrap();
    let off = with_opt_level(OptLevel::Off, || session.execute_expr(&q)).unwrap();
    assert_eq!(full, off, "optimizer must preserve results");
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 2), "OptLevel flip must key a distinct plan");
    let t3 = par::with_threads(3, || with_opt_level(OptLevel::Full, || session.execute_expr(&q)))
        .unwrap();
    assert_eq!(full, t3);
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 3), "thread-config flip must key a distinct plan");
    // Back at the original configs, both cached plans hit.
    with_opt_level(OptLevel::Full, || session.execute_expr(&q)).unwrap();
    with_opt_level(OptLevel::Off, || session.execute_expr(&q)).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (2, 3));
}

/// Satellite: re-encoding a catalog column through `Db::reencode_tail`
/// bumps the mutation epoch, so plans cached against the raw layout miss
/// afterwards (fresh translate keyed on the new epoch) instead of being
/// served stale — and the re-encoded catalog still produces bit-identical
/// results. Uses a private raw-layout world: the server borrows its
/// catalog immutably, so the mutation goes through an owned `Catalog`
/// against a standalone `PlanCache` (the same cache type every server
/// installs).
#[test]
fn reencoding_a_column_bumps_the_epoch_and_invalidates_plans() {
    use monet::props::Enc;
    // Loader encoding off: `reencode_tail` below performs a real change.
    let mut w = monet::enc::with_enc(false, || bench::World::build(0.002));
    let q = q13_moa(&w.params);
    let oracle = {
        let ctx = monet::ctx::ExecCtx::new();
        tpcd_queries::run_moa_rows(&w.cat, &ctx, &q).unwrap()
    };
    let cache = moa::plancache::PlanCache::with_capacity(8);
    cache.translate(&w.cat, &q, OptLevel::Full).unwrap();
    cache.translate(&w.cat, &q, OptLevel::Full).unwrap();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 1));
    let clerk = w.cat.db().get("Order_clerk").unwrap();
    assert_eq!(clerk.tail().encoding(), Enc::None, "raw-layout world expected");
    let epoch = w.cat.db().epoch();
    assert!(
        w.cat.db_mut().reencode_tail("Order_clerk", false).unwrap(),
        "dict encoding must pay off on the clerk column"
    );
    assert!(w.cat.db().epoch() > epoch, "re-encode must bump the epoch");
    assert_eq!(w.cat.db().get("Order_clerk").unwrap().tail().encoding(), Enc::Dict);
    // Same shape, new epoch: a fresh translate, never a stale hit.
    cache.translate(&w.cat, &q, OptLevel::Full).unwrap();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 2), "post-re-encode lookup must miss");
    // A no-op re-encode (dbl tails never encode) must not bump the epoch.
    let epoch = w.cat.db().epoch();
    assert!(!w.cat.db_mut().reencode_tail("Order_totalprice", false).unwrap());
    assert_eq!(w.cat.db().epoch(), epoch, "no-op re-encode must keep the epoch");
    // And the encoded catalog computes the bit-identical result.
    let ctx = monet::ctx::ExecCtx::new();
    assert_eq!(tpcd_queries::run_moa_rows(&w.cat, &ctx, &q).unwrap(), oracle);
}

/// A panicking statement releases its admission permit (the gate has a
/// single slot here — a leak would deadlock) and leaves the shared worker
/// pool fully usable, including for parallel execution.
#[test]
fn panicking_statement_does_not_wedge_the_service() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(1, 8));
    let session = server.session();
    let oracle = session.execute_expr(&q13_moa(&w.params)).unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.scoped::<()>(|| panic!("client bug"))
    }));
    assert!(r.is_err());
    // The single admission slot is free again and parallel execution on
    // the shared pool still produces the bit-identical result.
    let got = par::with_threads(4, || server.session().execute_expr(&q13_moa(&w.params)).unwrap());
    assert_eq!(got, oracle);
}

/// An *erroring* (not panicking) statement must release its admission
/// permit just like the unwind path: the gate has a single slot, so a leak
/// on the `Err` return path would deadlock every later statement. The
/// failure is counted, the session stays usable, and a retry is
/// bit-identical.
#[test]
fn erroring_statement_releases_its_permit_and_keeps_fifo_order() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(1, 8));
    let session = server.session();
    let oracle = session.execute_expr(&q13_moa(&w.params)).unwrap();
    // A real governed failure: the next probe in this session's context
    // fires an injected fault.
    session.ctx().gov.arm_fault("*", 1);
    let err = session.execute_expr(&q13_moa(&w.params)).unwrap_err();
    assert!(
        matches!(err, MoaError::Kernel(MonetError::Injected { .. })),
        "expected the injected fault, got {err}"
    );
    assert_eq!(server.stats().failed, 1);
    // The single slot is free again (this would hang on a permit leak) and
    // FIFO admission still serves a burst of waiters to completion.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (server, oracle) = (&server, &oracle);
            s.spawn(move || {
                let got = server.session().execute_expr(&q13_moa(&w.params)).unwrap();
                assert_eq!(&got, oracle);
            });
        }
    });
    assert_eq!(session.execute_expr(&q13_moa(&w.params)).unwrap(), oracle);
}

/// Per-statement deadlines: a server configured with a microscopic
/// deadline aborts each statement with `DeadlineExceeded` at a governor
/// probe, cleanly and repeatedly, while a deadline-free server on the same
/// catalog is unaffected.
#[test]
fn per_statement_deadline_aborts_cleanly() {
    let w = bench::world();
    let strict = Server::with_config(
        &w.cat,
        ServerConfig { deadline: Some(Duration::from_micros(1)), ..cfg(2, 8) },
    );
    let session = strict.session();
    for _ in 0..2 {
        let err = session.execute_expr(&q13_moa(&w.params)).unwrap_err();
        assert!(
            matches!(err, MoaError::Kernel(MonetError::DeadlineExceeded { .. })),
            "expected a deadline abort, got {err}"
        );
    }
    assert_eq!(strict.stats().failed, 2);
    // Same catalog, no deadline: untouched.
    let lax = Server::with_config(&w.cat, cfg(2, 8));
    lax.session().execute_expr(&q13_moa(&w.params)).unwrap();
}

/// Load shedding: with a single slot held and a tiny admission timeout, a
/// second statement is shed with `AdmissionTimeout` without ever being
/// admitted — and the gate serves later statements normally.
#[test]
fn admission_timeout_sheds_instead_of_queueing_forever() {
    let w = bench::world();
    let server = Server::with_config(
        &w.cat,
        ServerConfig { admit_timeout: Some(Duration::from_millis(20)), ..cfg(1, 8) },
    );
    let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || {
            let session = server.session();
            session
                .scoped(|| {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Ok(())
                })
                .unwrap();
        });
        started_rx.recv().unwrap();
        // The slot is held: this statement must be shed, not queued.
        let err = server.session().execute_expr(&q13_moa(&w.params)).unwrap_err();
        assert!(
            matches!(err, MoaError::Kernel(MonetError::AdmissionTimeout { .. })),
            "expected load shedding, got {err}"
        );
        release_tx.send(()).unwrap();
    });
    let stats = server.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.executed, 1, "a shed statement is never admitted");
    // The abandoned ticket does not wedge the gate.
    server.session().execute_expr(&q13_moa(&w.params)).unwrap();
}

/// Cooperative cancellation through the session handle: the cancelled
/// session's statement aborts with `Cancelled`, concurrent sessions are
/// unaffected, and after `clear` the session produces the bit-identical
/// result.
#[test]
fn cancelled_session_aborts_without_disturbing_others() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 8));
    let victim = server.session();
    let bystander = server.session();
    let oracle = bystander.execute_expr(&q13_moa(&w.params)).unwrap();
    let handle = victim.cancel_handle();
    handle.cancel();
    let err = victim.execute_expr(&q13_moa(&w.params)).unwrap_err();
    assert!(
        matches!(err, MoaError::Kernel(MonetError::Cancelled)),
        "expected cancellation, got {err}"
    );
    // The bystander's session shares the server, gate and plan cache but
    // not the governor: it keeps executing normally.
    assert_eq!(bystander.execute_expr(&q13_moa(&w.params)).unwrap(), oracle);
    handle.clear();
    assert_eq!(victim.execute_expr(&q13_moa(&w.params)).unwrap(), oracle);
}
