//! End-to-end tests of the query service: concurrent prepared-statement
//! sessions over one shared `Db` must be bit-identical to single-shot
//! uncached execution, the plan cache must count hits/misses/evictions
//! faithfully, scoped config overrides must never be served a plan cached
//! under a different configuration, and a panicking statement must not
//! wedge the admission gate or the shared worker pool.

use flatalg_server::{Server, ServerConfig};
use monet::mil::opt::{self, with_opt_level, OptLevel};
use monet::par;
use tpcd_queries::q11_15::q13_moa;
use tpcd_queries::{all_queries, QueryResult};

fn cfg(admit: usize, cache: usize) -> ServerConfig {
    ServerConfig { max_concurrent: admit, plan_cache: Some(cache) }
}

/// N sessions running the mixed Q1–Q15 workload concurrently (rotated
/// start points, shared plan cache) must reproduce the single-shot
/// uncached oracles bit-for-bit — at one worker thread and at four.
#[test]
fn concurrent_sessions_match_single_shot_oracles() {
    let w = bench::world();
    let queries = all_queries();
    // Single-shot oracles: no server, no cache, serial execution.
    let oracles: Vec<QueryResult> = par::with_threads(1, || {
        let ctx = monet::ctx::ExecCtx::new();
        queries.iter().map(|q| (q.run_moa)(&w.cat, &ctx, &w.params).unwrap()).collect()
    });
    for threads in [1usize, 4] {
        let server = Server::with_config(&w.cat, cfg(3, 64));
        let drivers = 3usize;
        std::thread::scope(|s| {
            for d in 0..drivers {
                let (server, queries, oracles) = (&server, &queries, &oracles);
                s.spawn(move || {
                    // Thread configuration is per client thread.
                    par::with_threads(threads, || {
                        let session = server.session();
                        for i in 0..queries.len() {
                            let i = (i + d * 5) % queries.len();
                            let got = session.run_query(&queries[i], &w.params).unwrap();
                            assert_eq!(
                                got, oracles[i],
                                "query {} diverged at {threads} threads",
                                queries[i].id
                            );
                        }
                    });
                });
            }
        });
        let cache = server.stats().cache.unwrap();
        assert_eq!(cache.bypasses, 0, "every workload plan must be cacheable");
        assert!(cache.hits > 0, "concurrent drivers must share plans");
    }
}

/// Prepared statements: the first execution misses and pays translation,
/// repeats hit, and a hit performs zero translate/optimize work. Fresh
/// parameter values re-bind the cached plan and still match the uncached
/// oracle.
#[test]
fn prepared_statements_hit_rebind_and_skip_the_optimizer() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 16));
    let session = server.session();
    let stmt = session.prepare(q13_moa(&w.params)).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 1));
    let r1 = session.execute(&stmt).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (1, 1));
    // A cache hit runs no optimizer passes at all.
    opt::reset_cumulative();
    let r2 = session.execute(&stmt).unwrap();
    assert_eq!(opt::cumulative(), (0, 0), "hits must skip translate+optimize");
    assert_eq!(r1, r2);
    // Re-bind: same shape, different clerk. Still a hit, still correct.
    let mut p2 = w.params.clone();
    p2.q13_clerk = tpcd::text::clerk_name(1);
    let rebound = session.execute_expr(&q13_moa(&p2)).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (3, 1));
    let oracle = {
        let ctx = monet::ctx::ExecCtx::new();
        tpcd_queries::run_moa_rows(&w.cat, &ctx, &q13_moa(&p2)).unwrap()
    };
    assert_eq!(rebound, oracle, "re-bound plan diverged from uncached oracle");
}

/// A second pass over the full mixed workload translates nothing: every
/// plan (including the multi-statement drivers' phases) is served from
/// the cache with zero optimizer work.
#[test]
fn second_round_of_the_full_workload_is_all_cache_hits() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 64));
    let session = server.session();
    let queries = all_queries();
    for q in &queries {
        session.run_query(q, &w.params).unwrap();
    }
    let s1 = server.stats().cache.unwrap();
    assert_eq!(s1.bypasses, 0, "every workload plan must be cacheable");
    opt::reset_cumulative();
    for q in &queries {
        session.run_query(q, &w.params).unwrap();
    }
    assert_eq!(opt::cumulative(), (0, 0), "round 2 must run zero translate/optimize");
    let s2 = server.stats().cache.unwrap();
    assert_eq!(s2.misses, s1.misses, "round 2 must not translate");
    // Round 2 repeats round 1's translate calls exactly, all as hits.
    assert_eq!(s2.hits - s1.hits, s1.misses + s1.hits);
}

/// The LRU bound is enforced: with capacity 2, a third shape evicts and
/// the evicted shape misses again on return.
#[test]
fn small_cache_evicts_least_recently_used_plans() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 2));
    let session = server.session();
    let a = q13_moa(&w.params);
    let b = tpcd_queries::q11_15::q15_moa(&w.params);
    let c = tpcd_queries::q01_05::q4_moa(&w.params);
    session.execute_expr(&a).unwrap();
    session.execute_expr(&b).unwrap();
    session.execute_expr(&c).unwrap(); // evicts a
    let s = server.stats().cache.unwrap();
    assert_eq!(s.evictions, 1);
    assert_eq!(s.len, 2);
    session.execute_expr(&a).unwrap(); // miss again
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 4));
}

/// Satellite 3 regression: a scoped `OptLevel` or thread-config override
/// must never be served a plan cached under a different effective config —
/// and returning to the original config must still hit the original plans.
#[test]
fn scoped_config_overrides_never_reuse_wrong_plans() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(2, 16));
    let session = server.session();
    let q = q13_moa(&w.params);
    // Pin both levels explicitly so the test holds under any ambient
    // config (CI also runs the whole suite with FLATALG_OPT=0).
    let full = with_opt_level(OptLevel::Full, || session.execute_expr(&q)).unwrap();
    let off = with_opt_level(OptLevel::Off, || session.execute_expr(&q)).unwrap();
    assert_eq!(full, off, "optimizer must preserve results");
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 2), "OptLevel flip must key a distinct plan");
    let t3 = par::with_threads(3, || with_opt_level(OptLevel::Full, || session.execute_expr(&q)))
        .unwrap();
    assert_eq!(full, t3);
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (0, 3), "thread-config flip must key a distinct plan");
    // Back at the original configs, both cached plans hit.
    with_opt_level(OptLevel::Full, || session.execute_expr(&q)).unwrap();
    with_opt_level(OptLevel::Off, || session.execute_expr(&q)).unwrap();
    let s = server.stats().cache.unwrap();
    assert_eq!((s.hits, s.misses), (2, 3));
}

/// A panicking statement releases its admission permit (the gate has a
/// single slot here — a leak would deadlock) and leaves the shared worker
/// pool fully usable, including for parallel execution.
#[test]
fn panicking_statement_does_not_wedge_the_service() {
    let w = bench::world();
    let server = Server::with_config(&w.cat, cfg(1, 8));
    let session = server.session();
    let oracle = session.execute_expr(&q13_moa(&w.params)).unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.scoped(|| -> () { panic!("client bug") })
    }));
    assert!(r.is_err());
    // The single admission slot is free again and parallel execution on
    // the shared pool still produces the bit-identical result.
    let got = par::with_threads(4, || server.session().execute_expr(&q13_moa(&w.params)).unwrap());
    assert_eq!(got, oracle);
}
