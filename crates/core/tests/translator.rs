//! Translator correctness: for every MOA operation, the translated MIL
//! program plus result structure function must agree with the reference
//! evaluator — the Figure 6 commutativity, checked operation by operation
//! on the mini fixture.

use moa::prelude::*;
use moa::testkit::{assert_commutes, mini_catalog};
use monet::atom::AtomValue;
use monet::ctx::ExecCtx;
use monet::ops::{AggFunc, ScalarFunc};

#[test]
fn extent() {
    let cat = mini_catalog();
    assert_commutes(&cat, &SetExpr::extent("Item"));
    assert_commutes(&cat, &SetExpr::extent("Supplier"));
}

#[test]
fn select_point_on_attribute() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").select(eq(attr("returnflag"), lit_c('R')));
    assert_commutes(&cat, &q);
}

#[test]
fn select_range() {
    let cat = mini_catalog();
    let q =
        SetExpr::extent("Item").select(cmp(ScalarFunc::Ge, attr("extendedprice"), lit_d(200.0)));
    assert_commutes(&cat, &q);
    let q2 =
        SetExpr::extent("Item").select(cmp(ScalarFunc::Lt, attr("extendedprice"), lit_d(200.0)));
    assert_commutes(&cat, &q2);
}

#[test]
fn select_through_navigation() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").select(eq(attr("order.clerk"), lit_s("c2")));
    assert_commutes(&cat, &q);
}

#[test]
fn select_conjunction_chains_semijoins() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item")
        .select(and(eq(attr("order.clerk"), lit_s("c1")), eq(attr("returnflag"), lit_c('R'))));
    assert_commutes(&cat, &q);
    // The raw emission shows the Figure-10 shape: select on the clerk
    // BAT, join back through Item_order, then a semijoin before the flag
    // select.
    let t = translate_with(&cat, &q, OptLevel::Off).unwrap();
    let text = t.prog.to_string();
    assert!(text.contains("select(Order_clerk"), "got:\n{text}");
    assert!(text.contains("join(Item_order"), "got:\n{text}");
    assert!(text.contains("semijoin(Item_returnflag"), "got:\n{text}");
    // The plan optimizer pushes the flag select below that semijoin (the
    // attribute BAT carries no datavector in the mini fixture, so the
    // rewrite is order-safe).
    let t = translate_with(&cat, &q, OptLevel::Full).unwrap();
    let text = t.prog.to_string();
    assert!(text.contains("select(Item_returnflag"), "got:\n{text}");
    assert!(!text.contains("semijoin(Item_returnflag"), "got:\n{text}");
}

#[test]
fn select_disjunction_and_negation() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").select(or(
        eq(attr("returnflag"), lit_c('N')),
        cmp(ScalarFunc::Gt, attr("extendedprice"), lit_d(350.0)),
    ));
    assert_commutes(&cat, &q);
    let q2 = SetExpr::extent("Item").select(not(eq(attr("returnflag"), lit_c('R'))));
    assert_commutes(&cat, &q2);
}

#[test]
fn select_general_expression_predicate() {
    let cat = mini_catalog();
    // price * (1 - discount) > 250 — no pushdown possible, multiplexed.
    let q = SetExpr::extent("Item").select(cmp(
        ScalarFunc::Gt,
        bin(
            ScalarFunc::Mul,
            attr("extendedprice"),
            bin(ScalarFunc::Sub, lit_d(1.0), attr("discount")),
        ),
        lit_d(250.0),
    ));
    assert_commutes(&cat, &q);
}

#[test]
fn project_scalars_refs_and_arith() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").project(vec![
        ProjItem::new("price", attr("extendedprice")),
        ProjItem::new("ord", attr("order")),
        ProjItem::new("clerk", attr("order.clerk")),
        ProjItem::new(
            "revenue",
            bin(
                ScalarFunc::Mul,
                attr("extendedprice"),
                bin(ScalarFunc::Sub, lit_d(1.0), attr("discount")),
            ),
        ),
    ]);
    assert_commutes(&cat, &q);
}

#[test]
fn project_year_multiplex() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item")
        .project(vec![ProjItem::new("year", un(ScalarFunc::Year, attr("order.orderdate")))]);
    assert_commutes(&cat, &q);
}

#[test]
fn nest_single_key() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item")
        .project(vec![
            ProjItem::new("clerk", attr("order.clerk")),
            ProjItem::new("price", attr("extendedprice")),
        ])
        .nest(vec![ProjItem::new("clerk", attr("clerk"))]);
    assert_commutes(&cat, &q);
}

#[test]
fn nest_multi_key() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item")
        .project(vec![
            ProjItem::new("clerk", attr("order.clerk")),
            ProjItem::new("flag", attr("returnflag")),
            ProjItem::new("price", attr("extendedprice")),
        ])
        .nest(vec![ProjItem::new("clerk", attr("clerk")), ProjItem::new("flag", attr("flag"))]);
    assert_commutes(&cat, &q);
}

#[test]
fn nest_then_aggregate() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item")
        .project(vec![
            ProjItem::new("clerk", attr("order.clerk")),
            ProjItem::new("price", attr("extendedprice")),
        ])
        .nest(vec![ProjItem::new("clerk", attr("clerk"))])
        .project(vec![
            ProjItem::new("clerk", attr("clerk")),
            ProjItem::new("total", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("price"))),
            ProjItem::new("n", agg(AggFunc::Count, sattr(NEST_REST))),
            ProjItem::new("hi", agg_over(AggFunc::Max, sattr(NEST_REST), attr("price"))),
            ProjItem::new("lo", agg_over(AggFunc::Min, sattr(NEST_REST), attr("price"))),
            ProjItem::new("avg", agg_over(AggFunc::Avg, sattr(NEST_REST), attr("price"))),
        ]);
    assert_commutes(&cat, &q);
}

/// The paper's Q13 on the mini database, end to end.
#[test]
fn q13_shape() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item")
        .select(and(eq(attr("order.clerk"), lit_s("c1")), eq(attr("returnflag"), lit_c('R'))))
        .project(vec![
            ProjItem::new("date", un(ScalarFunc::Year, attr("order.orderdate"))),
            ProjItem::new(
                "revenue",
                bin(
                    ScalarFunc::Mul,
                    attr("extendedprice"),
                    bin(ScalarFunc::Sub, lit_d(1.0), attr("discount")),
                ),
            ),
        ])
        .nest(vec![ProjItem::new("date", attr("date"))])
        .project(vec![
            ProjItem::new("date", attr("date")),
            ProjItem::new("loss", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
        ]);
    assert_commutes(&cat, &q);
    // Check the actual numbers: clerk c1 has items 10 ('R', 100, 0.1) and
    // 11 ('N'), so the loss in 1995 is 90.
    let t = translate(&cat, &q).unwrap();
    let (set, _) = t.run(&ExecCtx::new(), cat.db()).unwrap();
    let vals = set.materialize().unwrap();
    assert_eq!(vals.len(), 1);
    assert!(vals[0].approx_eq(
        &Value::Tuple(vec![Value::Atom(AtomValue::Int(1995)), Value::Atom(AtomValue::Dbl(90.0)),]),
        1e-9,
    ));
}

/// §4.3.2: selection over a nested set, executed flat.
#[test]
fn nested_set_selection_out_of_stock() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Supplier").project(vec![
        ProjItem::new("name", attr("name")),
        ProjItem::new(
            "out_of_stock",
            Expr::SetV(SetValued::SelectIn(
                Box::new(sattr("supplies")),
                Box::new(eq(attr("available"), lit_i(0))),
            )),
        ),
    ]);
    assert_commutes(&cat, &q);
    // S20 has one out-of-stock supply; S21 has none (empty set).
    let t = translate(&cat, &q).unwrap();
    let (set, _) = t.run(&ExecCtx::new(), cat.db()).unwrap();
    let vals = set.materialize().unwrap();
    assert_eq!(vals.len(), 2);
}

#[test]
fn nested_set_projection_and_aggregate() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Supplier").project(vec![
        ProjItem::new("name", attr("name")),
        ProjItem::new("total_cost", agg_over(AggFunc::Sum, sattr("supplies"), attr("cost"))),
    ]);
    // Caveat (documented in translate.rs): suppliers with no supplies get
    // no aggregate BUN, so the tuple is not representable for them. Select
    // the suppliers that do supply first.
    let q = match q {
        SetExpr::Project { input, items } => SetExpr::Project {
            input: Box::new(input.select(cmp(
                ScalarFunc::Gt,
                agg(AggFunc::Count, sattr("supplies")),
                lit(AtomValue::Lng(0)),
            ))),
            items,
        },
        _ => unreachable!(),
    };
    assert_commutes(&cat, &q);
}

#[test]
fn union_diff_intersect() {
    let cat = mini_catalog();
    let flagged = SetExpr::extent("Item").select(eq(attr("returnflag"), lit_c('R')));
    let pricey =
        SetExpr::extent("Item").select(cmp(ScalarFunc::Ge, attr("extendedprice"), lit_d(300.0)));
    assert_commutes(&cat, &flagged.clone().union(pricey.clone()));
    assert_commutes(&cat, &flagged.clone().diff(pricey.clone()));
    assert_commutes(&cat, &flagged.clone().intersect(pricey.clone()));
    // difference/intersection with self
    assert_commutes(&cat, &flagged.clone().diff(flagged.clone()));
    assert_commutes(&cat, &flagged.clone().intersect(flagged));
}

#[test]
fn top_k() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").top(attr("extendedprice"), 2, true);
    assert_commutes(&cat, &q);
    let q2 = SetExpr::extent("Item").top(attr("extendedprice"), 2, false);
    assert_commutes(&cat, &q2);
    // top more than there are
    let q3 = SetExpr::extent("Item").top(attr("extendedprice"), 99, true);
    assert_commutes(&cat, &q3);
}

#[test]
fn join_eq() {
    let cat = mini_catalog();
    // Join items with orders on the order reference = order identity is
    // implicit; join on clerk strings instead to exercise value joins.
    let q = SetExpr::extent("Item")
        .project(vec![
            ProjItem::new("clerk", attr("order.clerk")),
            ProjItem::new("price", attr("extendedprice")),
        ])
        .join_eq(
            SetExpr::extent("Order").project(vec![
                ProjItem::new("clerk", attr("clerk")),
                ProjItem::new("year", un(ScalarFunc::Year, attr("orderdate"))),
            ]),
            attr("clerk"),
            attr("clerk"),
            "i",
            "o",
        );
    assert_commutes(&cat, &q);
}

#[test]
fn semijoin_eq() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Order").semijoin_eq(
        SetExpr::extent("Item").select(eq(attr("returnflag"), lit_c('N'))),
        attr("clerk"),
        attr("order.clerk"),
    );
    assert_commutes(&cat, &q);
}

#[test]
fn unnest_supplies() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Supplier").unnest(sattr("supplies"), "sup", "sp");
    assert_commutes(&cat, &q);
    // Navigate into both sides after unnesting.
    let q2 = SetExpr::extent("Supplier").unnest(sattr("supplies"), "sup", "sp").project(vec![
        ProjItem::new("sname", attr("sup.name")),
        ProjItem::new("pname", attr("sp.part.name")),
        ProjItem::new("cost", attr("sp.cost")),
    ]);
    assert_commutes(&cat, &q2);
}

#[test]
fn empty_results_are_fine() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").select(eq(attr("returnflag"), lit_c('X')));
    assert_commutes(&cat, &q);
    let q2 = SetExpr::extent("Item")
        .select(eq(attr("returnflag"), lit_c('X')))
        .project(vec![ProjItem::new("p", attr("extendedprice"))]);
    assert_commutes(&cat, &q2);
}

#[test]
fn rendered_program_is_printable() {
    let cat = mini_catalog();
    let q = SetExpr::extent("Item").select(eq(attr("order.clerk"), lit_s("c1")));
    let t = translate(&cat, &q).unwrap();
    let text = t.prog.to_string();
    assert!(text.lines().count() >= 3);
    assert!(text.contains(":="));
}
