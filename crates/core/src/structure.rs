//! Structure functions: the formal physical-to-logical mapping (§3.3).
//!
//! The combination of BATs storing values and a *structure function* on
//! those BATs forms the representation of a structured value. Because all
//! structure functions take identified value sets (IVS) to identified value
//! sets, they compose to arbitrary nesting, and any MOA type is
//! representable as a set of BATs plus a composition of structure
//! functions.
//!
//! **Orientation note.** The paper writes `SET(A, S)` with `A` serving as
//! "an index into value set S". We fix the orientation of the index BAT as
//! `[element_id, owner_id]` — heads are element ids — because that is the
//! orientation the selection transformation rule needs:
//! `select[f](SET(A,X)) → SET(semijoin(A, T(f(X))), X)` matches the
//! qualifying element ids of `T(f(X))` against `A`'s *head*. A top-level
//! set (class extent, query result) is a [`StructuredSet`]: its elements
//! are the index heads and the owner column is immaterial.

use std::collections::HashMap;

use monet::atom::Oid;
use monet::bat::Bat;

use crate::error::{MoaError, Result};
use crate::value::{Ivs, Value};

/// A composition of structure functions over concrete BATs.
#[derive(Debug, Clone)]
pub enum Structure {
    /// A head-unique `BAT[oid, τ]` representing an IVS of base values.
    AtomBat(Bat),
    /// A head-unique `BAT[oid, oid]` whose tail values refer to database
    /// objects of the named class: `{<id_i, X_i> | oid_i = oid(X_i)}`.
    RefBat { bat: Bat, class: String },
    /// `TUPLE(S_1, …, S_n)` over mutually synchronous IVSes:
    /// `{<id_i, <v_i1, …, v_in>>}`. Field names are carried for attribute
    /// access; the formal semantics ignores them.
    Tuple(Vec<(String, Structure)>),
    /// `OBJECT(…)` — identical to `TUPLE`, but the identifiers are the
    /// object identifiers of the named class.
    Object { class: String, fields: Vec<(String, Structure)> },
    /// `SET(A, S)`: `A = [element_id, owner_id]`, `S` an IVS keyed by
    /// element id. Defines `{<owner, {S[e] | <e, owner> ∈ A}>}`.
    Set { index: Bat, inner: Box<Structure> },
    /// `SET(A)`: the optimization for simple element values — `A` holds
    /// `[owner_id, value]` directly, saving the indirection.
    SetSimple { bat: Bat },
}

impl Structure {
    /// Pretty-print the composition, e.g.
    /// `SET(Supplier, OBJECT(Supplier_name, …))` (Figure 3). BAT arguments
    /// print as their signature since BATs carry no names here.
    pub fn render(&self) -> String {
        match self {
            Structure::AtomBat(b) => format!("bat[oid,{}]", b.tail().atom_type()),
            Structure::RefBat { class, .. } => format!("ref[{class}]"),
            Structure::Tuple(fields) => {
                let inner: Vec<String> =
                    fields.iter().map(|(n, s)| format!("{n}:{}", s.render())).collect();
                format!("TUPLE({})", inner.join(", "))
            }
            Structure::Object { class, fields } => {
                let inner: Vec<String> =
                    fields.iter().map(|(n, s)| format!("{n}:{}", s.render())).collect();
                format!("OBJECT[{class}]({})", inner.join(", "))
            }
            Structure::Set { inner, .. } => format!("SET(index, {})", inner.render()),
            Structure::SetSimple { bat } => {
                format!("SET(bat[oid,{}])", bat.tail().atom_type())
            }
        }
    }

    /// Materialize into a map `id → value` (the IVS as a lookup table).
    ///
    /// Checks the representation invariants of Section 3.3: IVS BATs must
    /// be head-unique, and the operands of `TUPLE`/`OBJECT` must be
    /// synchronous — with the documented exception that set-valued fields
    /// default to the empty set for owners without members (vertical
    /// fragmentation stores "0 or more BUNs per set", so absence encodes
    /// the empty set).
    pub fn materialize_map(&self) -> Result<HashMap<Oid, Value>> {
        match self {
            Structure::AtomBat(bat) => {
                let mut map = HashMap::with_capacity(bat.len());
                for i in 0..bat.len() {
                    let id = bat.head().oid_at(i);
                    if map.insert(id, Value::Atom(bat.tail().get(i))).is_some() {
                        return Err(MoaError::Structure(format!(
                            "IVS BAT is not head-unique: duplicate id {id}"
                        )));
                    }
                }
                Ok(map)
            }
            Structure::RefBat { bat, .. } => {
                let mut map = HashMap::with_capacity(bat.len());
                for i in 0..bat.len() {
                    let id = bat.head().oid_at(i);
                    if map.insert(id, Value::Ref(bat.tail().oid_at(i))).is_some() {
                        return Err(MoaError::Structure(format!(
                            "IVS BAT is not head-unique: duplicate id {id}"
                        )));
                    }
                }
                Ok(map)
            }
            Structure::Tuple(fields) | Structure::Object { fields, .. } => {
                let mut field_maps: Vec<(bool, HashMap<Oid, Value>)> =
                    Vec::with_capacity(fields.len());
                for (_, s) in fields {
                    let is_set = matches!(s, Structure::Set { .. } | Structure::SetSimple { .. });
                    field_maps.push((is_set, s.materialize_map()?));
                }
                // Ids come from the non-set fields, which must be
                // synchronous; set fields default to {} when absent.
                let Some((_, base)) = field_maps.iter().find(|(is_set, _)| !is_set) else {
                    return Err(MoaError::Structure(
                        "TUPLE of only set-valued fields is not identifiable".into(),
                    ));
                };
                let ids: Vec<Oid> = base.keys().copied().collect();
                for (is_set, m) in &field_maps {
                    if !is_set && m.len() != ids.len() {
                        return Err(MoaError::Structure(format!(
                            "TUPLE operands are not synchronous: {} vs {} ids",
                            m.len(),
                            ids.len()
                        )));
                    }
                }
                let mut out = HashMap::with_capacity(ids.len());
                for id in ids {
                    let mut vals = Vec::with_capacity(fields.len());
                    for (is_set, m) in &field_maps {
                        match m.get(&id) {
                            Some(v) => vals.push(v.clone()),
                            None if *is_set => vals.push(Value::Set(Vec::new())),
                            None => {
                                return Err(MoaError::Structure(format!(
                                    "TUPLE operands are not synchronous: id {id} missing"
                                )))
                            }
                        }
                    }
                    out.insert(id, Value::Tuple(vals));
                }
                Ok(out)
            }
            Structure::Set { index, inner } => {
                let members = inner.materialize_map()?;
                let mut out: HashMap<Oid, Value> = HashMap::new();
                for i in 0..index.len() {
                    let elem = index.head().oid_at(i);
                    let owner = index.tail().oid_at(i);
                    let v = members.get(&elem).ok_or_else(|| {
                        MoaError::Structure(format!(
                            "set index references id {elem} missing from the inner IVS"
                        ))
                    })?;
                    match out.entry(owner).or_insert_with(|| Value::Set(Vec::new())) {
                        Value::Set(ms) => ms.push(v.clone()),
                        _ => unreachable!(),
                    }
                }
                Ok(out)
            }
            Structure::SetSimple { bat } => {
                let mut out: HashMap<Oid, Value> = HashMap::new();
                for i in 0..bat.len() {
                    let owner = bat.head().oid_at(i);
                    match out.entry(owner).or_insert_with(|| Value::Set(Vec::new())) {
                        Value::Set(ms) => ms.push(Value::Atom(bat.tail().get(i))),
                        _ => unreachable!(),
                    }
                }
                Ok(out)
            }
        }
    }

    /// Materialize as an IVS in id order (test convenience).
    pub fn materialize_ivs(&self) -> Result<Ivs> {
        let map = self.materialize_map()?;
        let mut out: Ivs = map.into_iter().collect();
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }
}

/// A top-level flattened set: the representation of a class extent or of a
/// query result — "the query result BATs, which in turn are operands of
/// another structure expression that represents the result" (Figure 6).
#[derive(Debug, Clone)]
pub struct StructuredSet {
    /// `[element_id, _]`: the elements are the heads; the tail is only
    /// meaningful for nested sets.
    pub index: Bat,
    /// Element values, keyed by element id.
    pub inner: Structure,
}

impl StructuredSet {
    pub fn new(index: Bat, inner: Structure) -> StructuredSet {
        StructuredSet { index, inner }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Materialize the set's members (in index order).
    pub fn materialize(&self) -> Result<Vec<Value>> {
        let map = self.inner.materialize_map()?;
        let mut out = Vec::with_capacity(self.index.len());
        for i in 0..self.index.len() {
            let id = self.index.head().oid_at(i);
            let v = map.get(&id).ok_or_else(|| {
                MoaError::Structure(format!(
                    "set index references id {id} missing from the inner IVS"
                ))
            })?;
            out.push(v.clone());
        }
        Ok(out)
    }

    /// Materialize as `(element_id, value)` pairs.
    pub fn materialize_ivs(&self) -> Result<Ivs> {
        let map = self.inner.materialize_map()?;
        let mut out = Vec::with_capacity(self.index.len());
        for i in 0..self.index.len() {
            let id = self.index.head().oid_at(i);
            let v = map
                .get(&id)
                .ok_or_else(|| MoaError::Structure(format!("missing id {id} in inner IVS")))?;
            out.push((id, v.clone()));
        }
        Ok(out)
    }

    /// The whole set as a single [`Value::Set`].
    pub fn as_value(&self) -> Result<Value> {
        Ok(Value::Set(self.materialize()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monet::atom::AtomValue;
    use monet::column::Column;

    #[test]
    fn atom_bat_ivs() {
        let s = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![1, 2]),
            Column::from_strs(["a", "b"]),
        ));
        let ivs = s.materialize_ivs().unwrap();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0], (1, Value::Atom(AtomValue::str("a"))));
    }

    #[test]
    fn head_uniqueness_enforced() {
        let s = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![1, 1]),
            Column::from_ints(vec![5, 6]),
        ));
        assert!(s.materialize_map().is_err());
    }

    #[test]
    fn tuple_requires_synchronous() {
        let a = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![1, 2]),
            Column::from_ints(vec![10, 20]),
        ));
        let b_ok = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![2, 1]),
            Column::from_strs(["y", "x"]),
        ));
        let t = Structure::Tuple(vec![("n".into(), a.clone()), ("s".into(), b_ok)]);
        let map = t.materialize_map().unwrap();
        assert_eq!(
            map[&1],
            Value::Tuple(vec![Value::Atom(AtomValue::Int(10)), Value::Atom(AtomValue::str("x"))])
        );
        let b_bad =
            Structure::AtomBat(Bat::new(Column::from_oids(vec![3]), Column::from_strs(["z"])));
        let t_bad = Structure::Tuple(vec![("n".into(), a), ("s".into(), b_bad)]);
        assert!(t_bad.materialize_map().is_err());
    }

    #[test]
    fn figure3_supplier_shape() {
        // SET(Supplier, OBJECT(name, SET(supplies, TUPLE(part, cost)))).
        let name = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![1, 2]),
            Column::from_strs(["S1", "S2"]),
        ));
        let part = Structure::RefBat {
            bat: Bat::new(Column::from_oids(vec![100, 101, 102]), Column::from_oids(vec![7, 8, 9])),
            class: "Part".into(),
        };
        let cost = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![100, 101, 102]),
            Column::from_dbls(vec![1.0, 2.0, 3.0]),
        ));
        // supplies index: supplier 1 has supplies {100, 101}, supplier 2 {102}
        let index =
            Bat::new(Column::from_oids(vec![100, 101, 102]), Column::from_oids(vec![1, 1, 2]));
        let supplies = Structure::Set {
            index,
            inner: Box::new(Structure::Tuple(vec![("part".into(), part), ("cost".into(), cost)])),
        };
        let obj = Structure::Object {
            class: "Supplier".into(),
            fields: vec![("name".into(), name), ("supplies".into(), supplies)],
        };
        let extent = Bat::new(Column::from_oids(vec![1, 2]), Column::void(0, 2));
        let set = StructuredSet::new(extent, obj);
        assert!(set.render_contains("OBJECT"));
        let vals = set.materialize().unwrap();
        assert_eq!(vals.len(), 2);
        match &vals[0] {
            Value::Tuple(fs) => {
                assert_eq!(fs[0], Value::Atom(AtomValue::str("S1")));
                match &fs[1] {
                    Value::Set(ms) => assert_eq!(ms.len(), 2),
                    other => panic!("expected set, got {other}"),
                }
            }
            other => panic!("expected tuple, got {other}"),
        }
    }

    impl StructuredSet {
        fn render_contains(&self, s: &str) -> bool {
            self.inner.render().contains(s)
        }
    }

    #[test]
    fn empty_nested_sets_default() {
        // Supplier 2 has no supplies: the set field defaults to {}.
        let name = Structure::AtomBat(Bat::new(
            Column::from_oids(vec![1, 2]),
            Column::from_strs(["S1", "S2"]),
        ));
        let avail =
            Structure::AtomBat(Bat::new(Column::from_oids(vec![100]), Column::from_ints(vec![0])));
        let index = Bat::new(Column::from_oids(vec![100]), Column::from_oids(vec![1]));
        let supplies = Structure::Set { index, inner: Box::new(avail) };
        let obj = Structure::Object {
            class: "Supplier".into(),
            fields: vec![("name".into(), name), ("supplies".into(), supplies)],
        };
        let map = obj.materialize_map().unwrap();
        match &map[&2] {
            Value::Tuple(fs) => assert_eq!(fs[1], Value::Set(vec![])),
            other => panic!("expected tuple, got {other}"),
        }
    }

    #[test]
    fn set_simple() {
        let s = Structure::SetSimple {
            bat: Bat::new(Column::from_oids(vec![1, 1, 2]), Column::from_ints(vec![10, 11, 20])),
        };
        let map = s.materialize_map().unwrap();
        match &map[&1] {
            Value::Set(ms) => assert_eq!(ms.len(), 2),
            other => panic!("expected set, got {other}"),
        }
    }
}
