//! The MOA catalog: a schema bound to a Monet [`Db`] via the vertical
//! decomposition naming convention of Figure 3.
//!
//! * class extent:           `Class`                 — `[oid, void]`
//! * scalar/ref attribute:   `Class_attr`            — `[oid, τ]` / `[oid, oid]`
//! * set-valued attribute:   `Class_attr` (index)    — `[element_id, owner_oid]`
//! * set member field:       `Class_attr_field`      — `[element_id, τ]`
//!
//! The catalog resolves attribute paths to BATs and builds the structure
//! expression (Figure 3) of any class on demand.

use monet::atom::AtomType;
use monet::bat::Bat;
use monet::db::Db;

use crate::error::{MoaError, Result};
use crate::structure::{Structure, StructuredSet};
use crate::types::{MoaType, Schema};

/// Schema + BAT catalog.
pub struct Catalog {
    schema: Schema,
    db: Db,
}

impl Catalog {
    pub fn new(schema: Schema, db: Db) -> Catalog {
        Catalog { schema, db }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn db(&self) -> &Db {
        &self.db
    }

    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    /// Name of the extent BAT of a class.
    pub fn extent_name(class: &str) -> String {
        class.to_string()
    }

    /// Name of an attribute BAT.
    pub fn attr_name(class: &str, attr: &str) -> String {
        format!("{class}_{attr}")
    }

    /// Name of a set-member field BAT.
    pub fn member_name(class: &str, attr: &str, field: &str) -> String {
        format!("{class}_{attr}_{field}")
    }

    /// The extent BAT `[oid, void]` of a class.
    pub fn extent(&self, class: &str) -> Result<&Bat> {
        self.schema.class(class)?; // validate the class exists
        self.db
            .get(&Self::extent_name(class))
            .map_err(|_| MoaError::MissingBat(Self::extent_name(class)))
    }

    /// The BAT of a scalar or reference attribute.
    pub fn attr(&self, class: &str, attr: &str) -> Result<&Bat> {
        let def = self.schema.class(class)?;
        def.field(attr)
            .ok_or_else(|| MoaError::UnknownAttr { class: class.into(), attr: attr.into() })?;
        self.db
            .get(&Self::attr_name(class, attr))
            .map_err(|_| MoaError::MissingBat(Self::attr_name(class, attr)))
    }

    /// The index BAT `[element_id, owner_oid]` of a set-valued attribute.
    pub fn set_index(&self, class: &str, attr: &str) -> Result<&Bat> {
        self.attr(class, attr)
    }

    /// A member-field BAT of a set-of-tuples attribute.
    pub fn member_field(&self, class: &str, attr: &str, field: &str) -> Result<&Bat> {
        self.db
            .get(&Self::member_name(class, attr, field))
            .map_err(|_| MoaError::MissingBat(Self::member_name(class, attr, field)))
    }

    /// Build the structure expression of a whole class, as in Figure 3:
    /// `SET(Supplier, OBJECT(Supplier_name, …, SET(Supplier_supplies,
    /// TUPLE(Supplier_supplies_part, …))))`.
    pub fn class_structure(&self, class: &str) -> Result<StructuredSet> {
        let def = self.schema.class(class)?.clone();
        let mut fields = Vec::with_capacity(def.fields.len());
        for f in &def.fields {
            fields.push((f.name.clone(), self.field_structure(class, &f.name, &f.ty)?));
        }
        Ok(StructuredSet::new(
            self.extent(class)?.clone(),
            Structure::Object { class: class.to_string(), fields },
        ))
    }

    fn field_structure(&self, class: &str, attr: &str, ty: &MoaType) -> Result<Structure> {
        Ok(match ty {
            MoaType::Base(_) => Structure::AtomBat(self.attr(class, attr)?.clone()),
            MoaType::Object(target) => {
                Structure::RefBat { bat: self.attr(class, attr)?.clone(), class: target.clone() }
            }
            MoaType::Set(inner) => {
                let index = self.set_index(class, attr)?.clone();
                match &**inner {
                    MoaType::Base(AtomType::Void) => {
                        return Err(MoaError::Type("set of void is not a type".into()))
                    }
                    MoaType::Tuple(fields) => {
                        let mut members = Vec::with_capacity(fields.len());
                        for mf in fields {
                            let bat = self.member_field(class, attr, &mf.name)?.clone();
                            members.push((
                                mf.name.clone(),
                                match &mf.ty {
                                    MoaType::Object(c) => {
                                        Structure::RefBat { bat, class: c.clone() }
                                    }
                                    MoaType::Base(_) => Structure::AtomBat(bat),
                                    other => {
                                        return Err(MoaError::Type(format!(
                                            "unsupported member field type {other}"
                                        )))
                                    }
                                },
                            ));
                        }
                        Structure::Set { index, inner: Box::new(Structure::Tuple(members)) }
                    }
                    MoaType::Object(c) => Structure::Set {
                        index: index.clone(),
                        inner: Box::new(Structure::RefBat {
                            bat: self.member_field(class, attr, "ref")?.clone(),
                            class: c.clone(),
                        }),
                    },
                    MoaType::Base(_) => {
                        // SET(A) optimization: values live in the index BAT's
                        // sibling "<attr>_val" BAT keyed by element id.
                        Structure::Set {
                            index,
                            inner: Box::new(Structure::AtomBat(
                                self.member_field(class, attr, "val")?.clone(),
                            )),
                        }
                    }
                    MoaType::Set(_) => {
                        return Err(MoaError::Type(
                            "directly nested set-of-set attributes are not supported".into(),
                        ))
                    }
                }
            }
            MoaType::Tuple(_) => {
                return Err(MoaError::Type(
                    "top-level tuple attributes are stored flattened; declare the \
                     fields individually"
                        .into(),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClassDef, Field};
    use monet::column::Column;

    fn mini_catalog() -> Catalog {
        let mut schema = Schema::new();
        schema.add_class(ClassDef::new(
            "Nation",
            vec![Field::new("name", MoaType::Base(AtomType::Str))],
        ));
        schema.add_class(ClassDef::new(
            "Supplier",
            vec![
                Field::new("name", MoaType::Base(AtomType::Str)),
                Field::new("nation", MoaType::Object("Nation".into())),
                Field::new(
                    "supplies",
                    MoaType::set_of(MoaType::Tuple(vec![
                        Field::new("cost", MoaType::Base(AtomType::Dbl)),
                        Field::new("available", MoaType::Base(AtomType::Int)),
                    ])),
                ),
            ],
        ));
        let mut db = Db::new();
        db.register("Nation", Bat::new(Column::from_oids(vec![50]), Column::void(0, 1)));
        db.register(
            "Nation_name",
            Bat::new(Column::from_oids(vec![50]), Column::from_strs(["FRANCE"])),
        );
        db.register("Supplier", Bat::new(Column::from_oids(vec![1, 2]), Column::void(0, 2)));
        db.register(
            "Supplier_name",
            Bat::new(Column::from_oids(vec![1, 2]), Column::from_strs(["S1", "S2"])),
        );
        db.register(
            "Supplier_nation",
            Bat::new(Column::from_oids(vec![1, 2]), Column::from_oids(vec![50, 50])),
        );
        db.register(
            "Supplier_supplies",
            Bat::new(Column::from_oids(vec![100, 101]), Column::from_oids(vec![1, 1])),
        );
        db.register(
            "Supplier_supplies_cost",
            Bat::new(Column::from_oids(vec![100, 101]), Column::from_dbls(vec![1.5, 2.5])),
        );
        db.register(
            "Supplier_supplies_available",
            Bat::new(Column::from_oids(vec![100, 101]), Column::from_ints(vec![0, 7])),
        );
        Catalog::new(schema, db)
    }

    #[test]
    fn resolves_bats() {
        let cat = mini_catalog();
        assert_eq!(cat.extent("Supplier").unwrap().len(), 2);
        assert_eq!(cat.attr("Supplier", "name").unwrap().len(), 2);
        assert!(cat.attr("Supplier", "bogus").is_err());
        assert!(cat.extent("Bogus").is_err());
        assert_eq!(cat.member_field("Supplier", "supplies", "cost").unwrap().len(), 2);
    }

    #[test]
    fn figure3_structure_expression() {
        let cat = mini_catalog();
        let s = cat.class_structure("Supplier").unwrap();
        let rendered = s.inner.render();
        assert!(rendered.contains("OBJECT[Supplier]"));
        assert!(rendered.contains("SET(index, TUPLE(cost:"));
        let vals = s.materialize().unwrap();
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn missing_bat_reported() {
        let cat = mini_catalog();
        // Remove a BAT by constructing a catalog without it.
        let mut schema = Schema::new();
        schema.add_class(ClassDef::new(
            "Part",
            vec![Field::new("name", MoaType::Base(AtomType::Str))],
        ));
        let cat2 = Catalog::new(schema, Db::new());
        assert!(matches!(cat2.extent("Part"), Err(MoaError::MissingBat(_))));
        let _ = cat;
    }
}
