//! A bounded LRU cache of translated + optimized MIL plans, keyed by
//! query *shape* and the full effective execution configuration.
//!
//! Every `run_moa` entry point re-translates and re-optimizes its MOA
//! expression (~tens of µs per program). A query service executing the
//! same fifteen prepared statements thousands of times wants that cost
//! paid once. The cache closes the gap without touching any driver code:
//! [`with_plan_cache`] installs a cache on the current thread and
//! [`crate::translate::translate`] consults it transparently.
//!
//! **Shape, not text.** Two expressions share a cache entry exactly when
//! they differ only in the *values* of their [`Scalar::Param`] parameters
//! (`prm(id, v)`). Plain literals are part of the shape — a query with a
//! different hard-coded literal is a different plan. On a hit the cached
//! program is cloned and the new parameter values are spliced into the
//! recorded [`monet::mil::ParamLoc`] slots; no translation or optimizer
//! pass runs (the per-thread `opt::cumulative` counters stay flat).
//!
//! **Configuration in the key.** The key includes the effective
//! [`OptLevel`] and the full effective parallel configuration
//! ([`monet::par::config_key`]), so scoped overrides
//! (`with_opt_level`/`with_opt_config`/`with_par_config`) can never be
//! served a plan cached under a different configuration. It also includes
//! the catalog's process-unique id and mutation epoch
//! ([`monet::db::Db::id`]/[`epoch`](monet::db::Db::epoch)): any catalog
//! change silently invalidates every plan compiled against the old state.
//!
//! **Safety valves.** Expressions that bind the same parameter id to two
//! different values, and plans where translation folded a parameter into
//! a derived constant ([`Translated::cacheable`] = false), bypass the
//! cache entirely — counted, never cached wrong.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use monet::atom::AtomValue;
use monet::mil::opt::OptLevel;

use crate::algebra::{Expr, Pred, ProjItem, Scalar, SetExpr, SetValued};
use crate::catalog::Catalog;
use crate::error::Result;
use crate::translate::{translate_with, Translated};

// ---------------------------------------------------------------------------
// Ambient (thread-scoped) cache installation.
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: RefCell<Option<Arc<PlanCache>>> = const { RefCell::new(None) };
}

/// Run `f` with `cache` installed as this thread's plan cache: every
/// [`crate::translate::translate`] call inside `f` goes through it.
/// Restores the previous installation on exit — panic-safe — mirroring
/// the `with_opt_config`/`with_par_config` scoped-override contract.
pub fn with_plan_cache<R>(cache: Arc<PlanCache>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PlanCache>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            AMBIENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = AMBIENT.with(|c| c.replace(Some(cache)));
    let _restore = Restore(prev);
    f()
}

/// The plan cache installed on this thread, if any.
pub fn ambient_plan_cache() -> Option<Arc<PlanCache>> {
    AMBIENT.with(|c| c.borrow().clone())
}

// ---------------------------------------------------------------------------
// The environment knob.
// ---------------------------------------------------------------------------

/// Default capacity when `FLATALG_PLAN_CACHE` is unset: generous for the
/// TPC-D workload (15 queries × a few programs each) while still bounded.
pub const DEFAULT_CAPACITY: usize = 64;

static ENV_CAPACITY: OnceLock<Option<usize>> = OnceLock::new();

/// The `FLATALG_PLAN_CACHE` capacity: `None` when caching is disabled
/// (`FLATALG_PLAN_CACHE=0` — the cache-off oracle leg), else the bound
/// (`FLATALG_PLAN_CACHE=N`, default [`DEFAULT_CAPACITY`]). Parsed once
/// per process like every other `FLATALG_*` knob.
pub fn env_capacity() -> Option<usize> {
    *ENV_CAPACITY.get_or_init(|| match std::env::var("FLATALG_PLAN_CACHE") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => Some(DEFAULT_CAPACITY),
        },
        Err(_) => Some(DEFAULT_CAPACITY),
    })
}

// ---------------------------------------------------------------------------
// The cache.
// ---------------------------------------------------------------------------

/// Cache key: shape text + the full effective configuration.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    /// Canonical shape rendering of the expression (parameters appear as
    /// `?id:type`, literals with their exact values).
    shape: String,
    /// Catalog identity and mutation epoch.
    db_id: u64,
    db_epoch: u64,
    /// Effective optimizer level.
    opt_enabled: bool,
    /// Whether pipeline fusion is enabled — fused and unfused emissions
    /// are different programs and must never share a cache entry.
    fuse: bool,
    /// Effective parallel configuration (threads, min-rows, morsel rows).
    par: (usize, Option<usize>, usize),
}

struct Entry {
    plan: Arc<Translated>,
    /// Parameter bindings the cached program currently holds.
    bindings: Vec<(u32, AtomValue)>,
    last_used: u64,
}

struct Inner {
    map: HashMap<Key, Entry>,
    tick: u64,
}

/// Counter snapshot (all since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (zero translate/optimize work).
    pub hits: u64,
    /// Lookups that translated and inserted.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Translations that skipped the cache (conflicting parameter
    /// bindings, non-cacheable plans, poisoned lock).
    pub bypasses: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// A bounded, thread-safe LRU plan cache. Shared across sessions via
/// `Arc`; installed per-thread with [`with_plan_cache`].
pub struct PlanCache {
    cap: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl PlanCache {
    /// A cache bounded to `cap` plans (minimum 1).
    pub fn with_capacity(cap: usize) -> Arc<PlanCache> {
        Arc::new(PlanCache {
            cap: cap.max(1),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        })
    }

    /// The cache configured by `FLATALG_PLAN_CACHE`: `None` when the
    /// environment disables caching.
    pub fn from_env() -> Option<Arc<PlanCache>> {
        env_capacity().map(PlanCache::with_capacity)
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            len: self.inner.lock().map(|g| g.map.len()).unwrap_or(0),
        }
    }

    /// Drop every cached plan (catalog-change invalidation hook; epoch
    /// keying already prevents stale hits, this reclaims the memory).
    pub fn clear(&self) {
        if let Ok(mut g) = self.inner.lock() {
            g.map.clear();
        }
    }

    /// Drop the cached plans compiled against catalog `db_id`.
    pub fn invalidate_db(&self, db_id: u64) {
        if let Ok(mut g) = self.inner.lock() {
            g.map.retain(|k, _| k.db_id != db_id);
        }
    }

    /// Translate `expr` through the cache (the
    /// [`crate::translate::translate`] fast path). Hits clone the cached
    /// optimized program and splice the expression's parameter values into
    /// its recorded slots; misses translate at `level` and insert.
    pub fn translate(&self, cat: &Catalog, expr: &SetExpr, level: OptLevel) -> Result<Translated> {
        let Some(bindings) = collect_bindings(expr) else {
            // One id bound to two different values: re-binding a cached
            // plan could splice either value into either slot. Bypass.
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return translate_with(cat, expr, level);
        };
        let key = Key {
            shape: shape_of(expr),
            db_id: cat.db().id(),
            db_epoch: cat.db().epoch(),
            opt_enabled: level.enabled(),
            fuse: monet::fuse::fuse_enabled(),
            par: monet::par::config_key(),
        };
        if let Some((plan, cached)) = self.lookup(&key) {
            let mut t: Translated = (*plan).clone();
            if !bindings_identical(&cached, &bindings) && !t.prog.splice_params(&bindings) {
                // Slot metadata went stale (would be a translator bug);
                // degrade to a fresh translation rather than run a
                // wrongly-bound plan.
                debug_assert!(false, "cached plan rejected a parameter splice");
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                return translate_with(cat, expr, level);
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(t);
        }
        let t = translate_with(cat, expr, level)?;
        if t.cacheable {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.insert(key, Arc::new(t.clone()), bindings);
        } else {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
        }
        Ok(t)
    }

    fn lookup(&self, key: &Key) -> Option<(Arc<Translated>, Vec<(u32, AtomValue)>)> {
        let mut g = self.inner.lock().ok()?;
        g.tick += 1;
        let tick = g.tick;
        let e = g.map.get_mut(key)?;
        e.last_used = tick;
        Some((e.plan.clone(), e.bindings.clone()))
    }

    fn insert(&self, key: Key, plan: Arc<Translated>, bindings: Vec<(u32, AtomValue)>) {
        let Ok(mut g) = self.inner.lock() else { return };
        g.tick += 1;
        let tick = g.tick;
        if g.map.len() >= self.cap && !g.map.contains_key(&key) {
            // Evict the least-recently-used entry (linear scan: caches are
            // small — tens of plans — and insertions are misses, which
            // already paid a full translate+optimize).
            if let Some(victim) =
                g.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                g.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        g.map.insert(key, Entry { plan, bindings, last_used: tick });
    }
}

// ---------------------------------------------------------------------------
// Shape rendering and parameter binding collection.
// ---------------------------------------------------------------------------

/// Bit-exact atom identity (same contract as the optimizer's CSE:
/// distinguishes -0.0 from 0.0 and NaN payloads — a re-bound value that
/// differs only in float sign still gets spliced).
fn atoms_identical(a: &AtomValue, b: &AtomValue) -> bool {
    use AtomValue as V;
    match (a, b) {
        (V::Void(x), V::Void(y)) | (V::Oid(x), V::Oid(y)) => x == y,
        (V::Bool(x), V::Bool(y)) => x == y,
        (V::Chr(x), V::Chr(y)) => x == y,
        (V::Int(x), V::Int(y)) => x == y,
        (V::Lng(x), V::Lng(y)) => x == y,
        (V::Dbl(x), V::Dbl(y)) => x.to_bits() == y.to_bits(),
        (V::Str(x), V::Str(y)) => x == y,
        (V::Date(x), V::Date(y)) => x == y,
        _ => false,
    }
}

fn bindings_identical(a: &[(u32, AtomValue)], b: &[(u32, AtomValue)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ia, va), (ib, vb))| ia == ib && atoms_identical(va, vb))
}

/// Collect `(id, value)` for every parameter in the expression, first
/// occurrence per id. `None` when one id is bound to two non-identical
/// values (the expression is then not safely re-bindable).
pub fn collect_bindings(expr: &SetExpr) -> Option<Vec<(u32, AtomValue)>> {
    let mut out: Vec<(u32, AtomValue)> = Vec::new();
    let mut ok = true;
    walk_set(expr, &mut |s| {
        if let Scalar::Param { id, value } = s {
            match out.iter().find(|(i, _)| i == id) {
                Some((_, prev)) if !atoms_identical(prev, value) => ok = false,
                Some(_) => {}
                None => out.push((*id, value.clone())),
            }
        }
    });
    ok.then_some(out)
}

/// Apply `f` to every `Scalar` in the expression tree.
fn walk_set(e: &SetExpr, f: &mut impl FnMut(&Scalar)) {
    match e {
        SetExpr::Extent(_) => {}
        SetExpr::Select { input, pred } => {
            walk_set(input, f);
            walk_pred(pred, f);
        }
        SetExpr::Project { input, items } | SetExpr::Nest { input, keys: items } => {
            walk_set(input, f);
            for it in items {
                walk_expr(&it.expr, f);
            }
        }
        SetExpr::Union(a, b) | SetExpr::Diff(a, b) | SetExpr::Intersect(a, b) => {
            walk_set(a, f);
            walk_set(b, f);
        }
        SetExpr::Top { input, by, .. } => {
            walk_set(input, f);
            walk_scalar(by, f);
        }
        SetExpr::JoinEq { left, right, lkey, rkey, .. }
        | SetExpr::SemijoinEq { left, right, lkey, rkey } => {
            walk_set(left, f);
            walk_set(right, f);
            walk_scalar(lkey, f);
            walk_scalar(rkey, f);
        }
        SetExpr::Unnest { input, attr, .. } => {
            walk_set(input, f);
            walk_setv(attr, f);
        }
    }
}

fn walk_pred(p: &Pred, f: &mut impl FnMut(&Scalar)) {
    match p {
        Pred::Cmp(_, l, r) => {
            walk_scalar(l, f);
            walk_scalar(r, f);
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            walk_pred(a, f);
            walk_pred(b, f);
        }
        Pred::Not(x) => walk_pred(x, f),
    }
}

fn walk_scalar(s: &Scalar, f: &mut impl FnMut(&Scalar)) {
    f(s);
    match s {
        Scalar::Bin(_, l, r) => {
            walk_scalar(l, f);
            walk_scalar(r, f);
        }
        Scalar::Un(_, x) => walk_scalar(x, f),
        Scalar::Agg(_, sv) => walk_setv(sv, f),
        Scalar::Attr(_) | Scalar::This | Scalar::Lit(_) | Scalar::Param { .. } => {}
    }
}

fn walk_setv(sv: &SetValued, f: &mut impl FnMut(&Scalar)) {
    match sv {
        SetValued::Attr(_) => {}
        SetValued::SelectIn(inner, pred) => {
            walk_setv(inner, f);
            walk_pred(pred, f);
        }
        SetValued::ProjectIn(inner, item) => {
            walk_setv(inner, f);
            walk_scalar(item, f);
        }
    }
}

fn walk_expr(e: &Expr, f: &mut impl FnMut(&Scalar)) {
    match e {
        Expr::Scalar(s) => walk_scalar(s, f),
        Expr::SetV(sv) => walk_setv(sv, f),
    }
}

/// Canonical shape rendering: a string that is equal for two expressions
/// exactly when one can be obtained from the other by changing parameter
/// *values* (ids and value types stay part of the shape; plain literals
/// render with their exact values and so stay plan-distinguishing).
pub fn shape_of(e: &SetExpr) -> String {
    let mut s = String::with_capacity(256);
    fmt_set(e, &mut s);
    s
}

fn fmt_set(e: &SetExpr, s: &mut String) {
    match e {
        SetExpr::Extent(c) => {
            let _ = write!(s, "ext({c:?})");
        }
        SetExpr::Select { input, pred } => {
            s.push_str("sel(");
            fmt_set(input, s);
            s.push(';');
            fmt_pred(pred, s);
            s.push(')');
        }
        SetExpr::Project { input, items } => {
            s.push_str("proj(");
            fmt_set(input, s);
            fmt_items(items, s);
            s.push(')');
        }
        SetExpr::Nest { input, keys } => {
            s.push_str("nest(");
            fmt_set(input, s);
            fmt_items(keys, s);
            s.push(')');
        }
        SetExpr::Union(a, b) => fmt_pair("uni", a, b, s),
        SetExpr::Diff(a, b) => fmt_pair("dif", a, b, s),
        SetExpr::Intersect(a, b) => fmt_pair("int", a, b, s),
        SetExpr::Top { input, by, n, desc } => {
            let _ = write!(s, "top[{n},{desc}](");
            fmt_set(input, s);
            s.push(';');
            fmt_scalar(by, s);
            s.push(')');
        }
        SetExpr::JoinEq { left, right, lkey, rkey, lname, rname } => {
            let _ = write!(s, "jeq[{lname:?},{rname:?}](");
            fmt_set(left, s);
            s.push(',');
            fmt_set(right, s);
            s.push(';');
            fmt_scalar(lkey, s);
            s.push(';');
            fmt_scalar(rkey, s);
            s.push(')');
        }
        SetExpr::SemijoinEq { left, right, lkey, rkey } => {
            s.push_str("sjeq(");
            fmt_set(left, s);
            s.push(',');
            fmt_set(right, s);
            s.push(';');
            fmt_scalar(lkey, s);
            s.push(';');
            fmt_scalar(rkey, s);
            s.push(')');
        }
        SetExpr::Unnest { input, attr, oname, mname } => {
            let _ = write!(s, "unn[{oname:?},{mname:?}](");
            fmt_set(input, s);
            s.push(';');
            fmt_setv(attr, s);
            s.push(')');
        }
    }
}

fn fmt_pair(tag: &str, a: &SetExpr, b: &SetExpr, s: &mut String) {
    s.push_str(tag);
    s.push('(');
    fmt_set(a, s);
    s.push(',');
    fmt_set(b, s);
    s.push(')');
}

fn fmt_items(items: &[ProjItem], s: &mut String) {
    for it in items {
        let _ = write!(s, ";{:?}:", it.name);
        match &it.expr {
            Expr::Scalar(sc) => fmt_scalar(sc, s),
            Expr::SetV(sv) => fmt_setv(sv, s),
        }
    }
}

fn fmt_scalar(sc: &Scalar, s: &mut String) {
    match sc {
        Scalar::Attr(path) => {
            let _ = write!(s, "a{path:?}");
        }
        Scalar::This => s.push_str("this"),
        // `{:?}` on AtomValue is value-exact (f64 Debug round-trips) and
        // type-tagged, so literals distinguish plans.
        Scalar::Lit(v) => {
            let _ = write!(s, "lit({v:?})");
        }
        // Parameters: id and value *type* only — the value is rebindable.
        Scalar::Param { id, value } => {
            let _ = write!(s, "prm({id}:{:?})", value.atom_type());
        }
        Scalar::Bin(op, l, r) => {
            let _ = write!(s, "bin[{op:?}](");
            fmt_scalar(l, s);
            s.push(',');
            fmt_scalar(r, s);
            s.push(')');
        }
        Scalar::Un(op, x) => {
            let _ = write!(s, "un[{op:?}](");
            fmt_scalar(x, s);
            s.push(')');
        }
        Scalar::Agg(f, sv) => {
            let _ = write!(s, "agg[{f:?}](");
            fmt_setv(sv, s);
            s.push(')');
        }
    }
}

fn fmt_pred(p: &Pred, s: &mut String) {
    match p {
        Pred::Cmp(op, l, r) => {
            let _ = write!(s, "cmp[{op:?}](");
            fmt_scalar(l, s);
            s.push(',');
            fmt_scalar(r, s);
            s.push(')');
        }
        Pred::And(a, b) => {
            s.push_str("and(");
            fmt_pred(a, s);
            s.push(',');
            fmt_pred(b, s);
            s.push(')');
        }
        Pred::Or(a, b) => {
            s.push_str("or(");
            fmt_pred(a, s);
            s.push(',');
            fmt_pred(b, s);
            s.push(')');
        }
        Pred::Not(x) => {
            s.push_str("not(");
            fmt_pred(x, s);
            s.push(')');
        }
    }
}

fn fmt_setv(sv: &SetValued, s: &mut String) {
    match sv {
        SetValued::Attr(path) => {
            let _ = write!(s, "s{path:?}");
        }
        SetValued::SelectIn(inner, pred) => {
            s.push_str("selin(");
            fmt_setv(inner, s);
            s.push(';');
            fmt_pred(pred, s);
            s.push(')');
        }
        SetValued::ProjectIn(inner, item) => {
            s.push_str("projin(");
            fmt_setv(inner, s);
            s.push(';');
            fmt_scalar(item, s);
            s.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{and, attr, cmp, eq, lit_d, prm};
    use crate::testkit::mini_catalog;
    use monet::atom::AtomValue;
    use monet::ops::ScalarFunc;

    fn q(cut: f64) -> SetExpr {
        SetExpr::extent("Item").select(and(
            eq(attr("returnflag"), prm(1, AtomValue::Chr(b'R'))),
            cmp(ScalarFunc::Le, attr("extendedprice"), prm(2, AtomValue::Dbl(cut))),
        ))
    }

    #[test]
    fn shape_ignores_param_values_but_not_literals() {
        assert_eq!(shape_of(&q(5.0)), shape_of(&q(9.0)));
        let a = SetExpr::extent("Item").select(eq(attr("extendedprice"), lit_d(5.0)));
        let b = SetExpr::extent("Item").select(eq(attr("extendedprice"), lit_d(9.0)));
        assert_ne!(shape_of(&a), shape_of(&b));
        // Param type changes the shape.
        let c =
            SetExpr::extent("Item").select(eq(attr("extendedprice"), prm(2, AtomValue::Lng(5))));
        let d =
            SetExpr::extent("Item").select(eq(attr("extendedprice"), prm(2, AtomValue::Int(5))));
        assert_ne!(shape_of(&c), shape_of(&d));
    }

    #[test]
    fn bindings_collect_and_conflict() {
        let b = collect_bindings(&q(7.0)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1], (2, AtomValue::Dbl(7.0)));
        // Same id, two values: not re-bindable.
        let bad = SetExpr::extent("Item").select(and(
            eq(attr("discount"), prm(1, AtomValue::Dbl(1.0))),
            eq(attr("extendedprice"), prm(1, AtomValue::Dbl(2.0))),
        ));
        assert!(collect_bindings(&bad).is_none());
    }

    #[test]
    fn hit_rebinds_parameters() {
        let cat = mini_catalog();
        let cache = PlanCache::with_capacity(8);
        let t1 = cache.translate(&cat, &q(100.0), OptLevel::Full).unwrap();
        let t2 = cache.translate(&cat, &q(200.0), OptLevel::Full).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // The re-bound program differs only in the spliced constant.
        assert_eq!(t1.prog.len(), t2.prog.len());
        let b1 = t1.prog.param_bindings();
        let b2 = t2.prog.param_bindings();
        assert!(b1.iter().any(|(id, v)| *id == 2 && *v == AtomValue::Dbl(100.0)));
        assert!(b2.iter().any(|(id, v)| *id == 2 && *v == AtomValue::Dbl(200.0)));
    }

    #[test]
    fn config_and_catalog_are_part_of_the_key() {
        let cat = mini_catalog();
        let cache = PlanCache::with_capacity(8);
        let _ = cache.translate(&cat, &q(1.0), OptLevel::Full).unwrap();
        // Different OptLevel: distinct entry (miss, not a wrong hit).
        let _ = cache.translate(&cat, &q(1.0), OptLevel::Off).unwrap();
        // Different thread config: distinct entry.
        monet::par::with_threads(3, || {
            let _ = cache.translate(&cat, &q(1.0), OptLevel::Full).unwrap();
        });
        // Different fusion setting: distinct entry. Flip relative to the
        // ambient value so the test holds under the FLATALG_FUSE=0 leg too.
        monet::fuse::with_fuse(!monet::fuse::fuse_enabled(), || {
            let _ = cache.translate(&cat, &q(1.0), OptLevel::Full).unwrap();
        });
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 4));
    }

    #[test]
    fn failed_translation_leaves_no_partial_entry() {
        let cat = mini_catalog();
        let cache = PlanCache::with_capacity(8);
        let bad = SetExpr::extent("Item").select(eq(attr("no_such_attr"), lit_d(1.0)));
        assert!(cache.translate(&cat, &bad, OptLevel::Full).is_err());
        let s = cache.stats();
        assert_eq!((s.len, s.misses, s.hits), (0, 0, 0), "a failed translate must insert nothing");
        // The cache still works, and the failing shape keeps failing
        // deterministically — it never turns into a bogus hit.
        let _ = cache.translate(&cat, &q(1.0), OptLevel::Full).unwrap();
        assert!(cache.translate(&cat, &bad, OptLevel::Full).is_err());
        let s = cache.stats();
        assert_eq!((s.len, s.misses, s.hits), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_at_capacity() {
        let cat = mini_catalog();
        let cache = PlanCache::with_capacity(1);
        let _ = cache.translate(&cat, &q(1.0), OptLevel::Full).unwrap();
        let other = SetExpr::extent("Item").select(eq(attr("extendedprice"), lit_d(5.0)));
        let _ = cache.translate(&cat, &other, OptLevel::Full).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 1);
        // The first shape was evicted: translating it again is a miss.
        let _ = cache.translate(&cat, &q(1.0), OptLevel::Full).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }
}
