//! The MOA → MIL term rewriter (Section 4.3).
//!
//! "The idea behind the algebra implementation is to translate a query on
//! the representation of the structured operands into a representation of
//! the structured query result": for MOA operation `moa` on value `X`
//! stored in BATs `X_1…X_n` under structure function `S_X`, the translator
//! emits a MIL program `mil` and a structure function `S_Y` with
//! `S_Y(mil(X_1…X_n)) = moa(X)` (Figure 6).
//!
//! The rewriter works rule-per-operation. The flagship rules:
//!
//! * **selection** — `select[f](SET(A,X)) → SET(semijoin(A, T(f(X))), X)`;
//!   conjunctions chain through candidate restriction (`semijoin` the next
//!   attribute BAT with the previous qualifier, as in Figure 10), and
//!   comparisons against literals push down to (range-)selects on the
//!   attribute BATs with joins back along the reference path;
//! * **nested selection** (§4.3.2) — the same rule applied to the inner
//!   index: all nested sets are reduced *in one flat selection*;
//! * **nest** — `group` on the key BATs, with the group BAT itself
//!   becoming the index of the nested `rest` sets (Figure 10 lines 7–9);
//! * **aggregation over nested sets** — `{g}(join(index.mirror, values))`,
//!   one bulk set-aggregate instead of per-set iteration (lines 14–15);
//! * **projection** — value attributes are `semijoin`ed with the selected
//!   index (the datavector fast path) and combined with multiplexed `[f]`
//!   operations.

use std::collections::HashMap;

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::ctx::ExecCtx;
use monet::db::Db;
use monet::mil::opt::OptLevel;
use monet::mil::{execute, Env, MilArg, MilOp, MilProgram, ParamLoc, Var};
use monet::ops::{AggFunc, ScalarFunc};

use crate::algebra::{Expr, Pred, Scalar, SetExpr, SetValued, NEST_REST};
use crate::catalog::Catalog;
use crate::error::{MoaError, Result};
use crate::structure::{Structure, StructuredSet};
use crate::types::MoaType;

/// Element description of a translated set, keyed by element id.
#[derive(Debug, Clone)]
pub enum ElemInfo {
    /// Elements are objects of the class; ids are their oids.
    Obj(String),
    /// Elements are atomic values: `bat` is `[elem_id, value]`; a
    /// `ref_class` marks oid values that are object references.
    Atom { bat: Var, ref_class: Option<String> },
    /// Elements are tuples.
    Tup(Vec<(String, FieldInfo)>),
}

/// One tuple field of a translated element.
#[derive(Debug, Clone)]
pub enum FieldInfo {
    /// `[elem_id, value]`. `scope` names the index variable the BAT is
    /// already restricted to (attribute access skips the redundant
    /// restricting semijoin when the scope matches).
    Scalar { bat: Var, scope: Option<Var> },
    /// `[elem_id, target_oid]` reference to objects of `class`.
    RefTo { bat: Var, class: String, scope: Option<Var> },
    /// Nested set: `index` is `[child_id, elem_id]`, `elem` describes the
    /// children.
    Nested { index: Var, elem: Box<ElemInfo> },
    /// Nested tuple (from joins/unnest).
    TupF(Vec<(String, FieldInfo)>),
}

/// A translated set expression: the index BAT variable (heads are element
/// ids) plus the element description.
#[derive(Debug, Clone)]
pub struct TransSet {
    pub index: Var,
    pub elem: ElemInfo,
}

/// Structure specification over MIL variables; instantiated against the
/// interpreter environment to yield the result's [`StructuredSet`].
#[derive(Debug, Clone)]
pub enum StructSpec {
    Atom(Var),
    Ref { bat: Var, class: String },
    Tuple(Vec<(String, StructSpec)>),
    Set { index: Var, inner: Box<StructSpec> },
}

impl StructSpec {
    fn vars(&self, out: &mut Vec<Var>) {
        match self {
            StructSpec::Atom(v) | StructSpec::Ref { bat: v, .. } => out.push(*v),
            StructSpec::Tuple(fields) => fields.iter().for_each(|(_, s)| s.vars(out)),
            StructSpec::Set { index, inner } => {
                out.push(*index);
                inner.vars(out);
            }
        }
    }

    /// Re-point every variable through `f` (after the plan optimizer
    /// renumbered the program).
    fn remap_vars(&mut self, f: &impl Fn(Var) -> Var) {
        match self {
            StructSpec::Atom(v) | StructSpec::Ref { bat: v, .. } => *v = f(*v),
            StructSpec::Tuple(fields) => fields.iter_mut().for_each(|(_, s)| s.remap_vars(f)),
            StructSpec::Set { index, inner } => {
                *index = f(*index);
                inner.remap_vars(f);
            }
        }
    }

    fn instantiate(&self, env: &Env) -> Result<Structure> {
        Ok(match self {
            StructSpec::Atom(v) => Structure::AtomBat(env.bat(*v)?.clone()),
            StructSpec::Ref { bat, class } => {
                Structure::RefBat { bat: env.bat(*bat)?.clone(), class: class.clone() }
            }
            StructSpec::Tuple(fields) => Structure::Tuple(
                fields
                    .iter()
                    .map(|(n, s)| Ok((n.clone(), s.instantiate(env)?)))
                    .collect::<Result<_>>()?,
            ),
            StructSpec::Set { index, inner } => Structure::Set {
                index: env.bat(*index)?.clone(),
                inner: Box::new(inner.instantiate(env)?),
            },
        })
    }
}

/// A fully translated query: MIL program + result structure function.
#[derive(Debug, Clone)]
pub struct Translated {
    pub prog: MilProgram,
    /// Variable of the result index BAT.
    pub index: Var,
    /// Structure function of the result elements.
    pub spec: StructSpec,
    /// Variables the interpreter must keep alive for the structure.
    pub keep: Vec<Var>,
    /// False when a parameter value was folded into a derived constant at
    /// translation time (e.g. `?1 - 1day` between two constants): the
    /// program then has no slot for that parameter and must not be re-bound
    /// — plan caches bypass such plans.
    pub cacheable: bool,
}

impl Translated {
    /// Execute against a database and assemble the structured result.
    pub fn run(&self, ctx: &ExecCtx, db: &Db) -> Result<(StructuredSet, Env)> {
        let env = execute(ctx, db, &self.prog, &self.keep)?;
        let set = self.build(&env)?;
        Ok((set, env))
    }

    /// Assemble the structured result from an existing environment.
    pub fn build(&self, env: &Env) -> Result<StructuredSet> {
        Ok(StructuredSet::new(env.bat(self.index)?.clone(), self.spec.instantiate(env)?))
    }
}

/// Scalar translation result: a BAT variable or a constant. A constant
/// carries the parameter id it came from (if any), so the consuming
/// emission site can record a parameter slot on the statement.
enum SVal {
    Bat { var: Var, ref_class: Option<String> },
    Const(AtomValue, Option<u32>),
}

/// Translate a MOA set expression into a MIL program plus result structure
/// (the entry point of the rewriter). The emitted program is handed to the
/// MIL plan optimizer at the ambient [`OptLevel`] — `FLATALG_OPT=0` (or a
/// scoped [`monet::mil::opt::with_opt_config`]) reproduces the raw
/// emission exactly.
///
/// When a plan cache is installed on this thread
/// ([`crate::plancache::with_plan_cache`]), translation goes through it:
/// a cached plan of the same shape under the same effective configuration
/// is re-bound to this expression's parameter values instead of being
/// re-translated and re-optimized.
pub fn translate(cat: &Catalog, expr: &SetExpr) -> Result<Translated> {
    let level = OptLevel::current();
    if let Some(cache) = crate::plancache::ambient_plan_cache() {
        return cache.translate(cat, expr, level);
    }
    translate_with(cat, expr, level)
}

/// [`translate`] at an explicit optimization level (the `OptLevel` hook:
/// benchmarks and oracle tests pin `Off` to run the translator's raw
/// emission against the optimized plan).
pub fn translate_with(cat: &Catalog, expr: &SetExpr, level: OptLevel) -> Result<Translated> {
    let mut t =
        Translator { cat, prog: MilProgram::new(), loaded: HashMap::new(), param_folded: false };
    let ts = t.tset(expr)?;
    let spec = t.elem_spec(&ts.elem, ts.index)?;
    let mut keep = vec![ts.index];
    spec.vars(&mut keep);
    keep.sort_unstable();
    keep.dedup();
    let cacheable = !t.param_folded;
    let mut out = Translated { prog: t.prog, index: ts.index, spec, keep, cacheable };
    if level.enabled() {
        let prog = std::mem::take(&mut out.prog);
        let mut opt = monet::mil::opt::optimize(prog, &out.keep, cat.db());
        out.prog = std::mem::take(&mut opt.prog);
        out.index = opt.var(out.index);
        out.spec.remap_vars(&|v| opt.var(v));
        for k in out.keep.iter_mut() {
            *k = opt.var(*k);
        }
        out.keep.sort_unstable();
        out.keep.dedup();
    }
    Ok(out)
}

struct Translator<'a> {
    cat: &'a Catalog,
    prog: MilProgram,
    loaded: HashMap<String, Var>,
    /// Set when constant folding at translation time consumed a
    /// parameter-tainted constant (the emitted program then has no slot
    /// for that parameter); makes the plan non-cacheable.
    param_folded: bool,
}

impl<'a> Translator<'a> {
    fn load(&mut self, name: &str) -> Result<Var> {
        if let Some(v) = self.loaded.get(name) {
            return Ok(*v);
        }
        // Validate at translation time so errors carry the BAT name.
        let _: &Bat =
            self.cat.db().get(name).map_err(|_| MoaError::MissingBat(name.to_string()))?;
        let v = self.prog.emit(name, MilOp::Load(name.to_string()));
        self.loaded.insert(name.to_string(), v);
        Ok(v)
    }

    fn emit(&mut self, name: &str, op: MilOp) -> Var {
        self.prog.emit(name, op)
    }

    // -- set expressions ---------------------------------------------------

    fn tset(&mut self, e: &SetExpr) -> Result<TransSet> {
        match e {
            SetExpr::Extent(class) => {
                self.cat.schema().class(class)?;
                let index = self.load(&Catalog::extent_name(class))?;
                Ok(TransSet { index, elem: ElemInfo::Obj(class.clone()) })
            }
            SetExpr::Select { input, pred } => {
                let ts = self.tset(input)?;
                let q = self.quals(&ts, pred, None)?;
                // The rule: SET(semijoin(A, T(f(X))), X).
                let index = self.emit("selected", MilOp::Semijoin(ts.index, q));
                Ok(TransSet { index, elem: ts.elem })
            }
            SetExpr::Project { input, items } => {
                let ts = self.tset(input)?;
                let mut fields = Vec::with_capacity(items.len());
                for item in items {
                    let fi = match &item.expr {
                        Expr::Scalar(s) => match self.scalar(&ts, s, Some(ts.index))? {
                            SVal::Bat { var, ref_class: Some(c) } => {
                                FieldInfo::RefTo { bat: var, class: c, scope: Some(ts.index) }
                            }
                            SVal::Bat { var, ref_class: None } => {
                                FieldInfo::Scalar { bat: var, scope: Some(ts.index) }
                            }
                            SVal::Const(..) => {
                                return Err(MoaError::Type(
                                    "projection of a bare constant is not supported; \
                                         fold it into an expression over an attribute"
                                        .into(),
                                ))
                            }
                        },
                        Expr::SetV(sv) => {
                            let (idx, celem) = self.setvalued(&ts, sv)?;
                            FieldInfo::Nested { index: idx, elem: Box::new(celem) }
                        }
                    };
                    fields.push((item.name.clone(), fi));
                }
                Ok(TransSet { index: ts.index, elem: ElemInfo::Tup(fields) })
            }
            SetExpr::Nest { input, keys } => {
                let ts = self.tset(input)?;
                // Key BATs, restricted to the selected elements.
                let mut kvars = Vec::with_capacity(keys.len());
                for k in keys {
                    let s = match &k.expr {
                        Expr::Scalar(s) => s,
                        Expr::SetV(_) => {
                            return Err(MoaError::Type("nest keys must be scalar".into()))
                        }
                    };
                    match self.scalar(&ts, s, Some(ts.index))? {
                        SVal::Bat { var, ref_class } => kvars.push((var, ref_class)),
                        SVal::Const(..) => {
                            return Err(MoaError::Type(
                                "nest key must depend on the element".into(),
                            ))
                        }
                    }
                }
                // class := group(k1); class := group(class, ki)…  (Fig 10 l.7)
                let mut class = self.emit("class", MilOp::Group1(kvars[0].0));
                for (kv, _) in kvars.iter().skip(1) {
                    class = self.emit("class", MilOp::Group2(class, *kv));
                }
                // One element per group: INDEX (Fig 10 l.8).
                let cm = self.emit("", MilOp::Mirror(class));
                let index = self.emit("INDEX", MilOp::SetAgg { f: AggFunc::Count, src: cm });
                // Key fields: KEY := join(class.mirror, k).unique (l.9).
                let mut fields: Vec<(String, FieldInfo)> = Vec::new();
                for (k, (kv, ref_class)) in keys.iter().zip(&kvars) {
                    let j = self.emit("", MilOp::Join(cm, *kv));
                    let u = self.emit(&k.name.to_uppercase(), MilOp::Unique(j));
                    fields.push((
                        k.name.clone(),
                        match ref_class {
                            Some(c) => {
                                FieldInfo::RefTo { bat: u, class: c.clone(), scope: Some(index) }
                            }
                            None => FieldInfo::Scalar { bat: u, scope: Some(index) },
                        },
                    ));
                }
                // The grouped elements: class is exactly the nested index
                // [child_elem, group_oid].
                fields.push((
                    NEST_REST.to_string(),
                    FieldInfo::Nested { index: class, elem: Box::new(ts.elem) },
                ));
                Ok(TransSet { index, elem: ElemInfo::Tup(fields) })
            }
            SetExpr::Union(a, b) => {
                let (ta, tb) = (self.tset(a)?, self.tset(b)?);
                match (&ta.elem, &tb.elem) {
                    (ElemInfo::Obj(ca), ElemInfo::Obj(cb)) if ca == cb => {}
                    _ => {
                        return Err(MoaError::Type(
                            "union is supported on object sets of the same class".into(),
                        ))
                    }
                }
                let fresh = self.emit("", MilOp::Antijoin(tb.index, ta.index));
                let index = self.emit("united", MilOp::Concat(ta.index, fresh));
                Ok(TransSet { index, elem: ta.elem })
            }
            SetExpr::Diff(a, b) => {
                let (ta, tb) = (self.tset(a)?, self.tset(b)?);
                let index = self.emit("diffed", MilOp::Antijoin(ta.index, tb.index));
                Ok(TransSet { index, elem: ta.elem })
            }
            SetExpr::Intersect(a, b) => {
                let (ta, tb) = (self.tset(a)?, self.tset(b)?);
                let index = self.emit("intersected", MilOp::Semijoin(ta.index, tb.index));
                Ok(TransSet { index, elem: ta.elem })
            }
            SetExpr::Top { input, by, n, desc } => {
                let ts = self.tset(input)?;
                let k = match self.scalar(&ts, by, Some(ts.index))? {
                    SVal::Bat { var, .. } => var,
                    SVal::Const(..) => {
                        return Err(MoaError::Type("top key must depend on the element".into()))
                    }
                };
                let t = self.emit("topk", MilOp::TopN { src: k, n: *n, desc: *desc });
                let index = self.emit("topped", MilOp::Semijoin(ts.index, t));
                Ok(TransSet { index, elem: ts.elem })
            }
            SetExpr::JoinEq { left, right, lkey, rkey, lname, rname } => {
                let tl = self.tset(left)?;
                let tr = self.tset(right)?;
                let lk = self.scalar_bat(&tl, lkey)?;
                let rk = self.scalar_bat(&tr, rkey)?;
                let rkm = self.emit("", MilOp::Mirror(rk));
                let pairs = self.emit("pairs", MilOp::Join(lk, rkm));
                let pm = self.emit("", MilOp::Mark(pairs));
                let lmap = self.emit("lmap", MilOp::Mirror(pm));
                let rmap = self.emit("rmap", MilOp::Zip(pm, pairs));
                let lfield = self.rekey_elem(&tl.elem, lmap)?;
                let rfield = self.rekey_elem(&tr.elem, rmap)?;
                Ok(TransSet {
                    index: lmap,
                    elem: ElemInfo::Tup(vec![(lname.clone(), lfield), (rname.clone(), rfield)]),
                })
            }
            SetExpr::SemijoinEq { left, right, lkey, rkey } => {
                let tl = self.tset(left)?;
                let tr = self.tset(right)?;
                let lk = self.scalar_bat(&tl, lkey)?;
                let rk = self.scalar_bat(&tr, rkey)?;
                let lkm = self.emit("", MilOp::Mirror(lk));
                let rkm = self.emit("", MilOp::Mirror(rk));
                let q = self.emit("", MilOp::Semijoin(lkm, rkm));
                let qm = self.emit("", MilOp::Mirror(q));
                let index = self.emit("semijoined", MilOp::Semijoin(tl.index, qm));
                Ok(TransSet { index, elem: tl.elem })
            }
            SetExpr::Unnest { input, attr, oname, mname } => {
                let ts = self.tset(input)?;
                let (idx, celem) = self.setvalued(&ts, attr)?;
                // idx = [child, owner]; child ids are unique, so they
                // become the element ids of the unnested set.
                let ofield = self.rekey_elem(&ts.elem, idx)?;
                let mfield = self.elem_as_field(&celem, idx)?;
                Ok(TransSet {
                    index: idx,
                    elem: ElemInfo::Tup(vec![(oname.clone(), ofield), (mname.clone(), mfield)]),
                })
            }
        }
    }

    // -- predicates ---------------------------------------------------------

    /// Translate a predicate over the elements of `ts` into a qualifier BAT
    /// `[elem_id, _]` (the `T(f(X))` of the selection rule). `cand`
    /// restricts evaluation to a previous qualifier (conjunct chaining).
    fn quals(&mut self, ts: &TransSet, pred: &Pred, cand: Option<Var>) -> Result<Var> {
        match pred {
            Pred::And(a, b) => {
                let qa = self.quals(ts, a, cand)?;
                self.quals(ts, b, Some(qa))
            }
            Pred::Or(a, b) => {
                let qa = self.quals(ts, a, cand)?;
                let qb = self.quals(ts, b, cand)?;
                let ua = self.emit("", MilOp::Semijoin(ts.index, qa));
                let ub = self.emit("", MilOp::Semijoin(ts.index, qb));
                Ok(self.emit("", MilOp::Union(ua, ub)))
            }
            Pred::Not(p) => {
                let q = self.quals(ts, p, None)?;
                let base = cand.unwrap_or(ts.index);
                Ok(self.emit("", MilOp::Antijoin(base, q)))
            }
            Pred::Cmp(op, l, r) => self.cmp_quals(ts, *op, l, r, cand),
        }
    }

    fn cmp_quals(
        &mut self,
        ts: &TransSet,
        op: ScalarFunc,
        l: &Scalar,
        r: &Scalar,
        cand: Option<Var>,
    ) -> Result<Var> {
        // Normalize literal-on-the-left comparisons (parameters are
        // literals that remember their id).
        if is_const_scalar(l) && !is_const_scalar(r) {
            if let Some(flipped) = flip_cmp(op) {
                return self.cmp_quals(ts, flipped, r, l, cand);
            }
        }
        // Push-down path: attribute compared against a literal with an
        // order predicate — (range-)select on the attribute BAT, then join
        // back along the reference chain (Fig 10 lines 1-5).
        let r_const = match r {
            Scalar::Lit(v) => Some((v, None)),
            Scalar::Param { id, value } => Some((value, Some(*id))),
            _ => None,
        };
        if let (Scalar::Attr(path), Some((v, pid))) = (l, r_const) {
            if matches!(
                op,
                ScalarFunc::Eq | ScalarFunc::Lt | ScalarFunc::Le | ScalarFunc::Gt | ScalarFunc::Ge
            ) {
                if let Some(q) = self.pushdown_select(ts, path, op, v, pid, cand)? {
                    return Ok(q);
                }
            }
        }
        // General fallback: multiplex the comparison to [elem, bool] and
        // select the trues. Tuple-element value BATs ignore the `restrict`
        // hint (they are keyed by construction), so the candidate
        // restriction must be re-applied to the qualifier explicitly.
        let base = cand.unwrap_or(ts.index);
        let lb = self.scalar(ts, l, Some(base))?;
        let rb = self.scalar(ts, r, Some(base))?;
        let bools = self.emit_multiplex(op, vec![lb, rb]);
        let q = self.emit("", MilOp::SelectEq(bools, AtomValue::Bool(true)));
        Ok(match cand {
            Some(c) => self.emit("", MilOp::Semijoin(q, c)),
            None => q,
        })
    }

    /// Try the select-pushdown strategy for `path op literal`. Returns
    /// `None` when the path shape does not support it.
    fn pushdown_select(
        &mut self,
        ts: &TransSet,
        path: &[String],
        op: ScalarFunc,
        v: &AtomValue,
        pid: Option<u32>,
        cand: Option<Var>,
    ) -> Result<Option<Var>> {
        // Resolve the chain of hop BATs: hops[0..n-1] are reference BATs
        // [cur, next], the final BAT holds the compared values.
        let Some((hops, leaf)) = self.attr_hop_bats(&ts.elem, path)? else {
            return Ok(None);
        };
        let selected = if hops.is_empty() {
            // Single hop: restrict first (datavector semijoin), then select
            // — exactly Figure 10 lines 3-4.
            let base = match cand {
                Some(c) => self.emit("", MilOp::Semijoin(leaf, c)),
                None => leaf,
            };
            self.emit_select("", base, op, v, pid)
        } else {
            // Select at the far end, then walk the reference chain back.
            let mut cur = self.emit_select("", leaf, op, v, pid);
            for hop in hops.iter().rev() {
                cur = self.emit("", MilOp::Join(*hop, cur));
            }
            match cand {
                Some(c) => self.emit("", MilOp::Semijoin(cur, c)),
                None => cur,
            }
        };
        Ok(Some(selected))
    }

    fn emit_select(
        &mut self,
        name: &str,
        src: Var,
        op: ScalarFunc,
        v: &AtomValue,
        pid: Option<u32>,
    ) -> Var {
        let (op, loc) = match op {
            ScalarFunc::Eq => (MilOp::SelectEq(src, v.clone()), ParamLoc::EqVal),
            ScalarFunc::Lt => (
                MilOp::SelectRange {
                    src,
                    lo: None,
                    hi: Some(v.clone()),
                    inc_lo: true,
                    inc_hi: false,
                },
                ParamLoc::RangeHi,
            ),
            ScalarFunc::Le => (
                MilOp::SelectRange {
                    src,
                    lo: None,
                    hi: Some(v.clone()),
                    inc_lo: true,
                    inc_hi: true,
                },
                ParamLoc::RangeHi,
            ),
            ScalarFunc::Gt => (
                MilOp::SelectRange {
                    src,
                    lo: Some(v.clone()),
                    hi: None,
                    inc_lo: false,
                    inc_hi: true,
                },
                ParamLoc::RangeLo,
            ),
            ScalarFunc::Ge => (
                MilOp::SelectRange {
                    src,
                    lo: Some(v.clone()),
                    hi: None,
                    inc_lo: true,
                    inc_hi: true,
                },
                ParamLoc::RangeLo,
            ),
            other => unreachable!("emit_select on non-order op {other:?}"),
        };
        let var = self.emit(name, op);
        if let Some(id) = pid {
            self.prog.note_param(var, id, loc);
        }
        var
    }

    /// Emit a multiplexed scalar function, recording a parameter slot for
    /// every argument whose constant came from a query parameter.
    fn emit_multiplex(&mut self, f: ScalarFunc, vals: Vec<SVal>) -> Var {
        let mut slots: Vec<(u32, ParamLoc)> = Vec::new();
        let args: Vec<MilArg> = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| match v {
                SVal::Bat { var, .. } => MilArg::Var(var),
                SVal::Const(c, pid) => {
                    if let Some(id) = pid {
                        slots.push((id, ParamLoc::Arg(i as u32)));
                    }
                    MilArg::Const(c)
                }
            })
            .collect();
        let var = self.emit("", MilOp::Multiplex { f, args });
        for (id, loc) in slots {
            self.prog.note_param(var, id, loc);
        }
        var
    }

    /// The hop/leaf BATs of an attribute path, without restriction — the
    /// raw material for select pushdown. `None` if the path enters
    /// computed fields that have no backing chain.
    fn attr_hop_bats(
        &mut self,
        elem: &ElemInfo,
        path: &[String],
    ) -> Result<Option<(Vec<Var>, Var)>> {
        let mut hops: Vec<Var> = Vec::new();
        let mut cursor: ElemCursor = ElemCursor::Elem(elem.clone());
        for (i, seg) in path.iter().enumerate() {
            let last = i + 1 == path.len();
            match cursor {
                ElemCursor::Elem(ElemInfo::Obj(ref class)) => {
                    let def = self.cat.schema().class(class)?;
                    let field = def.field(seg).ok_or_else(|| MoaError::UnknownAttr {
                        class: class.clone(),
                        attr: seg.clone(),
                    })?;
                    let bat = self.load(&Catalog::attr_name(class, seg))?;
                    match &field.ty {
                        MoaType::Base(_) if last => return Ok(Some((hops, bat))),
                        MoaType::Base(_) => return Ok(None),
                        MoaType::Object(c2) if last => return Ok(Some((hops, bat))),
                        MoaType::Object(c2) => {
                            hops.push(bat);
                            cursor = ElemCursor::Elem(ElemInfo::Obj(c2.clone()));
                        }
                        _ => return Ok(None),
                    }
                }
                ElemCursor::Elem(ElemInfo::Tup(ref fields)) => {
                    let Some((_, fi)) = fields.iter().find(|(n, _)| n == seg) else {
                        return Err(MoaError::Type(format!("tuple has no field {seg}")));
                    };
                    match fi {
                        FieldInfo::Scalar { bat, .. } if last => return Ok(Some((hops, *bat))),
                        FieldInfo::RefTo { bat, class, .. } => {
                            if last {
                                return Ok(Some((hops, *bat)));
                            }
                            hops.push(*bat);
                            cursor = ElemCursor::Elem(ElemInfo::Obj(class.clone()));
                        }
                        FieldInfo::TupF(inner) => {
                            cursor = ElemCursor::Elem(ElemInfo::Tup(inner.clone()));
                        }
                        _ => return Ok(None),
                    }
                }
                ElemCursor::Elem(ElemInfo::Atom { .. }) => return Ok(None),
            }
        }
        Ok(None)
    }

    // -- scalar expressions --------------------------------------------------

    fn scalar_bat(&mut self, ts: &TransSet, s: &Scalar) -> Result<Var> {
        match self.scalar(ts, s, Some(ts.index))? {
            SVal::Bat { var, .. } => Ok(var),
            SVal::Const(..) => Err(MoaError::Type(
                "expected an element-dependent expression, found a constant".into(),
            )),
        }
    }

    /// Translate a scalar expression to `[elem_id, value]` (or a constant).
    /// `restrict` semijoins first-hop attribute BATs down to the given
    /// index — the "computation phase" behaviour that engages the
    /// datavector semijoin.
    fn scalar(&mut self, ts: &TransSet, s: &Scalar, restrict: Option<Var>) -> Result<SVal> {
        match s {
            Scalar::Lit(v) => Ok(SVal::Const(v.clone(), None)),
            Scalar::Param { id, value } => Ok(SVal::Const(value.clone(), Some(*id))),
            Scalar::This => match &ts.elem {
                ElemInfo::Obj(c) => {
                    let class = c.clone();
                    let mut v = self.self_map(ts.index)?;
                    if let Some(r) = restrict {
                        if r != ts.index {
                            v = self.emit("", MilOp::Semijoin(v, r));
                        }
                    }
                    Ok(SVal::Bat { var: v, ref_class: Some(class) })
                }
                ElemInfo::Atom { bat, ref_class } => {
                    let mut v = *bat;
                    if let Some(r) = restrict {
                        v = self.emit("", MilOp::Semijoin(v, r));
                    }
                    Ok(SVal::Bat { var: v, ref_class: ref_class.clone() })
                }
                ElemInfo::Tup(_) => {
                    Err(MoaError::Type("%self of a tuple element is not scalar".into()))
                }
            },
            Scalar::Attr(path) => self.attr_value(ts, &ts.elem.clone(), path, restrict),
            Scalar::Bin(op, l, r) => {
                let lv = self.scalar(ts, l, restrict)?;
                let rv = self.scalar(ts, r, restrict)?;
                match (&lv, &rv) {
                    (SVal::Const(a, lp), SVal::Const(b, rp)) => {
                        // Folding a parameter into a derived constant loses
                        // its slot; the plan still runs correctly but can
                        // no longer be re-bound, so mark it non-cacheable.
                        if lp.is_some() || rp.is_some() {
                            self.param_folded = true;
                        }
                        Ok(SVal::Const(
                            monet::ops::apply_scalar(*op, &[a.clone(), b.clone()])?,
                            None,
                        ))
                    }
                    _ => {
                        let v = self.emit_multiplex(*op, vec![lv, rv]);
                        Ok(SVal::Bat { var: v, ref_class: None })
                    }
                }
            }
            Scalar::Un(op, x) => {
                let xv = self.scalar(ts, x, restrict)?;
                match &xv {
                    SVal::Const(a, pid) => {
                        if pid.is_some() {
                            self.param_folded = true;
                        }
                        Ok(SVal::Const(monet::ops::apply_scalar(*op, &[a.clone()])?, None))
                    }
                    _ => {
                        let v = self.emit_multiplex(*op, vec![xv]);
                        Ok(SVal::Bat { var: v, ref_class: None })
                    }
                }
            }
            Scalar::Agg(f, sv) => {
                let (idx, celem) = self.setvalued(ts, sv)?;
                let im = self.emit("", MilOp::Mirror(idx));
                let v = match *f {
                    AggFunc::Count => self.emit("", MilOp::SetAgg { f: AggFunc::Count, src: im }),
                    _ => {
                        let vals = match &celem {
                            ElemInfo::Atom { bat, .. } => *bat,
                            ElemInfo::Obj(_) | ElemInfo::Tup(_) => {
                                return Err(MoaError::Type(format!(
                                    "aggregate {} needs atomic members; project first",
                                    f.name()
                                )))
                            }
                        };
                        // losses := join(class.mirror, values); {f}(losses)
                        let owner_vals = self.emit("", MilOp::Join(im, vals));
                        self.emit("", MilOp::SetAgg { f: *f, src: owner_vals })
                    }
                };
                Ok(SVal::Bat { var: v, ref_class: None })
            }
        }
    }

    /// Attribute/navigation translation.
    fn attr_value(
        &mut self,
        ts: &TransSet,
        elem: &ElemInfo,
        path: &[String],
        restrict: Option<Var>,
    ) -> Result<SVal> {
        if path.is_empty() {
            return Err(MoaError::Type("empty attribute path".into()));
        }
        let seg = &path[0];
        match elem {
            ElemInfo::Obj(class) => {
                let def = self.cat.schema().class(class)?;
                let field = def
                    .field(seg)
                    .ok_or_else(|| MoaError::UnknownAttr {
                        class: class.clone(),
                        attr: seg.clone(),
                    })?
                    .clone();
                let mut cur = self.load(&Catalog::attr_name(class, seg))?;
                if let Some(r) = restrict {
                    cur = self.emit("", MilOp::Semijoin(cur, r));
                }
                match field.ty {
                    MoaType::Base(_) => {
                        if path.len() > 1 {
                            return Err(MoaError::NotNavigable {
                                class: class.clone(),
                                attr: seg.clone(),
                            });
                        }
                        Ok(SVal::Bat { var: cur, ref_class: None })
                    }
                    MoaType::Object(c2) => self.chain_object(cur, &c2, &path[1..]),
                    MoaType::Set(_) => Err(MoaError::Type(format!(
                        "%{} is set-valued; use a set expression",
                        path.join(".")
                    ))),
                    MoaType::Tuple(_) => {
                        Err(MoaError::Type("direct tuple attributes are unsupported".into()))
                    }
                }
            }
            ElemInfo::Tup(fields) => {
                let Some((_, fi)) = fields.iter().find(|(n, _)| n == seg) else {
                    return Err(MoaError::Type(format!("tuple has no field {seg}")));
                };
                // Tuple field BATs may cover a superset of the current
                // elements (e.g. full member BATs after unnest); the
                // restriction must be applied to the resolved value.
                let field_scope;
                let v = match fi {
                    FieldInfo::Scalar { bat, scope } => {
                        if path.len() > 1 {
                            return Err(MoaError::Type(format!(
                                "cannot navigate past scalar field {seg}"
                            )));
                        }
                        field_scope = *scope;
                        SVal::Bat { var: *bat, ref_class: None }
                    }
                    FieldInfo::RefTo { bat, class, scope } => {
                        // Navigation joins preserve the key set, so the
                        // field's scope carries through the chain.
                        field_scope = *scope;
                        self.chain_object(*bat, &class.clone(), &path[1..])?
                    }
                    FieldInfo::TupF(inner) => {
                        return self.attr_value(
                            ts,
                            &ElemInfo::Tup(inner.clone()),
                            &path[1..],
                            restrict,
                        )
                    }
                    FieldInfo::Nested { .. } => {
                        return Err(MoaError::Type(format!(
                            "%{} is set-valued; use a set expression",
                            path.join(".")
                        )))
                    }
                };
                Ok(match (v, restrict) {
                    (SVal::Bat { var, ref_class }, Some(r)) if field_scope != Some(r) => {
                        SVal::Bat { var: self.emit("", MilOp::Semijoin(var, r)), ref_class }
                    }
                    (v, _) => v,
                })
            }
            ElemInfo::Atom { bat, ref_class } => {
                // Navigation from an atomic element only makes sense when
                // it is an object reference.
                let Some(class) = ref_class.clone() else {
                    return Err(MoaError::Type(format!(
                        "cannot navigate .{seg} from an atomic element"
                    )));
                };
                self.chain_object(*bat, &class, path)
            }
        }
    }

    /// Continue a navigation chain: `cur` is `[elem, oid-of-class]`, walk
    /// the remaining path by joining attribute BATs.
    fn chain_object(&mut self, cur: Var, class: &str, rest: &[String]) -> Result<SVal> {
        if rest.is_empty() {
            return Ok(SVal::Bat { var: cur, ref_class: Some(class.to_string()) });
        }
        let seg = &rest[0];
        let def = self.cat.schema().class(class)?;
        let field = def
            .field(seg)
            .ok_or_else(|| MoaError::UnknownAttr { class: class.into(), attr: seg.clone() })?
            .clone();
        let attr = self.load(&Catalog::attr_name(class, seg))?;
        let joined = self.emit("", MilOp::Join(cur, attr));
        match field.ty {
            MoaType::Base(_) => {
                if rest.len() > 1 {
                    return Err(MoaError::NotNavigable { class: class.into(), attr: seg.clone() });
                }
                Ok(SVal::Bat { var: joined, ref_class: None })
            }
            MoaType::Object(c2) => self.chain_object(joined, &c2, &rest[1..]),
            _ => Err(MoaError::Type(format!("cannot navigate through {class}.{seg}"))),
        }
    }

    // -- set-valued expressions ----------------------------------------------

    /// Translate a set-valued expression in the context of `ts` into
    /// `(index [child, elem], child ElemInfo)`.
    fn setvalued(&mut self, ts: &TransSet, sv: &SetValued) -> Result<(Var, ElemInfo)> {
        match sv {
            SetValued::Attr(path) => {
                if path.len() != 1 {
                    return Err(MoaError::Type(
                        "set-valued paths must be a single attribute".into(),
                    ));
                }
                let seg = &path[0];
                match &ts.elem {
                    ElemInfo::Obj(class) => {
                        let class = class.clone();
                        let def = self.cat.schema().class(&class)?;
                        let field = def
                            .field(seg)
                            .ok_or_else(|| MoaError::UnknownAttr {
                                class: class.clone(),
                                attr: seg.clone(),
                            })?
                            .clone();
                        let MoaType::Set(member_ty) = field.ty else {
                            return Err(MoaError::Type(format!("%{seg} is not set-valued")));
                        };
                        let full = self.load(&Catalog::attr_name(&class, seg))?;
                        // Restrict owners to the current elements.
                        let m = self.emit("", MilOp::Mirror(full));
                        let ms = self.emit("", MilOp::Semijoin(m, ts.index));
                        let idx = self.emit("", MilOp::Mirror(ms));
                        let celem = self.member_elem(&class, seg, &member_ty)?;
                        Ok((idx, celem))
                    }
                    ElemInfo::Tup(fields) => {
                        let Some((_, fi)) = fields.iter().find(|(n, _)| n == seg) else {
                            return Err(MoaError::Type(format!("tuple has no field {seg}")));
                        };
                        match fi {
                            FieldInfo::Nested { index, elem } => {
                                let (index, elem) = (*index, (**elem).clone());
                                let m = self.emit("", MilOp::Mirror(index));
                                let ms = self.emit("", MilOp::Semijoin(m, ts.index));
                                let idx = self.emit("", MilOp::Mirror(ms));
                                Ok((idx, elem))
                            }
                            _ => Err(MoaError::Type(format!("field {seg} is not a set"))),
                        }
                    }
                    ElemInfo::Atom { .. } => {
                        Err(MoaError::Type("atomic elements have no set attributes".into()))
                    }
                }
            }
            SetValued::SelectIn(inner, pred) => {
                // §4.3.2: one flat selection over all nested sets at once.
                let (idx, celem) = self.setvalued(ts, inner)?;
                let child_ts = TransSet { index: idx, elem: celem.clone() };
                let q = self.quals(&child_ts, pred, None)?;
                let idx2 = self.emit("", MilOp::Semijoin(idx, q));
                Ok((idx2, celem))
            }
            SetValued::ProjectIn(inner, item) => {
                let (idx, celem) = self.setvalued(ts, inner)?;
                let child_ts = TransSet { index: idx, elem: celem };
                match self.scalar(&child_ts, item, Some(idx))? {
                    SVal::Bat { var, ref_class } => {
                        Ok((idx, ElemInfo::Atom { bat: var, ref_class }))
                    }
                    SVal::Const(..) => Err(MoaError::Type(
                        "projection inside a set must depend on the member".into(),
                    )),
                }
            }
        }
    }

    /// Child ElemInfo for a stored set-valued attribute.
    fn member_elem(&mut self, class: &str, attr: &str, ty: &MoaType) -> Result<ElemInfo> {
        Ok(match ty {
            MoaType::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields {
                    let bat = self.load(&Catalog::member_name(class, attr, &f.name))?;
                    let fi = match &f.ty {
                        MoaType::Object(c) => {
                            FieldInfo::RefTo { bat, class: c.clone(), scope: None }
                        }
                        MoaType::Base(_) => FieldInfo::Scalar { bat, scope: None },
                        other => {
                            return Err(MoaError::Type(format!(
                                "unsupported member field type {other}"
                            )))
                        }
                    };
                    out.push((f.name.clone(), fi));
                }
                ElemInfo::Tup(out)
            }
            MoaType::Object(c) => ElemInfo::Atom {
                bat: self.load(&Catalog::member_name(class, attr, "ref"))?,
                ref_class: Some(c.clone()),
            },
            MoaType::Base(_) => ElemInfo::Atom {
                bat: self.load(&Catalog::member_name(class, attr, "val"))?,
                ref_class: None,
            },
            other => return Err(MoaError::Type(format!("unsupported member type {other}"))),
        })
    }

    // -- rekeying (joins, unnest) ---------------------------------------------

    /// Re-key an element description through `map = [new_id, old_id]`,
    /// emitting the joins that move every value BAT to the new ids.
    fn rekey_elem(&mut self, elem: &ElemInfo, map: Var) -> Result<FieldInfo> {
        Ok(match elem {
            ElemInfo::Obj(c) => FieldInfo::RefTo { bat: map, class: c.clone(), scope: Some(map) },
            ElemInfo::Atom { bat, ref_class } => {
                let j = self.emit("", MilOp::Join(map, *bat));
                match ref_class {
                    Some(c) => FieldInfo::RefTo { bat: j, class: c.clone(), scope: Some(map) },
                    None => FieldInfo::Scalar { bat: j, scope: Some(map) },
                }
            }
            ElemInfo::Tup(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, fi) in fields {
                    out.push((n.clone(), self.rekey_field(fi, map)?));
                }
                FieldInfo::TupF(out)
            }
        })
    }

    fn rekey_field(&mut self, fi: &FieldInfo, map: Var) -> Result<FieldInfo> {
        Ok(match fi {
            FieldInfo::Scalar { bat, .. } => {
                FieldInfo::Scalar { bat: self.emit("", MilOp::Join(map, *bat)), scope: Some(map) }
            }
            FieldInfo::RefTo { bat, class, .. } => FieldInfo::RefTo {
                bat: self.emit("", MilOp::Join(map, *bat)),
                class: class.clone(),
                scope: Some(map),
            },
            FieldInfo::Nested { index, elem } => {
                // [child, old] → [child, new]
                let im = self.emit("", MilOp::Mirror(*index));
                let j = self.emit("", MilOp::Join(map, im));
                let idx = self.emit("", MilOp::Mirror(j));
                FieldInfo::Nested { index: idx, elem: elem.clone() }
            }
            FieldInfo::TupF(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, f) in fields {
                    out.push((n.clone(), self.rekey_field(f, map)?));
                }
                FieldInfo::TupF(out)
            }
        })
    }

    /// Wrap a child ElemInfo (keyed by the heads of `idx`) as a tuple
    /// field of elements whose ids are exactly those heads.
    fn elem_as_field(&mut self, elem: &ElemInfo, idx: Var) -> Result<FieldInfo> {
        Ok(match elem {
            ElemInfo::Obj(c) => {
                let selfmap = self.self_map(idx)?;
                FieldInfo::RefTo { bat: selfmap, class: c.clone(), scope: Some(idx) }
            }
            ElemInfo::Atom { bat, ref_class } => match ref_class {
                Some(c) => FieldInfo::RefTo { bat: *bat, class: c.clone(), scope: None },
                None => FieldInfo::Scalar { bat: *bat, scope: None },
            },
            ElemInfo::Tup(fields) => FieldInfo::TupF(fields.clone()),
        })
    }

    /// `[elem, elem]` self-reference BAT for the heads of `idx`.
    fn self_map(&mut self, idx: Var) -> Result<Var> {
        let m = self.emit("", MilOp::Mirror(idx));
        Ok(self.emit("", MilOp::Zip(m, m)))
    }

    // -- result structure -----------------------------------------------------

    /// Build the result structure specification for the final element
    /// description (emits self-maps for object elements).
    fn elem_spec(&mut self, elem: &ElemInfo, index: Var) -> Result<StructSpec> {
        Ok(match elem {
            ElemInfo::Obj(c) => StructSpec::Ref { bat: self.self_map(index)?, class: c.clone() },
            ElemInfo::Atom { bat, ref_class } => match ref_class {
                Some(c) => StructSpec::Ref { bat: *bat, class: c.clone() },
                None => StructSpec::Atom(*bat),
            },
            ElemInfo::Tup(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, fi) in fields {
                    out.push((n.clone(), self.field_spec(fi)?));
                }
                StructSpec::Tuple(out)
            }
        })
    }

    fn field_spec(&mut self, fi: &FieldInfo) -> Result<StructSpec> {
        Ok(match fi {
            FieldInfo::Scalar { bat, .. } => StructSpec::Atom(*bat),
            FieldInfo::RefTo { bat, class, .. } => {
                StructSpec::Ref { bat: *bat, class: class.clone() }
            }
            FieldInfo::Nested { index, elem } => {
                let inner = self.elem_spec(elem, *index)?;
                StructSpec::Set { index: *index, inner: Box::new(inner) }
            }
            FieldInfo::TupF(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, f) in fields {
                    out.push((n.clone(), self.field_spec(f)?));
                }
                StructSpec::Tuple(out)
            }
        })
    }
}

enum ElemCursor {
    Elem(ElemInfo),
}

/// Scalars whose translation is a constant: literals and parameters.
fn is_const_scalar(s: &Scalar) -> bool {
    matches!(s, Scalar::Lit(_) | Scalar::Param { .. })
}

fn flip_cmp(op: ScalarFunc) -> Option<ScalarFunc> {
    Some(match op {
        ScalarFunc::Eq => ScalarFunc::Eq,
        ScalarFunc::Ne => ScalarFunc::Ne,
        ScalarFunc::Lt => ScalarFunc::Gt,
        ScalarFunc::Le => ScalarFunc::Ge,
        ScalarFunc::Gt => ScalarFunc::Lt,
        ScalarFunc::Ge => ScalarFunc::Le,
        _ => return None,
    })
}
