//! # moa — the Magnum Object Algebra, flattened onto a binary kernel
//!
//! Implementation of the paper's primary contribution: a structural
//! object-oriented data model and query algebra (*MOA*) whose operations
//! are implemented entirely by **translation to the binary relational
//! algebra** of the [`monet`] kernel.
//!
//! * [`types`] — the logical data model: base types plus `SET`, `TUPLE`,
//!   `OBJECT` (Section 3.1, Figure 1);
//! * [`structure`] — the structure functions that map logical values onto
//!   vertically decomposed BATs, with their formal IVS semantics
//!   (Section 3.3, Figure 3);
//! * [`catalog`] — schema ↔ BAT-name binding;
//! * [`algebra`] — the MOA query algebra AST (Section 4.1);
//! * [`translate`] — the term rewriter MOA → MIL (Section 4.3): each MOA
//!   operation becomes a MIL program plus a structure function over the
//!   result BATs;
//! * [`eval`] — the denotational reference evaluator used to machine-check
//!   the Figure 6 commutativity `S_Y(mil(X…)) = moa(X)`;
//! * [`value`] — materialized values and identified value sets.
//!
//! ```
//! use moa::prelude::*;
//! use monet::prelude::*;
//!
//! // A one-class schema with one object.
//! let mut schema = Schema::new();
//! schema.add_class(ClassDef::new(
//!     "Part",
//!     vec![Field::new("size", MoaType::Base(AtomType::Int))],
//! ));
//! let mut db = Db::new();
//! db.register("Part", Bat::new(Column::from_oids(vec![1]), Column::void(0, 1)));
//! db.register(
//!     "Part_size",
//!     Bat::new(Column::from_oids(vec![1]), Column::from_ints(vec![7])),
//! );
//! let cat = Catalog::new(schema, db);
//!
//! // select[size = 7](Part), both evaluated and translated.
//! let q = SetExpr::extent("Part").select(eq(attr("size"), lit_i(7)));
//! let reference = Evaluator::new(&cat).eval_values(&q).unwrap();
//! let translated = translate(&cat, &q).unwrap();
//! let (result, _env) = translated.run(&ExecCtx::new(), cat.db()).unwrap();
//! assert_eq!(result.materialize().unwrap(), reference);
//! ```

pub mod algebra;
pub mod catalog;
pub mod error;
pub mod eval;
pub mod plancache;
pub mod structure;
pub mod testkit;
pub mod translate;
pub mod types;
pub mod value;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algebra::{
        agg, agg_over, and, and_all, attr, bin, cmp, eq, lit, lit_c, lit_d, lit_date, lit_i, lit_s,
        not, or, prm, sattr, this, un, Expr, Pred, ProjItem, Scalar, SetExpr, SetValued, NEST_REST,
    };
    pub use crate::catalog::Catalog;
    pub use crate::error::{MoaError, Result};
    pub use crate::eval::Evaluator;
    pub use crate::plancache::{with_plan_cache, PlanCache, PlanCacheStats};
    pub use crate::structure::{Structure, StructuredSet};
    pub use crate::translate::{translate, translate_with, Translated};
    pub use crate::types::{ClassDef, Field, MoaType, Schema};
    pub use crate::value::{Ivs, Value};
    pub use monet::mil::opt::OptLevel;
}
