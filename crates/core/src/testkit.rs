//! Small hand-built databases for tests, examples and benchmarks.
//!
//! The fixture is a miniature of the TPC-D shape (Figure 1): `Item`
//! navigates to `Order`, `Supplier` owns a nested `supplies` set of
//! tuples referencing `Part`.

use monet::atom::{AtomType, Date};
use monet::bat::Bat;
use monet::column::Column;
use monet::db::Db;

use crate::catalog::Catalog;
use crate::types::{ClassDef, Field, MoaType, Schema};

/// Build the mini catalog:
///
/// * 2 orders (oids 1, 2) with clerks `c1`, `c2` and dates in 1995/1996;
/// * 4 items (oids 10–13) referencing them, with prices, discounts, flags;
/// * 2 suppliers (oids 20, 21); supplier 20 supplies parts 30, 31 (one out
///   of stock), supplier 21 supplies nothing;
/// * 2 parts (oids 30, 31).
pub fn mini_catalog() -> Catalog {
    let mut schema = Schema::new();
    schema.add_class(ClassDef::new(
        "Order",
        vec![
            Field::new("clerk", MoaType::Base(AtomType::Str)),
            Field::new("orderdate", MoaType::Base(AtomType::Date)),
        ],
    ));
    schema.add_class(ClassDef::new(
        "Item",
        vec![
            Field::new("order", MoaType::Object("Order".into())),
            Field::new("extendedprice", MoaType::Base(AtomType::Dbl)),
            Field::new("discount", MoaType::Base(AtomType::Dbl)),
            Field::new("returnflag", MoaType::Base(AtomType::Chr)),
        ],
    ));
    schema.add_class(ClassDef::new("Part", vec![Field::new("name", MoaType::Base(AtomType::Str))]));
    schema.add_class(ClassDef::new(
        "Supplier",
        vec![
            Field::new("name", MoaType::Base(AtomType::Str)),
            Field::new(
                "supplies",
                MoaType::set_of(MoaType::Tuple(vec![
                    Field::new("part", MoaType::Object("Part".into())),
                    Field::new("cost", MoaType::Base(AtomType::Dbl)),
                    Field::new("available", MoaType::Base(AtomType::Int)),
                ])),
            ),
        ],
    ));

    let mut db = Db::new();
    let reg = |db: &mut Db, name: &str, head: Vec<u64>, tail: Column| {
        let h = Column::from_oids(head);
        db.register(name, Bat::with_inferred_props(h, tail));
    };

    db.register(
        "Order",
        Bat::with_inferred_props(Column::from_oids(vec![1, 2]), Column::void(0, 2)),
    );
    reg(&mut db, "Order_clerk", vec![1, 2], Column::from_strs(["c1", "c2"]));
    reg(
        &mut db,
        "Order_orderdate",
        vec![1, 2],
        Column::from_dates(vec![Date::from_ymd(1995, 3, 5), Date::from_ymd(1996, 7, 9)]),
    );

    db.register(
        "Item",
        Bat::with_inferred_props(Column::from_oids(vec![10, 11, 12, 13]), Column::void(0, 4)),
    );
    reg(&mut db, "Item_order", vec![10, 11, 12, 13], Column::from_oids(vec![1, 1, 2, 2]));
    reg(
        &mut db,
        "Item_extendedprice",
        vec![10, 11, 12, 13],
        Column::from_dbls(vec![100.0, 200.0, 300.0, 400.0]),
    );
    reg(
        &mut db,
        "Item_discount",
        vec![10, 11, 12, 13],
        Column::from_dbls(vec![0.1, 0.0, 0.05, 0.2]),
    );
    reg(
        &mut db,
        "Item_returnflag",
        vec![10, 11, 12, 13],
        Column::from_chrs(vec![b'R', b'N', b'R', b'R']),
    );

    db.register(
        "Part",
        Bat::with_inferred_props(Column::from_oids(vec![30, 31]), Column::void(0, 2)),
    );
    reg(&mut db, "Part_name", vec![30, 31], Column::from_strs(["bolt", "nut"]));

    db.register(
        "Supplier",
        Bat::with_inferred_props(Column::from_oids(vec![20, 21]), Column::void(0, 2)),
    );
    reg(&mut db, "Supplier_name", vec![20, 21], Column::from_strs(["S20", "S21"]));
    // supplies index: [supply_id, supplier_oid]
    reg(&mut db, "Supplier_supplies", vec![100, 101], Column::from_oids(vec![20, 20]));
    reg(&mut db, "Supplier_supplies_part", vec![100, 101], Column::from_oids(vec![30, 31]));
    reg(&mut db, "Supplier_supplies_cost", vec![100, 101], Column::from_dbls(vec![1.5, 2.5]));
    reg(&mut db, "Supplier_supplies_available", vec![100, 101], Column::from_ints(vec![0, 9]));

    Catalog::new(schema, db)
}

/// Compare the reference-evaluated and translated+executed results of a
/// MOA expression on the given catalog as order-insensitive value sets.
/// Panics with a readable message on mismatch.
pub fn assert_commutes(cat: &Catalog, q: &crate::algebra::SetExpr) {
    use crate::value::Value;
    let reference = crate::eval::Evaluator::new(cat)
        .eval_values(q)
        .unwrap_or_else(|e| panic!("reference eval failed for {}: {e}", q.render()));
    let translated = crate::translate::translate(cat, q)
        .unwrap_or_else(|e| panic!("translation failed for {}: {e}", q.render()));
    let ctx = monet::ctx::ExecCtx::new();
    let (set, _env) = translated
        .run(&ctx, cat.db())
        .unwrap_or_else(|e| panic!("execution failed for {}: {e}", q.render()));
    let got = set
        .materialize()
        .unwrap_or_else(|e| panic!("materialization failed for {}: {e}", q.render()));
    let lhs = Value::Set(reference);
    let rhs = Value::Set(got);
    assert!(
        lhs.approx_eq(&rhs, 1e-9),
        "commutativity violated for {}:\n  reference: {lhs}\n  translated: {rhs}\nMIL:\n{}",
        q.render(),
        translated.prog
    );
}
