//! The MOA logical data model (Section 3.1).
//!
//! MOA accepts all atomic types of Monet as base types (and inherits
//! Monet's base-type extensibility). Base types combine orthogonally with
//! the structure primitives `SET`, `TUPLE` and `OBJECT`. A MOA database is
//! the collection of class extents — sets, one per object class, holding
//! all instances.

use std::collections::BTreeMap;
use std::fmt;

use monet::atom::AtomType;

use crate::error::{MoaError, Result};

/// A MOA type (Section 3.3):
/// base types, tuple types `<τ1,…,τn>`, set types `{τ}` and object
/// references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoaType {
    /// An atomic Monet type.
    Base(AtomType),
    /// Tuple of named fields.
    Tuple(Vec<Field>),
    /// Homogeneous set.
    Set(Box<MoaType>),
    /// Reference to an object of the named class.
    Object(String),
}

impl MoaType {
    pub fn set_of(inner: MoaType) -> MoaType {
        MoaType::Set(Box::new(inner))
    }

    /// Look up a field type if this is a tuple.
    pub fn field(&self, name: &str) -> Option<&MoaType> {
        match self {
            MoaType::Tuple(fields) => fields.iter().find(|f| f.name == name).map(|f| &f.ty),
            _ => None,
        }
    }
}

impl fmt::Display for MoaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoaType::Base(t) => write!(f, "{t}"),
            MoaType::Tuple(fields) => {
                write!(f, "<")?;
                for (i, fld) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} : {}", fld.name, fld.ty)?;
                }
                write!(f, ">")
            }
            MoaType::Set(inner) => write!(f, "{{{inner}}}"),
            MoaType::Object(c) => write!(f, "{c}"),
        }
    }
}

/// A named field of a tuple or class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: MoaType,
}

impl Field {
    pub fn new(name: &str, ty: MoaType) -> Field {
        Field { name: name.to_string(), ty }
    }
}

/// A class definition (Figure 1 shows the TPC-D classes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    pub name: String,
    pub fields: Vec<Field>,
}

impl ClassDef {
    pub fn new(name: &str, fields: Vec<Field>) -> ClassDef {
        ClassDef { name: name.to_string(), fields }
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class {} <", self.name)?;
        for (i, fld) in self.fields.iter().enumerate() {
            let sep = if i + 1 == self.fields.len() { " >;" } else { "," };
            writeln!(f, "    {:<14}: {}{}", fld.name, fld.ty, sep)?;
        }
        Ok(())
    }
}

/// A MOA schema: the set of class definitions.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: BTreeMap<String, ClassDef>,
}

impl Schema {
    pub fn new() -> Schema {
        Schema::default()
    }

    pub fn add_class(&mut self, def: ClassDef) {
        self.classes.insert(def.name.clone(), def);
    }

    pub fn class(&self, name: &str) -> Result<&ClassDef> {
        self.classes.get(name).ok_or_else(|| MoaError::UnknownClass(name.to_string()))
    }

    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Resolve an attribute path starting from a class: `order.clerk` from
    /// `Item` navigates the `order` reference into `Order` and ends at the
    /// base-typed `clerk`. Returns the sequence of visited field types.
    pub fn resolve_path<'a>(&'a self, class: &str, path: &[String]) -> Result<Vec<&'a MoaType>> {
        let mut out = Vec::with_capacity(path.len());
        let mut cur_class = class.to_string();
        for (i, seg) in path.iter().enumerate() {
            let def = self.class(&cur_class)?;
            let field = def.field(seg).ok_or_else(|| MoaError::UnknownAttr {
                class: cur_class.clone(),
                attr: seg.clone(),
            })?;
            out.push(&field.ty);
            match &field.ty {
                MoaType::Object(c) => cur_class = c.clone(),
                _ if i + 1 < path.len() => {
                    return Err(MoaError::NotNavigable { class: cur_class, attr: seg.clone() });
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_schema() -> Schema {
        let mut s = Schema::new();
        s.add_class(ClassDef::new(
            "Order",
            vec![
                Field::new("clerk", MoaType::Base(AtomType::Str)),
                Field::new("orderdate", MoaType::Base(AtomType::Date)),
            ],
        ));
        s.add_class(ClassDef::new(
            "Item",
            vec![
                Field::new("order", MoaType::Object("Order".into())),
                Field::new("extendedprice", MoaType::Base(AtomType::Dbl)),
            ],
        ));
        s
    }

    #[test]
    fn class_lookup() {
        let s = mini_schema();
        assert!(s.class("Item").is_ok());
        assert!(s.class("Nope").is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn path_navigation() {
        let s = mini_schema();
        let tys = s.resolve_path("Item", &["order".into(), "clerk".into()]).unwrap();
        assert_eq!(tys.len(), 2);
        assert_eq!(tys[1], &MoaType::Base(AtomType::Str));
    }

    #[test]
    fn path_through_base_type_fails() {
        let s = mini_schema();
        assert!(s.resolve_path("Item", &["extendedprice".into(), "x".into()]).is_err());
        assert!(s.resolve_path("Item", &["missing".into()]).is_err());
    }

    #[test]
    fn display_forms() {
        let s = mini_schema();
        let printed = s.class("Item").unwrap().to_string();
        assert!(printed.contains("class Item <"));
        assert!(printed.contains("order"));
        let set_ty = MoaType::set_of(MoaType::Tuple(vec![Field::new(
            "part",
            MoaType::Object("Part".into()),
        )]));
        assert_eq!(set_ty.to_string(), "{<part : Part>}");
    }
}
