//! The MOA query algebra (Section 4.1).
//!
//! A standard object algebra: `select`, `project`, `join`, set operations,
//! `nest`/`unnest`, aggregates, attribute access on tuples and objects,
//! operations on atomic types and (multiplexed) method invocation. The AST
//! here is the translator's source language; the paper's example
//!
//! ```text
//! project[<date : year, sum(project[revenue](%2)) : loss>](
//!   nest[date](
//!     project[<year(order.orderdate) : date,
//!              *(extendedprice, -(1.0, discount)) : revenue>](
//!       select[=(order.clerk, "Clerk#000000088"), =(returnflag, 'R')](Item))))
//! ```
//!
//! is built with the constructors of this module (see `queries::q13`).

use monet::atom::AtomValue;
use monet::ops::{AggFunc, ScalarFunc};

/// A set-producing MOA expression.
#[derive(Debug, Clone)]
pub enum SetExpr {
    /// A class extent: the set of all instances of a class.
    Extent(String),
    /// `select[pred](input)`: `{x | x ∈ input ∧ pred(x)}`.
    Select { input: Box<SetExpr>, pred: Pred },
    /// `project[<e1 : n1, …>](input)`: map every element to a tuple.
    Project { input: Box<SetExpr>, items: Vec<ProjItem> },
    /// `nest[k1, …, kn](input)`: group elements by the key expressions;
    /// each result element is the tuple `<k1, …, kn, rest>` where `rest`
    /// (under [`SetExpr::nest_rest_name`]) is the set of grouped elements.
    Nest { input: Box<SetExpr>, keys: Vec<ProjItem> },
    /// Set union (by element identity).
    Union(Box<SetExpr>, Box<SetExpr>),
    /// Set difference (by element identity).
    Diff(Box<SetExpr>, Box<SetExpr>),
    /// Set intersection (by element identity).
    Intersect(Box<SetExpr>, Box<SetExpr>),
    /// The `n` elements with the largest (`desc`) or smallest value of
    /// `by`. An ordering extension of the algebra for the TPC-D top-k
    /// reports (Q3, Q10, Q15).
    Top { input: Box<SetExpr>, by: Scalar, n: usize, desc: bool },
    /// Equi-join: pairs `<l : lname, r : rname>` of elements with equal
    /// key values.
    JoinEq {
        left: Box<SetExpr>,
        right: Box<SetExpr>,
        lkey: Scalar,
        rkey: Scalar,
        lname: String,
        rname: String,
    },
    /// Semijoin: elements of `left` whose `lkey` occurs among the `rkey`
    /// values of `right`.
    SemijoinEq { left: Box<SetExpr>, right: Box<SetExpr>, lkey: Scalar, rkey: Scalar },
    /// Unnest a set-valued field: `{<x, m> | x ∈ input ∧ m ∈ x.attr}` —
    /// each result element is the tuple `<outer : oname, member : mname>`.
    Unnest { input: Box<SetExpr>, attr: SetValued, oname: String, mname: String },
}

/// The field name under which [`SetExpr::Nest`] stores the grouped set.
pub const NEST_REST: &str = "rest";

/// One projection item: an expression and its result name.
#[derive(Debug, Clone)]
pub struct ProjItem {
    pub name: String,
    pub expr: Expr,
}

impl ProjItem {
    pub fn new(name: &str, expr: impl Into<Expr>) -> ProjItem {
        ProjItem { name: name.to_string(), expr: expr.into() }
    }
}

/// An element-level expression: scalar- or set-valued.
#[derive(Debug, Clone)]
pub enum Expr {
    Scalar(Scalar),
    SetV(SetValued),
}

impl From<Scalar> for Expr {
    fn from(s: Scalar) -> Expr {
        Expr::Scalar(s)
    }
}

impl From<SetValued> for Expr {
    fn from(s: SetValued) -> Expr {
        Expr::SetV(s)
    }
}

/// A scalar expression over one element of a set.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// Attribute access / navigation: `order.clerk` dereferences object
    /// references; on tuple elements the first segment is a field name.
    Attr(Vec<String>),
    /// The element itself — its object identity for object elements, its
    /// value for atomic elements.
    This,
    /// A literal.
    Lit(AtomValue),
    /// A bound query parameter: behaves exactly like `Lit(value)` when
    /// evaluated or translated, but additionally identifies *which*
    /// substitution parameter the value came from. Plans translated from
    /// parameterized expressions record where each parameter landed, so a
    /// plan cache can re-bind new values without re-translating; the cache
    /// key hashes `id` and the value's type but not the value itself.
    Param { id: u32, value: AtomValue },
    /// Binary operation on atomic values (`+ - * / = < …`).
    Bin(ScalarFunc, Box<Scalar>, Box<Scalar>),
    /// Unary operation (`year`, `month`, `not`, `neg`).
    Un(ScalarFunc, Box<Scalar>),
    /// Aggregate over a set-valued expression: `sum(project[e](%rest))`.
    Agg(AggFunc, Box<SetValued>),
}

/// A set-valued expression over one element of a set (a nested set).
#[derive(Debug, Clone)]
pub enum SetValued {
    /// Path to a set-valued attribute (`supplies`, or `rest` after nest).
    Attr(Vec<String>),
    /// `select[pred](s)` on a nested set — executed flat (Section 4.3.2).
    SelectIn(Box<SetValued>, Box<Pred>),
    /// `project[e](s)` on a nested set, single-item form.
    ProjectIn(Box<SetValued>, Box<Scalar>),
}

/// A selection predicate.
#[derive(Debug, Clone)]
pub enum Pred {
    /// Comparison of two scalars with `= != < <= > >=` or the string
    /// predicates.
    Cmp(ScalarFunc, Scalar, Scalar),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

// ---------------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------------

/// Attribute path: `attr("order.clerk")`.
pub fn attr(path: &str) -> Scalar {
    Scalar::Attr(path.split('.').map(str::to_string).collect())
}

/// Set-valued attribute path: `sattr("supplies")`.
pub fn sattr(path: &str) -> SetValued {
    SetValued::Attr(path.split('.').map(str::to_string).collect())
}

/// The element itself (object identity).
pub fn this() -> Scalar {
    Scalar::This
}

pub fn lit(v: AtomValue) -> Scalar {
    Scalar::Lit(v)
}

/// A bound query parameter: a literal that remembers its parameter id so
/// prepared plans can be re-bound without re-translation.
pub fn prm(id: u32, v: AtomValue) -> Scalar {
    Scalar::Param { id, value: v }
}

pub fn lit_i(v: i32) -> Scalar {
    Scalar::Lit(AtomValue::Int(v))
}

pub fn lit_d(v: f64) -> Scalar {
    Scalar::Lit(AtomValue::Dbl(v))
}

pub fn lit_s(v: &str) -> Scalar {
    Scalar::Lit(AtomValue::str(v))
}

pub fn lit_c(v: char) -> Scalar {
    Scalar::Lit(AtomValue::Chr(v as u8))
}

pub fn lit_date(y: i32, m: u32, d: u32) -> Scalar {
    Scalar::Lit(AtomValue::Date(monet::atom::Date::from_ymd(y, m, d)))
}

pub fn bin(op: ScalarFunc, l: Scalar, r: Scalar) -> Scalar {
    Scalar::Bin(op, Box::new(l), Box::new(r))
}

pub fn un(op: ScalarFunc, x: Scalar) -> Scalar {
    Scalar::Un(op, Box::new(x))
}

pub fn agg(f: AggFunc, s: SetValued) -> Scalar {
    Scalar::Agg(f, Box::new(s))
}

/// `sum(project[item](set))` — the common aggregate-over-projection form.
pub fn agg_over(f: AggFunc, set: SetValued, item: Scalar) -> Scalar {
    Scalar::Agg(f, Box::new(SetValued::ProjectIn(Box::new(set), Box::new(item))))
}

pub fn cmp(op: ScalarFunc, l: Scalar, r: Scalar) -> Pred {
    Pred::Cmp(op, l, r)
}

pub fn eq(l: Scalar, r: Scalar) -> Pred {
    Pred::Cmp(ScalarFunc::Eq, l, r)
}

pub fn and(l: Pred, r: Pred) -> Pred {
    Pred::And(Box::new(l), Box::new(r))
}

/// Conjunction of a list of predicates (panics on empty input).
pub fn and_all(preds: Vec<Pred>) -> Pred {
    let mut it = preds.into_iter();
    let first = it.next().expect("and_all of empty list");
    it.fold(first, and)
}

pub fn or(l: Pred, r: Pred) -> Pred {
    Pred::Or(Box::new(l), Box::new(r))
}

pub fn not(p: Pred) -> Pred {
    Pred::Not(Box::new(p))
}

impl SetExpr {
    pub fn extent(class: &str) -> SetExpr {
        SetExpr::Extent(class.to_string())
    }

    pub fn select(self, pred: Pred) -> SetExpr {
        SetExpr::Select { input: Box::new(self), pred }
    }

    pub fn project(self, items: Vec<ProjItem>) -> SetExpr {
        SetExpr::Project { input: Box::new(self), items }
    }

    /// `nest[keys](self)`; the grouped elements appear as the set-valued
    /// field [`NEST_REST`].
    pub fn nest(self, keys: Vec<ProjItem>) -> SetExpr {
        SetExpr::Nest { input: Box::new(self), keys }
    }

    pub fn union(self, other: SetExpr) -> SetExpr {
        SetExpr::Union(Box::new(self), Box::new(other))
    }

    pub fn diff(self, other: SetExpr) -> SetExpr {
        SetExpr::Diff(Box::new(self), Box::new(other))
    }

    pub fn intersect(self, other: SetExpr) -> SetExpr {
        SetExpr::Intersect(Box::new(self), Box::new(other))
    }

    pub fn top(self, by: Scalar, n: usize, desc: bool) -> SetExpr {
        SetExpr::Top { input: Box::new(self), by, n, desc }
    }

    pub fn join_eq(
        self,
        right: SetExpr,
        lkey: Scalar,
        rkey: Scalar,
        lname: &str,
        rname: &str,
    ) -> SetExpr {
        SetExpr::JoinEq {
            left: Box::new(self),
            right: Box::new(right),
            lkey,
            rkey,
            lname: lname.to_string(),
            rname: rname.to_string(),
        }
    }

    pub fn semijoin_eq(self, right: SetExpr, lkey: Scalar, rkey: Scalar) -> SetExpr {
        SetExpr::SemijoinEq { left: Box::new(self), right: Box::new(right), lkey, rkey }
    }

    pub fn unnest(self, attr: SetValued, oname: &str, mname: &str) -> SetExpr {
        SetExpr::Unnest {
            input: Box::new(self),
            attr,
            oname: oname.to_string(),
            mname: mname.to_string(),
        }
    }

    /// Render in the paper's textual notation (for documentation and the
    /// examples; not a parser round-trip).
    pub fn render(&self) -> String {
        match self {
            SetExpr::Extent(c) => c.clone(),
            SetExpr::Select { input, pred } => {
                format!("select[{}]({})", pred.render(), input.render())
            }
            SetExpr::Project { input, items } => {
                let inner: Vec<String> = items
                    .iter()
                    .map(|i| format!("{} : {}", render_expr(&i.expr), i.name))
                    .collect();
                format!("project[<{}>]({})", inner.join(", "), input.render())
            }
            SetExpr::Nest { input, keys } => {
                let ks: Vec<String> = keys.iter().map(|k| k.name.clone()).collect();
                format!("nest[{}]({})", ks.join(", "), input.render())
            }
            SetExpr::Union(a, b) => format!("union({}, {})", a.render(), b.render()),
            SetExpr::Diff(a, b) => format!("difference({}, {})", a.render(), b.render()),
            SetExpr::Intersect(a, b) => {
                format!("intersection({}, {})", a.render(), b.render())
            }
            SetExpr::Top { input, by, n, desc } => format!(
                "top[{} {}, {}]({})",
                by.render(),
                if *desc { "desc" } else { "asc" },
                n,
                input.render()
            ),
            SetExpr::JoinEq { left, right, lkey, rkey, .. } => format!(
                "join[{} = {}]({}, {})",
                lkey.render(),
                rkey.render(),
                left.render(),
                right.render()
            ),
            SetExpr::SemijoinEq { left, right, lkey, rkey } => format!(
                "semijoin[{} = {}]({}, {})",
                lkey.render(),
                rkey.render(),
                left.render(),
                right.render()
            ),
            SetExpr::Unnest { input, attr, .. } => {
                format!("unnest[{}]({})", attr.render(), input.render())
            }
        }
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Scalar(s) => s.render(),
        Expr::SetV(s) => s.render(),
    }
}

impl Scalar {
    pub fn render(&self) -> String {
        match self {
            Scalar::Attr(p) => format!("%{}", p.join(".")),
            Scalar::This => "%self".to_string(),
            Scalar::Lit(v) => v.to_string(),
            Scalar::Param { id, value } => format!("?{id}={value}"),
            Scalar::Bin(op, l, r) => {
                format!("{}({}, {})", op.mil_name(), l.render(), r.render())
            }
            Scalar::Un(op, x) => format!("{}({})", op.mil_name(), x.render()),
            Scalar::Agg(f, s) => format!("{}({})", f.name(), s.render()),
        }
    }
}

impl SetValued {
    pub fn render(&self) -> String {
        match self {
            SetValued::Attr(p) => format!("%{}", p.join(".")),
            SetValued::SelectIn(s, p) => {
                format!("select[{}]({})", p.render(), s.render())
            }
            SetValued::ProjectIn(s, e) => {
                format!("project[{}]({})", e.render(), s.render())
            }
        }
    }
}

impl Pred {
    pub fn render(&self) -> String {
        match self {
            Pred::Cmp(op, l, r) => {
                format!("{}({}, {})", op.mil_name(), l.render(), r.render())
            }
            Pred::And(a, b) => format!("{}, {}", a.render(), b.render()),
            Pred::Or(a, b) => format!("or({}, {})", a.render(), b.render()),
            Pred::Not(p) => format!("not({})", p.render()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's MOA rendering of TPC-D Q13 (Section 4.1).
    fn q13() -> SetExpr {
        SetExpr::extent("Item")
            .select(and(
                eq(attr("order.clerk"), lit_s("Clerk#000000088")),
                eq(attr("returnflag"), lit_c('R')),
            ))
            .project(vec![
                ProjItem::new("date", un(ScalarFunc::Year, attr("order.orderdate"))),
                ProjItem::new(
                    "revenue",
                    bin(
                        ScalarFunc::Mul,
                        attr("extendedprice"),
                        bin(ScalarFunc::Sub, lit_d(1.0), attr("discount")),
                    ),
                ),
            ])
            .nest(vec![ProjItem::new("date", attr("date"))])
            .project(vec![
                ProjItem::new("date", attr("date")),
                ProjItem::new("loss", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("revenue"))),
            ])
    }

    #[test]
    fn q13_renders_like_the_paper() {
        let q = q13();
        let text = q.render();
        assert!(text
            .contains("select[=(%order.clerk, \"Clerk#000000088\"), =(%returnflag, 'R')](Item)"));
        assert!(text.contains("nest[date]"));
        assert!(text.contains("sum(project[%revenue](%rest)) : loss"));
    }

    #[test]
    fn builders_compose() {
        let e = SetExpr::extent("Supplier").project(vec![
            ProjItem::new("name", attr("name")),
            ProjItem::new(
                "out_of_stock",
                Expr::SetV(SetValued::SelectIn(
                    Box::new(sattr("supplies")),
                    Box::new(eq(attr("available"), lit_i(0))),
                )),
            ),
        ]);
        let text = e.render();
        assert!(text.contains("select[=(%available, 0)](%supplies)"));
    }

    #[test]
    fn and_all_folds() {
        let p =
            and_all(vec![eq(lit_i(1), lit_i(1)), eq(lit_i(2), lit_i(2)), eq(lit_i(3), lit_i(3))]);
        assert!(matches!(p, Pred::And(..)));
    }
}
