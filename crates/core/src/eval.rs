//! Reference (denotational) evaluator for MOA expressions.
//!
//! Evaluates a [`SetExpr`] directly over materialized objects, scalar at a
//! time — the *logical algebra* path of Figure 6. The translator +
//! MIL-interpreter path must produce the same sets of values; the
//! commutativity tests (`tests/commutativity.rs`) machine-check
//! `S_Y(mil(X_1…X_n)) = moa(X)` on both hand-written and property-generated
//! databases.
//!
//! The evaluator is deliberately simple and allocation-happy: it is the
//! specification, not the fast path.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use monet::atom::{AtomValue, Oid};
use monet::ops::{apply_scalar, AggFunc};

use crate::algebra::{Expr, Pred, ProjItem, Scalar, SetExpr, SetValued, NEST_REST};
use crate::catalog::Catalog;
use crate::error::{MoaError, Result};
use crate::types::MoaType;
use crate::value::Value;

/// An evaluated element: structured value with named tuple fields and
/// object identity preserved.
#[derive(Debug, Clone)]
pub enum EV {
    Atom(AtomValue),
    Obj { class: String, oid: Oid },
    Tup(Vec<(String, EV)>),
    Set(Vec<(Oid, EV)>),
}

impl EV {
    /// Strip names and identity: convert into the comparison domain.
    pub fn to_value(&self) -> Value {
        match self {
            EV::Atom(a) => Value::Atom(a.clone()),
            EV::Obj { oid, .. } => Value::Ref(*oid),
            EV::Tup(fields) => Value::Tuple(fields.iter().map(|(_, v)| v.to_value()).collect()),
            EV::Set(members) => Value::Set(members.iter().map(|(_, v)| v.to_value()).collect()),
        }
    }

    fn field(&self, name: &str) -> Result<&EV> {
        match self {
            EV::Tup(fields) => fields
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .ok_or_else(|| MoaError::Type(format!("tuple has no field {name}"))),
            other => Err(MoaError::Type(format!("field access .{name} on non-tuple {other:?}"))),
        }
    }
}

type AttrMap = Rc<HashMap<Oid, AtomValue>>;
type SetMap = Rc<HashMap<Oid, Vec<Oid>>>;

/// Evaluation context: catalog plus memoized attribute maps.
pub struct Evaluator<'a> {
    cat: &'a Catalog,
    attr_maps: RefCell<HashMap<String, AttrMap>>,
    set_maps: RefCell<HashMap<String, SetMap>>,
    fresh: RefCell<Oid>,
}

impl<'a> Evaluator<'a> {
    pub fn new(cat: &'a Catalog) -> Evaluator<'a> {
        Evaluator {
            cat,
            attr_maps: RefCell::new(HashMap::new()),
            set_maps: RefCell::new(HashMap::new()),
            // Fresh ids for nest/join elements, far above object oids.
            fresh: RefCell::new(1 << 50),
        }
    }

    fn fresh_id(&self) -> Oid {
        let mut f = self.fresh.borrow_mut();
        *f += 1;
        *f
    }

    /// Evaluate to the set's members as `(id, value)` pairs.
    pub fn eval(&self, e: &SetExpr) -> Result<Vec<(Oid, EV)>> {
        match e {
            SetExpr::Extent(class) => {
                let extent = self.cat.extent(class)?;
                Ok((0..extent.len())
                    .map(|i| {
                        let oid = extent.head().oid_at(i);
                        (oid, EV::Obj { class: class.clone(), oid })
                    })
                    .collect())
            }
            SetExpr::Select { input, pred } => {
                let elems = self.eval(input)?;
                let mut out = Vec::new();
                for (id, ev) in elems {
                    if self.eval_pred(&ev, pred)? {
                        out.push((id, ev));
                    }
                }
                Ok(out)
            }
            SetExpr::Project { input, items } => {
                let elems = self.eval(input)?;
                elems.into_iter().map(|(id, ev)| Ok((id, self.project_one(&ev, items)?))).collect()
            }
            SetExpr::Nest { input, keys } => {
                let elems = self.eval(input)?;
                // Group by the canonicalized key tuple.
                let mut groups: Vec<(Vec<AtomValue>, Vec<(Oid, EV)>)> = Vec::new();
                let mut lookup: HashMap<String, usize> = HashMap::new();
                for (id, ev) in elems {
                    let mut kv = Vec::with_capacity(keys.len());
                    for k in keys {
                        match &k.expr {
                            Expr::Scalar(s) => kv.push(self.eval_scalar(&ev, s)?),
                            Expr::SetV(_) => {
                                return Err(MoaError::Type("nest keys must be scalar".into()))
                            }
                        }
                    }
                    let kstr = format!("{kv:?}");
                    let gi = *lookup.entry(kstr).or_insert_with(|| {
                        groups.push((kv.clone(), Vec::new()));
                        groups.len() - 1
                    });
                    groups[gi].1.push((id, ev));
                }
                Ok(groups
                    .into_iter()
                    .map(|(kv, members)| {
                        let mut fields: Vec<(String, EV)> = keys
                            .iter()
                            .zip(kv)
                            .map(|(k, v)| (k.name.clone(), EV::Atom(v)))
                            .collect();
                        fields.push((NEST_REST.to_string(), EV::Set(members)));
                        (self.fresh_id(), EV::Tup(fields))
                    })
                    .collect())
            }
            SetExpr::Union(a, b) => {
                let mut left = self.eval(a)?;
                let right = self.eval(b)?;
                let seen: std::collections::HashSet<Oid> = left.iter().map(|(id, _)| *id).collect();
                for (id, ev) in right {
                    if !seen.contains(&id) {
                        left.push((id, ev));
                    }
                }
                Ok(left)
            }
            SetExpr::Diff(a, b) => {
                let left = self.eval(a)?;
                let right: std::collections::HashSet<Oid> =
                    self.eval(b)?.into_iter().map(|(id, _)| id).collect();
                Ok(left.into_iter().filter(|(id, _)| !right.contains(id)).collect())
            }
            SetExpr::Intersect(a, b) => {
                let left = self.eval(a)?;
                let right: std::collections::HashSet<Oid> =
                    self.eval(b)?.into_iter().map(|(id, _)| id).collect();
                Ok(left.into_iter().filter(|(id, _)| right.contains(id)).collect())
            }
            SetExpr::Top { input, by, n, desc } => {
                let elems = self.eval(input)?;
                let mut keyed: Vec<(AtomValue, (Oid, EV))> = elems
                    .into_iter()
                    .map(|(id, ev)| Ok((self.eval_scalar(&ev, by)?, (id, ev))))
                    .collect::<Result<_>>()?;
                keyed.sort_by(|a, b| a.0.cmp_same_type(&b.0));
                if *desc {
                    keyed.reverse();
                }
                keyed.truncate(*n);
                Ok(keyed.into_iter().map(|(_, e)| e).collect())
            }
            SetExpr::JoinEq { left, right, lkey, rkey, lname, rname } => {
                let ls = self.eval(left)?;
                let rs = self.eval(right)?;
                let mut rkeys: HashMap<String, Vec<&(Oid, EV)>> = HashMap::new();
                let mut rkvals: Vec<(String, &(Oid, EV))> = Vec::new();
                for r in &rs {
                    let k = format!("{:?}", self.eval_scalar(&r.1, rkey)?);
                    rkvals.push((k, r));
                }
                for (k, r) in &rkvals {
                    rkeys.entry(k.clone()).or_default().push(r);
                }
                let mut out = Vec::new();
                for (_, lev) in &ls {
                    let k = format!("{:?}", self.eval_scalar(lev, lkey)?);
                    if let Some(matches) = rkeys.get(&k) {
                        for (_, rev) in matches.iter().map(|r| (&r.0, &r.1)) {
                            out.push((
                                self.fresh_id(),
                                EV::Tup(vec![
                                    (lname.clone(), lev.clone()),
                                    (rname.clone(), rev.clone()),
                                ]),
                            ));
                        }
                    }
                }
                Ok(out)
            }
            SetExpr::SemijoinEq { left, right, lkey, rkey } => {
                let ls = self.eval(left)?;
                let rs = self.eval(right)?;
                let mut rset = std::collections::HashSet::new();
                for (_, rev) in &rs {
                    rset.insert(format!("{:?}", self.eval_scalar(rev, rkey)?));
                }
                let mut out = Vec::new();
                for (id, lev) in ls {
                    if rset.contains(&format!("{:?}", self.eval_scalar(&lev, lkey)?)) {
                        out.push((id, lev));
                    }
                }
                Ok(out)
            }
            SetExpr::Unnest { input, attr, oname, mname } => {
                let elems = self.eval(input)?;
                let mut out = Vec::new();
                for (_, ev) in &elems {
                    let members = self.eval_setvalued(ev, attr)?;
                    for (_, mem) in members {
                        out.push((
                            self.fresh_id(),
                            EV::Tup(vec![(oname.clone(), ev.clone()), (mname.clone(), mem)]),
                        ));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Evaluate to plain values (ids stripped), the comparison form.
    pub fn eval_values(&self, e: &SetExpr) -> Result<Vec<Value>> {
        Ok(self.eval(e)?.into_iter().map(|(_, ev)| ev.to_value()).collect())
    }

    fn project_one(&self, ev: &EV, items: &[ProjItem]) -> Result<EV> {
        let mut fields = Vec::with_capacity(items.len());
        for item in items {
            let v = match &item.expr {
                Expr::Scalar(s) => self.eval_scalar_ev(ev, s)?,
                Expr::SetV(sv) => EV::Set(self.eval_setvalued(ev, sv)?),
            };
            fields.push((item.name.clone(), v));
        }
        Ok(EV::Tup(fields))
    }

    /// Scalar evaluation preserving object-ness (an attr path ending at a
    /// reference yields `EV::Obj`).
    fn eval_scalar_ev(&self, ev: &EV, s: &Scalar) -> Result<EV> {
        match s {
            Scalar::Attr(path) => self.walk_path(ev, path),
            _ => Ok(EV::Atom(self.eval_scalar(ev, s)?)),
        }
    }

    /// Scalar evaluation to an atomic value.
    fn eval_scalar(&self, ev: &EV, s: &Scalar) -> Result<AtomValue> {
        match s {
            Scalar::Attr(path) => match self.walk_path(ev, path)? {
                EV::Atom(a) => Ok(a),
                EV::Obj { oid, .. } => Ok(AtomValue::Oid(oid)),
                other => Err(MoaError::Type(format!(
                    "attribute %{} is not scalar: {other:?}",
                    path.join(".")
                ))),
            },
            Scalar::This => match ev {
                EV::Obj { oid, .. } => Ok(AtomValue::Oid(*oid)),
                EV::Atom(a) => Ok(a.clone()),
                other => Err(MoaError::Type(format!("%self of non-scalar {other:?}"))),
            },
            Scalar::Lit(v) | Scalar::Param { value: v, .. } => Ok(v.clone()),
            Scalar::Bin(op, l, r) => {
                let lv = self.eval_scalar(ev, l)?;
                let rv = self.eval_scalar(ev, r)?;
                Ok(apply_scalar(*op, &[lv, rv])?)
            }
            Scalar::Un(op, x) => {
                let xv = self.eval_scalar(ev, x)?;
                Ok(apply_scalar(*op, &[xv])?)
            }
            Scalar::Agg(f, sv) => {
                let members = self.eval_setvalued(ev, sv)?;
                if *f == AggFunc::Count {
                    // count is shape-agnostic: it needs no atomic members.
                    return Ok(AtomValue::Lng(members.len() as i64));
                }
                let atoms: Vec<AtomValue> = members
                    .iter()
                    .map(|(_, m)| match m {
                        EV::Atom(a) => Ok(a.clone()),
                        other => Err(MoaError::Type(format!(
                            "aggregate over non-atomic members: {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?;
                aggregate_atoms(*f, &atoms)
            }
        }
    }

    fn eval_setvalued(&self, ev: &EV, sv: &SetValued) -> Result<Vec<(Oid, EV)>> {
        match sv {
            SetValued::Attr(path) => match self.walk_path(ev, path)? {
                EV::Set(members) => Ok(members),
                other => {
                    Err(MoaError::Type(format!("%{} is not set-valued: {other:?}", path.join("."))))
                }
            },
            SetValued::SelectIn(inner, pred) => {
                let members = self.eval_setvalued(ev, inner)?;
                let mut out = Vec::new();
                for (id, m) in members {
                    if self.eval_pred(&m, pred)? {
                        out.push((id, m));
                    }
                }
                Ok(out)
            }
            SetValued::ProjectIn(inner, item) => {
                let members = self.eval_setvalued(ev, inner)?;
                members
                    .into_iter()
                    .map(|(id, m)| Ok((id, self.eval_scalar_ev(&m, item)?)))
                    .collect()
            }
        }
    }

    fn eval_pred(&self, ev: &EV, pred: &Pred) -> Result<bool> {
        match pred {
            Pred::Cmp(op, l, r) => {
                let lv = self.eval_scalar(ev, l)?;
                let rv = self.eval_scalar(ev, r)?;
                match apply_scalar(*op, &[lv, rv])? {
                    AtomValue::Bool(b) => Ok(b),
                    other => {
                        Err(MoaError::Type(format!("predicate did not evaluate to bool: {other}")))
                    }
                }
            }
            Pred::And(a, b) => Ok(self.eval_pred(ev, a)? && self.eval_pred(ev, b)?),
            Pred::Or(a, b) => Ok(self.eval_pred(ev, a)? || self.eval_pred(ev, b)?),
            Pred::Not(p) => Ok(!self.eval_pred(ev, p)?),
        }
    }

    fn walk_path(&self, ev: &EV, path: &[String]) -> Result<EV> {
        let mut cur = ev.clone();
        for seg in path {
            cur = match cur {
                EV::Obj { class, oid } => self.object_attr(&class, oid, seg)?,
                EV::Tup(_) => cur.field(seg)?.clone(),
                other => {
                    return Err(MoaError::Type(format!("cannot navigate .{seg} into {other:?}")))
                }
            };
        }
        Ok(cur)
    }

    fn object_attr(&self, class: &str, oid: Oid, attr: &str) -> Result<EV> {
        let def = self.cat.schema().class(class)?;
        let field = def.field(attr).ok_or_else(|| MoaError::UnknownAttr {
            class: class.to_string(),
            attr: attr.to_string(),
        })?;
        match field.ty.clone() {
            MoaType::Base(_) => {
                let map = self.attr_map(class, attr)?;
                map.get(&oid).map(|v| EV::Atom(v.clone())).ok_or_else(|| {
                    MoaError::Structure(format!("object {oid} missing attr {class}.{attr}"))
                })
            }
            MoaType::Object(target) => {
                let map = self.attr_map(class, attr)?;
                let v = map.get(&oid).ok_or_else(|| {
                    MoaError::Structure(format!("object {oid} missing ref {class}.{attr}"))
                })?;
                let t = v
                    .as_oid()
                    .ok_or_else(|| MoaError::Type(format!("{class}.{attr} is not an oid")))?;
                Ok(EV::Obj { class: target, oid: t })
            }
            MoaType::Set(inner) => {
                let smap = self.set_map(class, attr)?;
                let members = smap.get(&oid).cloned().unwrap_or_default();
                let out: Result<Vec<(Oid, EV)>> = members
                    .into_iter()
                    .map(|mid| Ok((mid, self.member_ev(class, attr, &inner, mid)?)))
                    .collect();
                Ok(EV::Set(out?))
            }
            MoaType::Tuple(_) => {
                Err(MoaError::Type(format!("direct tuple attribute {class}.{attr} unsupported")))
            }
        }
    }

    fn member_ev(&self, class: &str, attr: &str, ty: &MoaType, mid: Oid) -> Result<EV> {
        match ty {
            MoaType::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields {
                    let key = format!("{class}.{attr}.{}", f.name);
                    let map = self.member_map(&key, class, attr, &f.name)?;
                    let v = map.get(&mid).ok_or_else(|| {
                        MoaError::Structure(format!("member {mid} missing field {key}"))
                    })?;
                    let ev = match &f.ty {
                        MoaType::Object(c) => EV::Obj {
                            class: c.clone(),
                            oid: v
                                .as_oid()
                                .ok_or_else(|| MoaError::Type(format!("{key} is not an oid")))?,
                        },
                        _ => EV::Atom(v.clone()),
                    };
                    out.push((f.name.clone(), ev));
                }
                Ok(EV::Tup(out))
            }
            MoaType::Object(c) => {
                let key = format!("{class}.{attr}.ref");
                let map = self.member_map(&key, class, attr, "ref")?;
                let v = map
                    .get(&mid)
                    .ok_or_else(|| MoaError::Structure(format!("member {mid} missing {key}")))?;
                Ok(EV::Obj { class: c.clone(), oid: v.as_oid().unwrap_or_default() })
            }
            MoaType::Base(_) => {
                let key = format!("{class}.{attr}.val");
                let map = self.member_map(&key, class, attr, "val")?;
                let v = map
                    .get(&mid)
                    .ok_or_else(|| MoaError::Structure(format!("member {mid} missing {key}")))?;
                Ok(EV::Atom(v.clone()))
            }
            other => Err(MoaError::Type(format!("unsupported member type {other}"))),
        }
    }

    fn attr_map(&self, class: &str, attr: &str) -> Result<AttrMap> {
        let key = format!("{class}.{attr}");
        if let Some(m) = self.attr_maps.borrow().get(&key) {
            return Ok(Rc::clone(m));
        }
        let bat = self.cat.attr(class, attr)?;
        let mut map = HashMap::with_capacity(bat.len());
        for i in 0..bat.len() {
            map.insert(bat.head().oid_at(i), bat.tail().get(i));
        }
        let rc = Rc::new(map);
        self.attr_maps.borrow_mut().insert(key, Rc::clone(&rc));
        Ok(rc)
    }

    fn member_map(&self, key: &str, class: &str, attr: &str, field: &str) -> Result<AttrMap> {
        if let Some(m) = self.attr_maps.borrow().get(key) {
            return Ok(Rc::clone(m));
        }
        let bat = self.cat.member_field(class, attr, field)?;
        let mut map = HashMap::with_capacity(bat.len());
        for i in 0..bat.len() {
            map.insert(bat.head().oid_at(i), bat.tail().get(i));
        }
        let rc = Rc::new(map);
        self.attr_maps.borrow_mut().insert(key.to_string(), Rc::clone(&rc));
        Ok(rc)
    }

    fn set_map(&self, class: &str, attr: &str) -> Result<SetMap> {
        let key = format!("{class}.{attr}");
        if let Some(m) = self.set_maps.borrow().get(&key) {
            return Ok(Rc::clone(m));
        }
        let bat = self.cat.set_index(class, attr)?;
        let mut map: HashMap<Oid, Vec<Oid>> = HashMap::new();
        for i in 0..bat.len() {
            let elem = bat.head().oid_at(i);
            let owner = bat.tail().oid_at(i);
            map.entry(owner).or_default().push(elem);
        }
        let rc = Rc::new(map);
        self.set_maps.borrow_mut().insert(key, Rc::clone(&rc));
        Ok(rc)
    }
}

/// Aggregate a list of atoms with the same widening rules as the kernel's
/// [`monet::ops::aggr_scalar`] (sum over int/lng → lng, over dbl → dbl;
/// avg → dbl; count → lng).
pub fn aggregate_atoms(f: AggFunc, atoms: &[AtomValue]) -> Result<AtomValue> {
    use monet::atom::AtomType;
    match f {
        AggFunc::Count => Ok(AtomValue::Lng(atoms.len() as i64)),
        AggFunc::Sum => match atoms.first().map(AtomValue::atom_type) {
            None => Ok(AtomValue::Lng(0)),
            Some(AtomType::Int) | Some(AtomType::Lng) => {
                let mut s: i64 = 0;
                for a in atoms {
                    s += match a {
                        AtomValue::Int(v) => *v as i64,
                        AtomValue::Lng(v) => *v,
                        other => return Err(MoaError::Type(format!("sum over {other}"))),
                    };
                }
                Ok(AtomValue::Lng(s))
            }
            Some(AtomType::Dbl) => {
                let mut s = 0.0;
                for a in atoms {
                    s += a.as_f64().ok_or_else(|| MoaError::Type("sum over non-number".into()))?;
                }
                Ok(AtomValue::Dbl(s))
            }
            Some(t) => Err(MoaError::Type(format!("sum over {t}"))),
        },
        AggFunc::Avg => {
            if atoms.is_empty() {
                return Err(MoaError::Type("avg of empty set".into()));
            }
            let mut s = 0.0;
            for a in atoms {
                s += a.as_f64().ok_or_else(|| MoaError::Type("avg over non-number".into()))?;
            }
            Ok(AtomValue::Dbl(s / atoms.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&AtomValue> = None;
            for a in atoms {
                best = Some(match best {
                    None => a,
                    Some(b) => {
                        let c = a.cmp_same_type(b);
                        let better = if f == AggFunc::Min { c.is_lt() } else { c.is_gt() };
                        if better {
                            a
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned().ok_or_else(|| MoaError::Type("min/max of empty set".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::*;
    use crate::types::{ClassDef, Field, Schema};
    use monet::atom::AtomType;
    use monet::bat::Bat;
    use monet::column::Column;
    use monet::db::Db;
    use monet::ops::ScalarFunc;

    fn catalog() -> Catalog {
        let mut schema = Schema::new();
        schema.add_class(ClassDef::new(
            "Order",
            vec![
                Field::new("clerk", MoaType::Base(AtomType::Str)),
                Field::new("total", MoaType::Base(AtomType::Dbl)),
            ],
        ));
        schema.add_class(ClassDef::new(
            "Item",
            vec![
                Field::new("order", MoaType::Object("Order".into())),
                Field::new("price", MoaType::Base(AtomType::Dbl)),
                Field::new("flag", MoaType::Base(AtomType::Chr)),
            ],
        ));
        let mut db = Db::new();
        db.register("Order", Bat::new(Column::from_oids(vec![1, 2]), Column::void(0, 2)));
        db.register(
            "Order_clerk",
            Bat::new(Column::from_oids(vec![1, 2]), Column::from_strs(["c1", "c2"])),
        );
        db.register(
            "Order_total",
            Bat::new(Column::from_oids(vec![1, 2]), Column::from_dbls(vec![10.0, 20.0])),
        );
        db.register("Item", Bat::new(Column::from_oids(vec![10, 11, 12, 13]), Column::void(0, 4)));
        db.register(
            "Item_order",
            Bat::new(Column::from_oids(vec![10, 11, 12, 13]), Column::from_oids(vec![1, 1, 2, 2])),
        );
        db.register(
            "Item_price",
            Bat::new(
                Column::from_oids(vec![10, 11, 12, 13]),
                Column::from_dbls(vec![5.0, 7.0, 11.0, 13.0]),
            ),
        );
        db.register(
            "Item_flag",
            Bat::new(
                Column::from_oids(vec![10, 11, 12, 13]),
                Column::from_chrs(vec![b'R', b'N', b'R', b'R']),
            ),
        );
        Catalog::new(schema, db)
    }

    #[test]
    fn extent_and_select() {
        let cat = catalog();
        let ev = Evaluator::new(&cat);
        let q = SetExpr::extent("Item").select(eq(attr("flag"), lit_c('R')));
        let r = ev.eval(&q).unwrap();
        let ids: Vec<Oid> = r.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![10, 12, 13]);
    }

    #[test]
    fn navigation_through_reference() {
        let cat = catalog();
        let ev = Evaluator::new(&cat);
        let q = SetExpr::extent("Item").select(eq(attr("order.clerk"), lit_s("c2")));
        let r = ev.eval(&q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn project_and_arith() {
        let cat = catalog();
        let ev = Evaluator::new(&cat);
        let q = SetExpr::extent("Item").project(vec![
            ProjItem::new("double_price", bin(ScalarFunc::Mul, attr("price"), lit_d(2.0))),
            ProjItem::new("ord", attr("order")),
        ]);
        let vals = ev.eval_values(&q).unwrap();
        assert_eq!(vals.len(), 4);
        assert_eq!(vals[0], Value::Tuple(vec![Value::Atom(AtomValue::Dbl(10.0)), Value::Ref(1)]));
    }

    #[test]
    fn nest_groups_and_aggregates() {
        let cat = catalog();
        let ev = Evaluator::new(&cat);
        let q = SetExpr::extent("Item")
            .project(vec![
                ProjItem::new("clerk", attr("order.clerk")),
                ProjItem::new("price", attr("price")),
            ])
            .nest(vec![ProjItem::new("clerk", attr("clerk"))])
            .project(vec![
                ProjItem::new("clerk", attr("clerk")),
                ProjItem::new("total", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("price"))),
            ]);
        let mut vals = ev.eval_values(&q).unwrap();
        vals.sort_by(|a, b| a.cmp_canonical(b));
        assert_eq!(vals.len(), 2);
        assert!(vals.iter().any(|v| {
            matches!(v, Value::Tuple(f) if f[0] == Value::Atom(AtomValue::str("c1"))
                && f[1] == Value::Atom(AtomValue::Dbl(12.0)))
        }));
        assert!(vals.iter().any(|v| {
            matches!(v, Value::Tuple(f) if f[0] == Value::Atom(AtomValue::str("c2"))
                && f[1] == Value::Atom(AtomValue::Dbl(24.0)))
        }));
    }

    #[test]
    fn top_and_setops() {
        let cat = catalog();
        let ev = Evaluator::new(&cat);
        let cheap = SetExpr::extent("Item").select(cmp(ScalarFunc::Lt, attr("price"), lit_d(10.0)));
        let flagged = SetExpr::extent("Item").select(eq(attr("flag"), lit_c('R')));
        let union = cheap.clone().union(flagged.clone());
        assert_eq!(ev.eval(&union).unwrap().len(), 4); // 10,11 ∪ 10,12,13
        let inter = cheap.clone().intersect(flagged.clone());
        assert_eq!(ev.eval(&inter).unwrap().len(), 1); // 10
        let diff = flagged.clone().diff(cheap);
        assert_eq!(ev.eval(&diff).unwrap().len(), 2); // 12,13
        let top2 = SetExpr::extent("Item").top(attr("price"), 2, true);
        let ids: Vec<Oid> = ev.eval(&top2).unwrap().iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![13, 12]);
    }

    #[test]
    fn join_eq_pairs() {
        let cat = catalog();
        let ev = Evaluator::new(&cat);
        let q = SetExpr::extent("Item").join_eq(
            SetExpr::extent("Order"),
            attr("order"),
            attr(""),
            "item",
            "order",
        );
        // attr("") is invalid; use a self-key instead: order oid vs Order identity
        // — covered in the translator tests; here exercise SemijoinEq.
        let _ = q;
        let sj = SetExpr::extent("Order").semijoin_eq(
            SetExpr::extent("Item").select(eq(attr("flag"), lit_c('N'))),
            attr("clerk"),
            attr("order.clerk"),
        );
        let r = ev.eval(&sj).unwrap();
        assert_eq!(r.len(), 1); // only order 1 has an 'N' item
        assert_eq!(r[0].0, 1);
    }

    #[test]
    fn aggregate_atom_rules() {
        assert_eq!(
            aggregate_atoms(AggFunc::Sum, &[AtomValue::Int(2), AtomValue::Int(3)]).unwrap(),
            AtomValue::Lng(5)
        );
        assert_eq!(aggregate_atoms(AggFunc::Sum, &[]).unwrap(), AtomValue::Lng(0));
        assert!(aggregate_atoms(AggFunc::Min, &[]).is_err());
        assert_eq!(
            aggregate_atoms(AggFunc::Avg, &[AtomValue::Dbl(1.0), AtomValue::Dbl(3.0)]).unwrap(),
            AtomValue::Dbl(2.0)
        );
    }
}
