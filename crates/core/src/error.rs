//! Error type for the MOA layer.

use std::fmt;

/// Errors raised while building, translating or evaluating MOA expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum MoaError {
    /// Reference to a class the schema does not define.
    UnknownClass(String),
    /// Reference to an attribute a class does not define.
    UnknownAttr { class: String, attr: String },
    /// Attribute path navigated *through* a non-object attribute.
    NotNavigable { class: String, attr: String },
    /// The catalog is missing a BAT the decomposition requires.
    MissingBat(String),
    /// Expression is ill-typed for the operation.
    Type(String),
    /// Structure functions applied to non-synchronous value sets, a
    /// non-head-unique IVS BAT, or similar representation violations.
    Structure(String),
    /// An error bubbled up from the Monet kernel.
    Kernel(monet::error::MonetError),
}

impl fmt::Display for MoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoaError::UnknownClass(c) => write!(f, "unknown class {c}"),
            MoaError::UnknownAttr { class, attr } => {
                write!(f, "class {class} has no attribute {attr}")
            }
            MoaError::NotNavigable { class, attr } => {
                write!(f, "attribute {class}.{attr} is not an object reference")
            }
            MoaError::MissingBat(n) => write!(f, "catalog is missing BAT {n}"),
            MoaError::Type(s) => write!(f, "type error: {s}"),
            MoaError::Structure(s) => write!(f, "structure error: {s}"),
            MoaError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for MoaError {}

impl From<monet::error::MonetError> for MoaError {
    fn from(e: monet::error::MonetError) -> MoaError {
        MoaError::Kernel(e)
    }
}

/// Result alias for the MOA layer.
pub type Result<T> = std::result::Result<T, MoaError>;
