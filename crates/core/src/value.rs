//! Materialized MOA values and identified value sets.
//!
//! Section 3.3 defines the semantics of the structure functions in terms of
//! *identified value sets* (IVS): sets of `<id, value>` pairs with unique
//! identifiers. This module provides the concrete value domain `V_τ` used
//! by the reference evaluator and by the Figure 6 commutativity check —
//! the structure functions of [`crate::structure`] materialize BATs into
//! these values, and MOA operations have a direct denotational meaning on
//! them.

use std::cmp::Ordering;
use std::fmt;

use monet::atom::{AtomValue, Oid};

/// A materialized MOA value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A base-type value.
    Atom(AtomValue),
    /// A tuple; field order is the declaration order.
    Tuple(Vec<Value>),
    /// A set of member values. Stored as a vector; *set equality* is
    /// order-insensitive (see [`Value::canonicalize`]).
    Set(Vec<Value>),
    /// A reference to an object (its identity).
    Ref(Oid),
}

impl Value {
    pub fn atom(v: impl Into<AtomValue>) -> Value {
        Value::Atom(v.into())
    }

    /// Total order over values of the same shape, used to canonicalize
    /// sets for comparison. Sets compare by canonicalized members.
    pub fn cmp_canonical(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Atom(a), Value::Atom(b)) => {
                let ta = format!("{:?}", a.atom_type());
                let tb = format!("{:?}", b.atom_type());
                ta.cmp(&tb).then_with(|| {
                    if a.atom_type() == b.atom_type() {
                        a.cmp_same_type(b)
                    } else {
                        Ordering::Equal
                    }
                })
            }
            (Value::Ref(a), Value::Ref(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => a.len().cmp(&b.len()).then_with(|| {
                for (x, y) in a.iter().zip(b) {
                    let c = x.cmp_canonical(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                Ordering::Equal
            }),
            (Value::Set(a), Value::Set(b)) => {
                let mut ca = a.clone();
                let mut cb = b.clone();
                ca.sort_by(|x, y| x.cmp_canonical(y));
                cb.sort_by(|x, y| x.cmp_canonical(y));
                ca.len().cmp(&cb.len()).then_with(|| {
                    for (x, y) in ca.iter().zip(&cb) {
                        let c = x.cmp_canonical(y);
                        if c != Ordering::Equal {
                            return c;
                        }
                    }
                    Ordering::Equal
                })
            }
            // Mixed shapes: order by an arbitrary but fixed shape rank.
            _ => shape_rank(self).cmp(&shape_rank(other)),
        }
    }

    /// Recursively sort all set members so that structurally equal values
    /// compare equal with `==` regardless of member order.
    pub fn canonicalize(&mut self) {
        match self {
            Value::Atom(_) | Value::Ref(_) => {}
            Value::Tuple(fields) => fields.iter_mut().for_each(Value::canonicalize),
            Value::Set(members) => {
                members.iter_mut().for_each(Value::canonicalize);
                members.sort_by(|a, b| a.cmp_canonical(b));
            }
        }
    }

    /// Equality up to set-member order and float tolerance `eps` on
    /// doubles — the comparison the cross-checking tests use.
    pub fn approx_eq(&self, other: &Value, eps: f64) -> bool {
        match (self, other) {
            (Value::Atom(AtomValue::Dbl(a)), Value::Atom(AtomValue::Dbl(b))) => {
                (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
            }
            (Value::Atom(a), Value::Atom(b)) => a == b,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, eps))
            }
            (Value::Set(a), Value::Set(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                let mut ca = a.clone();
                let mut cb = b.clone();
                ca.iter_mut().for_each(Value::canonicalize);
                cb.iter_mut().for_each(Value::canonicalize);
                ca.sort_by(|x, y| x.cmp_canonical(y));
                cb.sort_by(|x, y| x.cmp_canonical(y));
                ca.iter().zip(&cb).all(|(x, y)| x.approx_eq(y, eps))
            }
            _ => false,
        }
    }
}

fn shape_rank(v: &Value) -> u8 {
    match v {
        Value::Atom(_) => 0,
        Value::Ref(_) => 1,
        Value::Tuple(_) => 2,
        Value::Set(_) => 3,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Ref(o) => write!(f, "&{o}"),
            Value::Tuple(fields) => {
                write!(f, "<")?;
                for (i, v) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            Value::Set(members) => {
                write!(f, "{{")?;
                for (i, v) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// An identified value set: `<id, value>` pairs with unique ids (Section
/// 3.3). Identifiers can be — and are — reused across different value
/// sets; that reuse is what *synchronous* value sets are about.
pub type Ivs = Vec<(Oid, Value)>;

/// Check the IVS invariant: identifiers are unique within the set.
pub fn ivs_ids_unique(ivs: &Ivs) -> bool {
    let mut ids: Vec<Oid> = ivs.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.windows(2).all(|w| w[0] != w[1])
}

/// Check that two IVSes are synchronous: each identifier in one has a
/// counterpart in the other and vice versa.
pub fn synchronous(a: &Ivs, b: &Ivs) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ia: Vec<Oid> = a.iter().map(|(id, _)| *id).collect();
    let mut ib: Vec<Oid> = b.iter().map(|(id, _)| *id).collect();
    ia.sort_unstable();
    ib.sort_unstable();
    ia == ib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_equality_is_order_insensitive() {
        let a = Value::Set(vec![Value::Atom(AtomValue::Int(1)), Value::Atom(AtomValue::Int(2))]);
        let b = Value::Set(vec![Value::Atom(AtomValue::Int(2)), Value::Atom(AtomValue::Int(1))]);
        assert_ne!(a, b); // raw vectors differ...
        let (mut ca, mut cb) = (a.clone(), b.clone());
        ca.canonicalize();
        cb.canonicalize();
        assert_eq!(ca, cb); // ...canonicalized they agree
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        let a = Value::Tuple(vec![Value::Atom(AtomValue::Dbl(100.0))]);
        let b = Value::Tuple(vec![Value::Atom(AtomValue::Dbl(100.0 + 1e-12))]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = Value::Tuple(vec![Value::Atom(AtomValue::Dbl(101.0))]);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn nested_set_canonicalization() {
        let a = Value::Set(vec![
            Value::Set(vec![Value::Atom(AtomValue::Int(3)), Value::Atom(AtomValue::Int(1))]),
            Value::Set(vec![Value::Atom(AtomValue::Int(2))]),
        ]);
        let b = Value::Set(vec![
            Value::Set(vec![Value::Atom(AtomValue::Int(2))]),
            Value::Set(vec![Value::Atom(AtomValue::Int(1)), Value::Atom(AtomValue::Int(3))]),
        ]);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn ivs_invariants() {
        let good: Ivs = vec![(1, Value::Ref(10)), (2, Value::Ref(20))];
        let bad: Ivs = vec![(1, Value::Ref(10)), (1, Value::Ref(20))];
        assert!(ivs_ids_unique(&good));
        assert!(!ivs_ids_unique(&bad));
        let other: Ivs = vec![(2, Value::Ref(9)), (1, Value::Ref(8))];
        assert!(synchronous(&good, &other));
        let third: Ivs = vec![(3, Value::Ref(9)), (1, Value::Ref(8))];
        assert!(!synchronous(&good, &third));
    }

    #[test]
    fn display() {
        let v =
            Value::Tuple(vec![Value::Atom(AtomValue::Int(1995)), Value::Set(vec![Value::Ref(7)])]);
        assert_eq!(v.to_string(), "<1995, {&7}>");
    }
}
