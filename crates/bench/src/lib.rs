//! Shared setup for the benchmark harness: one memoized TPC-D database per
//! process, scale factor taken from `FLATALG_SF` (default 0.01 for
//! Criterion micro benches; the figure binaries pick their own defaults).

use std::sync::OnceLock;

use moa::catalog::Catalog;
use relstore::RelDb;
use tpcd::{generate, load_bats, load_rowstore, LoadReport, TpcdData, TpcdError};
use tpcd_queries::Params;

/// The seed used by every harness, so numbers are reproducible.
pub const SEED: u64 = 19980223; // ICDE 1998

/// Read a scale factor from the environment.
pub fn sf_from_env(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

/// A fully loaded benchmark world.
pub struct World {
    pub data: TpcdData,
    pub cat: Catalog,
    pub rel: RelDb,
    pub params: Params,
    pub report: LoadReport,
}

impl World {
    pub fn build(sf: f64) -> World {
        let data = generate(sf, SEED);
        let (cat, report) = load_bats(&data);
        let rel = load_rowstore(&data);
        let params = Params::for_data(&data);
        World { data, cat, rel, params, report }
    }

    /// Persist this world's catalog into a store directory
    /// (see [`tpcd::save_catalog`]).
    pub fn save_store(&self, dir: &std::path::Path) -> Result<monet::store::WriteStats, TpcdError> {
        tpcd::save_catalog(dir, &self.cat, self.data.sf)
    }
}

/// A benchmark world opened from a persistent store directory: the mmapped
/// catalog plus the parameter set rebuilt from the recorded scale factor.
/// No generated rows and no rowstore oracle — build a [`World`] at the
/// same scale factor when an oracle is needed.
pub struct StoreWorld {
    pub cat: Catalog,
    pub params: Params,
    pub sf: f64,
    pub mapped_bytes: u64,
    pub files: usize,
    pub mmap: bool,
}

impl StoreWorld {
    pub fn open(dir: &std::path::Path) -> Result<StoreWorld, TpcdError> {
        StoreWorld::open_with(dir, &monet::store::OpenOptions::default())
    }

    pub fn open_with(
        dir: &std::path::Path,
        opts: &monet::store::OpenOptions,
    ) -> Result<StoreWorld, TpcdError> {
        let o = tpcd::open_catalog(dir, None, opts)?;
        Ok(StoreWorld {
            params: Params::for_sf(o.sf),
            cat: o.catalog,
            sf: o.sf,
            mapped_bytes: o.mapped_bytes,
            files: o.files,
            mmap: o.mmap,
        })
    }
}

static WORLD: OnceLock<World> = OnceLock::new();

/// The process-wide world at `FLATALG_SF` (default 0.01).
pub fn world() -> &'static World {
    WORLD.get_or_init(|| World::build(sf_from_env("FLATALG_SF", 0.01)))
}

/// Format a byte count as MB with one decimal.
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
