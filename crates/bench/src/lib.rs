//! Shared setup for the benchmark harness: one memoized TPC-D database per
//! process, scale factor taken from `FLATALG_SF` (default 0.01 for
//! Criterion micro benches; the figure binaries pick their own defaults).

use std::sync::OnceLock;

use moa::catalog::Catalog;
use relstore::RelDb;
use tpcd::{generate, load_bats, load_rowstore, LoadReport, TpcdData};
use tpcd_queries::Params;

/// The seed used by every harness, so numbers are reproducible.
pub const SEED: u64 = 19980223; // ICDE 1998

/// Read a scale factor from the environment.
pub fn sf_from_env(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

/// A fully loaded benchmark world.
pub struct World {
    pub data: TpcdData,
    pub cat: Catalog,
    pub rel: RelDb,
    pub params: Params,
    pub report: LoadReport,
}

impl World {
    pub fn build(sf: f64) -> World {
        let data = generate(sf, SEED);
        let (cat, report) = load_bats(&data);
        let rel = load_rowstore(&data);
        let params = Params::for_data(&data);
        World { data, cat, rel, params, report }
    }
}

static WORLD: OnceLock<World> = OnceLock::new();

/// The process-wide world at `FLATALG_SF` (default 0.01).
pub fn world() -> &'static World {
    WORLD.get_or_init(|| World::build(sf_from_env("FLATALG_SF", 0.01)))
}

/// Format a byte count as MB with one decimal.
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
