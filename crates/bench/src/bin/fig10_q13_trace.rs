//! Figure 10: the detailed Monet execution trace of Q13.
//!
//! Prints the translated MIL program and then a per-statement execution
//! table — elapsed ms, page faults, result size and the dynamically chosen
//! implementation (showing the datavector semijoins and synced
//! multiplexes the paper walks through in Section 6.2.1).
//!
//! Usage: `FLATALG_SF=0.02 cargo run --release -p bench --bin fig10_q13_trace`

use std::sync::Arc;

use bench::{sf_from_env, World};
use monet::ctx::ExecCtx;
use monet::pager::Pager;
use tpcd_queries::q11_15::q13_moa;

fn main() {
    let sf = sf_from_env("FLATALG_SF", 0.02);
    let w = World::build(sf);
    let q = q13_moa(&w.params);
    println!("# Figure 10 — Q13 detailed execution (SF={sf})\n");
    println!("MOA:\n  {}\n", q.render());

    let t = moa::translate::translate(&w.cat, &q).expect("translate");
    println!("MIL ({} statements):", t.prog.len());
    for line in t.prog.to_string().lines() {
        println!("  {line}");
    }

    let pager = Arc::new(Pager::new(4096));
    let ctx = ExecCtx::new().with_pager(Arc::clone(&pager)).with_trace();
    let env = monet::mil::execute(&ctx, w.cat.db(), &t.prog, &t.keep).expect("execute");

    println!("\n{:>9} {:>8} {:>9} {:>12}  statement", "ms", "faults", "result", "algorithm");
    for s in env.trace() {
        println!(
            "{:>9.3} {:>8} {:>9} {:>12}  {}",
            s.ms, s.faults, s.result_len, s.algo, s.rendered
        );
    }

    let set = t.build(&env).expect("structure");
    println!("\nresult structure: SET(INDEX, {})", set.inner.render());
    println!("result ({} groups):", set.len());
    for v in set.materialize().expect("materialize") {
        println!("  {v}");
    }
    println!("\ntotal faults: {}", pager.faults());
}
