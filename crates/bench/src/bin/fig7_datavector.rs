//! Figure 7: datavector creation through project and sort, on the actual
//! TPC-D Customer_name BAT — prints the before/after layouts and the
//! creation/reorder timings for every Item attribute.

use std::time::Instant;

use bench::{sf_from_env, World};
use monet::accel::datavector::Datavector;
use monet::ctx::ExecCtx;
use monet::ops;

fn main() {
    let sf = sf_from_env("FLATALG_SF", 0.01);
    let w = World::build(sf);
    println!("# Figure 7 — datavector creation (SF={sf})\n");

    let name = w.cat.db().get("Customer_name").expect("Customer_name");
    println!("Customer_name after load (tail-sorted inverted list):");
    print!("{}", name.dump(4));
    let dv = name.accel().datavector.as_ref().expect("datavector");
    println!("\nEXTENT (sorted oids) ++ VECTOR (values in oid order), synced:");
    for i in 0..4.min(dv.len()) {
        println!("  [ {} ]  [ {} ]", dv.extent().oids().get(i), dv.vector().get(i));
    }

    println!("\nper-attribute timings on Item ({} BUNs):", w.data.items.len());
    let ctx = ExecCtx::new();
    for attr in ["quantity", "extendedprice", "discount", "shipdate", "shipmode"] {
        let bat = w.cat.db().get(&format!("Item_{attr}")).unwrap();
        // Step 1 (Figure 7): create the datavector = projection while
        // oid-ordered. Reconstruct the oid order first to measure it.
        let t0 = Instant::now();
        let oid_ordered = ops::sort_head(&ctx, bat).unwrap();
        let resort_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _dv = Datavector::from_oid_ordered(&oid_ordered);
        let create_ms = t1.elapsed().as_secs_f64() * 1e3;
        // Step 2: sort on tail (the load already did; measure it fresh).
        let t2 = Instant::now();
        let _sorted = ops::sort_tail(&ctx, &oid_ordered).unwrap();
        let sort_ms = t2.elapsed().as_secs_f64() * 1e3;
        println!(
            "  Item_{attr:<14} create-dv {create_ms:>8.2} ms   sort-on-tail {sort_ms:>8.2} ms   (oid-resort {resort_ms:>8.2} ms)"
        );
    }
}
