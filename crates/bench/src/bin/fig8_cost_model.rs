//! Figure 8: select-project IO cost according to selectivity, relational
//! vs. datavector strategy.
//!
//! Prints the analytic series `E_rel(n=16)` and `E_dv(p ∈ {1,3,6,9,12})`
//! with the paper's parameters (X=6M, w=4, B=4096), the crossover points,
//! and — as validation — an *empirical* page-fault measurement of both
//! strategies on a generated table using the simulated pager.
//!
//! Usage: `cargo run --release -p bench --bin fig8_cost_model`
//! (env `FLATALG_FIG8_ROWS` overrides the empirical table size).

use monet::atom::AtomValue;
use monet::costmodel::{crossover, e_dv, e_rel, CostParams};
use monet::ctx::ExecCtx;
use monet::ops;
use monet::pager::Pager;
use std::sync::Arc;

fn analytic() {
    let p = CostParams::figure8();
    println!(
        "# Figure 8 (analytic) — X={} n={} w={} B={}",
        p.rows, p.n_attrs, p.width, p.page_size
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "selectivity", "E_rel", "E_dv(p=1)", "E_dv(p=3)", "E_dv(p=6)", "E_dv(p=9)", "E_dv(p=12)"
    );
    let mut s = 0.0;
    while s <= 0.0301 {
        println!(
            "{:>12.4} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            s,
            e_rel(&p, s),
            e_dv(&p, s, 1),
            e_dv(&p, s, 3),
            e_dv(&p, s, 6),
            e_dv(&p, s, 9),
            e_dv(&p, s, 12),
        );
        s += 0.0025;
    }
    println!();
    for proj in [1u32, 3, 6, 9, 12] {
        match crossover(&p, proj) {
            Some(x) => println!("crossover p={proj:<2}: s ≈ {x:.4}"),
            None => println!("crossover p={proj:<2}: none in (0, 0.5]"),
        }
    }
    println!("(paper: crossover for n=16, p=3 at s ≈ 0.004)\n");
}

/// Empirical validation: cold page faults of both strategies on a real
/// generated table, measured through the simulated pager.
fn empirical() {
    use monet::column::Column;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let rows: usize =
        std::env::var("FLATALG_FIG8_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(600_000);
    let n_attrs = 16usize;
    let mut rng = StdRng::seed_from_u64(bench::SEED);

    // n-ary table with int attributes (w=4) + inverted list on attr 0.
    let cols: Vec<(String, Column)> = (0..n_attrs)
        .map(|i| {
            (
                format!("a{i}"),
                Column::from_ints((0..rows).map(|_| rng.gen_range(0..1_000_000)).collect()),
            )
        })
        .collect();
    let mut rel = relstore::RelDb::new();
    rel.add_table(relstore::Table::new("t", cols.clone()));
    rel.build_index("t", "a0");

    // Decomposed: tail-sorted selection BAT + datavectors for 3 attrs.
    let extent = monet::accel::datavector::Extent::new(Column::from_oids(
        (0..rows as u64).map(|i| 1000 + i).collect(),
    ));
    let sel_vals = &cols[0].1;
    let perm = sel_vals.sort_perm();
    let mut sel_bat = monet::bat::Bat::with_props(
        extent.oids().gather(&perm),
        sel_vals.gather(&perm),
        monet::props::Props::new(monet::props::ColProps::KEY, monet::props::ColProps::SORTED),
    );
    sel_bat.set_datavector(Arc::new(monet::accel::datavector::Datavector::new(
        Arc::clone(&extent),
        sel_vals.clone(),
    )));
    let value_bats: Vec<monet::bat::Bat> = (1..=3)
        .map(|i| {
            let mut b = monet::bat::Bat::new(extent.oids().clone(), cols[i].1.clone());
            b.set_datavector(Arc::new(monet::accel::datavector::Datavector::new(
                Arc::clone(&extent),
                cols[i].1.clone(),
            )));
            b
        })
        .collect();

    println!("# Figure 8 (empirical, X={rows}, n={n_attrs}, p=3, B=4096)");
    println!("{:>12} {:>14} {:>14}", "selectivity", "faults_rel", "faults_dv");
    for s in [0.001, 0.002, 0.004, 0.008, 0.015, 0.03] {
        let hi = (1_000_000.0 * s) as i32;

        // Relational: inverted-list range + unclustered row fetches.
        let pager = Pager::new(4096);
        let rows_sel = relstore::select_rows(
            &rel,
            "t",
            "a0",
            &relstore::ColPred::Range {
                lo: Some(&AtomValue::Int(0)),
                hi: Some(&AtomValue::Int(hi)),
                inc_lo: true,
                inc_hi: false,
            },
            Some(&pager),
        );
        let _vals = relstore::fetch(&rel, "t", &rows_sel, Some(&pager), |t, r| t.int_v(1, r));
        let faults_rel = pager.faults();

        // Decomposed: binary-search select + 3 datavector semijoins.
        let pager = Arc::new(Pager::new(4096));
        let ctx = ExecCtx::new().with_pager(Arc::clone(&pager));
        extent.clear_lookup_memo();
        let sel = ops::select_range(
            &ctx,
            &sel_bat,
            Some(&AtomValue::Int(0)),
            Some(&AtomValue::Int(hi)),
            true,
            false,
        )
        .unwrap();
        let sel_sorted = ops::sort_head(&ctx, &sel).unwrap();
        for vb in &value_bats {
            let _ = ops::semijoin(&ctx, vb, &sel_sorted).unwrap();
        }
        println!("{s:>12.4} {faults_rel:>14} {:>14}", pager.faults());
    }
    println!("\n(shape check: E_dv wins at moderate selectivities, E_rel at tiny ones)");
}

fn main() {
    analytic();
    empirical();
}
