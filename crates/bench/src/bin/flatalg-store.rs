//! `flatalg-store` — build, verify, open and check persistent TPC-D stores.
//!
//! ```text
//! flatalg-store build --sf 1 /data/sf1      # generate + load + serialize
//! flatalg-store verify /data/sf1            # full checksum verification
//! flatalg-store open-bench /data/sf1        # O(1) open vs regenerate
//! flatalg-store check /data/sf1             # all 15 queries vs the oracle
//! ```
//!
//! `check` opens the store, rebuilds the n-ary oracle at the recorded
//! scale factor, and runs every query on both paths. A fresh `ExecCtx`
//! per query picks up `FLATALG_MEM_BUDGET` / `FLATALG_SPILL` from the
//! environment, so a low budget turns the run into the out-of-core
//! acceptance leg: the report shows how many bytes each query spilled.

use std::path::{Path, PathBuf};
use std::time::Instant;

use bench::{mb, StoreWorld, World, SEED};
use monet::ctx::ExecCtx;
use tpcd_queries::all_queries;

fn usage() -> ! {
    eprintln!(
        "usage: flatalg-store <build --sf <sf> | verify | open-bench | check [--eps <e>]> <dir>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let code = match cmd.as_str() {
        "build" => build(&args[1..]),
        "verify" => verify(&args[1..]),
        "open-bench" => open_bench(&args[1..]),
        "check" => check(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn dir_arg(args: &[String]) -> PathBuf {
    // Positionals are what remains after skipping each `--flag value` pair.
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            positional = Some(args[i].clone());
            i += 1;
        }
    }
    match positional {
        Some(d) => PathBuf::from(d),
        None => usage(),
    }
}

fn build(args: &[String]) -> i32 {
    let sf: f64 = flag(args, "--sf").and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
    let dir = dir_arg(args);
    println!("# flatalg-store build — SF {sf} -> {}", dir.display());
    let t0 = Instant::now();
    let w = World::build(sf);
    let gen_s = t0.elapsed().as_secs_f64();
    println!(
        "generated + loaded in {gen_s:.1} s ({} BATs, {:.1} MB base data)",
        w.report.bat_count,
        mb(w.report.base_bytes as u64)
    );
    let t1 = Instant::now();
    match w.save_store(&dir) {
        Ok(stats) => {
            println!(
                "wrote {} files, {:.1} MB in {:.1} s",
                stats.files,
                mb(stats.bytes),
                t1.elapsed().as_secs_f64()
            );
            0
        }
        Err(e) => {
            eprintln!("build failed: {e}");
            1
        }
    }
}

fn verify(args: &[String]) -> i32 {
    let dir = dir_arg(args);
    let t0 = Instant::now();
    match monet::store::verify_dir(&dir) {
        Ok((files, bytes)) => {
            println!(
                "ok: {} files, {:.1} MB verified in {:.2} s",
                files,
                mb(bytes),
                t0.elapsed().as_secs_f64()
            );
            0
        }
        Err(e) => {
            eprintln!("verification failed: {e}");
            1
        }
    }
}

fn open_store(dir: &Path) -> Result<(StoreWorld, f64), i32> {
    let t0 = Instant::now();
    match StoreWorld::open(dir) {
        Ok(sw) => Ok((sw, t0.elapsed().as_secs_f64())),
        Err(e) => {
            eprintln!("open failed: {e}");
            Err(1)
        }
    }
}

fn open_bench(args: &[String]) -> i32 {
    let dir = dir_arg(args);
    let (sw, open_s) = match open_store(&dir) {
        Ok(v) => v,
        Err(c) => return c,
    };
    println!(
        "open: {:.3} s — SF {}, {} files, {:.1} MB mapped (mmap: {})",
        open_s,
        sw.sf,
        sw.files,
        mb(sw.mapped_bytes),
        sw.mmap
    );
    let t1 = Instant::now();
    let data = tpcd::generate(sw.sf, SEED);
    let (cat, _) = tpcd::load_bats(&data);
    let gen_s = t1.elapsed().as_secs_f64();
    println!(
        "generate+load: {:.3} s ({} BATs) — open is {:.0}x faster",
        gen_s,
        cat.db().len(),
        gen_s / open_s.max(1e-9)
    );
    0
}

fn check(args: &[String]) -> i32 {
    let eps: f64 = flag(args, "--eps").and_then(|s| s.parse().ok()).unwrap_or(1e-6);
    let dir = dir_arg(args);
    let (sw, open_s) = match open_store(&dir) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let budget = std::env::var("FLATALG_MEM_BUDGET").unwrap_or_else(|_| "unlimited".into());
    println!("# flatalg-store check — SF {}, opened in {:.3} s, budget {}", sw.sf, open_s, budget);
    let t1 = Instant::now();
    let data = tpcd::generate(sw.sf, SEED);
    let rel = tpcd::load_rowstore(&data);
    println!("oracle rowstore rebuilt in {:.1} s", t1.elapsed().as_secs_f64());

    let mut failed = 0;
    let mut total_spilled = 0u64;
    println!(
        "\n{:>3} {:>10} {:>8} {:>9} {:>12} {:>7}",
        "Qx", "monet(ms)", "rows", "peak MB", "spilled MB", "match"
    );
    for q in all_queries() {
        let ref_out = (q.run_ref)(&rel, &sw.params, None);
        let ctx = ExecCtx::new();
        let t = Instant::now();
        let res = (q.run_moa)(&sw.cat, &ctx, &sw.params);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let spilled = ctx.mem.spilled_bytes();
        // Peak of the query's *last* MIL program — multi-statement drivers
        // (Q8/Q11/Q14) restart the window per program, so this is a floor.
        let peak = ctx.mem.charged_peak();
        total_spilled += spilled;
        match res {
            Ok(rows) => {
                let ok = rows.approx_eq(&ref_out.rows, eps);
                if !ok {
                    failed += 1;
                    eprintln!(
                        "Q{}: MISMATCH ({} rows vs {} oracle rows)\nmonet:\n{}oracle:\n{}",
                        q.id,
                        rows.len(),
                        ref_out.rows.len(),
                        rows.preview(5),
                        ref_out.rows.preview(5)
                    );
                }
                println!(
                    "{:>3} {:>10.1} {:>8} {:>9.1} {:>12.1} {:>7}",
                    format!("Q{}", q.id),
                    ms,
                    rows.len(),
                    mb(peak),
                    mb(spilled),
                    if ok { "ok" } else { "FAIL" }
                );
            }
            Err(e) => {
                failed += 1;
                println!(
                    "{:>3} {:>10.1} {:>8} {:>9.1} {:>12.1} {:>7}  {e}",
                    format!("Q{}", q.id),
                    ms,
                    "-",
                    mb(peak),
                    mb(spilled),
                    "ERROR"
                );
            }
        }
    }
    println!(
        "\n{} spilled {:.1} MB total across the run",
        if total_spilled > 0 { "out-of-core:" } else { "in-memory:" },
        mb(total_spilled)
    );
    if failed > 0 {
        eprintln!("{failed} queries failed");
        1
    } else {
        println!("all 15 queries match the oracle (eps {eps})");
        0
    }
}
