//! Machine-readable kernel performance report.
//!
//! Runs the core kernels of the four Criterion bench groups (`primitives`,
//! `semijoin`, `group_aggregate`, `q13`) with a plain `Instant` harness and
//! writes `BENCH_kernels.json` — op name → ns/row and rows/s — so successive
//! PRs have a perf trajectory to compare against. The JSON format is
//! documented in the repository README under "Performance tracking".
//!
//! Scale comes from `FLATALG_SF` (default 0.01): synthetic kernel inputs are
//! sized like the scale factor's lineitem table, and the `q13` entry runs
//! the full query against the memoized `bench::World`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{sf_from_env, world};
use monet::accel::datavector::{Datavector, Extent};
use monet::accel::hash::HashIndex;
use monet::atom::{AtomValue, Date};
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One measured kernel.
struct Rec {
    name: &'static str,
    rows: usize,
    ns_per_row: f64,
    rows_per_sec: f64,
}

/// The checked-in perf trajectory: kernel name → baseline ns/row, parsed
/// from a previous `BENCH_kernels.json` (the repo root holds a committed
/// SF 0.01 baseline). Hand-rolled scan of the format this binary writes —
/// no JSON dependency in the container.
struct Baseline {
    sf: f64,
    /// Thread count of the recording (0 for pre-parallel baselines that
    /// lack the field).
    threads: usize,
    /// Host CPU count of the recording (0 for baselines that predate the
    /// field). A `threads` value above `cpus` means the `par/*-par` lines
    /// were recorded oversubscribed — real workers, fake parallelism.
    cpus: usize,
    ns_per_row: std::collections::HashMap<String, f64>,
}

fn read_baseline(path: &str) -> Option<Baseline> {
    let text = std::fs::read_to_string(path).ok()?;
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\":"))?;
        let rest = line[at..].split_once(':')?.1;
        let rest = rest.trim_start();
        Some(if let Some(s) = rest.strip_prefix('"') {
            s.split_once('"')?.0.to_string()
        } else {
            rest.split(|c: char| c == ',' || c == '}' || c.is_whitespace()).next()?.to_string()
        })
    };
    let mut sf = 0.0f64;
    let mut threads = 0usize;
    let mut cpus = 0usize;
    let mut ns_per_row = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some(v) = field(line, "sf") {
            sf = v.parse().unwrap_or(0.0);
        }
        // Top-level fields only: kernel lines carry "name", the header does
        // not.
        if field(line, "name").is_none() {
            if let Some(v) = field(line, "threads") {
                threads = v.parse().unwrap_or(0);
            }
            if let Some(v) = field(line, "cpus") {
                cpus = v.parse().unwrap_or(0);
            }
        }
        if let (Some(name), Some(ns)) = (field(line, "name"), field(line, "ns_per_row")) {
            if let Ok(ns) = ns.parse::<f64>() {
                ns_per_row.insert(name, ns);
            }
        }
    }
    if ns_per_row.is_empty() {
        return None;
    }
    Some(Baseline { sf, threads, cpus, ns_per_row })
}

/// Time `f` with one warm-up call, then as many individually-timed
/// repetitions as fit in the measurement window (at least 3), and report
/// the **median** repetition. The mean of a single continuous loop — the
/// old harness — let one page-fault or scheduler stall poison a line;
/// the median over >= 3 inner reps is what the committed trajectory
/// records, so re-baselines and delta columns compare like with like.
/// Prints a delta-vs-baseline column when the kernel exists in the
/// checked-in baseline.
fn measure(base: Option<&Baseline>, name: &'static str, rows: usize, mut f: impl FnMut()) -> Rec {
    f(); // warm-up
    let window = Duration::from_millis(240);
    let started = Instant::now();
    let mut samples: Vec<f64> = Vec::new();
    while samples.len() < 3 || started.elapsed() < window {
        let rep = Instant::now();
        f();
        samples.push(rep.elapsed().as_nanos() as f64);
        if samples.len() >= 10_000 {
            break; // cap repetitions for very fast kernels
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("rep times are finite"));
    let ns = samples[samples.len() / 2];
    let ns_per_row = ns / rows.max(1) as f64;
    let rows_per_sec = rows.max(1) as f64 / (ns / 1e9);
    let delta = match base.and_then(|b| b.ns_per_row.get(name)) {
        Some(&was) if was > 0.0 => format!("  {:>+7.1}% vs base", (ns_per_row / was - 1.0) * 100.0),
        _ => String::new(),
    };
    eprintln!(
        "{name:<32} {rows:>9} rows  {ns_per_row:>9.2} ns/row  {rows_per_sec:>14.0} rows/s{delta}"
    );
    Rec { name, rows, ns_per_row, rows_per_sec }
}

fn main() {
    let sf = sf_from_env("FLATALG_SF", 0.01);
    // Thread count of the threaded (`par/*-par`) kernel lines, recorded in
    // the JSON header so runs at different counts are never compared.
    // `configured_threads` resolves exactly what the kernels themselves
    // would use (`FLATALG_THREADS`, else available parallelism), so any
    // line that parallelizes through the dispatcher runs at the same
    // count the header records.
    let par_threads: usize = monet::par::configured_threads();
    // Physical CPU budget of this host, recorded alongside `threads`: the
    // thread count says what the kernels asked for, the cpu count says what
    // the machine could actually deliver. An early baseline recorded
    // `threads: 4` on a 1-cpu container, and its `par/*-par` "speedups"
    // were scheduler noise — hence both fields, and the refusal below.
    let cpus: usize = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    // Delta column against the committed trajectory baseline (read before
    // the default output path overwrites it). A baseline recorded at a
    // different scale factor, thread count, or host cpu count is
    // *refused* — a delta column against incomparable numbers is worse
    // than none.
    let base_path =
        std::env::var("FLATALG_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_kernels.json".into());
    let base = match read_baseline(&base_path) {
        Some(b) if (b.sf - sf).abs() > f64::EPSILON => {
            eprintln!(
                "refusing to compare: baseline {base_path} was recorded at sf {} but this \
                 run is at sf {sf}; delta column suppressed",
                b.sf
            );
            None
        }
        Some(b) if b.threads != par_threads => {
            eprintln!(
                "refusing to compare: baseline {base_path} was recorded at {} threads but \
                 this run uses {par_threads}; delta column suppressed",
                b.threads
            );
            None
        }
        Some(b) if b.cpus != cpus => {
            if b.cpus == 0 {
                eprintln!(
                    "refusing to compare: baseline {base_path} does not record its host cpu \
                     count (recorded before the \"cpus\" field; its par/*-par lines may be \
                     oversubscribed) and this host has {cpus}; delta column suppressed"
                );
            } else {
                eprintln!(
                    "refusing to compare: baseline {base_path} was recorded on a {}-cpu host \
                     but this host has {cpus}; delta column suppressed",
                    b.cpus
                );
            }
            None
        }
        Some(b) => {
            eprintln!(
                "deltas vs baseline {base_path} (sf {}, {} threads, {} cpus)",
                b.sf, b.threads, b.cpus
            );
            if b.threads > b.cpus {
                eprintln!(
                    "note: baseline par/*-par lines are oversubscribed ({} workers on {} \
                     cpus) — they measure scheduling overhead, not parallel speedup",
                    b.threads, b.cpus
                );
            }
            Some(b)
        }
        None => {
            eprintln!("no baseline at {base_path}; delta column suppressed");
            None
        }
    };
    // Synthetic inputs sized like the scale factor's lineitem table.
    let n: usize = ((sf * 6_000_000.0) as usize).max(10_000);
    let mut r = StdRng::seed_from_u64(42);
    let ctx = ExecCtx::new();

    // --- primitives group inputs -----------------------------------------
    let unsorted = Bat::new(
        Column::from_oids((0..n as u64).map(|i| 1000 + i).collect()),
        Column::from_ints((0..n).map(|_| r.gen_range(0..10_000)).collect()),
    );
    let sorted = {
        let perm = unsorted.tail().sort_perm();
        Bat::with_inferred_props(unsorted.head().gather(&perm), unsorted.tail().gather(&perm))
    };
    let sel = {
        let mut oids: Vec<u64> = (0..n / 20).map(|_| 1000 + r.gen_range(0..n as u64)).collect();
        oids.sort_unstable();
        oids.dedup();
        let k = oids.len();
        Bat::with_inferred_props(Column::from_oids(oids), Column::void(0, k))
    };
    let join_right = Bat::new(
        Column::from_ints((0..10_000).collect()),
        Column::from_oids((0..10_000).collect()),
    );
    // Partitioned-join regime: probe 16n rows into a build side of 4n rows
    // whose chain table overflows L2 (960k x 240k at SF 0.01), with a ~6%
    // match rate (an FK probe after a selective filter). Both the
    // partitioned kernel and the monolithic kernel are measured on this
    // same input so the trajectory records the comparison.
    let part_build_n = 4 * n;
    let part_probe_n = 16 * n;
    // Probe domain 16x the build keys (~6% match); clamp in i64 so huge
    // scale factors do not overflow the i32 key space (the match rate just
    // rises instead).
    let part_domain = (16i64 * part_build_n as i64).min(i32::MAX as i64) as i32;
    let part_left = Bat::new(
        Column::from_oids((0..part_probe_n as u64).collect()),
        Column::from_ints((0..part_probe_n).map(|_| r.gen_range(0..part_domain)).collect()),
    );
    let part_right = Bat::new(
        Column::from_ints((0..part_build_n as i32).collect()),
        Column::from_oids((0..part_build_n as u64).collect()),
    );
    let fetch_right = Bat::new(Column::void(0, 10_000), Column::from_dbls(vec![1.0; 10_000]));
    let fetch_left = Bat::new(
        Column::from_oids((0..n as u64).collect()),
        Column::from_oids((0..n as u64).map(|i| i % 10_000).collect()),
    );
    let dup = Bat::new(
        Column::from_oids((0..n as u64).map(|i| i % 1000).collect()),
        Column::from_ints((0..n).map(|i| (i % 17) as i32).collect()),
    );
    let head = Column::from_oids((0..n as u64).collect());
    let dbl_x = Bat::new(head.clone(), Column::from_dbls((0..n).map(|i| i as f64 * 0.5).collect()));
    let dbl_y = Bat::new(head.clone(), Column::from_dbls(vec![3.0; n]));
    let int_x = Bat::new(head.clone(), Column::from_ints((0..n).map(|i| i as i32 % 997).collect()));
    let dates = Bat::new(
        head.clone(),
        Column::from_dates(
            (0..n).map(|i| Date::from_ymd(1992, 1, 1).add_days((i % 2400) as i32)).collect(),
        ),
    );
    let grouped_vals = Bat::new(
        Column::from_oids((0..n as u64).map(|i| i % 500).collect()),
        Column::from_dbls((0..n).map(|i| i as f64).collect()),
    );
    let strs = Bat::new(
        head.clone(),
        Column::from_strs((0..n).map(|i| format!("Clerk#{:09}", i % 1000)).collect::<Vec<_>>()),
    );

    // --- semijoin group inputs (datavector path) -------------------------
    let extent = Extent::new(Column::from_oids((0..n as u64).map(|i| 1000 + i).collect()));
    let dv_vals = Column::from_dbls((0..n).map(|_| r.gen_range(0.0..1000.0)).collect());
    let dv = Datavector::new(Arc::clone(&extent), dv_vals.clone());
    let mut with_dv = {
        let perm = dv_vals.sort_perm();
        Bat::new(extent.oids().gather(&perm), dv_vals.gather(&perm))
    };
    with_dv.set_datavector(Arc::new(dv));

    // --- group_aggregate group inputs ------------------------------------
    let unsorted_keys = Bat::new(
        head.clone(),
        Column::from_oids((0..n).map(|_| r.gen_range(0..1000u64)).collect()),
    );
    let second = Bat::new(
        head.clone(),
        Column::from_chrs((0..n).map(|_| r.gen_range(b'A'..=b'E')).collect()),
    );
    let g1 = ops::group1(&ctx, &unsorted_keys).unwrap();
    let second_synced = Bat::new(g1.head().clone(), second.tail().clone());

    let mut recs: Vec<Rec> = Vec::new();

    // primitives
    recs.push(measure(base.as_ref(), "select/scan", n, || {
        ops::select_eq(&ctx, &unsorted, &AtomValue::Int(5000)).unwrap();
    }));
    recs.push(measure(base.as_ref(), "select/range-scan", n, || {
        ops::select_range(
            &ctx,
            &unsorted,
            Some(&AtomValue::Int(1000)),
            Some(&AtomValue::Int(2000)),
            true,
            false,
        )
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "select/binary-search", n, || {
        ops::select_eq(&ctx, &sorted, &AtomValue::Int(5000)).unwrap();
    }));
    recs.push(measure(base.as_ref(), "join/hash-probe", n, || {
        ops::join(&ctx, &unsorted, &join_right).unwrap();
    }));
    recs.push(measure(base.as_ref(), "join/fetch-dense", n, || {
        ops::join(&ctx, &fetch_left, &fetch_right).unwrap();
    }));
    recs.push(measure(base.as_ref(), "join/partitioned-probe", part_probe_n, || {
        // Pinned serial: this is the single-thread trajectory line; the
        // threaded comparison lives in par/join-partitioned-{serial,par}.
        monet::par::with_threads(1, || ops::join_partitioned(&ctx, &part_left, &part_right))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "join/monolithic-probe-big", part_probe_n, || {
        ops::join::join_hash(&ctx, &part_left, &part_right);
    }));
    recs.push(measure(base.as_ref(), "semijoin/hash", n, || {
        ops::semijoin(&ctx, &unsorted, &sel).unwrap();
    }));
    recs.push(measure(base.as_ref(), "unique/hash", n, || {
        ops::unique(&ctx, &dup).unwrap();
    }));
    recs.push(measure(base.as_ref(), "group1/hash", n, || {
        ops::group1(&ctx, &unsorted).unwrap();
    }));
    recs.push(measure(base.as_ref(), "multiplex/mul-dbl", n, || {
        ops::multiplex(
            &ctx,
            ops::ScalarFunc::Mul,
            &[ops::MultArg::Bat(dbl_x.clone()), ops::MultArg::Bat(dbl_y.clone())],
        )
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "multiplex/sub-int-const", n, || {
        ops::multiplex(
            &ctx,
            ops::ScalarFunc::Sub,
            &[ops::MultArg::Const(AtomValue::Int(100)), ops::MultArg::Bat(int_x.clone())],
        )
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "multiplex/year-date", n, || {
        ops::multiplex(&ctx, ops::ScalarFunc::Year, &[ops::MultArg::Bat(dates.clone())]).unwrap();
    }));
    recs.push(measure(base.as_ref(), "multiplex/ge-dbl-const", n, || {
        ops::multiplex(
            &ctx,
            ops::ScalarFunc::Ge,
            &[ops::MultArg::Bat(dbl_x.clone()), ops::MultArg::Const(AtomValue::Dbl(1000.0))],
        )
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "multiplex/str-prefix-const", n, || {
        ops::multiplex(
            &ctx,
            ops::ScalarFunc::StrPrefix,
            &[ops::MultArg::Bat(strs.clone()), ops::MultArg::Const(AtomValue::str("Clerk#00000"))],
        )
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "set-aggregate/sum-dbl", n, || {
        ops::set_aggregate(&ctx, ops::AggFunc::Sum, &grouped_vals).unwrap();
    }));
    recs.push(measure(base.as_ref(), "sort/tail-int", n, || {
        ops::sort_tail(&ctx, &unsorted).unwrap();
    }));
    recs.push(measure(base.as_ref(), "topn/desc-100", n, || {
        ops::topn(&ctx, &unsorted, 100, true).unwrap();
    }));
    recs.push(measure(base.as_ref(), "hashindex/build-oid", n, || {
        HashIndex::build(unsorted_keys.tail());
    }));

    // semijoin group: warm datavector path (LOOKUP memoized once)
    recs.push(measure(base.as_ref(), "semijoin/datavector-warm", sel.len(), || {
        ops::semijoin(&ctx, &with_dv, &sel).unwrap();
    }));

    // group_aggregate group
    recs.push(measure(base.as_ref(), "group2/refine-synced", n, || {
        ops::group2(&ctx, &g1, &second_synced).unwrap();
    }));

    // Encoded layouts: the same operand measured raw and encoded, so the
    // trajectory records what running directly on codes buys. The dict
    // operand re-encodes `strs` (1000 distinct Clerk#-style strings →
    // u16 codes); the FOR operand re-encodes `int_x` (values 0..997 →
    // u16 deltas). Raw twins run the exact same probes so each pair's
    // gap is the encoding, nothing else.
    let dict_strs = Bat::new(head.clone(), strs.tail().encode(false));
    assert_eq!(dict_strs.tail().encoding(), monet::props::Enc::Dict, "dict fixture must encode");
    let for_ints = Bat::new(head.clone(), int_x.tail().encode(false));
    assert_eq!(for_ints.tail().encoding(), monet::props::Enc::For, "FOR fixture must encode");
    let probe_str = AtomValue::str("Clerk#000000500");
    recs.push(measure(base.as_ref(), "enc/select-str-raw", n, || {
        ops::select_eq(&ctx, &strs, &probe_str).unwrap();
    }));
    recs.push(measure(base.as_ref(), "enc/select-dict-code", n, || {
        ops::select_eq(&ctx, &dict_strs, &probe_str).unwrap();
    }));
    recs.push(measure(base.as_ref(), "enc/group-str-raw", n, || {
        ops::group1(&ctx, &strs).unwrap();
    }));
    recs.push(measure(base.as_ref(), "enc/group-dict-code", n, || {
        ops::group1(&ctx, &dict_strs).unwrap();
    }));
    recs.push(measure(base.as_ref(), "enc/range-int-raw", n, || {
        ops::select_range(
            &ctx,
            &int_x,
            Some(&AtomValue::Int(100)),
            Some(&AtomValue::Int(300)),
            true,
            false,
        )
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "enc/range-for-scan", n, || {
        ops::select_range(
            &ctx,
            &for_ints,
            Some(&AtomValue::Int(100)),
            Some(&AtomValue::Int(300)),
            true,
            false,
        )
        .unwrap();
    }));

    // Parallel kernels: serial-vs-threaded pairs on the same big operands
    // (the partitioned-join input size: 16n-row scans, 4n-row build). The
    // `-par` lines run at `par_threads` workers via the scoped override;
    // `-serial` forces the single-thread path. Both are in the committed
    // baseline so the speedup at the recording's thread count is part of
    // the perf trajectory.
    let big_ints = Bat::new(
        Column::from_oids((0..part_probe_n as u64).collect()),
        Column::from_ints((0..part_probe_n).map(|_| r.gen_range(0..10_000)).collect()),
    );
    let big_dbls = Bat::new(
        Column::from_oids((0..part_probe_n as u64).collect()),
        Column::from_dbls((0..part_probe_n).map(|_| r.gen_range(0.0..1000.0)).collect()),
    );
    let big_keys = Bat::new(
        Column::from_oids((0..part_probe_n as u64).collect()),
        Column::from_oids((0..part_probe_n).map(|_| r.gen_range(0..1000u64)).collect()),
    );
    recs.push(measure(base.as_ref(), "par/select-scan-serial", part_probe_n, || {
        monet::par::with_threads(1, || ops::select_eq(&ctx, &big_ints, &AtomValue::Int(5000)))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/select-scan-par", part_probe_n, || {
        monet::par::with_threads(par_threads, || {
            ops::select_eq(&ctx, &big_ints, &AtomValue::Int(5000))
        })
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/sum-dbl-serial", part_probe_n, || {
        monet::par::with_threads(1, || ops::aggr_scalar(&ctx, &big_dbls, ops::AggFunc::Sum))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/sum-dbl-par", part_probe_n, || {
        monet::par::with_threads(par_threads, || {
            ops::aggr_scalar(&ctx, &big_dbls, ops::AggFunc::Sum)
        })
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/group1-serial", part_probe_n, || {
        monet::par::with_threads(1, || ops::group1(&ctx, &big_keys)).unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/group1-par", part_probe_n, || {
        monet::par::with_threads(par_threads, || ops::group1(&ctx, &big_keys)).unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/join-partitioned-serial", part_probe_n, || {
        monet::par::with_threads(1, || ops::join_partitioned(&ctx, &part_left, &part_right))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "par/join-partitioned-par", part_probe_n, || {
        monet::par::with_threads(par_threads, || {
            ops::join_partitioned(&ctx, &part_left, &part_right)
        })
        .unwrap();
    }));

    // q13 end to end over the memoized world
    let w = world();
    let q13_rows = w.data.items.len();
    recs.push(measure(base.as_ref(), "q13/moa-execute", q13_rows, || {
        tpcd_queries::q11_15::q13_run(&w.cat, &ctx, &w.params).unwrap();
    }));

    // Plan-level optimizer trajectory: end-to-end query time executing the
    // translator's raw emission (`-raw`, the FLATALG_OPT=0 oracle) vs the
    // optimized MIL program (`-opt`). Scoped overrides, not env vars, so
    // the rest of the report is unaffected.
    use tpcd_queries::runner::{with_opt_level, OptLevel};
    recs.push(measure(base.as_ref(), "plan/q1-raw", q13_rows, || {
        with_opt_level(OptLevel::Off, || tpcd_queries::q01_05::q1_run(&w.cat, &ctx, &w.params))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "plan/q1-opt", q13_rows, || {
        with_opt_level(OptLevel::Full, || tpcd_queries::q01_05::q1_run(&w.cat, &ctx, &w.params))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "plan/q13-raw", q13_rows, || {
        with_opt_level(OptLevel::Off, || tpcd_queries::q11_15::q13_run(&w.cat, &ctx, &w.params))
            .unwrap();
    }));
    recs.push(measure(base.as_ref(), "plan/q13-opt", q13_rows, || {
        with_opt_level(OptLevel::Full, || tpcd_queries::q11_15::q13_run(&w.cat, &ctx, &w.params))
            .unwrap();
    }));

    // Governor overhead: the same optimized Q1/Q13 with enforcement armed —
    // a byte budget and a far-off deadline, so every tracked allocation is
    // charged against a limit and every probe takes its deadline branch —
    // against the `plan/*-opt` lines above, where the governor idles (two
    // relaxed loads per probe). The pair tracks the enforcement cost in
    // the trajectory; target ≤ 2%.
    let gov_ctx = monet::ctx::ExecCtx::new();
    gov_ctx.mem.set_budget(Some(1 << 40));
    recs.push(measure(base.as_ref(), "gov/q1-governed", q13_rows, || {
        gov_ctx.gov.set_deadline(Some(std::time::Duration::from_secs(3600)));
        with_opt_level(OptLevel::Full, || {
            tpcd_queries::q01_05::q1_run(&w.cat, &gov_ctx, &w.params)
        })
        .unwrap();
    }));
    recs.push(measure(base.as_ref(), "gov/q13-governed", q13_rows, || {
        gov_ctx.gov.set_deadline(Some(std::time::Duration::from_secs(3600)));
        with_opt_level(OptLevel::Full, || {
            tpcd_queries::q11_15::q13_run(&w.cat, &gov_ctx, &w.params)
        })
        .unwrap();
    }));
    gov_ctx.gov.set_deadline(None);

    // Pipeline fusion trajectory: Q1 and Q13 executing the optimizer's
    // fused emission vs the `FLATALG_FUSE=0` oracle (scoped override, not
    // the env var). Alongside each timing line, one fresh-tracker run
    // prints the query's live-set peak — the fused pipelines' point is
    // the intermediate BATs they never materialize, and `max_live_bytes`
    // is where that shows up at SF-independent truth even when the
    // wall-clock gap sits inside the noise floor at small scale.
    for (name, fuse_on) in [
        ("fuse/q1-unfused", false),
        ("fuse/q1-fused", true),
        ("fuse/q13-unfused", false),
        ("fuse/q13-fused", true),
    ] {
        let q13 = name.contains("q13");
        let fuse_ctx = monet::ctx::ExecCtx::new();
        let run = |ctx: &monet::ctx::ExecCtx| {
            monet::fuse::with_fuse(fuse_on, || {
                with_opt_level(OptLevel::Full, || {
                    if q13 {
                        tpcd_queries::q11_15::q13_run(&w.cat, ctx, &w.params).map(|_| ())
                    } else {
                        tpcd_queries::q01_05::q1_run(&w.cat, ctx, &w.params).map(|_| ())
                    }
                })
            })
            .unwrap();
        };
        recs.push(measure(base.as_ref(), name, q13_rows, || run(&fuse_ctx)));
        fuse_ctx.mem.reset();
        run(&fuse_ctx);
        eprintln!("{name:<32} live-set peak {:>12} bytes", fuse_ctx.mem.max_live_bytes());
    }

    // Query-service throughput: the mixed Q1–Q15 workload through
    // prepared-statement sessions sharing one plan cache and admission
    // gate. `rows` counts queries per pass, so the rows/s column reads
    // directly as qps. The warm-up call inside `measure` populates the
    // cache, so the measured passes are pure cache hits — the trajectory
    // line records throughput with plan cost fully amortized.
    {
        use flatalg_server::{Server, ServerConfig};
        let queries = tpcd_queries::all_queries();
        let server = Server::with_config(
            &w.cat,
            ServerConfig {
                max_concurrent: par_threads.max(1),
                plan_cache: Some(64),
                ..ServerConfig::default()
            },
        );
        {
            let session = server.session();
            recs.push(measure(base.as_ref(), "serve/qps-mixed-1client", queries.len(), || {
                for q in &queries {
                    session.run_query(q, &w.params).unwrap();
                }
            }));
            // Prepared Q13 on a warm cache, same row accounting as
            // q13/moa-execute: the gap between the two lines is the
            // amortized translate+optimize cost (should be ~0).
            let stmt = session.prepare(tpcd_queries::q11_15::q13_moa(&w.params)).unwrap();
            recs.push(measure(base.as_ref(), "serve/q13-prepared-hit", q13_rows, || {
                session.execute(&stmt).unwrap();
            }));
        }
        let clients = 4usize;
        recs.push(measure(
            base.as_ref(),
            "serve/qps-mixed-4client",
            clients * queries.len(),
            || {
                std::thread::scope(|s| {
                    for c in 0..clients {
                        let (server, queries) = (&server, &queries);
                        s.spawn(move || {
                            let session = server.session();
                            for i in 0..queries.len() {
                                let q = &queries[(i + c * 5) % queries.len()];
                                session.run_query(q, &w.params).unwrap();
                            }
                        });
                    }
                });
            },
        ));
        let stats = server.stats();
        if let Some(c) = stats.cache {
            eprintln!(
                "serve: executed={} waited={} cache hits={} misses={} bypasses={}",
                stats.executed, stats.waited, c.hits, c.misses, c.bypasses
            );
        }
    }

    // Persistent store: the O(1) mmap open against regenerating the same
    // world, on a store written from the memoized catalog. The paired
    // eprintln gives the generate+load wall-clock the open replaces.
    {
        let store_dir =
            std::env::temp_dir().join(format!("flatalg-perf-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        monet::store::write_dir(&store_dir, w.cat.db(), sf).expect("write perf store");
        let total_rows = w.data.total_rows();
        recs.push(measure(base.as_ref(), "store/open-vs-generate", total_rows, || {
            let o = monet::store::open_dir(&store_dir, None, &monet::store::OpenOptions::default())
                .unwrap();
            std::hint::black_box(o.mapped_bytes);
        }));
        let t = Instant::now();
        let data = tpcd::generate(sf, bench::SEED);
        let (cat2, _) = tpcd::load_bats(&data);
        eprintln!(
            "store/open-vs-generate           generate+load of the same world: {:.1} ms \
             ({} BATs)",
            t.elapsed().as_secs_f64() * 1e3,
            cat2.db().len()
        );
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    // Out-of-core join: the same partitioned-join operands through the
    // in-memory dispatch and through the spill path (a byte budget at half
    // the cost model's in-memory estimate forces the partition-to-disk
    // plan; the result BAT stays far below it, so the run completes). The
    // pair records what going out-of-core costs on this trajectory.
    {
        let spill_ctx = ExecCtx::new();
        let est = monet::costmodel::join_inmem_bytes(part_probe_n, part_build_n);
        spill_ctx.mem.set_budget(Some(est / 2));
        recs.push(measure(base.as_ref(), "spill/join-inmem", part_probe_n, || {
            ctx.mem.reset();
            ops::join(&ctx, &part_left, &part_right).unwrap();
        }));
        recs.push(measure(base.as_ref(), "spill/join-spill", part_probe_n, || {
            spill_ctx.mem.reset();
            ops::join(&spill_ctx, &part_left, &part_right).unwrap();
        }));
        assert!(
            spill_ctx.mem.spilled_bytes() > 0,
            "spill/join-spill must actually take the out-of-core path"
        );
        spill_ctx.mem.set_budget(None);
    }

    // Per-table compression of the loaded world: physical (encoded) tail
    // bytes vs decoded bytes, grouped by TPC-D table, plus a string-column
    // total — the acceptance floor for the encoded layouts is >= 1.5x on
    // the string columns. Unencoded tails contribute 1:1, so a table's
    // ratio reads directly as "what the encoders bought here".
    let mut comp: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
    let (mut str_enc, mut str_raw) = (0usize, 0usize);
    for (name, bat) in w.cat.db().iter() {
        let t = bat.tail();
        let table = name.split('_').next().unwrap_or(name);
        let e = comp.entry(table).or_default();
        e.0 += t.bytes();
        e.1 += t.decoded().bytes();
        if t.atom_type() == monet::atom::AtomType::Str {
            str_enc += t.bytes();
            str_raw += t.decoded().bytes();
        }
    }
    let ratio = |enc: usize, raw: usize| raw as f64 / enc.max(1) as f64;
    for (table, &(enc, raw)) in &comp {
        eprintln!("compress/{table:<26} {enc:>9} bytes  ({:>5.2}x vs {raw} raw)", ratio(enc, raw));
    }
    eprintln!(
        "compress/strings (all tables)    {str_enc:>9} bytes  ({:>5.2}x vs {str_raw} raw)",
        ratio(str_enc, str_raw)
    );

    // --- write BENCH_kernels.json (format documented in README) ----------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"sf\": {sf},\n"));
    json.push_str(&format!("  \"rows\": {n},\n"));
    json.push_str(&format!("  \"threads\": {par_threads},\n"));
    json.push_str(&format!("  \"cpus\": {cpus},\n"));
    if par_threads > cpus {
        // Honest label for par/*-par lines recorded with more workers
        // than the host can run at once.
        json.push_str("  \"oversubscribed\": true,\n");
    }
    json.push_str("  \"kernels\": [\n");
    for (i, rec) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"ns_per_row\": {:.3}, \"rows_per_sec\": {:.0}}}{}\n",
            rec.name,
            rec.rows,
            rec.ns_per_row,
            rec.rows_per_sec,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Compression rows carry "table" (not "name"), so baseline parsing —
    // which keys kernel lines off "name"/"ns_per_row" — skips them.
    json.push_str("  \"compression\": [\n");
    for (table, &(enc, raw)) in &comp {
        json.push_str(&format!(
            "    {{\"table\": \"{table}\", \"enc_bytes\": {enc}, \"raw_bytes\": {raw}, \
             \"ratio\": {:.3}}},\n",
            ratio(enc, raw)
        ));
    }
    json.push_str(&format!(
        "    {{\"table\": \"strings\", \"enc_bytes\": {str_enc}, \"raw_bytes\": {str_raw}, \
         \"ratio\": {:.3}}}\n",
        ratio(str_enc, str_raw)
    ));
    json.push_str("  ]\n}\n");
    // Default output is deliberately NOT the committed baseline path: a
    // casual local run must not clobber BENCH_kernels.json (and thereby
    // make the next run's delta column compare against itself). Point
    // FLATALG_BENCH_OUT at BENCH_kernels.json explicitly to re-baseline.
    let path =
        std::env::var("FLATALG_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.local.json".into());
    std::fs::write(&path, &json).expect("write kernel perf report");
    eprintln!("wrote {path}");

    // --- SF 1 out-of-core leg (only when the big store exists) -----------
    // `FLATALG_SF1_STORE` names a store directory built with
    // `flatalg-store build --sf 1`. When present, every query runs once
    // from the opened store — single-shot, not median-of-reps: at SF 1 a
    // query is seconds of work and the numbers are honest wall-clock —
    // and BENCH_sf1.json records per-query ms, result rows and spill
    // volume, with the same threads/cpus/oversubscribed header fields as
    // the kernel trajectory.
    let sf1_dir = std::env::var("FLATALG_SF1_STORE").unwrap_or_else(|_| "store-sf1".into());
    if std::path::Path::new(&sf1_dir).join("store.sb").exists() {
        let t0 = Instant::now();
        let sw =
            bench::StoreWorld::open(std::path::Path::new(&sf1_dir)).expect("open the SF 1 store");
        let open_ms = t0.elapsed().as_secs_f64() * 1e3;
        // `FLATALG_SF1_BUDGET` budgets *only* the SF 1 queries (applied
        // per-context below), so the kernel section above is free to run
        // unbudgeted; `FLATALG_MEM_BUDGET` is reported too if that is the
        // only knob set.
        let budget = std::env::var("FLATALG_SF1_BUDGET")
            .or_else(|_| std::env::var("FLATALG_MEM_BUDGET"))
            .unwrap_or_else(|_| "unlimited".into());
        let budget_bytes = monet::ctx::parse_mem_budget(&budget);
        eprintln!(
            "\nSF {} store: opened {:.1} MB in {open_ms:.1} ms (mmap: {}), budget {budget}",
            sw.sf,
            bench::mb(sw.mapped_bytes),
            sw.mmap
        );
        let mut qjson = String::new();
        qjson.push_str("{\n");
        qjson.push_str(&format!("  \"sf\": {},\n", sw.sf));
        qjson.push_str(&format!("  \"threads\": {par_threads},\n"));
        qjson.push_str(&format!("  \"cpus\": {cpus},\n"));
        if par_threads > cpus {
            qjson.push_str("  \"oversubscribed\": true,\n");
        }
        qjson.push_str(&format!("  \"budget\": \"{budget}\",\n"));
        let spill_mode = std::env::var("FLATALG_SPILL").unwrap_or_else(|_| "auto".into());
        qjson.push_str(&format!("  \"spill\": \"{spill_mode}\",\n"));
        qjson.push_str(&format!("  \"open_ms\": {open_ms:.1},\n"));
        qjson.push_str(&format!("  \"mapped_bytes\": {},\n", sw.mapped_bytes));
        qjson.push_str("  \"queries\": [\n");
        let queries = tpcd_queries::all_queries();
        for (i, q) in queries.iter().enumerate() {
            let qctx = ExecCtx::new();
            if budget_bytes > 0 {
                qctx.mem.set_budget(Some(budget_bytes));
            }
            let t = Instant::now();
            let rows = (q.run_moa)(&sw.cat, &qctx, &sw.params)
                .unwrap_or_else(|e| panic!("SF {} store Q{}: {e}", sw.sf, q.id));
            let ms = t.elapsed().as_secs_f64() * 1e3;
            let spilled = qctx.mem.spilled_bytes();
            eprintln!(
                "sf1/q{:<2} {:>10.1} ms  {:>8} rows  {:>10.1} MB spilled",
                q.id,
                ms,
                rows.len(),
                bench::mb(spilled)
            );
            qjson.push_str(&format!(
                "    {{\"q\": {}, \"ms\": {ms:.1}, \"rows\": {}, \"spilled_bytes\": \
                 {spilled}}}{}\n",
                q.id,
                rows.len(),
                if i + 1 < queries.len() { "," } else { "" }
            ));
        }
        qjson.push_str("  ]\n}\n");
        let sf1_path =
            std::env::var("FLATALG_BENCH_SF1_OUT").unwrap_or_else(|_| "BENCH_sf1.json".into());
        std::fs::write(&sf1_path, &qjson).expect("write SF 1 report");
        eprintln!("wrote {sf1_path}");
    }
}
