//! Figure 9: the TPC-D results table.
//!
//! Runs every query on the Monet/MOA path (with pager + memory accounting)
//! and on the n-ary baseline (standing in for the DB2 column), printing
//! elapsed time, intermediate-result and peak memory, Item selectivity and
//! page faults, plus the load report and the geometric-mean rate.
//!
//! Usage: `FLATALG_SF=0.05 cargo run --release -p bench --bin fig9_tpcd`
//! Optional: `FLATALG_Q1_BOUNDED=1` additionally runs Q1 with a bounded
//! resident set (the paper's 128 MB hot-set overflow experiment).

use std::sync::Arc;
use std::time::Instant;

use bench::{mb, sf_from_env, World};
use monet::ctx::ExecCtx;
use monet::pager::Pager;
use tpcd_queries::all_queries;

fn main() {
    let sf = sf_from_env("FLATALG_SF", 0.02);
    println!("# Figure 9 — TPC-D results, SF={sf} (paper: SF=1.0)\n");
    let t0 = Instant::now();
    let w = World::build(sf);
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "load: generate+decompose {:.0} ms total ({:.0} bulk / {:.0} accel / {:.0} reorder); \
         base data {:.1} MB, datavectors {:.1} MB, {} BATs, {} rows",
        load_ms,
        w.report.bulk_ms,
        w.report.accel_ms,
        w.report.reorder_ms,
        mb(w.report.base_bytes as u64),
        mb(w.report.dv_bytes as u64),
        w.report.bat_count,
        w.data.total_rows(),
    );
    let item_total = w.data.items.len();
    println!(
        "\n{:>3} {:>10} {:>10} {:>9} {:>8} {:>9} {:>10} {:>10} {:>7}  {}",
        "Qx",
        "ref(ms)",
        "monet(ms)",
        "total MB",
        "max MB",
        "Item sel%",
        "ref-faults",
        "mnt-faults",
        "rows",
        "comment"
    );

    let mut ratios: Vec<f64> = Vec::new();
    let mut fault_ratios: Vec<f64> = Vec::new();
    for q in all_queries() {
        // Baseline with its own pager.
        let ref_pager = Pager::new(4096);
        let rt0 = Instant::now();
        let ref_out = (q.run_ref)(&w.rel, &w.params, Some(&ref_pager));
        let ref_ms = rt0.elapsed().as_secs_f64() * 1e3;

        // Monet path with pager + memory accounting.
        let pager = Arc::new(Pager::new(4096));
        let ctx = ExecCtx::new().with_pager(Arc::clone(&pager));
        ctx.mem.reset();
        let mt0 = Instant::now();
        let rows = (q.run_moa)(&w.cat, &ctx, &w.params).expect("query failed");
        let monet_ms = mt0.elapsed().as_secs_f64() * 1e3;

        assert!(
            rows.approx_eq(&ref_out.rows, 1e-6),
            "Q{} results diverge from the reference!",
            q.id
        );
        let selpct = if ref_out.item_rows == 0 {
            "n.a.".to_string()
        } else {
            format!("{:.1}%", 100.0 * ref_out.item_rows as f64 / item_total as f64)
        };
        println!(
            "{:>3} {:>10.1} {:>10.1} {:>9.1} {:>8.1} {:>9} {:>10} {:>10} {:>7}  {}",
            q.id,
            ref_ms,
            monet_ms,
            mb(ctx.mem.total_bytes()),
            mb(ctx.mem.max_live_bytes()),
            selpct,
            ref_pager.faults(),
            pager.faults(),
            rows.len(),
            q.comment,
        );
        ratios.push((ref_ms.max(0.01)) / (monet_ms.max(0.01)));
        fault_ratios.push((ref_pager.faults().max(1) as f64) / (pager.faults().max(1) as f64));
    }
    let geo = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    let geo_f = fault_ratios.iter().map(|r| r.ln()).sum::<f64>() / fault_ratios.len() as f64;
    println!(
        "\ngeometric means — wall-clock ref/monet: {:.2}x; page-fault ref/monet: {:.2}x \
         (paper compares elapsed seconds on IO-bound hardware; our baseline runs in \
         memory, so the fault ratio is the IO-comparable figure)",
        geo.exp(),
        geo_f.exp()
    );

    if std::env::var("FLATALG_Q1_BOUNDED").is_ok() {
        println!("\n# Q1 with bounded resident set (the 128MB hot-set experiment)");
        for cap_pages in [usize::MAX, 8192, 2048] {
            let pager = if cap_pages == usize::MAX {
                Arc::new(Pager::new(4096))
            } else {
                Arc::new(Pager::with_capacity(4096, cap_pages))
            };
            let ctx = ExecCtx::new().with_pager(Arc::clone(&pager));
            let q1 = &all_queries()[0];
            let t = Instant::now();
            let _ = (q1.run_moa)(&w.cat, &ctx, &w.params).unwrap();
            println!(
                "resident-set {:>10} pages: {:>8.1} ms, {:>9} faults",
                if cap_pages == usize::MAX { "unbounded".into() } else { cap_pages.to_string() },
                t.elapsed().as_secs_f64() * 1e3,
                pager.faults()
            );
        }
    }
}
