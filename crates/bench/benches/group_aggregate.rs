//! Grouping and set-aggregation: the nest/groupby machinery (merge vs.
//! hash variants, unary vs. refining binary group, `{sum}` vs `{avg}`).

use criterion::{criterion_group, criterion_main, Criterion};
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use monet::props::{ColProps, Props};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;
const GROUPS: u64 = 1_000;

fn bench_group(c: &mut Criterion) {
    let ctx = ExecCtx::new();
    let mut r = StdRng::seed_from_u64(3);
    let head = Column::from_oids((0..N as u64).collect());
    let unsorted_keys =
        Bat::new(head.clone(), Column::from_oids((0..N).map(|_| r.gen_range(0..GROUPS)).collect()));
    let sorted_keys = {
        let mut keys: Vec<u64> = (0..N).map(|_| r.gen_range(0..GROUPS)).collect();
        keys.sort_unstable();
        Bat::with_props(
            head.clone(),
            Column::from_oids(keys),
            Props::new(ColProps::DENSE, ColProps::SORTED),
        )
    };
    let second = Bat::new(
        head.clone(),
        Column::from_chrs((0..N).map(|_| r.gen_range(b'A'..=b'E')).collect()),
    );
    let grouped_vals = Bat::new(
        Column::from_oids((0..N as u64).map(|i| i % GROUPS).collect()),
        Column::from_dbls((0..N).map(|i| i as f64).collect()),
    );

    let mut g = c.benchmark_group("group-aggregate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("group1/hash", |b| b.iter(|| ops::group1(&ctx, &unsorted_keys).unwrap()));
    g.bench_function("group1/merge (sorted tail)", |b| {
        b.iter(|| ops::group1(&ctx, &sorted_keys).unwrap())
    });
    g.bench_function("group2/refine (synced)", |b| {
        let g1 = ops::group1(&ctx, &unsorted_keys).unwrap();
        let second_synced = Bat::new(g1.head().clone(), second.tail().clone());
        b.iter(|| ops::group2(&ctx, &g1, &second_synced).unwrap())
    });
    g.bench_function("{sum}/hash-heads", |b| {
        b.iter(|| ops::set_aggregate(&ctx, ops::AggFunc::Sum, &grouped_vals).unwrap())
    });
    g.bench_function("{avg}/hash-heads", |b| {
        b.iter(|| ops::set_aggregate(&ctx, ops::AggFunc::Avg, &grouped_vals).unwrap())
    });
    g.bench_function("{sum}/merge-heads (sorted)", |b| {
        let perm = grouped_vals.head().sort_perm();
        let sorted = Bat::with_props(
            grouped_vals.head().gather(&perm),
            grouped_vals.tail().gather(&perm),
            Props::new(ColProps::SORTED, ColProps::NONE),
        );
        b.iter(|| ops::set_aggregate(&ctx, ops::AggFunc::Sum, &sorted).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_group);
criterion_main!(benches);
