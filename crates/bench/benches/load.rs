//! The Section 6 load pipeline at a small scale factor: generation,
//! decomposition + properties, extents + datavectors, tail reorder, and
//! the n-ary baseline load for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use tpcd::{generate, load_bats, load_rowstore};

fn bench_load(c: &mut Criterion) {
    let data = generate(0.005, bench::SEED);

    let mut g = c.benchmark_group("sec6-load");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(3000));
    g.warm_up_time(std::time::Duration::from_millis(500));

    g.bench_function("dbgen (generate rows)", |b| b.iter(|| generate(0.005, bench::SEED)));
    g.bench_function("bat load (3 phases)", |b| b.iter(|| load_bats(&data)));
    g.bench_function("rowstore load", |b| b.iter(|| load_rowstore(&data)));
    g.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
