//! The Section 5.2 ablation: datavector semijoin vs. hash vs. merge, and
//! the memoized-LOOKUP effect — the first datavector semijoin "blazes the
//! trail", subsequent ones fetch positionally ("it reduces the cost of
//! multiple semijoins by more than half", Section 6.2.1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use monet::accel::datavector::{Datavector, Extent};
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;
const SEL: usize = 4_000; // 2% selection

fn setup() -> (Bat, Bat, Bat) {
    let mut r = StdRng::seed_from_u64(7);
    // Tail-sorted attribute BAT with a datavector over the class extent —
    // exactly what the loader produces.
    let extent = Extent::new(Column::from_oids((0..N as u64).map(|i| 1000 + i).collect()));
    let values = Column::from_dbls((0..N).map(|_| r.gen_range(0.0..1000.0)).collect());
    let dv = Datavector::new(Arc::clone(&extent), values.clone());
    let perm = values.sort_perm();
    let mut tail_sorted = Bat::new(extent.oids().gather(&perm), values.gather(&perm));
    tail_sorted.set_datavector(Arc::new(dv));

    // The same data without accelerators (hash fallback).
    let plain = Bat::new(tail_sorted.head().clone(), tail_sorted.tail().clone());

    // A sorted oid selection, as produced by a previous join.
    let mut oids: Vec<u64> = (0..SEL).map(|_| 1000 + r.gen_range(0..N as u64)).collect();
    oids.sort_unstable();
    oids.dedup();
    let n = oids.len();
    let sel = Bat::with_inferred_props(Column::from_oids(oids), Column::void(0, n));
    (tail_sorted, plain, sel)
}

fn bench_semijoin(c: &mut Criterion) {
    let ctx = ExecCtx::new();
    let (with_dv, plain, sel) = setup();

    let mut g = c.benchmark_group("sec5.2-semijoin");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("hash (no accelerator)", |b| {
        b.iter(|| ops::semijoin(&ctx, &plain, &sel).unwrap())
    });
    g.bench_function("datavector cold (lookup + fetch)", |b| {
        b.iter(|| {
            with_dv.accel().datavector.as_ref().unwrap().extent().clear_lookup_memo();
            ops::semijoin(&ctx, &with_dv, &sel).unwrap()
        })
    });
    g.bench_function("datavector warm (memoized LOOKUP)", |b| {
        // Prime the memo once; every iteration reuses it — the "trail has
        // been blazed" case of Figure 10 lines 10-11.
        let _ = ops::semijoin(&ctx, &with_dv, &sel).unwrap();
        b.iter(|| ops::semijoin(&ctx, &with_dv, &sel).unwrap())
    });
    g.bench_function("merge (both sorted)", |b| {
        let perm = plain.head().sort_perm();
        let head_sorted =
            Bat::with_inferred_props(plain.head().gather(&perm), plain.tail().gather(&perm));
        b.iter(|| ops::semijoin(&ctx, &head_sorted, &sel).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_semijoin);
criterion_main!(benches);
