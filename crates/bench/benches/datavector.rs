//! Figure 7: datavector creation — the cheap path (projection of an
//! oid-ordered BAT) vs. building from an unordered BAT (sort first), plus
//! the tail reorder that follows in the load pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use monet::accel::datavector::Datavector;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;

fn bench_datavector(c: &mut Criterion) {
    let mut r = StdRng::seed_from_u64(11);
    let oid_ordered = Bat::with_inferred_props(
        Column::from_oids((0..N as u64).map(|i| 1000 + i).collect()),
        Column::from_dbls((0..N).map(|_| r.gen_range(0.0..1e6)).collect()),
    );
    let shuffled = {
        let perm: Vec<u32> = {
            let mut p: Vec<u32> = (0..N as u32).collect();
            for i in (1..p.len()).rev() {
                p.swap(i, r.gen_range(0..=i));
            }
            p
        };
        Bat::new(oid_ordered.head().gather(&perm), oid_ordered.tail().gather(&perm))
    };

    let mut g = c.benchmark_group("fig7-datavector");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("create from oid-ordered (projection)", |b| {
        b.iter(|| Datavector::from_oid_ordered(&oid_ordered))
    });
    g.bench_function("create from unordered (sort + project)", |b| {
        b.iter(|| Datavector::from_unordered(&shuffled))
    });
    g.bench_function("reorder attribute BAT on tail", |b| {
        let ctx = ExecCtx::new();
        b.iter(|| ops::sort_tail(&ctx, &oid_ordered.mirror().mirror()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_datavector);
criterion_main!(benches);
