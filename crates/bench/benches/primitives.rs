//! Microbenchmarks of the BAT-algebra primitives (Figure 4): one benchmark
//! per MIL command, on synthetic BATs sized like a TPC-D attribute.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 100_000;

fn rng() -> StdRng {
    StdRng::seed_from_u64(42)
}

fn attr_bat_sorted_tail() -> Bat {
    let mut r = rng();
    let mut tails: Vec<i32> = (0..N).map(|_| r.gen_range(0..10_000)).collect();
    tails.sort_unstable();
    Bat::with_inferred_props(
        Column::from_oids((0..N as u64).map(|i| 1000 + i).collect()),
        Column::from_ints(tails),
    )
}

fn attr_bat_unsorted() -> Bat {
    let mut r = rng();
    Bat::new(
        Column::from_oids((0..N as u64).map(|i| 1000 + i).collect()),
        Column::from_ints((0..N).map(|_| r.gen_range(0..10_000)).collect()),
    )
}

fn selection(frac: f64) -> Bat {
    let mut r = rng();
    let k = ((N as f64) * frac) as usize;
    let mut oids: Vec<u64> = (0..k).map(|_| 1000 + r.gen_range(0..N as u64)).collect();
    oids.sort_unstable();
    oids.dedup();
    let n = oids.len();
    Bat::with_inferred_props(Column::from_oids(oids), Column::void(0, n))
}

fn bench_primitives(c: &mut Criterion) {
    let ctx = ExecCtx::new();
    let sorted = attr_bat_sorted_tail();
    let unsorted = attr_bat_unsorted();
    let sel = selection(0.05);

    let mut g = c.benchmark_group("fig4-primitives");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("mirror", |b| b.iter(|| black_box(unsorted.mirror())));
    g.bench_function("select/binary-search", |b| {
        b.iter(|| ops::select_eq(&ctx, &sorted, &AtomValue::Int(5000)).unwrap())
    });
    g.bench_function("select/scan", |b| {
        b.iter(|| ops::select_eq(&ctx, &unsorted, &AtomValue::Int(5000)).unwrap())
    });
    g.bench_function("select/range", |b| {
        b.iter(|| {
            ops::select_range(
                &ctx,
                &sorted,
                Some(&AtomValue::Int(1000)),
                Some(&AtomValue::Int(2000)),
                true,
                false,
            )
            .unwrap()
        })
    });
    g.bench_function("semijoin/hash", |b| b.iter(|| ops::semijoin(&ctx, &unsorted, &sel).unwrap()));
    g.bench_function("join/hash", |b| {
        let right = Bat::new(
            Column::from_ints((0..10_000).collect()),
            Column::from_oids((0..10_000).collect()),
        );
        b.iter(|| ops::join(&ctx, &unsorted, &right).unwrap())
    });
    g.bench_function("join/fetch-dense", |b| {
        let right = Bat::new(Column::void(0, 10_000), Column::from_dbls(vec![1.0; 10_000]));
        let left = Bat::new(
            Column::from_oids((0..N as u64).collect()),
            Column::from_oids((0..N as u64).map(|i| i % 10_000).collect()),
        );
        b.iter(|| ops::join(&ctx, &left, &right).unwrap())
    });
    g.bench_function("unique", |b| {
        let dup = Bat::new(
            Column::from_oids((0..N as u64).map(|i| i % 1000).collect()),
            Column::from_ints((0..N).map(|i| (i % 17) as i32).collect()),
        );
        b.iter(|| ops::unique(&ctx, &dup).unwrap())
    });
    g.bench_function("group/hash", |b| b.iter(|| ops::group1(&ctx, &unsorted).unwrap()));
    g.bench_function("multiplex/[*]-synced", |b| {
        let head = Column::from_oids((0..N as u64).collect());
        let x = Bat::new(head.clone(), Column::from_dbls(vec![2.0; N]));
        let y = Bat::new(head, Column::from_dbls(vec![3.0; N]));
        b.iter(|| {
            ops::multiplex(
                &ctx,
                ops::ScalarFunc::Mul,
                &[ops::MultArg::Bat(x.clone()), ops::MultArg::Bat(y.clone())],
            )
            .unwrap()
        })
    });
    g.bench_function("set-aggregate/{sum}", |b| {
        let grouped = Bat::new(
            Column::from_oids((0..N as u64).map(|i| i % 500).collect()),
            Column::from_dbls((0..N).map(|i| i as f64).collect()),
        );
        b.iter(|| ops::set_aggregate(&ctx, ops::AggFunc::Sum, &grouped).unwrap())
    });
    g.bench_function("sort-tail", |b| b.iter(|| ops::sort_tail(&ctx, &unsorted).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
