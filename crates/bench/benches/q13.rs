//! Q13 end to end (the paper's running example, Figures 5 and 10): the
//! MOA translation + MIL execution against the n-ary reference plan, plus
//! translation cost alone ("which takes no significant time", Section 6).

use bench::world;
use criterion::{criterion_group, criterion_main, Criterion};
use monet::ctx::ExecCtx;
use tpcd_queries::q11_15::{q13_moa, q13_ref, q13_run};

fn bench_q13(c: &mut Criterion) {
    let w = world();
    let ctx = ExecCtx::new();

    let mut g = c.benchmark_group("q13");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(2000));
    g.warm_up_time(std::time::Duration::from_millis(400));

    g.bench_function("moa translate only", |b| {
        let q = q13_moa(&w.params);
        b.iter(|| moa::translate::translate(&w.cat, &q).unwrap())
    });
    g.bench_function("moa translate + execute (Monet)", |b| {
        b.iter(|| q13_run(&w.cat, &ctx, &w.params).unwrap())
    });
    g.bench_function("reference (n-ary baseline)", |b| b.iter(|| q13_ref(&w.rel, &w.params, None)));
    g.finish();
}

criterion_group!(benches, bench_q13);
criterion_main!(benches);
