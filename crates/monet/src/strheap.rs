//! Variable-size atom heap for strings (Figure 2).
//!
//! For atoms of variable size — such as `string` — the BUN heap contains
//! integer byte-indices into an extra heap holding the actual bytes. This
//! module implements that layout: a flat byte heap plus a per-BUN offset
//! array. Identical strings may share heap space when built through
//! [`StrHeapBuilder::push_dedup`], mimicking Monet's double-elimination in
//! string heaps.

use std::collections::HashMap;
use std::sync::Arc;

use crate::buf::Buf;

/// Immutable string column: `offsets[i]..offsets[i]+lens[i]` addresses the
/// bytes of value *i* inside the shared byte heap.
///
/// All three heaps live in [`Buf`]s, so a `StrVec` is either built in
/// memory or a zero-copy view of mapped store segments (the store
/// validates offsets, lengths, and UTF-8 at open).
#[derive(Debug, Clone)]
pub struct StrVec {
    offsets: Arc<Buf<u32>>,
    lens: Arc<Buf<u32>>,
    heap: Arc<Buf<u8>>,
}

impl StrVec {
    /// Number of values.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Borrow value `i`.
    pub fn get(&self, i: usize) -> &str {
        let off = self.offsets[i] as usize;
        let len = self.lens[i] as usize;
        // Heap contents are only ever written through the builder, which
        // copies from `&str`, so the bytes are valid UTF-8.
        std::str::from_utf8(&self.heap[off..off + len]).expect("heap holds valid UTF-8")
    }

    /// Iterate over all values in BUN order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Size of the variable-part heap in bytes (for the pager and the
    /// memory accounting of Figure 9).
    pub fn heap_bytes(&self) -> usize {
        self.heap.len()
    }

    /// Byte offset of value `i` inside the heap; used by the pager to place
    /// random accesses on the right heap page.
    pub fn heap_offset(&self, i: usize) -> (u64, u64) {
        (self.offsets[i] as u64, self.lens[i] as u64)
    }

    /// Build a new column containing `idx`-selected values. The byte heap is
    /// shared (values are not copied), only the offset arrays are rebuilt —
    /// this is what makes "projection" of a string BAT cheap.
    pub fn gather(&self, idx: &[u32]) -> StrVec {
        let mut offsets = Vec::with_capacity(idx.len());
        let mut lens = Vec::with_capacity(idx.len());
        for &i in idx {
            offsets.push(self.offsets[i as usize]);
            lens.push(self.lens[i as usize]);
        }
        StrVec {
            offsets: Arc::new(offsets.into()),
            lens: Arc::new(lens.into()),
            heap: Arc::clone(&self.heap),
        }
    }

    /// Windowed raw parts `(offsets, lens, heap)` for the typed kernel
    /// layer ([`crate::typed::StrVals`]).
    pub(crate) fn parts(&self, off: usize, len: usize) -> (&[u32], &[u32], &[u8]) {
        (&self.offsets[off..off + len], &self.lens[off..off + len], &self.heap)
    }

    /// Assemble a column from pre-built heaps — the store's open path
    /// (mapped segments). The caller vouches that `offsets[i] + lens[i]`
    /// stays inside the heap and the addressed bytes are valid UTF-8; the
    /// store checks both before constructing.
    pub(crate) fn from_heaps(
        offsets: Arc<Buf<u32>>,
        lens: Arc<Buf<u32>>,
        heap: Arc<Buf<u8>>,
    ) -> StrVec {
        assert_eq!(offsets.len(), lens.len());
        StrVec { offsets, lens, heap }
    }

    /// True when both columns are views of the *same* allocation (all three
    /// heaps pointer-equal). Dictionary code splicing keys on this: equal
    /// storage means equal code assignments.
    pub(crate) fn same_storage(&self, other: &StrVec) -> bool {
        Arc::ptr_eq(&self.offsets, &other.offsets)
            && Arc::ptr_eq(&self.lens, &other.lens)
            && Arc::ptr_eq(&self.heap, &other.heap)
    }

    /// Zero-copy sub-range view (shares all three heaps).
    pub fn slice(&self, start: usize, len: usize) -> StrVec {
        let offsets = self.offsets[start..start + len].to_vec();
        let lens = self.lens[start..start + len].to_vec();
        StrVec {
            offsets: Arc::new(offsets.into()),
            lens: Arc::new(lens.into()),
            heap: Arc::clone(&self.heap),
        }
    }
}

impl FromIterator<String> for StrVec {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut b = StrHeapBuilder::new();
        for s in iter {
            b.push(&s);
        }
        b.finish()
    }
}

impl<'a> FromIterator<&'a str> for StrVec {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        let mut b = StrHeapBuilder::new();
        for s in iter {
            b.push(s);
        }
        b.finish()
    }
}

/// Incremental builder for [`StrVec`].
#[derive(Debug, Default)]
pub struct StrHeapBuilder {
    offsets: Vec<u32>,
    lens: Vec<u32>,
    heap: Vec<u8>,
    dedup: HashMap<Box<str>, (u32, u32)>,
}

impl StrHeapBuilder {
    /// Fresh empty builder.
    pub fn new() -> StrHeapBuilder {
        StrHeapBuilder::default()
    }

    /// Builder with pre-reserved capacity for `n` values of average length
    /// `avg_len` bytes.
    pub fn with_capacity(n: usize, avg_len: usize) -> StrHeapBuilder {
        StrHeapBuilder {
            offsets: Vec::with_capacity(n),
            lens: Vec::with_capacity(n),
            heap: Vec::with_capacity(n * avg_len),
            dedup: HashMap::new(),
        }
    }

    /// Append a value, always writing fresh heap bytes.
    pub fn push(&mut self, s: &str) {
        let off = self.heap.len() as u32;
        self.heap.extend_from_slice(s.as_bytes());
        self.offsets.push(off);
        self.lens.push(s.len() as u32);
    }

    /// Append a value, reusing heap bytes when the same string was pushed
    /// before (double elimination).
    pub fn push_dedup(&mut self, s: &str) {
        if let Some(&(off, len)) = self.dedup.get(s) {
            self.offsets.push(off);
            self.lens.push(len);
            return;
        }
        let off = self.heap.len() as u32;
        self.heap.extend_from_slice(s.as_bytes());
        self.offsets.push(off);
        self.lens.push(s.len() as u32);
        self.dedup.insert(s.into(), (off, s.len() as u32));
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Freeze into an immutable column.
    pub fn finish(self) -> StrVec {
        StrVec {
            offsets: Arc::new(self.offsets.into()),
            lens: Arc::new(self.lens.into()),
            heap: Arc::new(self.heap.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read() {
        let v: StrVec = ["Annita", "Martin", "Peter", ""].into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(0), "Annita");
        assert_eq!(v.get(2), "Peter");
        assert_eq!(v.get(3), "");
        assert_eq!(v.iter().collect::<Vec<_>>(), vec!["Annita", "Martin", "Peter", ""]);
    }

    #[test]
    fn dedup_shares_heap_bytes() {
        let mut b = StrHeapBuilder::new();
        for _ in 0..100 {
            b.push_dedup("Clerk#000000088");
        }
        let v = b.finish();
        assert_eq!(v.len(), 100);
        assert_eq!(v.heap_bytes(), "Clerk#000000088".len());
        assert!(v.iter().all(|s| s == "Clerk#000000088"));
    }

    #[test]
    fn gather_shares_heap() {
        let v: StrVec = ["a", "bb", "ccc", "dddd"].into_iter().collect();
        let g = v.gather(&[3, 1]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(0), "dddd");
        assert_eq!(g.get(1), "bb");
        assert_eq!(g.heap_bytes(), v.heap_bytes()); // shared, not copied
    }

    #[test]
    fn slice_view() {
        let v: StrVec = ["a", "bb", "ccc", "dddd"].into_iter().collect();
        let s = v.slice(1, 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["bb", "ccc"]);
    }

    #[test]
    fn unicode_safe() {
        let v: StrVec = ["héllo", "wörld"].into_iter().collect();
        assert_eq!(v.get(0), "héllo");
        assert_eq!(v.get(1), "wörld");
    }
}
