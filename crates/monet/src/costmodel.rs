//! The analytic IO cost model of Section 5.2.2.
//!
//! Expected number of `B`-byte disk pages retrieved (virtual-memory page
//! faults) for a selection with selectivity `s` followed by a projection to
//! `p` attributes of an `n`-ary table with `X` rows of uniform value width
//! `w`:
//!
//! ```text
//! E_rel(s) = ceil(sX / C_inv) + ceil(X / C_rel) * (1 - (1-s)^C_rel)
//! E_dv(s)  = ceil(sX / C_bat) + (p+1) * ceil(X / C_dv) * (1 - (1-s)^C_dv)
//! C_inv = floor(B / 2w)   C_rel = floor(B / (n+1)w)
//! C_bat = floor(B / 2w)   C_dv  = floor(B / w)
//! ```
//!
//! The first term of `E_rel` is the inverted-list scan discovering the
//! qualifying tuples; the second is unclustered retrieval of the qualifying
//! rows. For the Monet/datavector strategy the first term is the selection
//! on the tail-sorted BAT and the second is `p` datavector semijoins plus
//! one extent lookup. Figure 8 plots both for the 1 GB TPC-D Item table
//! (`X = 6,000,000, n = 16, w = 4, B = 4096`).

/// Parameters of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Number of rows in the n-ary table (`X`).
    pub rows: u64,
    /// Number of attributes (`n`).
    pub n_attrs: u32,
    /// Uniform byte width of one value (`w`).
    pub width: u32,
    /// Page size in bytes (`B`).
    pub page_size: u32,
}

impl CostParams {
    /// The Figure 8 configuration: the 1 GB TPC-D Item table.
    pub fn figure8() -> CostParams {
        CostParams { rows: 6_000_000, n_attrs: 16, width: 4, page_size: 4096 }
    }

    /// Inverted-list entries per page: `C_inv = floor(B / 2w)`.
    pub fn c_inv(&self) -> u64 {
        (self.page_size / (2 * self.width)) as u64
    }

    /// Rows per page of the n-ary table: `C_rel = floor(B / (n+1)w)`.
    pub fn c_rel(&self) -> u64 {
        (self.page_size / ((self.n_attrs + 1) * self.width)) as u64
    }

    /// BUNs per BAT page: `C_bat = floor(B / 2w)`.
    pub fn c_bat(&self) -> u64 {
        (self.page_size / (2 * self.width)) as u64
    }

    /// Datavector values per page: `C_dv = floor(B / w)`.
    pub fn c_dv(&self) -> u64 {
        (self.page_size / self.width) as u64
    }
}

// ---------------------------------------------------------------------------
// Main-memory join strategy: when to radix-partition.
// ---------------------------------------------------------------------------

/// Cache budget one build-side hash table should stay within for the
/// bucket-chain walk to stay cheap: the L2 size. Measured on the reference
/// box (2 MiB L2): below this the monolithic probe is L2-resident and the
/// partitioning passes are pure overhead (0.5-0.9x); above it the
/// partitioned join wins 1.2-1.9x depending on match rate.
pub const JOIN_CACHE_BYTES: usize = 2 * 1024 * 1024;

/// Bytes of chain-table working set per build row: one `u32` `next` link
/// plus two `u32` bucket slots (buckets are presized at 2x rows).
pub const JOIN_BUILD_BYTES_PER_ROW: usize = 12;

/// The cardinality threshold of the partitioned hash join: partition when
/// the build-side chain table overflows the cache budget (each probe then
/// misses on the bucket and chain walks) and the probe side is at least as
/// large as the build side, so clustering the build amortizes. Measured:
/// with a 60k-row probe into a 240k-1M-row build, clustering the build
/// dominates and the monolithic path stays ahead (0.86-0.99x); with probe
/// >= build the partitioned path wins everywhere past the cache budget.
pub fn join_prefers_partitioned(probe_rows: usize, build_rows: usize) -> bool {
    build_rows * JOIN_BUILD_BYTES_PER_ROW > JOIN_CACHE_BYTES && probe_rows >= build_rows
}

// ---------------------------------------------------------------------------
// Out-of-core strategy: when to spill the radix partitions to disk.
// ---------------------------------------------------------------------------

/// Transient working-set estimate of the in-memory partitioned join:
/// both cluster pair buffers at 8 bytes/row plus the counting-free
/// scatter's 1.5x slack (~12 bytes/row each side), and the match buffer
/// presized to the probe side (8 bytes/row).
pub fn join_inmem_bytes(probe_rows: usize, build_rows: usize) -> u64 {
    12 * (probe_rows as u64 + build_rows as u64) + 8 * probe_rows as u64
}

/// Transient working-set estimate of the in-memory hash grouping: the
/// [`crate::typed::GroupTable`] bucket array (2x rows of u32) plus chain
/// link, representative, and hash per group (worst case one group per
/// row: 8 + 16 bytes/row).
pub fn group_inmem_bytes(rows: usize) -> u64 {
    24 * rows as u64
}

/// True when the working-set `estimate` does not fit the budget headroom
/// the tracker has left. No budget (0) means unlimited memory: never
/// spill on the auto path.
fn overflows_headroom(mem: &crate::ctx::MemTracker, estimate: u64) -> bool {
    let budget = mem.budget_bytes();
    budget != 0 && estimate > budget.saturating_sub(mem.charged_bytes())
}

/// Spill the radix join's partitions to disk when the in-memory
/// partitioned working set won't fit what is left of the query's byte
/// budget (`FLATALG_MEM_BUDGET` / session override), or always/never
/// under a `FLATALG_SPILL` override. The spilling join is bit-identical
/// to the in-memory paths, so this is purely a resource decision.
pub fn join_prefers_spill(
    mem: &crate::ctx::MemTracker,
    probe_rows: usize,
    build_rows: usize,
) -> bool {
    match crate::spill::mode() {
        crate::spill::SpillMode::Never => false,
        crate::spill::SpillMode::Always => true,
        crate::spill::SpillMode::Auto => {
            overflows_headroom(mem, join_inmem_bytes(probe_rows, build_rows))
        }
    }
}

/// Spill hash grouping's partitions to disk (same contract as
/// [`join_prefers_spill`]: resource decision only, identical results).
pub fn group_prefers_spill(mem: &crate::ctx::MemTracker, rows: usize) -> bool {
    match crate::spill::mode() {
        crate::spill::SpillMode::Never => false,
        crate::spill::SpillMode::Always => true,
        crate::spill::SpillMode::Auto => overflows_headroom(mem, group_inmem_bytes(rows)),
    }
}

// ---------------------------------------------------------------------------
// Intra-query parallelism: when to cut morsels.
// ---------------------------------------------------------------------------

/// Row threshold below which scan-shaped kernels stay serial. Dispatching a
/// parallel batch costs a few microseconds (channel sends, one atomic
/// cursor, result collection); the typed scans run at ~0.5-10 ns/row, so
/// well under ~10^5 rows the dispatch overhead eats the speedup and the
/// morsel executor only adds variance. Measured on the reference box:
/// below ~10^5 rows threading was a wash or a regression for every ported
/// kernel; above it the scan kernels scale with memory bandwidth.
/// `FLATALG_PAR_MIN_ROWS` (or a scoped [`crate::par::with_par_config`])
/// overrides, which is how the determinism tests force the parallel path
/// onto small inputs.
pub const PAR_MIN_ROWS: usize = 128 * 1024;

/// The effective parallelism threshold (override, else [`PAR_MIN_ROWS`]).
pub fn par_min_rows() -> usize {
    crate::par::min_rows_override().unwrap_or(PAR_MIN_ROWS)
}

/// Threads a kernel over a `rows`-row operand should use: 1 (serial)
/// below the row threshold or when `FLATALG_THREADS=1`, the configured
/// thread count otherwise. Every parallelized operator routes its
/// dispatch decision through here so the threshold lives in one place.
pub fn par_threads(rows: usize) -> usize {
    if rows < par_min_rows() {
        1
    } else {
        crate::par::configured_threads()
    }
}

fn ceil_div_f(x: f64, c: u64) -> f64 {
    (x / c as f64).ceil()
}

/// Probability-weighted unclustered page count:
/// `ceil(X/C) * (1 - (1-s)^C)`.
fn unclustered(rows: u64, per_page: u64, s: f64) -> f64 {
    ceil_div_f(rows as f64, per_page) * (1.0 - (1.0 - s).powi(per_page as i32))
}

/// Expected page faults of the relational (non-decomposed) strategy.
pub fn e_rel(p: &CostParams, s: f64) -> f64 {
    ceil_div_f(s * p.rows as f64, p.c_inv()) + unclustered(p.rows, p.c_rel(), s)
}

/// Expected page faults of the Monet datavector strategy projecting to
/// `proj` attributes.
pub fn e_dv(p: &CostParams, s: f64, proj: u32) -> f64 {
    ceil_div_f(s * p.rows as f64, p.c_bat()) + (proj + 1) as f64 * unclustered(p.rows, p.c_dv(), s)
}

/// Find (by bisection) the selectivity below which the relational strategy
/// is cheaper — the crossover point discussed in Section 5.2.2 ("the
/// crossover point for n=16, p=3 is at s ≈ 0.004").
pub fn crossover(p: &CostParams, proj: u32) -> Option<f64> {
    let f = |s: f64| e_dv(p, s, proj) - e_rel(p, s);
    // Scan for a sign change on (0, 0.5].
    let mut prev_s = 1e-6;
    let mut prev = f(prev_s);
    let mut bracket = None;
    for i in 1..=5000 {
        let s = 1e-6 + i as f64 * 1e-4;
        let cur = f(s);
        if prev.signum() != cur.signum() {
            bracket = Some((prev_s, s));
            break;
        }
        prev_s = s;
        prev = cur;
    }
    let (mut lo, mut hi) = bracket?;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if f(lo).signum() == f(mid).signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_page_counts() {
        let p = CostParams::figure8();
        assert_eq!(p.c_inv(), 512);
        assert_eq!(p.c_rel(), 60); // 4096 / (17*4) = 60.2
        assert_eq!(p.c_bat(), 512);
        assert_eq!(p.c_dv(), 1024);
    }

    #[test]
    fn zero_selectivity_costs_nothing_unclustered() {
        let p = CostParams::figure8();
        assert_eq!(e_rel(&p, 0.0), 0.0);
        assert_eq!(e_dv(&p, 0.0, 3), 0.0);
    }

    #[test]
    fn full_selectivity_reads_everything() {
        let p = CostParams::figure8();
        // At s=1 the relational strategy reads the inverted list plus every
        // data page once.
        let expect = (6_000_000f64 / 512.0).ceil() + (6_000_000f64 / 60.0).ceil();
        assert!((e_rel(&p, 1.0) - expect).abs() < 1.0);
    }

    #[test]
    fn datavector_wins_at_moderate_selectivity() {
        // The headline claim of Figure 8: Monet's strategy is generally
        // more efficient apart from very low selectivities.
        let p = CostParams::figure8();
        for s in [0.01, 0.02, 0.03] {
            assert!(e_dv(&p, s, 3) < e_rel(&p, s), "datavector should win at s={s}");
        }
    }

    #[test]
    fn relational_wins_at_tiny_selectivity() {
        let p = CostParams::figure8();
        assert!(e_dv(&p, 0.0005, 3) > e_rel(&p, 0.0005));
    }

    #[test]
    fn crossover_near_paper_value() {
        // Paper: crossover for n=16, p=3 at s ≈ 0.004.
        let p = CostParams::figure8();
        let s = crossover(&p, 3).expect("crossover exists");
        assert!((0.001..0.01).contains(&s), "crossover {s} should be near 0.004");
    }

    #[test]
    fn partition_threshold_tracks_build_side_cache_overflow() {
        // Small build tables stay cache-resident: never partition.
        assert!(!join_prefers_partitioned(1 << 24, 1000));
        assert!(!join_prefers_partitioned(1 << 24, 100_000));
        // Large build tables overflow the budget: partition once the probe
        // side is big enough to amortize clustering the build.
        assert!(join_prefers_partitioned(250_000, 250_000));
        assert!(!join_prefers_partitioned(249_999, 250_000));
        // Exactly at the cache budget the chain walk still fits: stay
        // monolithic.
        let fits = JOIN_CACHE_BYTES / JOIN_BUILD_BYTES_PER_ROW;
        assert!(!join_prefers_partitioned(1 << 24, fits));
        assert!(join_prefers_partitioned(1 << 24, fits + 1));
    }

    #[test]
    fn partition_threshold_exact_cut_points() {
        // The build-side chain table crosses the 2 MiB budget at exactly
        // `fits + 1` rows; probe amortization flips at probe == build.
        // Pinning both edges (± one row) means a threshold edit cannot
        // silently flip dispatch for inputs near the cut.
        let fits = JOIN_CACHE_BYTES / JOIN_BUILD_BYTES_PER_ROW;
        for (probe, build, expect) in [
            // Cache edge, huge probe: only the build size decides.
            (usize::MAX / 2, fits - 1, false),
            (usize::MAX / 2, fits, false),
            (usize::MAX / 2, fits + 1, true),
            // Probe edge, build safely past the cache budget.
            (fits + 1, fits + 1, true), // probe_rows == build_rows
            (fits, fits + 1, false),    // probe one row short
            (fits + 2, fits + 1, true), // probe one row past
            // Both at the edge simultaneously.
            (fits, fits, false),
        ] {
            assert_eq!(
                join_prefers_partitioned(probe, build),
                expect,
                "probe={probe} build={build}"
            );
        }
        // Property sweep around the cache edge: for every build size within
        // ±16 rows of the cut, dispatch must agree with the analytic rule.
        for d in 0..32usize {
            let build = fits - 16 + d;
            let expect = build * JOIN_BUILD_BYTES_PER_ROW > JOIN_CACHE_BYTES;
            assert_eq!(join_prefers_partitioned(build, build), expect, "build={build}");
            // And one probe row below the build side always stays monolithic.
            assert!(!join_prefers_partitioned(build - 1, build), "build={build}");
        }
    }

    #[test]
    fn spill_headroom_rule() {
        let m = crate::ctx::MemTracker::default();
        // No budget: unlimited memory, the auto path never spills.
        assert!(!overflows_headroom(&m, u64::MAX));
        m.set_budget(Some(1000));
        assert!(!overflows_headroom(&m, 1000), "exactly fitting the headroom stays in memory");
        assert!(overflows_headroom(&m, 1001));
        // Live charges shrink the headroom; releases restore it.
        m.charge("x", 400).unwrap();
        assert!(overflows_headroom(&m, 601));
        assert!(!overflows_headroom(&m, 600));
        m.release(400);
        assert!(!overflows_headroom(&m, 1000));
        // Charged past the budget: zero headroom, anything spills.
        m.set_budget(Some(10));
        m.charge("y", 50).ok();
        assert!(overflows_headroom(&m, 1));
        m.release(50);
    }

    #[test]
    fn spill_estimates_scale_with_rows() {
        assert_eq!(join_inmem_bytes(0, 0), 0);
        assert_eq!(join_inmem_bytes(1000, 500), 12 * 1500 + 8 * 1000);
        assert_eq!(group_inmem_bytes(1000), 24_000);
    }

    #[test]
    fn par_threshold_exact_cut_points() {
        // Pin the threshold itself and the behavior one row either side,
        // under a scoped thread count so the test is machine-independent.
        crate::par::with_par_config(Some(4), None, None, || {
            assert_eq!(par_min_rows(), PAR_MIN_ROWS);
            assert_eq!(par_threads(PAR_MIN_ROWS - 1), 1);
            assert_eq!(par_threads(PAR_MIN_ROWS), 4);
            assert_eq!(par_threads(PAR_MIN_ROWS + 1), 4);
            assert_eq!(par_threads(0), 1);
        });
        // FLATALG_THREADS=1 (here: the scoped equivalent) forces serial
        // even far above the row threshold.
        crate::par::with_par_config(Some(1), None, None, || {
            assert_eq!(par_threads(PAR_MIN_ROWS * 64), 1);
        });
        // A scoped row-threshold override moves the cut exactly.
        crate::par::with_par_config(Some(4), Some(100), None, || {
            assert_eq!(par_min_rows(), 100);
            assert_eq!(par_threads(99), 1);
            assert_eq!(par_threads(100), 4);
        });
    }

    #[test]
    fn more_projected_attributes_cost_more() {
        let p = CostParams::figure8();
        let s = 0.01;
        assert!(e_dv(&p, s, 1) < e_dv(&p, s, 3));
        assert!(e_dv(&p, s, 3) < e_dv(&p, s, 12));
    }
}
