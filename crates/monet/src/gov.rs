//! Resource governor: cooperative cancellation, deadlines, and the
//! deterministic fault injector.
//!
//! Every [`crate::ctx::ExecCtx`] carries one [`Governor`] (shared by
//! clones of the context, i.e. per query/session). The kernel calls
//! [`Governor::probe`] at its governed points — operator entry, between
//! MIL statements, and at every morsel/task boundary of the parallel
//! executor — and each probe is simultaneously:
//!
//! * a **cancellation point**: a [`CancelToken`] set from any thread makes
//!   the next probe return [`MonetError::Cancelled`], so workers abandon
//!   their remaining morsels and the query aborts between statements;
//! * a **deadline check**: a per-statement deadline set by the query
//!   service turns into [`MonetError::DeadlineExceeded`] at the first
//!   probe past it;
//! * a **fault-injection site**: a seeded injector
//!   (`FLATALG_FAULT=site:count`, or the scoped [`Governor::arm_fault`]
//!   test API) fires [`MonetError::Injected`] at exactly the n-th matching
//!   probe — deterministically, so a test sweep can enumerate every
//!   governed point of a query and prove each one fails cleanly.
//!
//! The memory budget lives next door in [`crate::ctx::MemTracker`]: the
//! budget check happens at every tracked allocation (`ctx.record`), not at
//! probes, because that is where the bytes appear.
//!
//! Idle cost is two relaxed atomic loads per probe (no armed fault, no
//! deadline) — see the `gov/*` lines of `BENCH_kernels.json` for the
//! measured end-to-end overhead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{MonetError, Result};

/// Well-known probe site names. Free-form `&'static str`s are accepted
/// everywhere; these constants exist so the interpreter, the parallel
/// executor, and the fault-sweep harness agree on spelling.
pub mod site {
    /// Between MIL statements (the interpreter's per-statement probe).
    pub const MIL_STMT: &str = "mil/stmt";
    /// Before each morsel of a morsel-decomposed kernel.
    pub const PAR_MORSEL: &str = "par/morsel";
    /// Before each task of a task-decomposed kernel (per-cluster join
    /// ranges, per-morsel group partials).
    pub const PAR_TASK: &str = "par/task";
    /// Before each morsel of a fused select stage.
    pub const FUSE_SELECT: &str = "fuse/select";
    /// Before each morsel of a fused multiplex stage.
    pub const FUSE_MULTIPLEX: &str = "fuse/multiplex";
    /// Before each morsel of a fused aggregate stage.
    pub const FUSE_AGGR: &str = "fuse/aggr";
    /// While opening a persistent store (superblock / per-column files).
    pub const STORE_OPEN: &str = "store/open";
    /// Before each partition flush an out-of-core operator writes.
    pub const SPILL_WRITE: &str = "spill/write";
    /// Before each spilled partition an out-of-core operator reads back.
    pub const SPILL_READ: &str = "spill/read";
}

/// Microseconds since the process-wide monotonic anchor. Deadlines are
/// stored as one `AtomicU64` in this timebase (0 = none), so the probe's
/// deadline check is a single relaxed load when no deadline is set.
fn now_us() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    // +1 so a deadline computed at the anchor instant is never 0 (= none).
    ANCHOR.get_or_init(Instant::now).elapsed().as_micros() as u64 + 1
}

/// `FLATALG_FAULT=site:count` parsed once per process: fire at the
/// `count`-th probe of `site` (`*` matches every site). Each new
/// [`Governor`] arms its own countdown from this spec, so every query in
/// the process hits the same deterministic point.
fn env_fault() -> Option<&'static (String, u64)> {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var("FLATALG_FAULT").ok()?;
        let (site, count) = raw.rsplit_once(':')?;
        let count: u64 = count.trim().parse().ok()?;
        (!site.is_empty() && count > 0).then(|| (site.to_string(), count))
    })
    .as_ref()
}

/// An armed fault: fire [`MonetError::Injected`] at the `nth` matching
/// probe (1-based). Plain fields — mutated under the governor's mutex.
struct FaultPlan {
    /// Probe site to match; `"*"` matches every site.
    site: String,
    /// Fire at this matching probe (1-based).
    nth: u64,
    /// Matching probes seen so far.
    seen: u64,
}

/// Cloneable cancellation handle for one governor (= one query context).
/// Setting it makes every subsequent [`Governor::probe`] on that context
/// return [`MonetError::Cancelled`] until [`CancelToken::clear`].
#[derive(Clone)]
pub struct CancelToken(Arc<Governor>);

impl CancelToken {
    /// Request cooperative cancellation; observed at the next probe.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::Relaxed)
    }

    /// Clear a previous cancellation so the context is usable again (a
    /// cancelled session stays dead until its owner explicitly revives it).
    pub fn clear(&self) {
        self.0.cancelled.store(false, Ordering::Relaxed);
    }
}

/// Cancellation, deadline, and fault-injection state of one execution
/// context. See the module docs for the probe semantics.
pub struct Governor {
    cancelled: AtomicBool,
    /// Deadline in [`now_us`] microseconds; 0 = none.
    deadline_us: AtomicU64,
    /// Fast-path flag: probes skip the fault mutex entirely unless armed.
    fault_armed: AtomicBool,
    fault: Mutex<Option<FaultPlan>>,
    /// Total probes observed (all sites). The fault-sweep harness reads
    /// this after an uninjected run to enumerate a query's governed points.
    probes: AtomicU64,
}

impl Default for Governor {
    fn default() -> Governor {
        Governor::new()
    }
}

impl Governor {
    /// A fresh governor: no cancellation, no deadline; the fault injector
    /// is armed from `FLATALG_FAULT` when that is set.
    pub fn new() -> Governor {
        let g = Governor {
            cancelled: AtomicBool::new(false),
            deadline_us: AtomicU64::new(0),
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
            probes: AtomicU64::new(0),
        };
        if let Some((site, count)) = env_fault() {
            g.arm_fault(site, *count);
        }
        g
    }

    fn fault_slot(&self) -> std::sync::MutexGuard<'_, Option<FaultPlan>> {
        self.fault.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm the deterministic injector: the `nth` (1-based) subsequent
    /// probe matching `site` (`"*"` = any site) returns
    /// [`MonetError::Injected`]. One-shot: firing disarms, so a retried
    /// query runs clean. Re-arming replaces any previous plan.
    pub fn arm_fault(&self, site: &str, nth: u64) {
        *self.fault_slot() = Some(FaultPlan { site: site.to_string(), nth: nth.max(1), seen: 0 });
        self.fault_armed.store(true, Ordering::Release);
    }

    /// Disarm the injector without firing.
    pub fn disarm_fault(&self) {
        *self.fault_slot() = None;
        self.fault_armed.store(false, Ordering::Release);
    }

    /// Set (or clear) the deadline `d` from now. Observed cooperatively at
    /// probes; there is no preemption.
    pub fn set_deadline(&self, d: Option<Duration>) {
        let at =
            d.map_or(0, |d| now_us().saturating_add(d.as_micros().min(u64::MAX as u128) as u64));
        self.deadline_us.store(at, Ordering::Relaxed);
    }

    /// Total probes observed on this governor (all sites).
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// One governed point: count it, then fail if an armed fault fires
    /// here, the context is cancelled, or the deadline has passed. The
    /// idle path (nothing armed) is two relaxed loads and one relaxed
    /// increment.
    pub fn probe(&self, site: &'static str) -> Result<()> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if self.fault_armed.load(Ordering::Acquire) {
            let mut slot = self.fault_slot();
            if let Some(plan) = slot.as_mut() {
                if plan.site == "*" || plan.site == site {
                    plan.seen += 1;
                    if plan.seen >= plan.nth {
                        let hit = plan.seen;
                        *slot = None;
                        self.fault_armed.store(false, Ordering::Release);
                        return Err(MonetError::Injected { site, hit });
                    }
                }
            }
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(MonetError::Cancelled);
        }
        let deadline = self.deadline_us.load(Ordering::Relaxed);
        if deadline != 0 && now_us() > deadline {
            return Err(MonetError::DeadlineExceeded { site });
        }
        Ok(())
    }

    /// A cancellation handle for this governor.
    pub fn cancel_token(self: &Arc<Governor>) -> CancelToken {
        CancelToken(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_probe_is_ok_and_counts() {
        let g = Governor::new();
        assert_eq!(g.probes(), 0);
        assert!(g.probe("op/test").is_ok());
        assert!(g.probe(site::MIL_STMT).is_ok());
        assert_eq!(g.probes(), 2);
    }

    #[test]
    fn cancel_is_observed_and_clearable() {
        let g = Arc::new(Governor::new());
        let token = g.cancel_token();
        assert!(g.probe("x").is_ok());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(g.probe("x"), Err(MonetError::Cancelled));
        assert_eq!(g.probe("y"), Err(MonetError::Cancelled), "cancel is sticky");
        token.clear();
        assert!(g.probe("x").is_ok());
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let g = Governor::new();
        g.set_deadline(Some(Duration::from_secs(3600)));
        assert!(g.probe("x").is_ok());
        g.set_deadline(Some(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(g.probe("x"), Err(MonetError::DeadlineExceeded { site: "x" })));
        g.set_deadline(None);
        assert!(g.probe("x").is_ok());
    }

    #[test]
    fn fault_fires_exactly_once_at_the_nth_matching_probe() {
        let g = Governor::new();
        g.arm_fault("op/join", 2);
        assert!(g.probe("op/select").is_ok(), "non-matching site");
        assert!(g.probe("op/join").is_ok(), "first match, nth=2");
        assert_eq!(g.probe("op/join"), Err(MonetError::Injected { site: "op/join", hit: 2 }));
        assert!(g.probe("op/join").is_ok(), "one-shot: disarmed after firing");
    }

    #[test]
    fn wildcard_fault_matches_any_site() {
        let g = Governor::new();
        g.arm_fault("*", 3);
        assert!(g.probe("a").is_ok());
        assert!(g.probe("b").is_ok());
        assert_eq!(g.probe("c"), Err(MonetError::Injected { site: "c", hit: 3 }));
    }

    #[test]
    fn disarm_prevents_firing() {
        let g = Governor::new();
        g.arm_fault("*", 1);
        g.disarm_fault();
        assert!(g.probe("x").is_ok());
    }
}
