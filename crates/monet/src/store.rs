//! Persistent columnar BAT store: one page-aligned file per column plus a
//! versioned superblock, opened in O(1) via [`crate::pager::Mapping`].
//!
//! The paper's BATs live in anonymous RAM and are regenerated per process;
//! this module gives the same physical layouts — raw arrays, string heaps,
//! dict/FOR/RLE encodings — an on-disk form. A written store is a
//! directory:
//!
//! | file          | contents                                             |
//! |---------------|------------------------------------------------------|
//! | `store.sb`    | superblock: column table, BAT table (names, props,   |
//! |               | datavector wiring), trailing xxhash64                |
//! | `col-N.bat`   | one column: 4 KiB header (atom, layout descriptor,   |
//! |               | rows, per-segment xxhash64) + page-aligned segments  |
//!
//! Opening maps each column file once and wraps its segments in
//! [`crate::buf::Buf`] windows — the typed kernels run on mapped columns
//! unchanged, and columns shared between BATs at write time come back as
//! *one* column (same fresh [`crate::column::ColumnId`]), so the `synced`
//! property survives the round trip. Mapped columns are **read-only** by
//! construction; every mutation path in the kernel allocates fresh owned
//! buffers.
//!
//! Validation is layered. The default open checks magic/version, header and
//! superblock checksums, segment bounds (truncation), descriptor
//! consistency (the wrong-`Enc` class of corruption), and the invariants
//! the kernel's `unsafe` relies on: string windows are in-bounds valid
//! UTF-8, bool bytes are 0/1, dict codes address the dictionary, RLE run
//! ends are monotone. Full data checksums are O(data) and opt-in
//! ([`OpenOptions::verify_data`], [`verify_dir`]) — that is what the
//! corruption sweep and `flatalg-store verify` run.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::accel::datavector::{Datavector, Extent};
use crate::atom::AtomType;
use crate::bat::Bat;
use crate::buf::Buf;
use crate::column::{
    CodeSlice, Column, ColumnIdentity, ColumnVals, DictCodes, DictStrData, ForIntData,
    ForIntDeltas, ForLngData, ForLngDeltas, RleData, StorageRepr,
};
use crate::db::Db;
use crate::error::{MonetError, Result};
use crate::gov::{site, Governor};
use crate::pager::Mapping;
use crate::props::{ColProps, Enc, Props};
use crate::strheap::StrVec;

/// File-format version; bumped on any incompatible layout change.
pub const VERSION: u32 = 1;
/// Segment alignment: every segment starts on a page boundary, so mapped
/// windows are aligned for any element type.
pub const PAGE: usize = 4096;

const SB_MAGIC: u64 = u64::from_le_bytes(*b"FLATSB\x01\0");
const COL_MAGIC: u64 = u64::from_le_bytes(*b"FLATBAT\x01");
const SB_NAME: &str = "store.sb";

// Column-file layout descriptors.
const LAYOUT_RAW: u8 = 0;
const LAYOUT_STR: u8 = 1;
const LAYOUT_DICT: u8 = 2;
const LAYOUT_FOR: u8 = 3;
const LAYOUT_RLE: u8 = 4;

// Segment kinds.
const SEG_DATA: u32 = 0; // raw values / dict codes / FOR deltas / RLE payload
const SEG_STR_OFFSETS: u32 = 1;
const SEG_STR_LENS: u32 = 2;
const SEG_STR_HEAP: u32 = 3;
const SEG_DICT_OFFSETS: u32 = 4;
const SEG_DICT_LENS: u32 = 5;
const SEG_DICT_HEAP: u32 = 6;
const SEG_RLE_ENDS: u32 = 7;

/// xxHash64 (XXH64), the per-segment and superblock checksum. Public so
/// tests can re-stamp a header after targeted corruption.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    const P1: u64 = 0x9E37_79B1_85EB_CA87;
    const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    const P3: u64 = 0x1656_67B1_9E37_79F9;
    const P4: u64 = 0x85EB_CA77_C2B2_AE63;
    const P5: u64 = 0x27D4_EB2F_1656_67C5;
    #[inline]
    fn read64(b: &[u8]) -> u64 {
        u64::from_le_bytes(b[..8].try_into().unwrap())
    }
    #[inline]
    fn round(acc: u64, input: u64) -> u64 {
        acc.wrapping_add(input.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
    }
    let len = data.len();
    let mut rest = data;
    let mut h = if len >= 32 {
        let (mut v1, mut v2) = (seed.wrapping_add(P1).wrapping_add(P2), seed.wrapping_add(P2));
        let (mut v3, mut v4) = (seed, seed.wrapping_sub(P1));
        while rest.len() >= 32 {
            v1 = round(v1, read64(rest));
            v2 = round(v2, read64(&rest[8..]));
            v3 = round(v3, read64(&rest[16..]));
            v4 = round(v4, read64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            h = (h ^ round(0, v)).wrapping_mul(P1).wrapping_add(P4);
        }
        h
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(len as u64);
    while rest.len() >= 8 {
        h = (h ^ round(0, read64(rest))).rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let v = u32::from_le_bytes(rest[..4].try_into().unwrap()) as u64;
        h = (h ^ v.wrapping_mul(P1)).rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

fn serr(op: &'static str, path: &Path, detail: impl Into<String>) -> MonetError {
    MonetError::Store { op, path: path.display().to_string(), detail: detail.into() }
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> MonetError {
    serr(op, path, e.to_string())
}

/// View fixed-width elements as raw bytes for writing/hashing. Sound for
/// the primitive element types the store holds (`bool` is a single byte of
/// 0/1 by language guarantee).
fn as_bytes<T: Copy>(v: &[T]) -> &[u8] {
    // SAFETY: T is a plain primitive; any byte of it may be read.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

/// Options for [`open_dir`].
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    /// Also verify the xxhash64 of every data segment (O(data); the
    /// default open verifies headers, bounds, descriptors, and the
    /// kernel-safety invariants only).
    pub verify_data: bool,
}

/// What [`open_dir`] returns: the rebuilt catalog plus open statistics.
pub struct OpenedStore {
    pub db: Db,
    /// Scale factor recorded at build time.
    pub sf: f64,
    /// Total bytes of column files mapped.
    pub mapped_bytes: u64,
    /// Number of column files mapped.
    pub files: usize,
    /// True when every file is a real `mmap` (false = heap fallback).
    pub mmap: bool,
}

/// Statistics from [`write_dir`].
pub struct WriteStats {
    /// Files written (column files + superblock).
    pub files: usize,
    /// Total bytes written.
    pub bytes: u64,
}

// ---------------------------------------------------------------- writing

struct ColRecord {
    header_xxh: u64,
    /// `Some((seq, len))` for inline void columns (no file).
    void: Option<(u64, u64)>,
    rows: u64,
}

/// Serialize every BAT of `db` (plus datavector extents/vectors) into
/// `dir`. Existing store files in `dir` are overwritten. Columns shared by
/// identity across BATs are written once and wired by index, so `synced`
/// relationships survive the round trip; partial windows are compacted
/// first (identity gather, encoding preserved).
pub fn write_dir(dir: &Path, db: &Db, sf: f64) -> Result<WriteStats> {
    fs::create_dir_all(dir).map_err(|e| io_err("store/write", dir, e))?;
    let mut col_ids: HashMap<ColumnIdentity, u32> = HashMap::new();
    let mut cols: Vec<ColRecord> = Vec::new();
    let mut bytes = 0u64;
    let mut intern = |c: &Column, cols: &mut Vec<ColRecord>, bytes: &mut u64| -> Result<u32> {
        if let Some(&idx) = col_ids.get(&c.identity()) {
            return Ok(idx);
        }
        let idx = cols.len() as u32;
        if let Some(seq) = c.void_seq() {
            cols.push(ColRecord {
                header_xxh: 0,
                void: Some((seq, c.len() as u64)),
                rows: c.len() as u64,
            });
        } else {
            let full = if c.is_full_window() { c.clone() } else { compact(c) };
            let path = dir.join(format!("col-{idx}.bat"));
            let (hdr_xxh, written) = write_column_file(&path, &full)?;
            *bytes += written;
            cols.push(ColRecord { header_xxh: hdr_xxh, void: None, rows: c.len() as u64 });
        }
        col_ids.insert(c.identity(), idx);
        Ok(idx)
    };

    // (name, head, tail, prop bits, datavector (extent, vector) wiring)
    let mut bat_rows: Vec<(String, u32, u32, u16, Option<(u32, u32)>)> = Vec::new();
    for (name, bat) in db.iter() {
        let head = intern(bat.head(), &mut cols, &mut bytes)?;
        let tail = intern(bat.tail(), &mut cols, &mut bytes)?;
        let dv = match &bat.accel().datavector {
            Some(dv) => {
                let ext = intern(dv.extent().oids(), &mut cols, &mut bytes)?;
                let vec = intern(dv.vector(), &mut cols, &mut bytes)?;
                Some((ext, vec))
            }
            None => None,
        };
        bat_rows.push((name.to_string(), head, tail, prop_bits(bat.props()), dv));
    }

    let mut sb: Vec<u8> = Vec::new();
    sb.extend_from_slice(&SB_MAGIC.to_le_bytes());
    sb.extend_from_slice(&VERSION.to_le_bytes());
    sb.extend_from_slice(&0u32.to_le_bytes());
    sb.extend_from_slice(&sf.to_bits().to_le_bytes());
    sb.extend_from_slice(&(cols.len() as u64).to_le_bytes());
    sb.extend_from_slice(&(bat_rows.len() as u64).to_le_bytes());
    for c in &cols {
        match c.void {
            Some((seq, len)) => {
                sb.push(1);
                sb.extend_from_slice(&seq.to_le_bytes());
                sb.extend_from_slice(&len.to_le_bytes());
            }
            None => {
                sb.push(0);
                sb.extend_from_slice(&c.rows.to_le_bytes());
                sb.extend_from_slice(&c.header_xxh.to_le_bytes());
            }
        }
    }
    for (name, head, tail, props, dv) in &bat_rows {
        let nb = name.as_bytes();
        sb.extend_from_slice(&(nb.len() as u16).to_le_bytes());
        sb.extend_from_slice(nb);
        sb.extend_from_slice(&head.to_le_bytes());
        sb.extend_from_slice(&tail.to_le_bytes());
        sb.extend_from_slice(&props.to_le_bytes());
        match dv {
            Some((ext, vec)) => {
                sb.push(1);
                sb.extend_from_slice(&ext.to_le_bytes());
                sb.extend_from_slice(&vec.to_le_bytes());
            }
            None => sb.push(0),
        }
    }
    let sum = xxh64(&sb, 0);
    sb.extend_from_slice(&sum.to_le_bytes());
    let sb_path = dir.join(SB_NAME);
    fs::write(&sb_path, &sb).map_err(|e| io_err("store/write", &sb_path, e))?;
    bytes += sb.len() as u64;
    Ok(WriteStats { files: cols.iter().filter(|c| c.void.is_none()).count() + 1, bytes })
}

/// Compact a partial window into full-window storage of the same layout
/// (gather of the identity permutation keeps the encoding).
fn compact(c: &Column) -> Column {
    let idx: Vec<u32> = (0..c.len() as u32).collect();
    c.gather(&idx)
}

fn prop_bits(p: Props) -> u16 {
    let b = |c: ColProps, shift: u16| {
        ((c.sorted as u16) | ((c.key as u16) << 1) | ((c.dense as u16) << 2)) << shift
    };
    b(p.head, 0) | b(p.tail, 3)
}

fn props_from_bits(bits: u16) -> Props {
    let c = |shift: u16| ColProps {
        sorted: (bits >> shift) & 1 != 0,
        key: (bits >> shift) & 2 != 0,
        dense: (bits >> shift) & 4 != 0,
        enc: Enc::None, // re-derived from storage by Bat::with_props
    };
    Props::new(c(0), c(3))
}

fn atom_code(t: AtomType) -> u8 {
    match t {
        AtomType::Void => 0,
        AtomType::Oid => 1,
        AtomType::Bool => 2,
        AtomType::Chr => 3,
        AtomType::Int => 4,
        AtomType::Lng => 5,
        AtomType::Dbl => 6,
        AtomType::Str => 7,
        AtomType::Date => 8,
    }
}

fn atom_from_code(c: u8) -> Option<AtomType> {
    Some(match c {
        0 => AtomType::Void,
        1 => AtomType::Oid,
        2 => AtomType::Bool,
        3 => AtomType::Chr,
        4 => AtomType::Int,
        5 => AtomType::Lng,
        6 => AtomType::Dbl,
        7 => AtomType::Str,
        8 => AtomType::Date,
        _ => return None,
    })
}

fn code_slice_bytes<'a>(c: &CodeSlice<'a>) -> (&'a [u8], u8) {
    match c {
        CodeSlice::W8(v) => (as_bytes(v), 1),
        CodeSlice::W16(v) => (as_bytes(v), 2),
        CodeSlice::W32(v) => (as_bytes(v), 4),
    }
}

/// Write one full-window column into `path`. Returns the header checksum
/// (recorded in the superblock as a cross-check against file swaps) and
/// the bytes written.
fn write_column_file(path: &Path, col: &Column) -> Result<(u64, u64)> {
    let rows = col.len() as u64;
    let atom = atom_code(col.atom_type());
    // (layout, width, base, aux, segments)
    let (layout, width, base, aux, segs): (u8, u8, i64, u64, Vec<(u32, &[u8])>) =
        match col.storage_repr() {
            StorageRepr::Void { seq } => {
                unreachable!("void column (seq {seq}) must be inlined in the superblock")
            }
            StorageRepr::Oid(v) => (LAYOUT_RAW, 8, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Bool(v) => (LAYOUT_RAW, 1, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Chr(v) => (LAYOUT_RAW, 1, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Int(v) => (LAYOUT_RAW, 4, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Lng(v) => (LAYOUT_RAW, 8, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Dbl(v) => (LAYOUT_RAW, 8, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Date(v) => (LAYOUT_RAW, 4, 0, 0, vec![(SEG_DATA, as_bytes(v))]),
            StorageRepr::Str(sv) => {
                let (offsets, lens, heap) = str_parts(sv);
                (
                    LAYOUT_STR,
                    4,
                    0,
                    0,
                    vec![
                        (SEG_STR_OFFSETS, as_bytes(offsets)),
                        (SEG_STR_LENS, as_bytes(lens)),
                        (SEG_STR_HEAP, heap),
                    ],
                )
            }
            StorageRepr::DictStr { codes, dict } => {
                let (code_bytes, w) = code_slice_bytes(&codes);
                let (offsets, lens, heap) = str_parts(dict);
                (
                    LAYOUT_DICT,
                    w,
                    0,
                    dict.len() as u64,
                    vec![
                        (SEG_DATA, code_bytes),
                        (SEG_DICT_OFFSETS, as_bytes(offsets)),
                        (SEG_DICT_LENS, as_bytes(lens)),
                        (SEG_DICT_HEAP, heap),
                    ],
                )
            }
            StorageRepr::ForInt { base, date, deltas } => {
                // `date` is redundant with the atom byte; the open path
                // re-derives it from there.
                debug_assert_eq!(date, col.atom_type() == AtomType::Date);
                let (delta_bytes, w) = code_slice_bytes(&deltas);
                (LAYOUT_FOR, w, base as i64, 0, vec![(SEG_DATA, delta_bytes)])
            }
            StorageRepr::ForLng { base, deltas } => {
                let (delta_bytes, w) = code_slice_bytes(&deltas);
                (LAYOUT_FOR, w, base, 0, vec![(SEG_DATA, delta_bytes)])
            }
            StorageRepr::Rle { ends, vals } => {
                let mut segs = vec![(SEG_RLE_ENDS, as_bytes(ends))];
                match vals.storage_repr() {
                    StorageRepr::Oid(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Bool(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Chr(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Int(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Lng(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Dbl(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Date(v) => segs.push((SEG_DATA, as_bytes(v))),
                    StorageRepr::Str(sv) => {
                        let (offsets, lens, heap) = str_parts(sv);
                        segs.push((SEG_STR_OFFSETS, as_bytes(offsets)));
                        segs.push((SEG_STR_LENS, as_bytes(lens)));
                        segs.push((SEG_STR_HEAP, heap));
                    }
                    _ => return Err(serr("store/write", path, "RLE payload must be a raw column")),
                }
                (LAYOUT_RLE, 0, 0, vals.len() as u64, segs)
            }
        };

    // Lay out segments on page boundaries after the header page.
    let mut off = PAGE as u64;
    let mut table: Vec<(u32, u64, u64, u64)> = Vec::with_capacity(segs.len());
    for (kind, data) in &segs {
        table.push((*kind, off, data.len() as u64, xxh64(data, 0)));
        off += (data.len() as u64).div_ceil(PAGE as u64) * PAGE as u64;
    }

    let mut header = vec![0u8; PAGE];
    header[0..8].copy_from_slice(&COL_MAGIC.to_le_bytes());
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12] = atom;
    header[13] = layout;
    header[14] = width;
    header[16..24].copy_from_slice(&rows.to_le_bytes());
    header[24..32].copy_from_slice(&base.to_le_bytes());
    header[32..40].copy_from_slice(&aux.to_le_bytes());
    header[40..44].copy_from_slice(&(segs.len() as u32).to_le_bytes());
    for (i, (kind, off, nbytes, sum)) in table.iter().enumerate() {
        let at = 56 + i * 32;
        header[at..at + 4].copy_from_slice(&kind.to_le_bytes());
        header[at + 8..at + 16].copy_from_slice(&off.to_le_bytes());
        header[at + 16..at + 24].copy_from_slice(&nbytes.to_le_bytes());
        header[at + 24..at + 32].copy_from_slice(&sum.to_le_bytes());
    }
    let hdr_xxh = xxh64(&header, 0);
    header[48..56].copy_from_slice(&hdr_xxh.to_le_bytes());

    let mut f = fs::File::create(path).map_err(|e| io_err("store/write", path, e))?;
    f.write_all(&header).map_err(|e| io_err("store/write", path, e))?;
    let mut written = PAGE as u64;
    for (i, (_, data)) in segs.iter().enumerate() {
        debug_assert_eq!(written, table[i].1);
        f.write_all(data).map_err(|e| io_err("store/write", path, e))?;
        written += data.len() as u64;
        let pad = (PAGE as u64 - written % PAGE as u64) % PAGE as u64;
        if pad > 0 {
            f.write_all(&vec![0u8; pad as usize]).map_err(|e| io_err("store/write", path, e))?;
            written += pad;
        }
    }
    f.flush().map_err(|e| io_err("store/write", path, e))?;
    Ok((hdr_xxh, written))
}

fn str_parts(sv: &StrVec) -> (&[u32], &[u32], &[u8]) {
    sv.parts(0, sv.len())
}

// ---------------------------------------------------------------- reading

struct Seg {
    kind: u32,
    off: u64,
    bytes: u64,
    xxh: u64,
}

struct ColHeader {
    atom: AtomType,
    layout: u8,
    width: u8,
    rows: u64,
    base: i64,
    aux: u64,
    segs: Vec<Seg>,
}

fn parse_col_header(path: &Path, bytes: &[u8]) -> Result<ColHeader> {
    let e = |detail: &str| serr("store/open", path, detail);
    if bytes.len() < PAGE {
        return Err(e("file shorter than the header page (truncated)"));
    }
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    if u64_at(0) != COL_MAGIC {
        return Err(e("bad magic (not a flatalg column file)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(serr(
            "store/open",
            path,
            format!("version mismatch: file v{version}, kernel v{VERSION}"),
        ));
    }
    let mut header = bytes[..PAGE].to_vec();
    header[48..56].fill(0);
    if xxh64(&header, 0) != u64_at(48) {
        return Err(e("header checksum mismatch (corrupted header)"));
    }
    let atom = atom_from_code(bytes[12]).ok_or_else(|| e("invalid atom code"))?;
    let nsegs = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
    if nsegs > (PAGE - 56) / 32 {
        return Err(e("segment table overruns the header page"));
    }
    let mut segs = Vec::with_capacity(nsegs);
    for i in 0..nsegs {
        let at = 56 + i * 32;
        let seg = Seg {
            kind: u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()),
            off: u64_at(at + 8),
            bytes: u64_at(at + 16),
            xxh: u64_at(at + 24),
        };
        if seg.off % PAGE as u64 != 0 {
            return Err(e("segment offset not page-aligned"));
        }
        if seg.off.checked_add(seg.bytes).map(|end| end > bytes.len() as u64).unwrap_or(true) {
            return Err(e("segment extends past end of file (truncated)"));
        }
        segs.push(seg);
    }
    Ok(ColHeader {
        atom,
        layout: bytes[13],
        width: bytes[14],
        rows: u64_at(16),
        base: u64_at(24) as i64,
        aux: u64_at(32),
        segs,
    })
}

/// One opened (mapped, header-validated) column file.
struct OpenCol {
    map: Arc<Mapping>,
    hdr: ColHeader,
    path: PathBuf,
}

impl OpenCol {
    fn seg(&self, kind: u32) -> Result<&Seg> {
        self.hdr
            .segs
            .iter()
            .find(|s| s.kind == kind)
            .ok_or_else(|| serr("store/open", &self.path, format!("missing segment kind {kind}")))
    }

    fn seg_bytes(&self, s: &Seg) -> &[u8] {
        &self.map.bytes()[s.off as usize..(s.off + s.bytes) as usize]
    }

    /// Map a segment as `elems` elements of `T`, checking the byte size
    /// against the descriptor.
    fn buf<T>(&self, kind: u32, elems: u64) -> Result<Buf<T>> {
        let s = self.seg(kind)?;
        let want = elems.checked_mul(std::mem::size_of::<T>() as u64);
        if want != Some(s.bytes) {
            return Err(serr(
                "store/open",
                &self.path,
                format!("segment kind {kind} holds {} bytes, descriptor implies {want:?}", s.bytes),
            ));
        }
        // SAFETY: bounds were checked at header parse and offsets are
        // page-aligned; element validity holds for any bit pattern of the
        // fixed-width types, and is established by the explicit validation
        // below for `bool` and string segments.
        Ok(unsafe { Buf::from_mapping(Arc::clone(&self.map), s.off as usize, elems as usize) })
    }

    fn strvec(&self, kinds: (u32, u32, u32), n: u64) -> Result<StrVec> {
        let offsets: Buf<u32> = self.buf(kinds.0, n)?;
        let lens: Buf<u32> = self.buf(kinds.1, n)?;
        let heap_seg = self.seg(kinds.2)?;
        let heap: Buf<u8> = self.buf(kinds.2, heap_seg.bytes)?;
        // The kernel reads string windows with `from_utf8_unchecked`
        // (see `crate::typed`), so every window must be proven in-bounds
        // valid UTF-8 here, once, at open.
        let hb: &[u8] = &heap;
        for i in 0..n as usize {
            let (off, len) = (offsets[i] as usize, lens[i] as usize);
            let window = off
                .checked_add(len)
                .and_then(|end| hb.get(off..end))
                .ok_or_else(|| serr("store/open", &self.path, "string window out of bounds"))?;
            if std::str::from_utf8(window).is_err() {
                return Err(serr("store/open", &self.path, "string window is not valid UTF-8"));
            }
        }
        Ok(StrVec::from_heaps(Arc::new(offsets), Arc::new(lens), Arc::new(heap)))
    }

    fn verify_data(&self, op: &'static str) -> Result<()> {
        for s in &self.hdr.segs {
            if xxh64(self.seg_bytes(s), 0) != s.xxh {
                return Err(serr(
                    op,
                    &self.path,
                    format!("segment kind {} checksum mismatch (corrupted data)", s.kind),
                ));
            }
        }
        Ok(())
    }

    /// Reconstruct the column (fresh [`crate::column::ColumnId`]).
    fn column(&self) -> Result<Column> {
        let e = |detail: String| serr("store/open", &self.path, detail);
        let h = &self.hdr;
        let n = h.rows;
        let vals = match (h.layout, h.atom) {
            (LAYOUT_RAW, AtomType::Oid) => ColumnVals::Oid(Arc::new(self.buf(SEG_DATA, n)?)),
            (LAYOUT_RAW, AtomType::Bool) => {
                let raw: Buf<u8> = self.buf(SEG_DATA, n)?;
                if raw.iter().any(|&b| b > 1) {
                    return Err(e("bool segment holds a byte that is neither 0 nor 1".into()));
                }
                // Re-map as bool, valid now that every byte is proven 0/1.
                ColumnVals::Bool(Arc::new(self.buf(SEG_DATA, n)?))
            }
            (LAYOUT_RAW, AtomType::Chr) => ColumnVals::Chr(Arc::new(self.buf(SEG_DATA, n)?)),
            (LAYOUT_RAW, AtomType::Int) => ColumnVals::Int(Arc::new(self.buf(SEG_DATA, n)?)),
            (LAYOUT_RAW, AtomType::Lng) => ColumnVals::Lng(Arc::new(self.buf(SEG_DATA, n)?)),
            (LAYOUT_RAW, AtomType::Dbl) => ColumnVals::Dbl(Arc::new(self.buf(SEG_DATA, n)?)),
            (LAYOUT_RAW, AtomType::Date) => ColumnVals::Date(Arc::new(self.buf(SEG_DATA, n)?)),
            (LAYOUT_STR, AtomType::Str) => {
                ColumnVals::Str(self.strvec((SEG_STR_OFFSETS, SEG_STR_LENS, SEG_STR_HEAP), n)?)
            }
            (LAYOUT_DICT, AtomType::Str) => {
                let dict = self.strvec((SEG_DICT_OFFSETS, SEG_DICT_LENS, SEG_DICT_HEAP), h.aux)?;
                let dlen = dict.len();
                let codes = match h.width {
                    1 => {
                        let c: Buf<u8> = self.buf(SEG_DATA, n)?;
                        validate_codes(c.iter().map(|&x| x as usize), dlen)
                            .map_err(|d| e(d.into()))?;
                        DictCodes::W8(c)
                    }
                    2 => {
                        let c: Buf<u16> = self.buf(SEG_DATA, n)?;
                        validate_codes(c.iter().map(|&x| x as usize), dlen)
                            .map_err(|d| e(d.into()))?;
                        DictCodes::W16(c)
                    }
                    4 => {
                        let c: Buf<u32> = self.buf(SEG_DATA, n)?;
                        validate_codes(c.iter().map(|&x| x as usize), dlen)
                            .map_err(|d| e(d.into()))?;
                        DictCodes::W32(c)
                    }
                    w => return Err(e(format!("invalid dict code width {w}"))),
                };
                ColumnVals::DictStr(Arc::new(DictStrData::from_parts(codes, dict)))
            }
            (LAYOUT_FOR, AtomType::Int | AtomType::Date) => {
                let date = h.atom == AtomType::Date;
                let base = i32::try_from(h.base)
                    .map_err(|_| e(format!("FOR base {} out of int range", h.base)))?;
                let deltas = match h.width {
                    1 => ForIntDeltas::W8(self.buf(SEG_DATA, n)?),
                    2 => ForIntDeltas::W16(self.buf(SEG_DATA, n)?),
                    w => return Err(e(format!("invalid FOR(int) delta width {w}"))),
                };
                ColumnVals::ForInt(Arc::new(ForIntData::from_parts(base, deltas, date)))
            }
            (LAYOUT_FOR, AtomType::Lng) => {
                let deltas = match h.width {
                    1 => ForLngDeltas::W8(self.buf(SEG_DATA, n)?),
                    2 => ForLngDeltas::W16(self.buf(SEG_DATA, n)?),
                    4 => ForLngDeltas::W32(self.buf(SEG_DATA, n)?),
                    w => return Err(e(format!("invalid FOR(lng) delta width {w}"))),
                };
                ColumnVals::ForLng(Arc::new(ForLngData::from_parts(h.base, deltas)))
            }
            (LAYOUT_RLE, _) => {
                let runs = h.aux;
                let ends: Buf<u32> = self.buf(SEG_RLE_ENDS, runs)?;
                if ends.windows(2).any(|w| w[1] < w[0]) {
                    return Err(e("RLE run ends are not non-decreasing".into()));
                }
                if ends.last().copied().unwrap_or(0) as u64 != n {
                    return Err(e("RLE run ends disagree with the row count".into()));
                }
                let vals = match h.atom {
                    AtomType::Oid => Column::new(
                        ColumnVals::Oid(Arc::new(self.buf(SEG_DATA, runs)?)),
                        runs as usize,
                    ),
                    AtomType::Chr => Column::new(
                        ColumnVals::Chr(Arc::new(self.buf(SEG_DATA, runs)?)),
                        runs as usize,
                    ),
                    AtomType::Int => Column::new(
                        ColumnVals::Int(Arc::new(self.buf(SEG_DATA, runs)?)),
                        runs as usize,
                    ),
                    AtomType::Lng => Column::new(
                        ColumnVals::Lng(Arc::new(self.buf(SEG_DATA, runs)?)),
                        runs as usize,
                    ),
                    AtomType::Dbl => Column::new(
                        ColumnVals::Dbl(Arc::new(self.buf(SEG_DATA, runs)?)),
                        runs as usize,
                    ),
                    AtomType::Date => Column::new(
                        ColumnVals::Date(Arc::new(self.buf(SEG_DATA, runs)?)),
                        runs as usize,
                    ),
                    AtomType::Str => Column::from_strvec(
                        self.strvec((SEG_STR_OFFSETS, SEG_STR_LENS, SEG_STR_HEAP), runs)?,
                    ),
                    other => return Err(e(format!("invalid RLE payload atom {other}"))),
                };
                ColumnVals::Rle(Arc::new(RleData::from_parts(ends, vals)))
            }
            (layout, atom) => {
                return Err(e(format!(
                    "descriptor mismatch: layout {layout} is invalid for atom {atom}"
                )))
            }
        };
        Ok(Column::new(vals, n as usize))
    }
}

fn validate_codes(
    codes: impl Iterator<Item = usize>,
    dict_len: usize,
) -> std::result::Result<(), &'static str> {
    for c in codes {
        if c >= dict_len {
            return Err("dict code addresses past the dictionary");
        }
    }
    Ok(())
}

struct SbColumn {
    /// `Some((seq, len))` = inline void column, no file.
    void: Option<(u64, u64)>,
    rows: u64,
    header_xxh: u64,
}

struct SbBat {
    name: String,
    head: u32,
    tail: u32,
    props: Props,
    dv: Option<(u32, u32)>,
}

struct Superblock {
    sf: f64,
    cols: Vec<SbColumn>,
    bats: Vec<SbBat>,
}

fn parse_superblock(path: &Path, raw: &[u8]) -> Result<Superblock> {
    let e = |detail: &str| serr("store/open", path, detail);
    if raw.len() < 48 {
        return Err(e("superblock truncated"));
    }
    let u64_at = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().unwrap());
    if u64_at(0) != SB_MAGIC {
        return Err(e("bad magic (not a flatalg store superblock)"));
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(serr(
            "store/open",
            path,
            format!("version mismatch: superblock v{version}, kernel v{VERSION}"),
        ));
    }
    let (body, tail) = raw.split_at(raw.len() - 8);
    if xxh64(body, 0) != u64::from_le_bytes(tail.try_into().unwrap()) {
        return Err(e("superblock checksum mismatch (corrupted superblock)"));
    }
    let sf = f64::from_bits(u64_at(16));
    let ncols = u64_at(24) as usize;
    let nbats = u64_at(32) as usize;
    let mut at = 40usize;
    let need = |n: usize, at: usize| -> Result<()> {
        if at + n > body.len() {
            Err(e("superblock table truncated"))
        } else {
            Ok(())
        }
    };
    let mut cols = Vec::with_capacity(ncols.min(1 << 20));
    for _ in 0..ncols {
        need(17, at)?;
        let kind = body[at];
        let a = u64::from_le_bytes(body[at + 1..at + 9].try_into().unwrap());
        let b = u64::from_le_bytes(body[at + 9..at + 17].try_into().unwrap());
        at += 17;
        cols.push(match kind {
            1 => SbColumn { void: Some((a, b)), rows: b, header_xxh: 0 },
            0 => SbColumn { void: None, rows: a, header_xxh: b },
            _ => return Err(e("invalid column kind in superblock")),
        });
    }
    let mut bats = Vec::with_capacity(nbats.min(1 << 20));
    for _ in 0..nbats {
        need(2, at)?;
        let nlen = u16::from_le_bytes(body[at..at + 2].try_into().unwrap()) as usize;
        at += 2;
        need(nlen + 11, at)?;
        let name = std::str::from_utf8(&body[at..at + nlen])
            .map_err(|_| e("BAT name is not valid UTF-8"))?
            .to_string();
        at += nlen;
        let head = u32::from_le_bytes(body[at..at + 4].try_into().unwrap());
        let tail = u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap());
        let props = props_from_bits(u16::from_le_bytes(body[at + 8..at + 10].try_into().unwrap()));
        let has_dv = body[at + 10];
        at += 11;
        let dv = match has_dv {
            1 => {
                need(8, at)?;
                let ext = u32::from_le_bytes(body[at..at + 4].try_into().unwrap());
                let vec = u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap());
                at += 8;
                Some((ext, vec))
            }
            0 => None,
            _ => return Err(e("invalid datavector flag in superblock")),
        };
        bats.push(SbBat { name, head, tail, props, dv });
    }
    Ok(Superblock { sf, cols, bats })
}

/// Open a store directory written by [`write_dir`]: map every column file,
/// validate (see the module docs for the layering), and rebuild the
/// catalog. The returned [`Db`] is freshly minted — its id/epoch can never
/// collide with a same-named in-memory world, so plan caches keyed on
/// `(db_id, epoch)` are safe by construction.
///
/// `gov` probes fire at [`site::STORE_OPEN`] once per file, so
/// cancellation, deadlines, and the fault-injection sweep govern the open
/// path like any kernel loop.
pub fn open_dir(dir: &Path, gov: Option<&Governor>, opts: &OpenOptions) -> Result<OpenedStore> {
    let sb_path = dir.join(SB_NAME);
    if let Some(g) = gov {
        g.probe(site::STORE_OPEN)?;
    }
    let raw = fs::read(&sb_path).map_err(|e| io_err("store/open", &sb_path, e))?;
    let sb = parse_superblock(&sb_path, &raw)?;

    let mut mapped_bytes = 0u64;
    let mut files = 0usize;
    let mut mmap = true;
    let mut columns: Vec<Column> = Vec::with_capacity(sb.cols.len());
    for (idx, c) in sb.cols.iter().enumerate() {
        if let Some((seq, len)) = c.void {
            columns.push(Column::void(seq, len as usize));
            continue;
        }
        if let Some(g) = gov {
            g.probe(site::STORE_OPEN)?;
        }
        let path = dir.join(format!("col-{idx}.bat"));
        let file = fs::File::open(&path).map_err(|e| io_err("store/open", &path, e))?;
        let map = Arc::new(Mapping::map(&file).map_err(|e| io_err("store/open", &path, e))?);
        let hdr = parse_col_header(&path, map.bytes())?;
        if hdr.rows != c.rows {
            return Err(serr("store/open", &path, "row count disagrees with the superblock"));
        }
        let stamped = u64::from_le_bytes(map.bytes()[48..56].try_into().unwrap());
        if stamped != c.header_xxh {
            return Err(serr(
                "store/open",
                &path,
                "header checksum disagrees with the superblock (file swapped?)",
            ));
        }
        mapped_bytes += map.bytes().len() as u64;
        files += 1;
        mmap &= map.is_mmap();
        let open = OpenCol { map, hdr, path };
        if opts.verify_data {
            open.verify_data("store/open")?;
        }
        columns.push(open.column()?);
    }

    let mut db = Db::new();
    let mut extents: HashMap<u32, Arc<Extent>> = HashMap::new();
    let col = |i: u32| -> Result<&Column> {
        columns
            .get(i as usize)
            .ok_or_else(|| serr("store/open", &sb_path, "BAT references a missing column"))
    };
    for b in &sb.bats {
        let head = col(b.head)?.clone();
        let tail = col(b.tail)?.clone();
        if head.len() != tail.len() {
            return Err(serr(
                "store/open",
                &sb_path,
                format!("BAT {}: head and tail lengths disagree", b.name),
            ));
        }
        let mut bat = Bat::with_props(head, tail, b.props);
        if let Some((ext_idx, vec_idx)) = b.dv {
            let vector = col(vec_idx)?.clone();
            let extent = match extents.get(&ext_idx) {
                Some(e) => Arc::clone(e),
                None => {
                    let ext_col = col(ext_idx)?.clone();
                    if !ext_col.is_oidlike() {
                        return Err(serr(
                            "store/open",
                            &sb_path,
                            format!("BAT {}: datavector extent is not oid-typed", b.name),
                        ));
                    }
                    let ext = Extent::new(ext_col);
                    extents.insert(ext_idx, Arc::clone(&ext));
                    ext
                }
            };
            if extent.len() != vector.len() {
                return Err(serr(
                    "store/open",
                    &sb_path,
                    format!("BAT {}: datavector vector does not align with its extent", b.name),
                ));
            }
            bat.set_datavector(Arc::new(Datavector::new(extent, vector)));
        }
        db.register(&b.name, bat);
    }
    Ok(OpenedStore { db, sf: sb.sf, mapped_bytes, files, mmap })
}

/// Full-checksum verification of a store directory: superblock plus every
/// segment of every column file. Returns `(files, bytes)` checked.
pub fn verify_dir(dir: &Path) -> Result<(usize, u64)> {
    let sb_path = dir.join(SB_NAME);
    let raw = fs::read(&sb_path).map_err(|e| io_err("store/verify", &sb_path, e))?;
    let sb = parse_superblock(&sb_path, &raw)?;
    let mut files = 1usize;
    let mut bytes = raw.len() as u64;
    for (idx, c) in sb.cols.iter().enumerate() {
        if c.void.is_some() {
            continue;
        }
        let path = dir.join(format!("col-{idx}.bat"));
        let file = fs::File::open(&path).map_err(|e| io_err("store/verify", &path, e))?;
        let map = Arc::new(Mapping::map(&file).map_err(|e| io_err("store/verify", &path, e))?);
        let hdr = parse_col_header(&path, map.bytes())?;
        let open = OpenCol { map, hdr, path };
        open.verify_data("store/verify")?;
        files += 1;
        bytes += open.map.bytes().len() as u64;
    }
    Ok((files, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomValue;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("flatalg-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    /// Reference vectors from the xxHash specification (XXH64).
    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"Nobody inspects the spammish repetition", 0), 0xFBCE_A83C_8A37_8BF1);
    }

    #[test]
    fn roundtrip_all_layouts() {
        let dir = tmpdir("roundtrip");
        let mut db = Db::new();
        db.register(
            "ints",
            Bat::with_inferred_props(Column::void(100, 5), Column::from_ints(vec![5, 1, 4, 1, 3])),
        );
        db.register(
            "strs",
            Bat::with_inferred_props(
                Column::from_oids(vec![7, 8, 9]),
                Column::from_strs(["alpha", "", "héllo"]),
            ),
        );
        db.register(
            "bools",
            Bat::with_inferred_props(
                Column::void(0, 4),
                Column::from_bools(vec![true, false, false, true]),
            ),
        );
        let dict: Vec<String> = (0..300).map(|i| format!("c{}", i % 7)).collect();
        let dict_col = Column::from_strs(&dict).encode(false);
        assert_eq!(dict_col.encoding(), Enc::Dict);
        db.register("dict", Bat::with_inferred_props(Column::void(0, 300), dict_col));
        let for_col = Column::from_ints((0..300).map(|i| 1000 + (i % 50)).collect()).encode(false);
        assert_eq!(for_col.encoding(), Enc::For);
        db.register("for", Bat::with_inferred_props(Column::void(0, 300), for_col));
        let rle_col = Column::from_lngs((0..400).map(|i| (i / 100) as i64).collect()).encode(true);
        assert_eq!(rle_col.encoding(), Enc::Rle);
        db.register("rle", Bat::with_inferred_props(Column::void(0, 400), rle_col));
        db.register(
            "dbls",
            Bat::with_inferred_props(
                Column::void(0, 3),
                Column::from_dbls(vec![1.5, -0.0, f64::NAN]),
            ),
        );

        write_dir(&dir, &db, 0.5).unwrap();
        let opened = open_dir(&dir, None, &OpenOptions { verify_data: true }).unwrap();
        assert_eq!(opened.sf, 0.5);
        assert_eq!(opened.db.len(), db.len());
        for (name, want) in db.iter() {
            let got = opened.db.get(name).unwrap();
            assert_eq!(got.len(), want.len(), "{name}: row count");
            assert_eq!(got.props(), want.props(), "{name}: props");
            assert_eq!(got.tail().encoding(), want.tail().encoding(), "{name}: enc");
            for i in 0..want.len() {
                let (gh, gt) = got.bun(i);
                let (wh, wt) = want.bun(i);
                match (&gt, &wt) {
                    (AtomValue::Dbl(a), AtomValue::Dbl(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "{name}[{i}]")
                    }
                    _ => assert_eq!(gt, wt, "{name}[{i}]"),
                }
                assert_eq!(gh, wh, "{name}[{i}] head");
            }
        }
        // A store-backed catalog is a fresh Db identity (plan-cache safety).
        assert_ne!(opened.db.id(), db.id());
        verify_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_columns_stay_synced() {
        let dir = tmpdir("sync");
        let shared = Column::from_oids(vec![3, 1, 2]);
        let mut db = Db::new();
        db.register(
            "a",
            Bat::with_inferred_props(shared.clone(), Column::from_ints(vec![30, 10, 20])),
        );
        db.register("b", Bat::with_inferred_props(shared, Column::from_strs(["x", "y", "z"])));
        write_dir(&dir, &db, 0.0).unwrap();
        let opened = open_dir(&dir, None, &OpenOptions::default()).unwrap();
        let (a, b) = (opened.db.get("a").unwrap(), opened.db.get("b").unwrap());
        assert!(a.synced(b), "head sharing must survive the round trip");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_window_is_compacted() {
        let dir = tmpdir("compact");
        let base = Column::from_ints(vec![9, 8, 7, 6, 5]);
        let win = base.slice(1, 3);
        let mut db = Db::new();
        db.register("w", Bat::with_inferred_props(Column::void(0, 3), win));
        write_dir(&dir, &db, 0.0).unwrap();
        let opened = open_dir(&dir, None, &OpenOptions { verify_data: true }).unwrap();
        let got = opened.db.get("w").unwrap();
        let tails: Vec<AtomValue> = (0..3).map(|i| got.bun(i).1).collect();
        assert_eq!(tails, vec![AtomValue::Int(8), AtomValue::Int(7), AtomValue::Int(6)]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
