//! Pretty-printing of MIL programs, in the style of the listings of
//! Figures 5 and 10: `items := join(Item_order, orders)`.

use std::fmt::Write as _;

use super::ast::{FuseArg, FuseStage, MilArg, MilOp, MilProgram, MilStmt};

/// Render one statement as `name := op(args)`.
pub fn render_stmt(prog: &MilProgram, stmt: &MilStmt) -> String {
    let n = |v: usize| prog.name_of(v).to_string();
    let body = match &stmt.op {
        MilOp::Load(name) => format!("load(\"{name}\")"),
        MilOp::ConstScalar(v) => format!("{v}"),
        MilOp::Mirror(v) => format!("{}.mirror", n(*v)),
        MilOp::SelectEq(v, val) => format!("select({}, {val})", n(*v)),
        MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi } => {
            let lo = lo.as_ref().map_or("-inf".to_string(), |v| v.to_string());
            let hi = hi.as_ref().map_or("+inf".to_string(), |v| v.to_string());
            let lb = if *inc_lo { '[' } else { '(' };
            let rb = if *inc_hi { ']' } else { ')' };
            format!("select({}, {lb}{lo}, {hi}{rb})", n(*src))
        }
        MilOp::Join(a, b) => format!("join({}, {})", n(*a), n(*b)),
        MilOp::Semijoin(a, b) => format!("semijoin({}, {})", n(*a), n(*b)),
        MilOp::Antijoin(a, b) => format!("antijoin({}, {})", n(*a), n(*b)),
        MilOp::Unique(v) => format!("{}.unique", n(*v)),
        MilOp::Group1(v) => format!("group({})", n(*v)),
        MilOp::Group2(a, b) => format!("group({}, {})", n(*a), n(*b)),
        MilOp::Multiplex { f, args } => {
            let mut s = format!("[{}](", f.mil_name());
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                match a {
                    MilArg::Var(v) => s.push_str(&n(*v)),
                    MilArg::Const(c) => {
                        let _ = write!(s, "{c}");
                    }
                }
            }
            s.push(')');
            s
        }
        MilOp::SetAgg { f, src } => format!("{{{}}}({})", f.name(), n(*src)),
        MilOp::AggrScalar { f, src } => format!("{}({})", f.name(), n(*src)),
        MilOp::Union(a, b) => format!("union({}, {})", n(*a), n(*b)),
        MilOp::Diff(a, b) => format!("diff({}, {})", n(*a), n(*b)),
        MilOp::Intersect(a, b) => format!("intersect({}, {})", n(*a), n(*b)),
        MilOp::Concat(a, b) => format!("concat({}, {})", n(*a), n(*b)),
        MilOp::Zip(a, b) => format!("zip({}, {})", n(*a), n(*b)),
        MilOp::SortTail(v) => format!("sort({})", n(*v)),
        MilOp::SortHead(v) => format!("sort_head({})", n(*v)),
        MilOp::TopN { src, n: k, desc } => {
            format!("topn({}, {k}, {})", n(*src), if *desc { "desc" } else { "asc" })
        }
        MilOp::Mark(v) => format!("mark({})", n(*v)),
        MilOp::Fused { src, stages } => {
            // `fuse(src, select(..) | [f](..) | sum)  #! fused[n]`: the
            // stages read left to right in chain order, `_` standing for
            // the value flowing through the pipeline.
            let mut s = format!("fuse({}", n(*src));
            for stage in stages {
                s.push_str(", ");
                match stage {
                    FuseStage::SelectEq(val) => {
                        let _ = write!(s, "select(_, {val})");
                    }
                    FuseStage::SelectRange { lo, hi, inc_lo, inc_hi } => {
                        let lo = lo.as_ref().map_or("-inf".to_string(), |v| v.to_string());
                        let hi = hi.as_ref().map_or("+inf".to_string(), |v| v.to_string());
                        let lb = if *inc_lo { '[' } else { '(' };
                        let rb = if *inc_hi { ']' } else { ')' };
                        let _ = write!(s, "select(_, {lb}{lo}, {hi}{rb})");
                    }
                    FuseStage::Map { f, args } => {
                        let _ = write!(s, "[{}](", f.mil_name());
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                s.push_str(", ");
                            }
                            match a {
                                FuseArg::Chain => s.push('_'),
                                FuseArg::Var(v) => s.push_str(&n(*v)),
                                FuseArg::Const(c) => {
                                    let _ = write!(s, "{c}");
                                }
                            }
                        }
                        s.push(')');
                    }
                    FuseStage::Aggr(f) => s.push_str(f.name()),
                }
            }
            s.push(')');
            s
        }
    };
    let annotated = match stmt.pin {
        // Annotate plan-time pinned algorithms, EXPLAIN-style.
        Some(p) => format!("{} := {}  #! {}", stmt.name, body, p.label()),
        None => format!("{} := {}", stmt.name, body),
    };
    match &stmt.op {
        MilOp::Fused { stages, .. } => format!("{annotated}  #! fused[{}]", stages.len()),
        _ => annotated,
    }
}

/// Render the whole program, one statement per line.
pub fn render_program(prog: &MilProgram) -> String {
    let mut out = String::new();
    for stmt in &prog.stmts {
        out.push_str(&render_stmt(prog, stmt));
        out.push('\n');
    }
    out
}

impl std::fmt::Display for MilProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render_program(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomValue;
    use crate::ops::{AggFunc, ScalarFunc};

    #[test]
    fn renders_like_figure10() {
        let mut p = MilProgram::new();
        let clerk = p.emit("Order_clerk", MilOp::Load("Order_clerk".into()));
        let orders = p.emit("orders", MilOp::SelectEq(clerk, AtomValue::str("Clerk#000000088")));
        let io = p.emit("Item_order", MilOp::Load("Item_order".into()));
        let items = p.emit("items", MilOp::Join(io, orders));
        let disc = p.emit("discount", MilOp::Mirror(items));
        let factor = p.emit(
            "factor",
            MilOp::Multiplex {
                f: ScalarFunc::Sub,
                args: vec![MilArg::Const(AtomValue::Dbl(1.0)), MilArg::Var(disc)],
            },
        );
        let _loss = p.emit("LOSS", MilOp::SetAgg { f: AggFunc::Sum, src: factor });
        let text = render_program(&p);
        assert!(text.contains("orders := select(Order_clerk, \"Clerk#000000088\")"));
        assert!(text.contains("items := join(Item_order, orders)"));
        assert!(text.contains("factor := [-](1, discount)"));
        assert!(text.contains("LOSS := {sum}(factor)"));
    }
}
