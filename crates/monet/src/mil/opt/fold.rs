//! Constant folding and algebraic identities.
//!
//! * **Constant inlining** — a multiplex argument referencing a
//!   `const`-scalar statement becomes an immediate `MilArg::Const`; the
//!   scalar definition goes dead.
//! * **Constant evaluation** — a multiplex whose arguments are all
//!   constants is evaluated at plan time with the same
//!   [`crate::ops::apply_scalar`] the kernel lifts, and replaced by a
//!   `const` statement.
//! * **Double mirror** — `mirror(mirror(x))` is `x` (mirroring is an
//!   involution on columns and properties). Fenced on `x` being provably
//!   datavector-free: the double mirror *drops* a datavector while `x`
//!   keeps it, and aliasing them could flip a downstream semijoin onto
//!   the right-order datavector path.
//! * **Redundant semijoin** — `semijoin(x, c)` is `x` whenever every head
//!   of `x` provably occurs in `c`: the membership filter keeps all of
//!   `x`, in `x` order. Provenance comes from a forward head-subset
//!   analysis ([`head_supersets`]): selections, semijoins, joins and
//!   multiplexes emit head *subsets* of their operands, while `group`,
//!   `{g}`, `mark`, `sort` and `unique` preserve the head value *set*
//!   ([`head_source`] walks back through those). This catches both the
//!   translator's re-applied candidate restrictions along conjunct chains
//!   and the `semijoin(class.mirror, {count}(class.mirror))` shape every
//!   nest plan emits. Fenced on `x` being datavector-free like the mirror
//!   rule (the datavector semijoin emits in right order).
//! * **Saturated semijoin** — dually, `semijoin(x, c)` is `c` whenever
//!   `c` is an *order-preserving row-subset* of `x` ([`pair_subsets`]:
//!   select/semijoin/antijoin/diff/intersect/unique chains, which emit
//!   subsequences of their left operand) and `x` has a key head: each of
//!   `c`'s heads finds exactly its own row, in `c`'s order. This is the
//!   translator's fragment re-assembly against a selection of the same
//!   attribute BAT (`semijoin(X, select(X, ..))`, Figure 10 line 3/4).
//!   No datavector fence needed: the datavector path emits right-operand
//!   (= `c`) order and fetches the same canonical tail values, so every
//!   implementation returns exactly `c`'s BUNs in `c`'s order.
//!
//! The aliasing rewrites redirect uses like CSE does and leave the orphan
//! to DCE. All of them only ever *increase* column-identity sharing,
//! which is safe (sync fast paths are bit-identical to the general forms).

use super::super::ast::{MilArg, MilOp, MilProgram, Var};
use super::{infer, Pass, PassCtx, PassEffect};

pub(crate) struct Fold;

/// A per-variable bitset over program variables (word-packed: the subset
/// analyses union whole ancestor sets per statement, and the optimizer
/// runs on every translated query, so this is `|=` over a few words
/// instead of hash-set churn).
struct VarSets {
    words: Vec<u64>,
    stride: usize,
}

impl VarSets {
    fn new(n: usize) -> VarSets {
        let stride = n.div_ceil(64);
        VarSets { words: vec![0; n * stride], stride }
    }

    fn insert(&mut self, set: usize, v: Var) {
        self.words[set * self.stride + v / 64] |= 1 << (v % 64);
    }

    fn contains(&self, set: usize, v: Var) -> bool {
        self.words[set * self.stride + v / 64] & (1 << (v % 64)) != 0
    }

    /// `set |= other` (both are row indices).
    fn union_into(&mut self, set: usize, other: usize) {
        let (a, b) = (set * self.stride, other * self.stride);
        for k in 0..self.stride {
            let w = self.words[b + k];
            self.words[a + k] |= w;
        }
    }
}

/// For each variable, the set of variables whose head-value set provably
/// contains this variable's (always includes itself). Only BAT-valued
/// variables carry facts.
fn head_supersets(prog: &MilProgram, bat_valued: &[bool]) -> VarSets {
    let mut sup = VarSets::new(prog.len());
    for (i, stmt) in prog.stmts.iter().enumerate() {
        sup.insert(i, i);
        {
            let mut inherit = |v: Var| {
                if bat_valued[v] {
                    sup.union_into(i, v);
                }
            };
            match &stmt.op {
                // Head subsets of an operand.
                MilOp::SelectEq(v, _)
                | MilOp::Unique(v)
                | MilOp::SortTail(v)
                | MilOp::SortHead(v)
                | MilOp::Group1(v)
                | MilOp::Mark(v) => inherit(*v),
                MilOp::SelectRange { src, .. }
                | MilOp::TopN { src, .. }
                | MilOp::SetAgg { src, .. } => inherit(*src),
                MilOp::Join(a, _)
                | MilOp::Antijoin(a, _)
                | MilOp::Diff(a, _)
                | MilOp::Intersect(a, _)
                | MilOp::Group2(a, _) => inherit(*a),
                // A semijoin result's heads occur in *both* operands.
                MilOp::Semijoin(a, c) => {
                    inherit(*a);
                    inherit(*c);
                }
                // Multiplex heads survive the natural join on heads, so
                // they occur in every BAT argument.
                MilOp::Multiplex { args, .. } => {
                    for a in args {
                        if let MilArg::Var(v) = a {
                            inherit(*v);
                        }
                    }
                }
                // Mirror swaps the column roles; union/concat/zip build
                // new head sets: no facts beyond self. Fused statements
                // only appear after this pass (fusion runs last), so they
                // claim nothing.
                MilOp::Load(_)
                | MilOp::ConstScalar(_)
                | MilOp::AggrScalar { .. }
                | MilOp::Fused { .. }
                | MilOp::Mirror(_)
                | MilOp::Union(..)
                | MilOp::Concat(..)
                | MilOp::Zip(..) => {}
            }
        }
    }
    sup
}

/// For each variable, the set of variables it is an *order-preserving
/// row-subset* of (always includes itself): selections and the
/// subset-shaped binary ops emit subsequences of their left operand —
/// same BUNs, ascending operand positions. `topn`/`sort` are excluded
/// (they reorder), as is everything that rewrites values.
///
/// A semijoin only inherits its left operand's facts when its own output
/// order is provably the left order: either the left operand is
/// datavector-free (every remaining implementation emits ascending left
/// positions), or the *right* operand is itself an order-preserving
/// row-subset of the left (then even the datavector path — which emits
/// right-operand order — coincides with left order).
fn pair_subsets(prog: &MilProgram, shapes: &[Option<infer::Shape>]) -> VarSets {
    let mut psup = VarSets::new(prog.len());
    for (i, stmt) in prog.stmts.iter().enumerate() {
        psup.insert(i, i);
        match &stmt.op {
            MilOp::SelectEq(v, _) | MilOp::Unique(v) => psup.union_into(i, *v),
            MilOp::SelectRange { src, .. } => psup.union_into(i, *src),
            MilOp::Semijoin(a, c) => {
                let a_may_dv = shapes[*a].map_or(true, |s| s.may_dv);
                if !a_may_dv || psup.contains(*c, *a) {
                    psup.union_into(i, *a);
                }
            }
            MilOp::Antijoin(a, _) | MilOp::Diff(a, _) | MilOp::Intersect(a, _) => {
                psup.union_into(i, *a)
            }
            _ => {}
        }
    }
    psup
}

/// Walk `v` back through operations that preserve the head value *set*
/// (`{g}` emits one BUN per distinct head; `group`/`mark` share the head
/// column; `sort` permutes; `unique` keeps every distinct value).
fn head_source(prog: &MilProgram, mut v: Var) -> Var {
    loop {
        v = match prog.stmts[v].op {
            MilOp::SetAgg { src, .. } => src,
            MilOp::Group1(s) => s,
            MilOp::Group2(a, _) => a,
            MilOp::Mark(m) => m,
            MilOp::SortTail(s) | MilOp::SortHead(s) => s,
            MilOp::Unique(u) => u,
            _ => return v,
        };
    }
}

impl Pass for Fold {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&self, prog: &mut MilProgram, cx: &PassCtx) -> PassEffect {
        let n = prog.len();
        let shapes = infer::infer_shapes(prog, cx.db);
        let bat_valued: Vec<bool> = shapes.iter().map(Option::is_some).collect();
        let sup = head_supersets(prog, &bat_valued);
        let psup = pair_subsets(prog, &shapes);
        let mut alias: Vec<Var> = (0..n).collect();
        let mut applied = 0;
        for i in 0..n {
            prog.stmts[i].op.for_each_operand_mut(|v| *v = alias[*v]);
            match prog.stmts[i].op.clone() {
                MilOp::Mirror(m) => {
                    if let MilOp::Mirror(x) = prog.stmts[m].op {
                        let x_may_dv = shapes[x].map_or(true, |s| s.may_dv);
                        if !x_may_dv {
                            alias[i] = x;
                            applied += 1;
                        }
                    }
                }
                MilOp::Semijoin(x, c) => {
                    let x_may_dv = shapes[x].map_or(true, |s| s.may_dv);
                    let x_key_head = shapes[x].map_or(false, |s| s.props.head.key);
                    let src = head_source(prog, c);
                    if !x_may_dv && (sup.contains(x, c) || sup.contains(x, src)) {
                        // Redundant filter: heads(x) ⊆ heads(c).
                        alias[i] = x;
                        applied += 1;
                    } else if x_key_head && psup.contains(c, x) {
                        // Saturated filter: c is a row-subset of keyed x.
                        alias[i] = c;
                        applied += 1;
                    }
                }
                MilOp::Multiplex { f, mut args } => {
                    let mut inlined = 0;
                    for a in args.iter_mut() {
                        if let MilArg::Var(v) = a {
                            if let MilOp::ConstScalar(c) = &prog.stmts[*v].op {
                                *a = MilArg::Const(c.clone());
                                inlined += 1;
                            }
                        }
                    }
                    // A statement holding prepared-statement parameter slots
                    // must never be evaluated away: collapsing it to a
                    // `const` would bake the *current* binding into the plan
                    // and lose the slot. Inlining into its args is fine (arg
                    // indices are stable), but the op itself stays.
                    let consts: Option<Vec<_>> = if prog.stmts[i].params.is_empty() {
                        args.iter()
                            .map(|a| match a {
                                MilArg::Const(c) => Some(c.clone()),
                                MilArg::Var(_) => None,
                            })
                            .collect()
                    } else {
                        None
                    };
                    if let Some(v) = consts.and_then(|cs| crate::ops::apply_scalar(f, &cs).ok()) {
                        prog.stmts[i].op = MilOp::ConstScalar(v);
                        prog.stmts[i].pin = None;
                        applied += inlined + 1;
                    } else if inlined > 0 {
                        prog.stmts[i].op = MilOp::Multiplex { f, args };
                        applied += inlined;
                    }
                }
                _ => {}
            }
        }
        if alias.iter().enumerate().all(|(i, &a)| i == a) {
            return PassEffect { applied, remap: None };
        }
        PassEffect { applied, remap: Some(alias.into_iter().map(Some).collect()) }
    }
}
