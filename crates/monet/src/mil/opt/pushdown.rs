//! Select pushdown: evaluate tail selections *before* the join or
//! semijoin that feeds them, where head/tail provenance proves the
//! rewrite bit-identical.
//!
//! Two patterns, both applied only when the intermediate has exactly one
//! use (so the statement slot can be repurposed in place, keeping the
//! straight-line numbering intact):
//!
//! * `w := select(join(a, b))` → `v := select(b); w := join(a, v)`.
//!   The equi-join's result tail comes entirely from `b`'s tail, every
//!   join implementation emits left-major/right-ascending order, and
//!   every select implementation emits ascending operand positions — so
//!   filtering `b` first yields the same BUNs in the same order, while
//!   the join processes fewer build rows.
//!
//! * `w := select(semijoin(a, c))` → `v := select(a); w := semijoin(v, c)`.
//!   The semijoin result is a subset of `a` in `a`-order and its tail is
//!   `a`'s tail, so the filters commute — **except** on the datavector
//!   path, which emits in right-operand order; the rewrite is fenced on
//!   `a` being provably datavector-free ([`Shape::may_dv`]). `mirror`
//!   participates via that provenance: it drops datavectors, so selects
//!   push freely across semijoins of mirrored intermediates.
//!
//! The moved select lands on an earlier intermediate — often a loaded,
//! tail-sorted attribute BAT, where it becomes a zero-copy binary-search
//! slice and a CSE candidate shared across conjuncts.

use super::super::ast::{MilOp, MilProgram};
use super::{infer, Pass, PassCtx, PassEffect};

pub(crate) struct Pushdown;

/// Rebuild the select op in `stmt` with a new source variable.
fn retarget_select(op: &MilOp, new_src: usize) -> Option<MilOp> {
    Some(match op {
        MilOp::SelectEq(_, v) => MilOp::SelectEq(new_src, v.clone()),
        MilOp::SelectRange { lo, hi, inc_lo, inc_hi, .. } => MilOp::SelectRange {
            src: new_src,
            lo: lo.clone(),
            hi: hi.clone(),
            inc_lo: *inc_lo,
            inc_hi: *inc_hi,
        },
        _ => return None,
    })
}

impl Pass for Pushdown {
    fn name(&self) -> &'static str {
        "pushdown"
    }

    fn run(&self, prog: &mut MilProgram, cx: &PassCtx) -> PassEffect {
        let mut applied = 0;
        loop {
            let uses = prog.use_counts();
            let shapes = infer::infer_shapes(prog, cx.db);
            let mut changed = false;
            for i in 0..prog.len() {
                let src = match &prog.stmts[i].op {
                    MilOp::SelectEq(v, _) => *v,
                    MilOp::SelectRange { src, .. } => *src,
                    _ => continue,
                };
                // The feeding statement is repurposed in place: only legal
                // when this select is its sole consumer and the caller
                // never reads it.
                if uses[src] != 1 || cx.roots.contains(&src) {
                    continue;
                }
                match prog.stmts[src].op.clone() {
                    MilOp::Join(a, b) => {
                        let sel = retarget_select(&prog.stmts[i].op, b).expect("select stmt");
                        prog.stmts[src].op = sel;
                        prog.stmts[src].pin = None;
                        // The select's parameter slots travel with its
                        // values into the repurposed slot (the join carries
                        // no constants, so the swap cannot clobber any).
                        debug_assert!(prog.stmts[src].params.is_empty());
                        prog.stmts[src].params = std::mem::take(&mut prog.stmts[i].params);
                        prog.stmts[i].op = MilOp::Join(a, src);
                        prog.stmts[i].pin = None;
                        applied += 1;
                        changed = true;
                    }
                    MilOp::Semijoin(a, c) => {
                        let a_may_dv = shapes[a].map_or(true, |s| s.may_dv);
                        if a_may_dv {
                            continue;
                        }
                        let sel = retarget_select(&prog.stmts[i].op, a).expect("select stmt");
                        prog.stmts[src].op = sel;
                        prog.stmts[src].pin = None;
                        debug_assert!(prog.stmts[src].params.is_empty());
                        prog.stmts[src].params = std::mem::take(&mut prog.stmts[i].params);
                        prog.stmts[i].op = MilOp::Semijoin(src, c);
                        prog.stmts[i].pin = None;
                        applied += 1;
                        changed = true;
                    }
                    _ => {}
                }
                if changed {
                    // Use counts and shapes are stale after a rewrite;
                    // restart the sweep (programs are small).
                    break;
                }
            }
            if !changed {
                break;
            }
        }
        PassEffect { applied, remap: None }
    }
}
