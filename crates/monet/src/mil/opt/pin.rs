//! Property-driven algorithm pinning (the plan-time half of Section 5.1's
//! dynamic optimization).
//!
//! After the rewrite fixpoint, propagate properties and types through the
//! final program ([`infer`]) and annotate every statement whose
//! implementation choice is already decided. A pin is attached **only when
//! dynamic dispatch would provably pick the same implementation**, so a
//! pinned program is bit-identical to an unpinned one — the pin just lets
//! the interpreter skip the per-operator property re-derivation (and makes
//! the planned algorithm visible in EXPLAIN output):
//!
//! * `select` on a statically dictionary-encoded tail → code-range select.
//!   The encoding claim only ever flows from the stored column's actual
//!   layout (a `Load` seeds it from catalog ground truth, guarded by the
//!   Db epoch), and dynamic dispatch checks the dict layout first.
//! * `select` on a statically sorted tail → binary search. Sortedness only
//!   gains facts at run time, so dispatch would take the same branch —
//!   and if the tail also turns out dictionary-encoded at run time, the
//!   dict-code path returns the *identical* zero-copy slice (order
//!   preservation makes the code range and the string range coincide).
//! * `join` with a statically dense oid-like right head and oid-like left
//!   tail → positional fetch — dispatch's first branch.
//! * `join` with statically sorted operands → merge, but only when the
//!   fetch branch is *type-impossible* (a join column is known non-oid-
//!   like). Without that fence a right head that turns out dense at run
//!   time would make dispatch prefer fetch, whose full-match head sharing
//!   differs observably from merge's gather.

use crate::db::Db;

use super::super::ast::{MilOp, MilProgram, Pin};
use super::infer::{self, known_non_oidlike, known_oidlike};

/// Annotate `prog`; returns the number of pinned statements.
pub(crate) fn run(prog: &mut MilProgram, db: &Db) -> usize {
    let shapes = infer::infer_shapes(prog, db);
    let mut pins = 0;
    for i in 0..prog.len() {
        let pin = match &prog.stmts[i].op {
            MilOp::SelectEq(v, _) | MilOp::SelectRange { src: v, .. } => shapes[*v].and_then(|s| {
                if s.props.tail.enc == crate::props::Enc::Dict {
                    Some(Pin::SelectDictCode)
                } else if s.props.tail.sorted {
                    Some(Pin::SelectSorted)
                } else {
                    None
                }
            }),
            MilOp::Join(a, b) => match (shapes[*a], shapes[*b]) {
                (Some(sa), Some(sb)) => {
                    if sb.props.head.dense && known_oidlike(sb.head) && known_oidlike(sa.tail) {
                        Some(Pin::JoinFetch)
                    } else if sa.props.tail.sorted
                        && sb.props.head.sorted
                        && (known_non_oidlike(sa.tail) || known_non_oidlike(sb.head))
                    {
                        Some(Pin::JoinMerge)
                    } else {
                        None
                    }
                }
                _ => None,
            },
            _ => None,
        };
        prog.stmts[i].pin = pin;
        pins += pin.is_some() as usize;
    }
    pins
}
