//! Static shape inference: propagate column types and descriptor
//! properties ([`ColProps`]) through a MIL program at *plan* time.
//!
//! The property rules are the ones the kernels apply at run time —
//! [`crate::ops::select::propagated_props`],
//! [`crate::ops::join::propagated_props`],
//! [`crate::ops::semijoin::propagated_props`] are literally shared, and
//! the remaining ops mirror their kernel's `Bat::with_props` call — made
//! *conservative* wherever the kernel can learn more from the data (a
//! binary-search select keeps a dense head at run time; the static rule
//! drops it). The invariant the props-oracle suite guards: **every
//! statically claimed property holds on the actually computed column**,
//! so the pin pass can never commit to an algorithm whose precondition
//! fails at run time.
//!
//! Types are exact where known (`None` = unknown, e.g. a multiplex result)
//! — they gate the fetch-join pin, which needs oid-like join columns.
//!
//! `may_dv` tracks whether a variable can carry a **datavector**
//! accelerator at run time: datavectors ride on persistent BATs and
//! survive only the clone-returning paths (`semijoin`'s `sync`, `sort`'s
//! no-op, `unique`'s no-op); a mirror or any materializing kernel drops
//! them. The flag matters because the datavector semijoin emits in
//! *right-operand* order while every other semijoin emits in left order —
//! rewrites that could flip that choice are fenced on `may_dv`.

use crate::atom::AtomType;
use crate::db::Db;
use crate::ops;
use crate::props::{ColProps, Props};

use super::super::ast::{FuseArg, FuseStage, MilArg, MilOp, MilProgram, Var};

/// Statically known facts about one BAT-valued variable.
#[derive(Debug, Clone, Copy)]
pub struct Shape {
    /// Head column type, when derivable.
    pub head: Option<AtomType>,
    /// Tail column type, when derivable.
    pub tail: Option<AtomType>,
    /// Properties guaranteed to hold on the computed result (a sound
    /// under-approximation of the run-time descriptor).
    pub props: Props,
    /// Whether the value may carry a datavector accelerator.
    pub may_dv: bool,
}

/// Known and definitely oid-like (unknown types return false).
pub(crate) fn known_oidlike(t: Option<AtomType>) -> bool {
    matches!(t, Some(AtomType::Oid | AtomType::Void))
}

/// Known and definitely *not* oid-like (unknown types return false).
pub(crate) fn known_non_oidlike(t: Option<AtomType>) -> bool {
    t.is_some() && !known_oidlike(t)
}

/// `void` and `oid` columns combine into a materialized `oid` column
/// (`Column::concat`); other type pairs must match exactly.
fn concat_ty(a: Option<AtomType>, b: Option<AtomType>) -> Option<AtomType> {
    match (a?, b?) {
        (x, y) if x == y => Some(x),
        (AtomType::Void, AtomType::Oid) | (AtomType::Oid, AtomType::Void) => Some(AtomType::Oid),
        _ => None,
    }
}

/// Infer the shape of every variable of `prog`. Scalar-valued variables
/// (`const`, whole-BAT aggregates) get `None`.
pub fn infer_shapes(prog: &MilProgram, db: &Db) -> Vec<Option<Shape>> {
    let mut shapes: Vec<Option<Shape>> = Vec::with_capacity(prog.len());
    for stmt in &prog.stmts {
        let s = shape_of(&stmt.op, &shapes, db);
        shapes.push(s);
    }
    shapes
}

fn shape_of(op: &MilOp, shapes: &[Option<Shape>], db: &Db) -> Option<Shape> {
    let sh = |v: Var| -> Option<Shape> { shapes.get(v).copied().flatten() };
    Some(match op {
        MilOp::Load(name) => {
            let bat = db.get(name).ok()?;
            let (h, t) = bat.signature();
            Shape {
                head: Some(h),
                tail: Some(t),
                props: bat.props(),
                may_dv: bat.accel().datavector.is_some(),
            }
        }
        MilOp::ConstScalar(_) | MilOp::AggrScalar { .. } => return None,
        MilOp::Mirror(v) => {
            let s = sh(*v)?;
            // mirror swaps the column roles and drops the datavector (it
            // accelerates only the normal orientation).
            Shape { head: s.tail, tail: s.head, props: s.props.mirrored(), may_dv: false }
        }
        MilOp::SelectEq(v, _) => {
            let s = sh(*v)?;
            Shape { props: ops::select::propagated_props(s.props, true), may_dv: false, ..s }
        }
        MilOp::SelectRange { src, .. } => {
            let s = sh(*src)?;
            Shape { props: ops::select::propagated_props(s.props, false), may_dv: false, ..s }
        }
        MilOp::Join(a, b) => {
            let (sa, sb) = (sh(*a)?, sh(*b)?);
            Shape {
                head: sa.head,
                tail: sb.tail,
                props: ops::join::propagated_props(sa.props, sb.props),
                may_dv: false,
            }
        }
        MilOp::Semijoin(a, b) => {
            let (sa, sb) = (sh(*a)?, sh(*b)?);
            let props = if sa.may_dv {
                // The datavector variant emits one BUN per right head, in
                // right order with a freshly fetched tail; only claims
                // that hold for *both* it and the left-order subset paths
                // survive.
                Props::new(
                    ColProps {
                        sorted: sa.props.head.sorted && sb.props.head.sorted,
                        key: sa.props.head.key && sb.props.head.key,
                        dense: false,
                        ..ColProps::NONE
                    },
                    ColProps::NONE,
                )
            } else {
                ops::semijoin::propagated_props(sa.props)
            };
            // The sync variant returns a clone, accelerators included.
            Shape { head: sa.head, tail: sa.tail, props, may_dv: sa.may_dv }
        }
        MilOp::Antijoin(a, _) => {
            let sa = sh(*a)?;
            // Both variants (empty sync slice, hash subset) emit a subset
            // of the left operand in left order, without accelerators.
            Shape { props: ops::semijoin::propagated_props(sa.props), may_dv: false, ..sa }
        }
        MilOp::Unique(v) => {
            let s = sh(*v)?;
            if s.props.head.key || s.props.tail.key {
                // Provably duplicate-free: the kernel no-ops with a clone.
                s
            } else {
                Shape { props: ops::semijoin::propagated_props(s.props), may_dv: false, ..s }
            }
        }
        MilOp::Group1(v) => {
            let s = sh(*v)?;
            Shape {
                head: s.head,
                tail: Some(AtomType::Oid),
                props: Props::new(
                    s.props.head,
                    ColProps {
                        sorted: s.props.tail.sorted,
                        key: false,
                        dense: false,
                        ..ColProps::NONE
                    },
                ),
                may_dv: false,
            }
        }
        MilOp::Group2(a, _) => {
            let sa = sh(*a)?;
            Shape {
                head: sa.head,
                tail: Some(AtomType::Oid),
                props: Props::new(sa.props.head, ColProps::NONE),
                may_dv: false,
            }
        }
        MilOp::Multiplex { args, .. } => {
            // The kernel's result rides on the first BAT argument's head;
            // the aligned path weakens density away, so claim that form.
            let first = args.iter().find_map(|a| match a {
                MilArg::Var(v) => sh(*v),
                MilArg::Const(_) => None,
            })?;
            Shape {
                head: first.head,
                tail: None,
                props: Props::new(
                    ColProps {
                        sorted: first.props.head.sorted,
                        key: first.props.head.key,
                        dense: false,
                        ..ColProps::NONE
                    },
                    ColProps::NONE,
                ),
                may_dv: false,
            }
        }
        MilOp::SetAgg { src, .. } => {
            let s = sh(*src)?;
            Shape {
                head: s.head,
                tail: None,
                props: Props::new(
                    ColProps {
                        sorted: s.props.head.sorted,
                        key: true,
                        dense: false,
                        ..ColProps::NONE
                    },
                    ColProps::NONE,
                ),
                may_dv: false,
            }
        }
        MilOp::Union(a, b) | MilOp::Concat(a, b) => {
            let (sa, sb) = (sh(*a)?, sh(*b)?);
            Shape {
                head: concat_ty(sa.head, sb.head),
                tail: concat_ty(sa.tail, sb.tail),
                props: Props::NONE,
                may_dv: false,
            }
        }
        MilOp::Diff(a, _) | MilOp::Intersect(a, _) => {
            let sa = sh(*a)?;
            Shape { props: ops::semijoin::propagated_props(sa.props), may_dv: false, ..sa }
        }
        MilOp::Zip(a, b) => {
            let (sa, sb) = (sh(*a)?, sh(*b)?);
            Shape {
                head: sa.tail,
                tail: sb.tail,
                props: Props::new(sa.props.tail, sb.props.tail),
                may_dv: false,
            }
        }
        MilOp::SortTail(v) => {
            let s = sh(*v)?;
            if s.props.tail.sorted {
                s // no-op clone, accelerators included
            } else {
                Shape {
                    props: Props::new(
                        ColProps {
                            sorted: false,
                            key: s.props.head.key,
                            dense: false,
                            ..ColProps::NONE
                        },
                        ColProps {
                            sorted: true,
                            key: s.props.tail.key,
                            dense: false,
                            ..ColProps::NONE
                        },
                    ),
                    may_dv: false,
                    ..s
                }
            }
        }
        MilOp::SortHead(v) => {
            let s = sh(*v)?;
            // sort_head = sort_tail(mirror).mirror — even the no-op path
            // passes through two mirrors, which drop the datavector.
            let props = if s.props.head.sorted {
                s.props
            } else {
                Props::new(
                    ColProps {
                        sorted: true,
                        key: s.props.head.key,
                        dense: false,
                        ..ColProps::NONE
                    },
                    ColProps {
                        sorted: false,
                        key: s.props.tail.key,
                        dense: false,
                        ..ColProps::NONE
                    },
                )
            };
            Shape { props, may_dv: false, ..s }
        }
        MilOp::TopN { src, desc, .. } => {
            let s = sh(*src)?;
            Shape {
                props: Props::new(
                    ColProps {
                        sorted: false,
                        key: s.props.head.key,
                        dense: false,
                        ..ColProps::NONE
                    },
                    ColProps {
                        sorted: !desc,
                        key: s.props.tail.key,
                        dense: false,
                        ..ColProps::NONE
                    },
                ),
                may_dv: false,
                ..s
            }
        }
        MilOp::Mark(v) => {
            let s = sh(*v)?;
            Shape {
                head: s.head,
                tail: Some(AtomType::Void),
                props: Props::new(s.props.head, ColProps::DENSE),
                may_dv: false,
            }
        }
        MilOp::Fused { src, stages } => {
            // Replay the per-stage rules the unfused statements would have
            // received, so a fused chain claims exactly what its staged
            // equivalent would (the fuse pass builds chains *from* already
            // inferred statements, so this only re-derives).
            let mut cur = sh(*src)?;
            for stage in stages {
                cur = match stage {
                    FuseStage::SelectEq(_) => Shape {
                        props: ops::select::propagated_props(cur.props, true),
                        may_dv: false,
                        ..cur
                    },
                    FuseStage::SelectRange { .. } => Shape {
                        props: ops::select::propagated_props(cur.props, false),
                        may_dv: false,
                        ..cur
                    },
                    FuseStage::Map { args, .. } => {
                        let first = args.iter().find_map(|a| match a {
                            FuseArg::Chain => Some(cur),
                            FuseArg::Var(v) => sh(*v),
                            FuseArg::Const(_) => None,
                        })?;
                        Shape {
                            head: first.head,
                            tail: None,
                            props: Props::new(
                                ColProps {
                                    sorted: first.props.head.sorted,
                                    key: first.props.head.key,
                                    dense: false,
                                    ..ColProps::NONE
                                },
                                ColProps::NONE,
                            ),
                            may_dv: false,
                        }
                    }
                    // Terminal scalar aggregate: the fused variable is
                    // scalar-valued, like `AggrScalar`.
                    FuseStage::Aggr(_) => return None,
                };
            }
            cur
        }
    })
}
