//! Common-subexpression elimination by hash-consing.
//!
//! The translator re-emits identical `mirror`/`join`/`semijoin` chains for
//! every attribute hop and every mention of an attribute path — e.g. a
//! query that filters on `order.customer.nation` and also projects it
//! walks the same reference joins twice. Two statements with the same
//! operation and (canonicalized) operands compute the same value, so all
//! later uses are redirected to the first occurrence; the orphaned
//! duplicates fall to DCE.
//!
//! Exempt: operations drawing fresh oids (`group`, `mark`) — textually
//! identical instances produce different oid ranges, and merging them
//! could make oids from originally *distinct* ranges compare equal
//! downstream. Everything else in the algebra is a pure function of its
//! operand values.
//!
//! Merging only ever *increases* column-identity sharing (`synced`-ness),
//! which is safe: sync fast paths are bit-identical to their general
//! forms, and a datavector can only reach a use site through operands
//! that were structurally identical anyway.
//!
//! Keys are structural 64-bit hashes with a full structural-equality
//! check on the bucket (no string rendering — the optimizer runs on every
//! translated query, so its constant cost matters). Atom constants
//! compare *bit-exactly*: `0.0`/`-0.0` and NaN payloads must not merge.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::atom::AtomValue;

use super::super::ast::{MilArg, MilOp, MilProgram, Var};
use super::{Pass, PassCtx, PassEffect};

pub(crate) struct Cse;

/// Bit-exact atom identity (stricter than `==` on floats: distinguishes
/// -0.0 from 0.0 and any two NaN payloads).
fn atoms_identical(a: &AtomValue, b: &AtomValue) -> bool {
    use AtomValue as V;
    match (a, b) {
        (V::Void(x), V::Void(y)) | (V::Oid(x), V::Oid(y)) => x == y,
        (V::Bool(x), V::Bool(y)) => x == y,
        (V::Chr(x), V::Chr(y)) => x == y,
        (V::Int(x), V::Int(y)) => x == y,
        (V::Lng(x), V::Lng(y)) => x == y,
        (V::Dbl(x), V::Dbl(y)) => x.to_bits() == y.to_bits(),
        (V::Str(x), V::Str(y)) => x == y,
        (V::Date(x), V::Date(y)) => x == y,
        _ => false,
    }
}

fn hash_atom<H: Hasher>(v: &AtomValue, h: &mut H) {
    use AtomValue as V;
    std::mem::discriminant(v).hash(h);
    match v {
        V::Void(x) | V::Oid(x) => x.hash(h),
        V::Bool(x) => x.hash(h),
        V::Chr(x) => x.hash(h),
        V::Int(x) => x.hash(h),
        V::Lng(x) => x.hash(h),
        V::Dbl(x) => x.to_bits().hash(h),
        V::Str(x) => x.hash(h),
        V::Date(x) => x.0.hash(h),
    }
}

fn hash_arg<H: Hasher>(a: &MilArg, h: &mut H) {
    match a {
        MilArg::Var(v) => {
            0u8.hash(h);
            v.hash(h);
        }
        MilArg::Const(c) => {
            1u8.hash(h);
            hash_atom(c, h);
        }
    }
}

fn args_identical(a: &MilArg, b: &MilArg) -> bool {
    match (a, b) {
        (MilArg::Var(x), MilArg::Var(y)) => x == y,
        (MilArg::Const(x), MilArg::Const(y)) => atoms_identical(x, y),
        _ => false,
    }
}

fn hash_op(op: &MilOp) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::mem::discriminant(op).hash(&mut h);
    match op {
        MilOp::Load(n) => n.hash(&mut h),
        MilOp::ConstScalar(v) => hash_atom(v, &mut h),
        MilOp::Mirror(v)
        | MilOp::Unique(v)
        | MilOp::Group1(v)
        | MilOp::SortTail(v)
        | MilOp::SortHead(v)
        | MilOp::Mark(v) => v.hash(&mut h),
        MilOp::SelectEq(v, val) => {
            v.hash(&mut h);
            hash_atom(val, &mut h);
        }
        MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi } => {
            src.hash(&mut h);
            for b in [lo, hi] {
                match b {
                    Some(v) => hash_atom(v, &mut h),
                    None => 2u8.hash(&mut h),
                }
            }
            (inc_lo, inc_hi).hash(&mut h);
        }
        MilOp::Join(a, b)
        | MilOp::Semijoin(a, b)
        | MilOp::Antijoin(a, b)
        | MilOp::Group2(a, b)
        | MilOp::Union(a, b)
        | MilOp::Diff(a, b)
        | MilOp::Intersect(a, b)
        | MilOp::Concat(a, b)
        | MilOp::Zip(a, b) => (a, b).hash(&mut h),
        MilOp::Multiplex { f, args } => {
            std::mem::discriminant(f).hash(&mut h);
            for a in args {
                hash_arg(a, &mut h);
            }
        }
        MilOp::SetAgg { f, src } | MilOp::AggrScalar { f, src } => {
            std::mem::discriminant(f).hash(&mut h);
            src.hash(&mut h);
        }
        MilOp::TopN { src, n, desc } => (src, n, desc).hash(&mut h),
        // Fusion runs after CSE, so fused statements never reach this
        // pass; hash by source, `ops_identical` rejects the pair anyway.
        MilOp::Fused { src, .. } => src.hash(&mut h),
    }
    h.finish()
}

/// Structural equality with bit-exact constants; operand variables are
/// already canonical when this runs.
fn ops_identical(a: &MilOp, b: &MilOp) -> bool {
    use MilOp as O;
    match (a, b) {
        (O::Load(x), O::Load(y)) => x == y,
        (O::ConstScalar(x), O::ConstScalar(y)) => atoms_identical(x, y),
        (O::Mirror(x), O::Mirror(y))
        | (O::Unique(x), O::Unique(y))
        | (O::SortTail(x), O::SortTail(y))
        | (O::SortHead(x), O::SortHead(y))
        | (O::Mark(x), O::Mark(y)) => x == y,
        (O::SelectEq(x, xv), O::SelectEq(y, yv)) => x == y && atoms_identical(xv, yv),
        (
            O::SelectRange { src: xs, lo: xl, hi: xh, inc_lo: xil, inc_hi: xih },
            O::SelectRange { src: ys, lo: yl, hi: yh, inc_lo: yil, inc_hi: yih },
        ) => {
            let bound = |a: &Option<AtomValue>, b: &Option<AtomValue>| match (a, b) {
                (Some(x), Some(y)) => atoms_identical(x, y),
                (None, None) => true,
                _ => false,
            };
            xs == ys && bound(xl, yl) && bound(xh, yh) && xil == yil && xih == yih
        }
        (O::Join(xa, xb), O::Join(ya, yb))
        | (O::Semijoin(xa, xb), O::Semijoin(ya, yb))
        | (O::Antijoin(xa, xb), O::Antijoin(ya, yb))
        | (O::Union(xa, xb), O::Union(ya, yb))
        | (O::Diff(xa, xb), O::Diff(ya, yb))
        | (O::Intersect(xa, xb), O::Intersect(ya, yb))
        | (O::Concat(xa, xb), O::Concat(ya, yb))
        | (O::Zip(xa, xb), O::Zip(ya, yb)) => xa == ya && xb == yb,
        (O::Multiplex { f: xf, args: xa }, O::Multiplex { f: yf, args: ya }) => {
            xf == yf && xa.len() == ya.len() && xa.iter().zip(ya).all(|(a, b)| args_identical(a, b))
        }
        (O::SetAgg { f: xf, src: xs }, O::SetAgg { f: yf, src: ys })
        | (O::AggrScalar { f: xf, src: xs }, O::AggrScalar { f: yf, src: ys }) => {
            xf == yf && xs == ys
        }
        (O::TopN { src: xs, n: xn, desc: xd }, O::TopN { src: ys, n: yn, desc: yd }) => {
            xs == ys && xn == yn && xd == yd
        }
        _ => false,
    }
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, prog: &mut MilProgram, _cx: &PassCtx) -> PassEffect {
        let n = prog.len();
        // canon[v] = representative variable computing the same value.
        let mut canon: Vec<usize> = (0..n).collect();
        let mut seen: HashMap<u64, Vec<Var>> = HashMap::with_capacity(n);
        let mut applied = 0;
        'stmt: for i in 0..n {
            // Canonicalize operands first so structural keys match across
            // chains of merged statements.
            prog.stmts[i].op.for_each_operand_mut(|v| *v = canon[*v]);
            let op = &prog.stmts[i].op;
            if op.draws_fresh_oids() {
                continue;
            }
            // Parameter slots are part of a statement's identity: merging a
            // parameterized statement with a plain one holding the same
            // *current* value would make a later re-binding corrupt the
            // non-parameterized use (and vice versa). Only statements with
            // identical slot lists may merge.
            let mut key = hash_op(op);
            if !prog.stmts[i].params.is_empty() {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut h);
                prog.stmts[i].params.hash(&mut h);
                key = h.finish();
            }
            let bucket = seen.entry(key).or_default();
            for &rep in bucket.iter() {
                if ops_identical(&prog.stmts[rep].op, op)
                    && prog.stmts[rep].params == prog.stmts[i].params
                {
                    canon[i] = rep;
                    applied += 1;
                    continue 'stmt;
                }
            }
            bucket.push(i);
        }
        if applied == 0 {
            return PassEffect::unchanged();
        }
        PassEffect { applied, remap: Some(canon.into_iter().map(Some).collect()) }
    }
}
