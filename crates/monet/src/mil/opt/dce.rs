//! Dead-code elimination with variable renumbering.
//!
//! A statement is live when a root (the caller's result/structure
//! variables) transitively depends on it; everything else — chiefly the
//! orphans CSE and folding leave behind — is removed. Variables are
//! renumbered so the straight-line invariant (`stmt.var == index`) holds
//! again, which is what makes the interpreter's free-at-last-use table
//! and live-set high-water mark *recompute* correctly against the
//! rewritten program: `last_uses` is derived from the program the
//! interpreter is actually handed, never from the raw emission.

use super::super::ast::{MilProgram, Var};
use super::{Pass, PassCtx, PassEffect};

pub(crate) struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, prog: &mut MilProgram, cx: &PassCtx) -> PassEffect {
        let n = prog.len();
        let mut live = vec![false; n];
        for &r in &cx.roots {
            live[r] = true;
        }
        for i in (0..n).rev() {
            if live[i] {
                for v in prog.stmts[i].op.operands() {
                    live[v] = true;
                }
            }
        }
        let removed = live.iter().filter(|&&l| !l).count();
        if removed == 0 {
            return PassEffect::unchanged();
        }
        let mut remap: Vec<Option<Var>> = vec![None; n];
        let mut kept = Vec::with_capacity(n - removed);
        for (i, mut stmt) in prog.stmts.drain(..).enumerate() {
            if !live[i] {
                continue;
            }
            let new = kept.len();
            remap[i] = Some(new);
            stmt.var = new;
            stmt.op
                .for_each_operand_mut(|v| *v = remap[*v].expect("operand of a live stmt is live"));
            kept.push(stmt);
        }
        prog.stmts = kept;
        PassEffect { applied: removed, remap: Some(remap) }
    }
}
