//! The MIL plan optimizer: rewrite translated programs before they run.
//!
//! The paper's performance story is two-layered: fast BAT kernels *and*
//! MIL programs that exploit descriptor properties (Section 5.1) to take
//! cheaper algebraic forms. The MOA translator emits naive straight-line
//! programs — it re-emits the same `load`/`mirror`/`join` chains per
//! attribute hop and evaluates selections wherever the rewrite rule put
//! them. This module closes the gap with a small pass pipeline over
//! [`MilProgram`]s, run to a fixpoint:
//!
//! * [`fold`] — constant folding: inline scalar constants into multiplex
//!   arguments, evaluate all-constant multiplexes at plan time, dissolve
//!   `mirror(mirror(x))` chains and idempotent re-semijoins;
//! * [`cse`] — common-subexpression elimination: hash-cons structurally
//!   identical statements (fresh-oid drawing ops are exempt — two
//!   identical `group`s produce different oid ranges);
//! * [`pushdown`] — move tail selections below `join`/`semijoin` where
//!   head/tail provenance keeps the result bit-identical;
//! * [`dce`] — dead-code elimination with variable renumbering, so the
//!   interpreter's free-at-last-use accounting is recomputed against the
//!   rewritten program;
//! * [`pin`] — property-driven algorithm pinning (after the fixpoint):
//!   propagate `ColProps` and column types through the program with the
//!   *same rules the kernels use at run time* ([`infer`]) and annotate
//!   statements whose implementation choice is already decided — e.g.
//!   dense-head fetch joins and merge joins on sorted operands — so the
//!   interpreter skips the per-operator re-derivation.
//!
//! Every pass is **order-preserving and bit-identity-preserving**: an
//! optimized program produces exactly the value stream of the raw program
//! (floating-point aggregation orders included). `FLATALG_OPT=0` disables
//! the optimizer entirely and reproduces the translator's raw emission.
//! `FLATALG_EXPLAIN=1` prints before/after plans with per-pass statement
//! deltas to stderr.

mod cse;
mod dce;
mod fold;
mod fuse;
mod infer;
mod pin;
mod pushdown;

pub use infer::{infer_shapes, Shape};

use std::sync::OnceLock;

use crate::db::Db;

use super::ast::{MilProgram, Var};
use super::print::render_program;

/// How hard the optimizer works. `Off` reproduces the raw translator
/// emission byte for byte; `Full` runs the whole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    Off,
    Full,
}

impl OptLevel {
    pub fn enabled(self) -> bool {
        matches!(self, OptLevel::Full)
    }

    /// The effective level: the scoped override of [`with_opt_config`] if
    /// set, else `FLATALG_OPT` (`0` disables; anything else — including
    /// unset — enables). The environment is parsed once per process, like
    /// every other `FLATALG_*` knob.
    pub fn current() -> OptLevel {
        if let Some(l) = OVERRIDE.with(|c| c.get().level) {
            return l;
        }
        *ENV_LEVEL.get_or_init(|| match std::env::var("FLATALG_OPT") {
            Ok(v) if v.trim() == "0" => OptLevel::Off,
            _ => OptLevel::Full,
        })
    }
}

/// Whether optimize() should print an EXPLAIN rendering to stderr: the
/// scoped override, else `FLATALG_EXPLAIN=1`.
pub fn explain_enabled() -> bool {
    if let Some(e) = OVERRIDE.with(|c| c.get().explain) {
        return e;
    }
    *ENV_EXPLAIN
        .get_or_init(|| matches!(std::env::var("FLATALG_EXPLAIN"), Ok(v) if v.trim() == "1"))
}

#[derive(Clone, Copy, Default)]
struct OptOverride {
    level: Option<OptLevel>,
    explain: Option<bool>,
}

thread_local! {
    static OVERRIDE: std::cell::Cell<OptOverride> =
        const { std::cell::Cell::new(OptOverride { level: None, explain: None }) };
    /// Cumulative (raw, optimized) statement counts of every `optimize`
    /// call on this thread — the EXPLAIN counters the plan-level
    /// acceptance tests aggregate over a query batch.
    static CUMULATIVE: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

static ENV_LEVEL: OnceLock<OptLevel> = OnceLock::new();
static ENV_EXPLAIN: OnceLock<bool> = OnceLock::new();

/// Run `f` with a scoped optimizer configuration on this thread (level
/// and/or EXPLAIN; `None` keeps the ambient setting). Restores the
/// previous configuration on exit — panic-safe — and never touches the
/// process environment, so concurrent tests can sweep configurations
/// without racing (the same contract as [`crate::par::with_par_config`]).
pub fn with_opt_config<R>(
    level: Option<OptLevel>,
    explain: Option<bool>,
    f: impl FnOnce() -> R,
) -> R {
    struct Restore(OptOverride);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    OVERRIDE.with(|c| {
        c.set(OptOverride { level: level.or(prev.level), explain: explain.or(prev.explain) })
    });
    f()
}

/// [`with_opt_config`] fixing only the level.
pub fn with_opt_level<R>(level: OptLevel, f: impl FnOnce() -> R) -> R {
    with_opt_config(Some(level), None, f)
}

/// Reset this thread's cumulative EXPLAIN counters.
pub fn reset_cumulative() {
    CUMULATIVE.with(|c| c.set((0, 0)));
}

/// This thread's cumulative `(raw, optimized)` executed-statement counts
/// across all `optimize` calls since the last [`reset_cumulative`].
pub fn cumulative() -> (u64, u64) {
    CUMULATIVE.with(|c| c.get())
}

/// One pass execution record (a line of the EXPLAIN output).
#[derive(Debug, Clone)]
pub struct PassDelta {
    pub pass: &'static str,
    pub round: usize,
    /// Rewrites the pass applied (0 = no change).
    pub applied: usize,
    /// Program length after the pass ran.
    pub stmts_after: usize,
}

/// What the optimizer did to one program.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    pub stmts_before: usize,
    pub stmts_after: usize,
    pub rounds: usize,
    /// Statements carrying an algorithm pin after the pin pass.
    pub pins: usize,
    pub deltas: Vec<PassDelta>,
}

impl OptReport {
    /// Fraction of statements eliminated (0.0 when nothing changed).
    pub fn reduction(&self) -> f64 {
        if self.stmts_before == 0 {
            return 0.0;
        }
        1.0 - self.stmts_after as f64 / self.stmts_before as f64
    }

    /// Render the EXPLAIN text: header with statement-count delta, one
    /// line per pass per round, then the before/after listings.
    pub fn render(&self, before: &str, after: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan optimizer: {} -> {} statements ({:+.1}%), {} rounds, {} pins",
            self.stmts_before,
            self.stmts_after,
            -100.0 * self.reduction(),
            self.rounds,
            self.pins,
        );
        for d in &self.deltas {
            let _ = writeln!(
                s,
                "  round {} {:<10} applied {:>3}  -> {} stmts",
                d.round, d.pass, d.applied, d.stmts_after
            );
        }
        s.push_str("before:\n");
        for line in before.lines() {
            let _ = writeln!(s, "  {line}");
        }
        s.push_str("after:\n");
        for line in after.lines() {
            let _ = writeln!(s, "  {line}");
        }
        s
    }
}

/// Context handed to every pass.
pub(crate) struct PassCtx<'a> {
    /// Catalog the program's `load`s resolve against — the source of
    /// static properties and column types.
    pub db: &'a Db,
    /// Variables the caller reads after execution (result index, structure
    /// BATs): never removed, never repurposed.
    pub roots: Vec<Var>,
}

/// What one pass did: rewrite count, plus a variable remapping when the
/// pass aliased or renumbered variables (`remap[old] = Some(new)`; `None`
/// marks a removed variable).
pub(crate) struct PassEffect {
    pub applied: usize,
    pub remap: Option<Vec<Option<Var>>>,
}

impl PassEffect {
    pub fn unchanged() -> PassEffect {
        PassEffect { applied: 0, remap: None }
    }
}

/// A rewrite pass over a well-formed straight-line program (statement
/// `i` defines variable `i`; operands reference earlier statements).
/// Passes must preserve that invariant and the program's value stream.
pub(crate) trait Pass {
    fn name(&self) -> &'static str;
    fn run(&self, prog: &mut MilProgram, cx: &PassCtx) -> PassEffect;
}

/// The optimized program plus the variable remapping the caller needs to
/// re-point its result/structure variables.
pub struct OptOutcome {
    pub prog: MilProgram,
    remap: Vec<Option<Var>>,
    pub report: OptReport,
}

impl OptOutcome {
    /// Where an original-program variable lives in the optimized program.
    /// Panics if the variable was eliminated — callers pass everything
    /// they will read as `roots`, and roots always survive.
    pub fn var(&self, original: Var) -> Var {
        self.remap[original].unwrap_or_else(|| panic!("mil var {original} was optimized away"))
    }
}

/// Fixpoint guard: each round must shrink or stop; translated TPC-D
/// programs settle in 2-3 rounds.
const MAX_ROUNDS: usize = 8;

/// Optimize `prog`. `roots` are the variables the caller will read after
/// execution (they survive every pass); `db` is the catalog `load`s
/// resolve against. Also accumulates the per-thread EXPLAIN counters and,
/// when EXPLAIN is on, prints the report to stderr.
pub fn optimize(prog: MilProgram, roots: &[Var], db: &Db) -> OptOutcome {
    let explain = explain_enabled();
    let before_listing = if explain { render_program(&prog) } else { String::new() };
    let mut prog = prog;
    let mut report =
        OptReport { stmts_before: prog.len(), stmts_after: prog.len(), ..OptReport::default() };
    let mut remap: Vec<Option<Var>> = (0..prog.len()).map(Some).collect();
    let mut roots: Vec<Var> = roots.to_vec();
    let passes: [&dyn Pass; 4] = [&fold::Fold, &cse::Cse, &pushdown::Pushdown, &dce::Dce];
    for round in 1..=MAX_ROUNDS {
        report.rounds = round;
        let mut round_applied = 0;
        for pass in passes {
            let cx = PassCtx { db, roots: roots.clone() };
            let eff = pass.run(&mut prog, &cx);
            if let Some(m) = &eff.remap {
                for slot in remap.iter_mut() {
                    *slot = slot.and_then(|v| m[v]);
                }
                for r in roots.iter_mut() {
                    *r = m[*r].expect("optimizer pass eliminated a root variable");
                }
            }
            round_applied += eff.applied;
            report.deltas.push(PassDelta {
                pass: pass.name(),
                round,
                applied: eff.applied,
                stmts_after: prog.len(),
            });
        }
        if round_applied == 0 {
            break;
        }
    }
    report.pins = pin::run(&mut prog, db);
    // Pipeline fusion runs last (gated by FLATALG_FUSE): it consumes the
    // final statement shapes *and* the pins — a binary-search-pinned select
    // stays staged, and pins on fused-away statements dissolve with them.
    if crate::fuse::fuse_enabled() {
        let cx = PassCtx { db, roots: roots.clone() };
        let pass = fuse::Fuse;
        let eff = pass.run(&mut prog, &cx);
        if let Some(m) = &eff.remap {
            for slot in remap.iter_mut() {
                *slot = slot.and_then(|v| m[v]);
            }
            for r in roots.iter_mut() {
                *r = m[*r].expect("fuse pass eliminated a root variable");
            }
        }
        if eff.applied > 0 {
            report.deltas.push(PassDelta {
                pass: pass.name(),
                round: report.rounds,
                applied: eff.applied,
                stmts_after: prog.len(),
            });
        }
    }
    report.stmts_after = prog.len();
    CUMULATIVE.with(|c| {
        let (b, a) = c.get();
        c.set((b + report.stmts_before as u64, a + report.stmts_after as u64));
    });
    if explain {
        eprintln!("{}", report.render(&before_listing, &render_program(&prog)));
    }
    OptOutcome { prog, remap, report }
}
