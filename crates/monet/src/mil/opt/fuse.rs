//! Pipeline fusion: collapse provably-fusable producer/consumer statement
//! chains into one [`MilOp::Fused`] statement the interpreter executes
//! morsel-at-a-time — one pass over the source, no intermediate BATs.
//!
//! A chain is `src → select/map → … → (aggr)`: each interior statement's
//! value is consumed by exactly one later chain member and by nothing
//! else, so eliminating the materialization is invisible to the rest of
//! the program. Fusion changes *when* rows flow, never *what* they are:
//! every admitted shape is bit-identical to the staged execution —
//!
//! * selections and maps are element-wise, so applying them per source
//!   morsel yields exactly the staged rows in the staged order;
//! * a terminal aggregate is admitted only when its partial combine is
//!   invariant under the morsel regrouping a prior selection causes:
//!   `count` (exact), integer `sum` (two's-complement addition is
//!   associative), `min`/`max` (first-winner under a total order).
//!   Float reductions (`sum`/`avg` over `dbl`, or unknown map result
//!   types) fuse only when no selection precedes them — then the fused
//!   morsel grid *is* the staged grid and the float association is
//!   unchanged (the PR 6 determinism contract);
//! * a statement pinned `binary-search` stays unfused: the staged kernel
//!   answers it with a zero-copy slice that keeps the operand's
//!   descriptor verbatim — cheaper than any pipeline, and with stronger
//!   runtime props than the propagation rules can claim.
//!
//! The pass runs *after* the fixpoint pipeline and the pin pass (gated by
//! `FLATALG_FUSE`; `=0` reproduces the unfused emission as the oracle
//! leg), so it sees final use counts and pins. Parameterized statements
//! (`params` non-empty) never fuse — their constant slots must stay
//! addressable for plan-cache re-binding.

use crate::atom::AtomType;

use super::super::ast::{FuseArg, FuseStage, MilArg, MilOp, MilProgram, Pin, Var};
use super::infer::{self, Shape};
use super::{Pass, PassCtx, PassEffect};

pub(crate) struct Fuse;

/// Chain state threaded through the greedy scan.
struct ChainState {
    /// Variable currently carrying the chain value.
    var: Var,
    /// Statement indices of the members so far (in program order).
    members: Vec<usize>,
    stages: Vec<FuseStage>,
    /// A selection stage is already in the chain: later map stages may not
    /// read side BATs (their rows would no longer align with the chain),
    /// and float-summing terminals are inadmissible (the staged morsel
    /// grid over the filtered rows differs from the fused source grid).
    has_select: bool,
    /// Statically known tail type of the chain value (selections preserve
    /// it, maps forget it) — gates `sum` after a selection.
    tail_ty: Option<AtomType>,
}

impl Pass for Fuse {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn run(&self, prog: &mut MilProgram, cx: &PassCtx) -> PassEffect {
        let shapes = infer::infer_shapes(prog, cx.db);
        let uses = prog.use_counts();
        let mut is_root = vec![false; prog.len()];
        for &r in &cx.roots {
            is_root[r] = true;
        }
        // Single consumer of each once-used variable.
        let mut consumer: Vec<Option<usize>> = vec![None; prog.len()];
        for (i, stmt) in prog.stmts.iter().enumerate() {
            for v in stmt.op.operands() {
                if uses[v] == 1 {
                    consumer[v] = Some(i);
                }
            }
        }

        // Greedy forward scan: start a chain at the earliest fusable
        // statement, extend through sole consumers while admissible.
        let mut member_of: Vec<Option<usize>> = vec![None; prog.len()]; // -> chain id
        let mut chains: Vec<(Var, Vec<usize>, Vec<FuseStage>)> = Vec::new();
        for start in 0..prog.len() {
            if member_of[start].is_some() {
                continue;
            }
            let Some((src, stage, terminal)) = start_stage(prog, start, &shapes) else {
                continue;
            };
            let mut st = ChainState {
                var: start,
                members: vec![start],
                stages: vec![stage],
                has_select: matches!(
                    prog.stmts[start].op,
                    MilOp::SelectEq(..) | MilOp::SelectRange { .. }
                ),
                tail_ty: match &prog.stmts[start].op {
                    MilOp::Multiplex { .. } => None,
                    _ => shapes[src].as_ref().and_then(|s| s.tail),
                },
            };
            if !terminal {
                loop {
                    // The chain value must die into exactly one later
                    // statement the caller never reads.
                    if uses[st.var] != 1 || is_root[st.var] {
                        break;
                    }
                    let Some(next) = consumer[st.var] else { break };
                    if member_of[next].is_some() {
                        break;
                    }
                    let Some((stage, terminal)) = continue_stage(prog, next, &st) else {
                        break;
                    };
                    match &stage {
                        FuseStage::SelectEq(_) | FuseStage::SelectRange { .. } => {
                            st.has_select = true
                        }
                        FuseStage::Map { .. } => st.tail_ty = None,
                        FuseStage::Aggr(_) => {}
                    }
                    st.var = next;
                    st.members.push(next);
                    st.stages.push(stage);
                    if terminal {
                        break;
                    }
                }
            }
            if st.stages.len() < 2 {
                continue; // a one-stage "chain" is just the original statement
            }
            let id = chains.len();
            for &m in &st.members {
                member_of[m] = Some(id);
            }
            chains.push((src, st.members, st.stages));
        }
        if chains.is_empty() {
            return PassEffect::unchanged();
        }

        // Rewrite: the terminal statement becomes the fused pipeline (same
        // variable, same name — downstream readers are untouched); interior
        // statements disappear. Then renumber, DCE-style.
        let applied = chains.len();
        let mut removed = vec![false; prog.len()];
        for (src, members, stages) in chains {
            let (&terminal, interior) = members.split_last().expect("chain has >= 2 members");
            for &m in interior {
                removed[m] = true;
            }
            let stmt = &mut prog.stmts[terminal];
            stmt.op = MilOp::Fused { src, stages };
            stmt.pin = None;
        }
        let mut remap: Vec<Option<Var>> = vec![None; prog.len()];
        let mut kept = Vec::with_capacity(prog.len());
        for mut stmt in prog.stmts.drain(..) {
            if removed[stmt.var] {
                continue;
            }
            let new = kept.len();
            remap[stmt.var] = Some(new);
            stmt.var = new;
            stmt.op.for_each_operand_mut(|v| {
                *v = remap[*v].expect("fused chain operand was removed");
            });
            kept.push(stmt);
        }
        prog.stmts = kept;
        PassEffect { applied, remap: Some(remap) }
    }
}

/// Can `prog.stmts[i]` open a chain? Returns the chain's source variable,
/// the first stage, and whether the stage already terminates the chain.
fn start_stage(
    prog: &MilProgram,
    i: usize,
    shapes: &[Option<Shape>],
) -> Option<(Var, FuseStage, bool)> {
    let stmt = &prog.stmts[i];
    if !stmt.params.is_empty() {
        return None; // keep prepared-statement slots addressable
    }
    match &stmt.op {
        MilOp::SelectEq(v, val) if selectable(stmt.pin, *v, shapes) => {
            Some((*v, FuseStage::SelectEq(val.clone()), false))
        }
        MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi }
            if selectable(stmt.pin, *src, shapes) =>
        {
            let stage = FuseStage::SelectRange {
                lo: lo.clone(),
                hi: hi.clone(),
                inc_lo: *inc_lo,
                inc_hi: *inc_hi,
            };
            Some((*src, stage, false))
        }
        MilOp::Multiplex { f, args } => {
            // The chain rides the first statically BAT-shaped argument (the
            // kernel's head/props donor); its other occurrences refer to
            // the same rows and flow through the pipeline with it.
            let src = args.iter().find_map(|a| match a {
                MilArg::Var(v) if shapes[*v].is_some() => Some(*v),
                _ => None,
            })?;
            let fargs = args
                .iter()
                .map(|a| match a {
                    MilArg::Var(v) if *v == src => FuseArg::Chain,
                    MilArg::Var(v) => FuseArg::Var(*v),
                    MilArg::Const(c) => FuseArg::Const(c.clone()),
                })
                .collect();
            Some((src, FuseStage::Map { f: *f, args: fargs }, false))
        }
        _ => None,
    }
}

/// Can `prog.stmts[i]` extend a chain whose value is `st.var`? Returns the
/// stage and whether it terminates the chain.
fn continue_stage(prog: &MilProgram, i: usize, st: &ChainState) -> Option<(FuseStage, bool)> {
    let stmt = &prog.stmts[i];
    if !stmt.params.is_empty() {
        return None;
    }
    match &stmt.op {
        MilOp::SelectEq(v, val) if *v == st.var && stmt.pin != Some(Pin::SelectSorted) => {
            Some((FuseStage::SelectEq(val.clone()), false))
        }
        MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi }
            if *src == st.var && stmt.pin != Some(Pin::SelectSorted) =>
        {
            let stage = FuseStage::SelectRange {
                lo: lo.clone(),
                hi: hi.clone(),
                inc_lo: *inc_lo,
                inc_hi: *inc_hi,
            };
            Some((stage, false))
        }
        MilOp::Multiplex { f, args } => {
            // After a selection, the chain rows are a subset of the source
            // rows: a side BAT could no longer be consumed positionally, so
            // only the chain value and broadcast constants may flow in.
            let chain_or_const = |a: &MilArg| match a {
                MilArg::Const(_) => true,
                MilArg::Var(v) => *v == st.var,
            };
            if st.has_select && !args.iter().all(chain_or_const) {
                return None;
            }
            let fargs = args
                .iter()
                .map(|a| match a {
                    MilArg::Var(v) if *v == st.var => FuseArg::Chain,
                    MilArg::Var(v) => FuseArg::Var(*v),
                    MilArg::Const(c) => FuseArg::Const(c.clone()),
                })
                .collect();
            Some((FuseStage::Map { f: *f, args: fargs }, false))
        }
        MilOp::AggrScalar { f, src } if *src == st.var => {
            use crate::ops::AggFunc;
            let ok = match f {
                // Exact at any morsel regrouping.
                AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
                // Integer sums regroup exactly; float sums only keep their
                // bits when no selection changed the morsel grid — and a
                // post-selection sum must be *provably* integer, which a
                // map-produced tail never is.
                AggFunc::Sum => {
                    !st.has_select || matches!(st.tail_ty, Some(AtomType::Int | AtomType::Lng))
                }
                // Always a float reduction.
                AggFunc::Avg => !st.has_select,
            };
            if ok {
                Some((FuseStage::Aggr(*f), true))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// A selection opens (or joins) a chain unless the pin pass proved its
/// operand tail-sorted — the staged binary-search slice is strictly better
/// — and only when the operand's shape is known (the executor needs the
/// source BAT's descriptor to replay property propagation).
fn selectable(pin: Option<Pin>, src: Var, shapes: &[Option<Shape>]) -> bool {
    pin != Some(Pin::SelectSorted) && shapes[src].is_some()
}
