//! MIL interpreter.
//!
//! Executes a straight-line MIL program against a catalog of persistent
//! BATs. Each statement's elapsed time, page faults and dynamically chosen
//! algorithm are captured as a [`StmtTrace`] — the raw material of the
//! paper's Figure 10. Intermediates are freed at their last use, and the
//! live-set high-water mark feeds the "max (MB)" column of Figure 9.

use std::time::Instant;

use crate::atom::AtomValue;
use crate::bat::Bat;
use crate::ctx::ExecCtx;
use crate::db::Db;
use crate::error::{MonetError, Result};
use crate::ops;

use super::ast::{FuseArg, FuseStage, MilArg, MilOp, MilProgram, Var};

/// A MIL variable's value: a BAT or a scalar.
#[derive(Debug, Clone)]
pub enum MilValue {
    Bat(Bat),
    Scalar(AtomValue),
}

impl MilValue {
    pub fn as_bat(&self) -> Result<&Bat> {
        match self {
            MilValue::Bat(b) => Ok(b),
            MilValue::Scalar(v) => Err(MonetError::KindMismatch {
                op: "mil",
                detail: format!("expected a BAT, found scalar {v}"),
            }),
        }
    }

    pub fn as_scalar(&self) -> Result<&AtomValue> {
        match self {
            MilValue::Scalar(v) => Ok(v),
            MilValue::Bat(_) => Err(MonetError::KindMismatch {
                op: "mil",
                detail: "expected a scalar, found a BAT".into(),
            }),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            MilValue::Bat(b) => b.bytes(),
            MilValue::Scalar(_) => 0,
        }
    }
}

/// Per-statement execution record (one row of Figure 10). Rows always
/// describe the program the interpreter actually ran — after plan
/// optimization, `var`/`name`/`rendered` reference the *rewritten*
/// statements, not the translator's raw emission.
#[derive(Debug, Clone)]
pub struct StmtTrace {
    /// Variable the statement defines (its index in the executed program).
    pub var: Var,
    pub name: String,
    pub rendered: String,
    pub ms: f64,
    pub faults: u64,
    pub algo: &'static str,
    /// Whether the implementation was pinned by the plan optimizer
    /// (skipping run-time property re-derivation).
    pub pinned: bool,
    pub result_len: usize,
    pub result_bytes: usize,
}

/// The interpreter environment after execution.
pub struct Env {
    values: Vec<Option<MilValue>>,
    trace: Vec<StmtTrace>,
}

impl Env {
    /// Value of a variable; freed intermediates are not retrievable, so
    /// callers keep the variables of interest alive by referencing them in
    /// later statements or reading them right after execution (the
    /// interpreter never frees the final statement's result or any result
    /// variable listed in `keep`).
    pub fn get(&self, v: Var) -> Result<&MilValue> {
        self.values
            .get(v)
            .and_then(|x| x.as_ref())
            .ok_or_else(|| MonetError::UnknownName(format!("mil var {v} (freed or unset)")))
    }

    pub fn bat(&self, v: Var) -> Result<&Bat> {
        self.get(v)?.as_bat()
    }

    pub fn scalar(&self, v: Var) -> Result<&AtomValue> {
        self.get(v)?.as_scalar()
    }

    /// Per-statement trace, in program order.
    pub fn trace(&self) -> &[StmtTrace] {
        &self.trace
    }
}

/// Execute `prog` against `db`. Variables in `keep` (typically the result
/// BATs of the query's structure expression) survive liveness-based
/// freeing.
pub fn execute(ctx: &ExecCtx, db: &Db, prog: &MilProgram, keep: &[Var]) -> Result<Env> {
    // Open a fresh governor charge window: the byte budget covers the
    // intermediates of *this* program, not whatever ran before on the ctx.
    ctx.mem.begin();
    let frees = prog.last_uses();
    let mut values: Vec<Option<MilValue>> = vec![None; prog.stmts.len()];
    let mut trace: Vec<StmtTrace> = Vec::with_capacity(prog.stmts.len());
    let mut live_bytes: u64 = db.bytes() as u64;
    let mut peak = live_bytes;
    // Governor charge attributed to each variable (released when liveness
    // frees it). Load/ConstScalar/Mirror share persistent or operand
    // storage and were never charged by a kernel `record`, so they stay 0.
    let mut charged: Vec<u64> = vec![0; prog.stmts.len()];
    let last = prog.stmts.len().saturating_sub(1);

    for (i, stmt) in prog.stmts.iter().enumerate() {
        ctx.probe(crate::gov::site::MIL_STMT)?;
        let started = Instant::now();
        let faults0 = ctx.faults();
        let events_before = ctx.trace.as_ref().map_or(0, |t| t.lock().len());
        let value = eval_stmt(ctx, db, &values, stmt)?;
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let faults = ctx.faults().saturating_sub(faults0);
        // The kernel op recorded its own TraceEvent (with the chosen
        // algorithm) if tracing is on; pull the algo label from it — but
        // only when this statement actually emitted one (load/mirror/const
        // do not).
        let algo = match &ctx.trace {
            Some(t) => {
                let g = t.lock();
                if g.len() > events_before {
                    g.last().map(|e| e.algo).unwrap_or("")
                } else {
                    ""
                }
            }
            None => "",
        };
        live_bytes += value.bytes() as u64;
        charged[stmt.var] = match &stmt.op {
            MilOp::Load(_) | MilOp::ConstScalar(_) | MilOp::Mirror(_) => 0,
            _ => value.bytes() as u64,
        };
        trace.push(StmtTrace {
            var: stmt.var,
            name: stmt.name.clone(),
            rendered: super::print::render_stmt(prog, stmt),
            ms,
            faults,
            algo,
            pinned: stmt.pin.is_some(),
            result_len: match &value {
                MilValue::Bat(b) => b.len(),
                MilValue::Scalar(_) => 1,
            },
            result_bytes: value.bytes(),
        });
        values[stmt.var] = Some(value);
        peak = peak.max(live_bytes);
        // Free dead intermediates ("algebraic buffer management").
        for &v in &frees[i] {
            if keep.contains(&v) || v == last {
                continue;
            }
            if let Some(val) = values[v].take() {
                live_bytes = live_bytes.saturating_sub(val.bytes() as u64);
                ctx.mem.release(charged[v]);
                charged[v] = 0;
            }
        }
    }
    ctx.mem.observe_live(peak);
    Ok(Env { values, trace })
}

/// Execute one statement: when the plan optimizer pinned an algorithm,
/// dispatch straight to the pinned kernel entry point (skipping the
/// operator's property re-derivation — pins are only attached when the
/// dynamic choice is provably the same); otherwise fall through to the
/// dynamically dispatching [`eval_op`].
fn eval_stmt(
    ctx: &ExecCtx,
    db: &Db,
    env: &[Option<MilValue>],
    stmt: &super::ast::MilStmt,
) -> Result<MilValue> {
    let bat = |v: Var| -> Result<&Bat> {
        env.get(v)
            .and_then(|x| x.as_ref())
            .ok_or_else(|| MonetError::UnknownName(format!("mil var {v}")))?
            .as_bat()
    };
    match (stmt.pin, &stmt.op) {
        (Some(super::ast::Pin::SelectSorted), MilOp::SelectEq(v, val)) => {
            Ok(MilValue::Bat(ops::select::select_eq_sorted(ctx, bat(*v)?, val)?))
        }
        (
            Some(super::ast::Pin::SelectSorted),
            MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi },
        ) => Ok(MilValue::Bat(ops::select::select_range_sorted(
            ctx,
            bat(*src)?,
            lo.as_ref(),
            hi.as_ref(),
            *inc_lo,
            *inc_hi,
        )?)),
        (Some(super::ast::Pin::SelectDictCode), MilOp::SelectEq(v, val)) => {
            Ok(MilValue::Bat(ops::select::select_eq_dict(ctx, bat(*v)?, val)?))
        }
        (
            Some(super::ast::Pin::SelectDictCode),
            MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi },
        ) => Ok(MilValue::Bat(ops::select::select_range_dict(
            ctx,
            bat(*src)?,
            lo.as_ref(),
            hi.as_ref(),
            *inc_lo,
            *inc_hi,
        )?)),
        (Some(super::ast::Pin::JoinFetch), MilOp::Join(a, b)) => {
            Ok(MilValue::Bat(ops::join::join_fetch_pinned(ctx, bat(*a)?, bat(*b)?)?))
        }
        (Some(super::ast::Pin::JoinMerge), MilOp::Join(a, b)) => {
            Ok(MilValue::Bat(ops::join::join_merge_pinned(ctx, bat(*a)?, bat(*b)?)?))
        }
        // A pin that does not fit the operation shape is a planner bug in
        // debug builds; release builds just take the dynamic path.
        (Some(p), op) => {
            debug_assert!(false, "pin {p:?} does not match op {}", op.name());
            eval_op(ctx, db, env, op)
        }
        (None, op) => eval_op(ctx, db, env, op),
    }
}

fn eval_op(ctx: &ExecCtx, db: &Db, env: &[Option<MilValue>], op: &MilOp) -> Result<MilValue> {
    let bat = |v: Var| -> Result<&Bat> {
        env.get(v)
            .and_then(|x| x.as_ref())
            .ok_or_else(|| MonetError::UnknownName(format!("mil var {v}")))?
            .as_bat()
    };
    Ok(match op {
        MilOp::Load(name) => MilValue::Bat(db.get(name)?.clone()),
        MilOp::ConstScalar(v) => MilValue::Scalar(v.clone()),
        MilOp::Mirror(v) => MilValue::Bat(bat(*v)?.mirror()),
        MilOp::SelectEq(v, val) => MilValue::Bat(ops::select_eq(ctx, bat(*v)?, val)?),
        MilOp::SelectRange { src, lo, hi, inc_lo, inc_hi } => MilValue::Bat(ops::select_range(
            ctx,
            bat(*src)?,
            lo.as_ref(),
            hi.as_ref(),
            *inc_lo,
            *inc_hi,
        )?),
        MilOp::Join(a, b) => MilValue::Bat(ops::join(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Semijoin(a, b) => MilValue::Bat(ops::semijoin(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Antijoin(a, b) => MilValue::Bat(ops::antijoin(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Unique(v) => MilValue::Bat(ops::unique(ctx, bat(*v)?)?),
        MilOp::Group1(v) => MilValue::Bat(ops::group1(ctx, bat(*v)?)?),
        MilOp::Group2(a, b) => MilValue::Bat(ops::group2(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Multiplex { f, args } => {
            let mut margs = Vec::with_capacity(args.len());
            for a in args {
                margs.push(match a {
                    MilArg::Var(v) => match env
                        .get(*v)
                        .and_then(|x| x.as_ref())
                        .ok_or_else(|| MonetError::UnknownName(format!("mil var {v}")))?
                    {
                        MilValue::Bat(b) => ops::MultArg::Bat(b.clone()),
                        MilValue::Scalar(s) => ops::MultArg::Const(s.clone()),
                    },
                    MilArg::Const(v) => ops::MultArg::Const(v.clone()),
                });
            }
            MilValue::Bat(ops::multiplex(ctx, *f, &margs)?)
        }
        MilOp::Fused { src, stages } => {
            let mut fstages = Vec::with_capacity(stages.len());
            for s in stages {
                fstages.push(match s {
                    FuseStage::SelectEq(v) => ops::fused::Stage::SelectEq(v.clone()),
                    FuseStage::SelectRange { lo, hi, inc_lo, inc_hi } => {
                        ops::fused::Stage::SelectRange {
                            lo: lo.clone(),
                            hi: hi.clone(),
                            inc_lo: *inc_lo,
                            inc_hi: *inc_hi,
                        }
                    }
                    FuseStage::Map { f, args } => {
                        let mut fargs = Vec::with_capacity(args.len());
                        for a in args {
                            fargs.push(match a {
                                FuseArg::Chain => ops::fused::FArg::Chain,
                                FuseArg::Var(v) => {
                                    match env.get(*v).and_then(|x| x.as_ref()).ok_or_else(|| {
                                        MonetError::UnknownName(format!("mil var {v}"))
                                    })? {
                                        MilValue::Bat(b) => ops::fused::FArg::Side(b.clone()),
                                        MilValue::Scalar(s) => ops::fused::FArg::Const(s.clone()),
                                    }
                                }
                                FuseArg::Const(v) => ops::fused::FArg::Const(v.clone()),
                            });
                        }
                        ops::fused::Stage::Map { f: *f, args: fargs }
                    }
                    FuseStage::Aggr(f) => ops::fused::Stage::Aggr(*f),
                });
            }
            match ops::fused::run_fused(ctx, bat(*src)?, &fstages)? {
                ops::fused::FusedOut::Bat(b) => MilValue::Bat(b),
                ops::fused::FusedOut::Scalar(v) => MilValue::Scalar(v),
            }
        }
        MilOp::SetAgg { f, src } => MilValue::Bat(ops::set_aggregate(ctx, *f, bat(*src)?)?),
        MilOp::AggrScalar { f, src } => MilValue::Scalar(ops::aggr_scalar(ctx, bat(*src)?, *f)?),
        MilOp::Union(a, b) => MilValue::Bat(ops::union_pairs(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Diff(a, b) => MilValue::Bat(ops::diff_pairs(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Intersect(a, b) => MilValue::Bat(ops::intersect_pairs(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Concat(a, b) => MilValue::Bat(ops::concat_bats(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::Zip(a, b) => MilValue::Bat(ops::zip(ctx, bat(*a)?, bat(*b)?)?),
        MilOp::SortTail(v) => MilValue::Bat(ops::sort_tail(ctx, bat(*v)?)?),
        MilOp::SortHead(v) => MilValue::Bat(ops::sort_head(ctx, bat(*v)?)?),
        MilOp::TopN { src, n, desc } => MilValue::Bat(ops::topn(ctx, bat(*src)?, *n, *desc)?),
        MilOp::Mark(v) => MilValue::Bat(ops::mark(ctx, bat(*v)?, None)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn db() -> Db {
        let mut db = Db::new();
        db.register(
            "Order_clerk",
            Bat::with_inferred_props(
                Column::from_oids(vec![4, 2, 7, 1]),
                Column::from_strs(["a", "b", "b", "c"]),
            ),
        );
        db.register(
            "Item_order",
            Bat::new(Column::from_oids(vec![100, 101, 102]), Column::from_oids(vec![2, 7, 1])),
        );
        db
    }

    #[test]
    fn runs_a_small_pipeline() {
        let ctx = ExecCtx::new();
        let db = db();
        let mut p = MilProgram::new();
        let clerk = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let orders = p.emit("orders", MilOp::SelectEq(clerk, AtomValue::str("b")));
        let io = p.emit("io", MilOp::Load("Item_order".into()));
        let items = p.emit("items", MilOp::Join(io, orders));
        let env = execute(&ctx, &db, &p, &[items]).unwrap();
        let result = env.bat(items).unwrap();
        assert_eq!(result.len(), 2);
        let mut heads: Vec<u64> = (0..2).map(|i| result.head().oid_at(i)).collect();
        heads.sort_unstable();
        assert_eq!(heads, vec![100, 101]);
    }

    #[test]
    fn freed_intermediates_are_unavailable() {
        let ctx = ExecCtx::new();
        let db = db();
        let mut p = MilProgram::new();
        let clerk = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let m = p.emit("m", MilOp::Mirror(clerk));
        let u = p.emit("u", MilOp::Unique(m));
        let env = execute(&ctx, &db, &p, &[u]).unwrap();
        assert!(env.bat(u).is_ok());
        assert!(env.bat(clerk).is_err()); // freed after its last use
    }

    #[test]
    fn keep_protects_variables() {
        let ctx = ExecCtx::new();
        let db = db();
        let mut p = MilProgram::new();
        let clerk = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let m = p.emit("m", MilOp::Mirror(clerk));
        let _u = p.emit("u", MilOp::Unique(m));
        let env = execute(&ctx, &db, &p, &[clerk, m]).unwrap();
        assert!(env.bat(clerk).is_ok());
        assert!(env.bat(m).is_ok());
    }

    #[test]
    fn scalar_aggregate_statement() {
        let ctx = ExecCtx::new();
        let mut db = Db::new();
        db.register("nums", Bat::new(Column::from_oids(vec![1, 2]), Column::from_ints(vec![4, 6])));
        let mut p = MilProgram::new();
        let v = p.emit("nums", MilOp::Load("nums".into()));
        let s = p.emit("total", MilOp::AggrScalar { f: ops::AggFunc::Sum, src: v });
        let env = execute(&ctx, &db, &p, &[s]).unwrap();
        assert_eq!(env.scalar(s).unwrap(), &AtomValue::Lng(10));
    }

    #[test]
    fn unknown_catalog_name_errors() {
        let ctx = ExecCtx::new();
        let db = Db::new();
        let mut p = MilProgram::new();
        let _ = p.emit("x", MilOp::Load("nope".into()));
        assert!(execute(&ctx, &db, &p, &[]).is_err());
    }

    #[test]
    fn budget_abort_is_typed_and_a_lifted_budget_recovers() {
        let ctx = ExecCtx::new();
        let db = db();
        let mut p = MilProgram::new();
        let clerk = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let orders = p.emit("orders", MilOp::SelectEq(clerk, AtomValue::str("b")));
        let io = p.emit("io", MilOp::Load("Item_order".into()));
        let items = p.emit("items", MilOp::Join(io, orders));
        ctx.mem.set_budget(Some(1));
        let err = match execute(&ctx, &db, &p, &[items]) {
            Err(e) => e,
            Ok(_) => panic!("over-budget program completed"),
        };
        assert!(matches!(err, MonetError::BudgetExceeded { .. }), "got {err:?}");
        // The budget aborts the query, not the context: lift it and retry.
        ctx.mem.set_budget(None);
        assert_eq!(execute(&ctx, &db, &p, &[items]).unwrap().bat(items).unwrap().len(), 2);
    }

    #[test]
    fn cancellation_aborts_between_statements() {
        let ctx = ExecCtx::new();
        let db = db();
        let mut p = MilProgram::new();
        let _ = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let token = ctx.cancel_token();
        token.cancel();
        let err = match execute(&ctx, &db, &p, &[]) {
            Err(e) => e,
            Ok(_) => panic!("cancelled program completed"),
        };
        assert_eq!(err, MonetError::Cancelled);
        token.clear();
        assert!(execute(&ctx, &db, &p, &[]).is_ok());
    }

    #[test]
    fn liveness_frees_release_governor_charge() {
        let ctx = ExecCtx::new();
        let db = db();
        let mut p = MilProgram::new();
        let clerk = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let orders = p.emit("orders", MilOp::SelectEq(clerk, AtomValue::str("b")));
        let io = p.emit("io", MilOp::Load("Item_order".into()));
        let items = p.emit("items", MilOp::Join(io, orders));
        let env = execute(&ctx, &db, &p, &[items]).unwrap();
        // `orders` was charged by the select's record and released at its
        // liveness free; only the kept join result stays charged.
        let kept = env.bat(items).unwrap().bytes() as u64;
        assert_eq!(ctx.mem.charged_bytes(), kept);
        assert!(ctx.mem.charged_peak() > kept);
    }

    #[test]
    fn trace_captures_statements() {
        let ctx = ExecCtx::new().with_trace();
        let db = db();
        let mut p = MilProgram::new();
        let clerk = p.emit("clerk", MilOp::Load("Order_clerk".into()));
        let _sel = p.emit("orders", MilOp::SelectEq(clerk, AtomValue::str("b")));
        let env = execute(&ctx, &db, &p, &[]).unwrap();
        assert_eq!(env.trace().len(), 2);
        assert_eq!(env.trace()[1].name, "orders");
        assert_eq!(env.trace()[1].algo, "binary-search");
        assert_eq!(env.trace()[1].result_len, 2);
    }
}
