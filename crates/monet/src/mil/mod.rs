//! MIL — the Monet Interpreter Language (Section 4.2).
//!
//! MIL consists of the BAT algebra plus control structures; here a MIL
//! *program* is a straight-line sequence of BAT-algebra statements (the
//! form the MOA translator emits, cf. the listing of Figure 10). Programs
//! are first-class values: they can be pretty-printed, interpreted against
//! a [`crate::db::Db`], and traced statement by statement.

mod ast;
mod interp;
pub mod opt;
mod print;

pub use ast::{MilArg, MilOp, MilProgram, MilStmt, ParamLoc, Pin, Var};
pub use interp::{execute, Env, MilValue, StmtTrace};
pub use print::{render_program, render_stmt};
