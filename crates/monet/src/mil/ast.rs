//! MIL program representation.

use crate::atom::AtomValue;
use crate::ops::{AggFunc, ScalarFunc};

/// A MIL variable, indexing the interpreter environment.
pub type Var = usize;

/// An argument of a multiplexed operation: a variable or a constant
/// (constants broadcast, as in `[-](1.0, discount)`).
#[derive(Debug, Clone)]
pub enum MilArg {
    Var(Var),
    Const(AtomValue),
}

/// One BAT-algebra command (Figure 4), plus the ordering/marking utilities
/// the TPC-D plans need.
#[derive(Debug, Clone)]
pub enum MilOp {
    /// Fetch a persistent BAT from the catalog.
    Load(String),
    /// Bind a scalar constant.
    ConstScalar(AtomValue),
    /// `v.mirror` — swap head and tail, free of cost.
    Mirror(Var),
    /// `v.select(T)` — point selection on the tail.
    SelectEq(Var, AtomValue),
    /// `v.select(Tl,Th)` — range selection on the tail; `None` = unbounded.
    SelectRange {
        src: Var,
        lo: Option<AtomValue>,
        hi: Option<AtomValue>,
        inc_lo: bool,
        inc_hi: bool,
    },
    /// `a.join(b)`.
    Join(Var, Var),
    /// `a.semijoin(b)`.
    Semijoin(Var, Var),
    /// `a.antijoin(b)` — BUNs of `a` whose head does *not* occur in `b`.
    Antijoin(Var, Var),
    /// `v.unique`.
    Unique(Var),
    /// `v.group` — unary grouping.
    Group1(Var),
    /// `a.group(b)` — refining (binary) grouping.
    Group2(Var, Var),
    /// `[f](args…)` — multiplexed scalar function.
    Multiplex { f: ScalarFunc, args: Vec<MilArg> },
    /// `{g}(v)` — set-aggregate over the head groups.
    SetAgg { f: AggFunc, src: Var },
    /// Whole-BAT scalar aggregate of the tail, producing a scalar variable.
    AggrScalar { f: AggFunc, src: Var },
    /// Pair-set union.
    Union(Var, Var),
    /// Pair-set difference.
    Diff(Var, Var),
    /// Pair-set intersection.
    Intersect(Var, Var),
    /// Bag concatenation.
    Concat(Var, Var),
    /// Positional tail combination of two synced BATs.
    Zip(Var, Var),
    /// Reorder ascending on tail.
    SortTail(Var),
    /// Reorder ascending on head.
    SortHead(Var),
    /// Largest/smallest `n` BUNs by tail.
    TopN { src: Var, n: usize, desc: bool },
    /// Fresh dense oid tail, synced with the operand.
    Mark(Var),
    /// A fused operator pipeline built by the optimizer's `fuse` pass: one
    /// pass over `src`, applying `stages` morsel-at-a-time with no
    /// intermediate BATs. Never emitted by the translator; only the `fuse`
    /// pass creates these, and only for chains it proved equivalent to the
    /// staged execution (bit-identical results, same morsel grid).
    Fused { src: Var, stages: Vec<FuseStage> },
}

/// One stage of a fused pipeline ([`MilOp::Fused`]): the chain value flows
/// source → stage 0 → stage 1 → …, each stage consuming its predecessor's
/// per-morsel output in place of a materialized intermediate.
#[derive(Debug, Clone)]
pub enum FuseStage {
    /// Point selection on the chain tail (from [`MilOp::SelectEq`]).
    SelectEq(AtomValue),
    /// Range selection on the chain tail (from [`MilOp::SelectRange`]).
    SelectRange { lo: Option<AtomValue>, hi: Option<AtomValue>, inc_lo: bool, inc_hi: bool },
    /// Multiplexed scalar function over the chain tail and side columns
    /// (from [`MilOp::Multiplex`]).
    Map { f: ScalarFunc, args: Vec<FuseArg> },
    /// Terminal whole-column scalar aggregate (from [`MilOp::AggrScalar`]).
    Aggr(AggFunc),
}

impl FuseStage {
    /// Governor probe site executed once per morsel per stage.
    pub fn probe_site(&self) -> &'static str {
        match self {
            FuseStage::SelectEq(_) | FuseStage::SelectRange { .. } => crate::gov::site::FUSE_SELECT,
            FuseStage::Map { .. } => crate::gov::site::FUSE_MULTIPLEX,
            FuseStage::Aggr(_) => crate::gov::site::FUSE_AGGR,
        }
    }
}

/// An argument of a fused [`FuseStage::Map`] stage.
#[derive(Debug, Clone)]
pub enum FuseArg {
    /// The chain value flowing through the pipeline.
    Chain,
    /// A side variable; the fused executor requires it row-synced with the
    /// pipeline source (checked at run time, falling back to staged
    /// execution otherwise).
    Var(Var),
    /// A broadcast constant.
    Const(AtomValue),
}

/// An algorithm pinned onto a statement by the plan optimizer (Section 5.1:
/// the descriptor properties let commands "make a run-time choice between
/// alternative implementations" — when the optimizer can make that choice at
/// *plan* time from propagated [`crate::props::ColProps`], it pins it here
/// and the interpreter skips the per-operator re-derivation).
///
/// A pin is only ever attached when the pinned algorithm is provably the one
/// dynamic dispatch would pick, so pinned and unpinned execution are
/// bit-identical; debug builds assert the preconditions when the pinned
/// kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pin {
    /// `join` against a dense oid-like right head: positional fetch.
    JoinFetch,
    /// `join` with sorted left tail and sorted right head: linear merge.
    JoinMerge,
    /// `select` on a tail-sorted operand: binary-search slice.
    SelectSorted,
    /// `select` on a dictionary-encoded tail: resolve the predicate to a
    /// code range on the sorted dictionary and select on `u32` codes.
    SelectDictCode,
}

impl Pin {
    /// Label used when rendering annotated plans.
    pub fn label(self) -> &'static str {
        match self {
            Pin::JoinFetch => "fetch",
            Pin::JoinMerge => "merge",
            Pin::SelectSorted => "binary-search",
            Pin::SelectDictCode => "dict-code",
        }
    }
}

/// Which constant inside a [`MilOp`] a prepared-statement parameter feeds.
///
/// A parameter slot records *where* in the statement a bound query
/// parameter ended up, so a cached plan can be re-bound to new values
/// without re-translating. Slots are attached by the MOA translator and
/// must survive every optimizer pass (the optimizer may move a statement
/// or alias it away, but it never changes a parameterized constant's
/// value, so a slot stays valid wherever its statement lands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamLoc {
    /// The value of a `SelectEq`.
    EqVal,
    /// The lower bound of a `SelectRange`.
    RangeLo,
    /// The upper bound of a `SelectRange`.
    RangeHi,
    /// The `i`-th argument of a `Multiplex` (must be `MilArg::Const`).
    Arg(u32),
}

impl MilOp {
    /// Variables this operation reads (for liveness analysis).
    pub fn operands(&self) -> Vec<Var> {
        match self {
            MilOp::Load(_) | MilOp::ConstScalar(_) => vec![],
            MilOp::Mirror(v)
            | MilOp::SelectEq(v, _)
            | MilOp::Unique(v)
            | MilOp::Group1(v)
            | MilOp::SortTail(v)
            | MilOp::SortHead(v)
            | MilOp::Mark(v) => vec![*v],
            MilOp::SelectRange { src, .. }
            | MilOp::SetAgg { src, .. }
            | MilOp::AggrScalar { src, .. }
            | MilOp::TopN { src, .. } => vec![*src],
            MilOp::Join(a, b)
            | MilOp::Semijoin(a, b)
            | MilOp::Antijoin(a, b)
            | MilOp::Group2(a, b)
            | MilOp::Union(a, b)
            | MilOp::Diff(a, b)
            | MilOp::Intersect(a, b)
            | MilOp::Concat(a, b)
            | MilOp::Zip(a, b) => vec![*a, *b],
            MilOp::Multiplex { args, .. } => args
                .iter()
                .filter_map(|a| match a {
                    MilArg::Var(v) => Some(*v),
                    MilArg::Const(_) => None,
                })
                .collect(),
            MilOp::Fused { src, stages } => {
                let mut vs = vec![*src];
                for stage in stages {
                    if let FuseStage::Map { args, .. } = stage {
                        for a in args {
                            if let FuseArg::Var(v) = a {
                                vs.push(*v);
                            }
                        }
                    }
                }
                vs
            }
        }
    }

    /// Apply `f` to every operand variable in place (the optimizer's
    /// rewrite primitive: CSE aliasing, DCE renumbering).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Var)) {
        match self {
            MilOp::Load(_) | MilOp::ConstScalar(_) => {}
            MilOp::Mirror(v)
            | MilOp::SelectEq(v, _)
            | MilOp::Unique(v)
            | MilOp::Group1(v)
            | MilOp::SortTail(v)
            | MilOp::SortHead(v)
            | MilOp::Mark(v) => f(v),
            MilOp::SelectRange { src, .. }
            | MilOp::SetAgg { src, .. }
            | MilOp::AggrScalar { src, .. }
            | MilOp::TopN { src, .. } => f(src),
            MilOp::Join(a, b)
            | MilOp::Semijoin(a, b)
            | MilOp::Antijoin(a, b)
            | MilOp::Group2(a, b)
            | MilOp::Union(a, b)
            | MilOp::Diff(a, b)
            | MilOp::Intersect(a, b)
            | MilOp::Concat(a, b)
            | MilOp::Zip(a, b) => {
                f(a);
                f(b);
            }
            MilOp::Multiplex { args, .. } => {
                for a in args {
                    if let MilArg::Var(v) = a {
                        f(v);
                    }
                }
            }
            MilOp::Fused { src, stages } => {
                f(src);
                for stage in stages {
                    if let FuseStage::Map { args, .. } = stage {
                        for a in args {
                            if let FuseArg::Var(v) = a {
                                f(v);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether the operation draws fresh oids from the execution context
    /// (`group`'s `unique_oid`, `mark`'s dense sequence). Two textually
    /// identical fresh-oid statements produce *different* oid ranges, so
    /// the optimizer must never merge them.
    pub fn draws_fresh_oids(&self) -> bool {
        matches!(self, MilOp::Group1(_) | MilOp::Group2(..) | MilOp::Mark(_))
    }

    /// Operator name as it appears in printed programs.
    pub fn name(&self) -> String {
        match self {
            MilOp::Load(n) => format!("load(\"{n}\")"),
            MilOp::ConstScalar(_) => "const".into(),
            MilOp::Mirror(_) => "mirror".into(),
            MilOp::SelectEq(..) | MilOp::SelectRange { .. } => "select".into(),
            MilOp::Join(..) => "join".into(),
            MilOp::Semijoin(..) => "semijoin".into(),
            MilOp::Antijoin(..) => "antijoin".into(),
            MilOp::Unique(_) => "unique".into(),
            MilOp::Group1(_) | MilOp::Group2(..) => "group".into(),
            MilOp::Multiplex { f, .. } => format!("[{}]", f.mil_name()),
            MilOp::SetAgg { f, .. } => format!("{{{}}}", f.name()),
            MilOp::AggrScalar { f, .. } => f.name().into(),
            MilOp::Union(..) => "union".into(),
            MilOp::Diff(..) => "diff".into(),
            MilOp::Intersect(..) => "intersect".into(),
            MilOp::Concat(..) => "concat".into(),
            MilOp::Zip(..) => "zip".into(),
            MilOp::SortTail(_) => "sort".into(),
            MilOp::SortHead(_) => "sort_head".into(),
            MilOp::TopN { .. } => "topn".into(),
            MilOp::Mark(_) => "mark".into(),
            MilOp::Fused { .. } => "fused".into(),
        }
    }
}

/// One statement: `name := op(...)`, optionally carrying an algorithm
/// [`Pin`] attached by the plan optimizer and the parameter slots of any
/// prepared-statement constants baked into the operation.
#[derive(Debug, Clone)]
pub struct MilStmt {
    pub var: Var,
    pub name: String,
    pub op: MilOp,
    pub pin: Option<Pin>,
    /// `(param id, location)` for each query parameter whose current value
    /// is embedded in `op`. Empty for non-parameterized statements.
    pub params: Vec<(u32, ParamLoc)>,
}

impl MilStmt {
    /// Read the constant currently stored at a parameter slot.
    pub fn param_value(&self, loc: ParamLoc) -> Option<&AtomValue> {
        match (loc, &self.op) {
            (ParamLoc::EqVal, MilOp::SelectEq(_, v)) => Some(v),
            (ParamLoc::RangeLo, MilOp::SelectRange { lo, .. }) => lo.as_ref(),
            (ParamLoc::RangeHi, MilOp::SelectRange { hi, .. }) => hi.as_ref(),
            (ParamLoc::Arg(i), MilOp::Multiplex { args, .. }) => match args.get(i as usize) {
                Some(MilArg::Const(v)) => Some(v),
                _ => None,
            },
            _ => None,
        }
    }

    /// Overwrite the constant at a parameter slot with a new binding.
    /// Returns false if the slot does not address a constant in `op`
    /// (which would mean the slot metadata went stale — a bug).
    pub fn splice_param(&mut self, loc: ParamLoc, value: &AtomValue) -> bool {
        match (loc, &mut self.op) {
            (ParamLoc::EqVal, MilOp::SelectEq(_, v)) => {
                *v = value.clone();
                true
            }
            (ParamLoc::RangeLo, MilOp::SelectRange { lo: Some(v), .. })
            | (ParamLoc::RangeHi, MilOp::SelectRange { hi: Some(v), .. }) => {
                *v = value.clone();
                true
            }
            (ParamLoc::Arg(i), MilOp::Multiplex { args, .. }) => match args.get_mut(i as usize) {
                Some(MilArg::Const(v)) => {
                    *v = value.clone();
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
}

/// A straight-line MIL program.
#[derive(Debug, Clone, Default)]
pub struct MilProgram {
    pub stmts: Vec<MilStmt>,
}

impl MilProgram {
    pub fn new() -> MilProgram {
        MilProgram::default()
    }

    /// Append a statement, returning its variable. `name` is only used for
    /// printing; unnamed intermediates can pass `""` and get `tmpN`.
    pub fn emit(&mut self, name: &str, op: MilOp) -> Var {
        let var = self.stmts.len();
        let name = if name.is_empty() { format!("tmp{var}") } else { name.to_string() };
        self.stmts.push(MilStmt { var, name, op, pin: None, params: Vec::new() });
        var
    }

    /// Record that statement `var` holds the current value of parameter
    /// `pid` at `loc` (translator hook for prepared statements).
    pub fn note_param(&mut self, var: Var, pid: u32, loc: ParamLoc) {
        debug_assert!(self.stmts[var].param_value(loc).is_some(), "param slot addresses no const");
        self.stmts[var].params.push((pid, loc));
    }

    /// All parameter bindings currently baked into the program, as
    /// `(param id, value)` pairs in statement order. A parameter feeding
    /// several statements appears once per slot — callers that need the
    /// canonical binding can take the first occurrence (slots of one id
    /// always carry equal values).
    pub fn param_bindings(&self) -> Vec<(u32, AtomValue)> {
        let mut out = Vec::new();
        for stmt in &self.stmts {
            for (pid, loc) in &stmt.params {
                if let Some(v) = stmt.param_value(*loc) {
                    out.push((*pid, v.clone()));
                }
            }
        }
        out
    }

    /// Re-bind every parameter slot from `bindings` (`(id, value)` pairs).
    /// Slots whose id is missing from `bindings` keep their cached value.
    /// Returns false if any addressed slot no longer holds a constant.
    pub fn splice_params(&mut self, bindings: &[(u32, AtomValue)]) -> bool {
        for stmt in &mut self.stmts {
            // Move the slot list aside so we can mutate the op it describes.
            let slots = std::mem::take(&mut stmt.params);
            for (pid, loc) in &slots {
                if let Some((_, v)) = bindings.iter().find(|(id, _)| id == pid) {
                    if !stmt.splice_param(*loc, v) {
                        stmt.params = slots;
                        return false;
                    }
                }
            }
            stmt.params = slots;
        }
        true
    }

    /// Name of a variable (for printing).
    pub fn name_of(&self, v: Var) -> &str {
        &self.stmts[v].name
    }

    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Number of operand references to each variable across the whole
    /// program (a variable appearing twice in one statement counts twice).
    /// Roots the caller keeps alive are *not* counted — pass them to the
    /// optimizer separately.
    pub fn use_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.stmts.len()];
        for stmt in &self.stmts {
            for v in stmt.op.operands() {
                counts[v] += 1;
            }
        }
        counts
    }

    /// For each statement index, the set of variables whose *last* use is
    /// that statement — the interpreter frees them afterwards ("algebraic
    /// buffer management": materialized intermediates are released as soon
    /// as no later statement needs them).
    pub fn last_uses(&self) -> Vec<Vec<Var>> {
        let mut last_use: Vec<Option<usize>> = vec![None; self.stmts.len()];
        for (i, stmt) in self.stmts.iter().enumerate() {
            for v in stmt.op.operands() {
                last_use[v] = Some(i);
            }
        }
        let mut frees: Vec<Vec<Var>> = vec![Vec::new(); self.stmts.len()];
        for (v, lu) in last_use.iter().enumerate() {
            if let Some(i) = lu {
                frees[*i].push(v);
            }
        }
        frees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_names() {
        let mut p = MilProgram::new();
        let a = p.emit("orders", MilOp::Load("Order_clerk".into()));
        let b = p.emit("", MilOp::Mirror(a));
        assert_eq!(p.name_of(a), "orders");
        assert_eq!(p.name_of(b), "tmp1");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn operand_extraction() {
        let op = MilOp::Multiplex {
            f: ScalarFunc::Mul,
            args: vec![MilArg::Var(3), MilArg::Const(AtomValue::Dbl(1.0)), MilArg::Var(7)],
        };
        assert_eq!(op.operands(), vec![3, 7]);
    }

    #[test]
    fn last_uses_frees_dead_vars() {
        let mut p = MilProgram::new();
        let a = p.emit("a", MilOp::Load("x".into())); // used by b only
        let b = p.emit("b", MilOp::Mirror(a)); // used by c
        let _c = p.emit("c", MilOp::Unique(b));
        let frees = p.last_uses();
        assert_eq!(frees[1], vec![a]);
        assert_eq!(frees[2], vec![b]);
        assert!(frees[0].is_empty());
    }
}
