//! Shared-memory parallelism (Section 2: "parallel iteration and parallel
//! block execution").
//!
//! Monet's parallel primitives are coarse-grained to preserve efficiency.
//! This module provides *parallel block execution* for the scan-shaped
//! operators: the operand is cut into contiguous blocks, each block is
//! processed on its own thread, and the per-block results are concatenated
//! in block order (so operand order — and with it the property propagation
//! rules — is preserved).

use crate::atom::AtomValue;
use crate::bat::Bat;
use crate::column::Column;

/// Cut `len` into at most `threads` contiguous blocks of near-equal size.
pub fn blocks(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(len.max(1));
    let base = len / threads;
    let extra = len % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let sz = base + usize::from(t < extra);
        if sz == 0 {
            continue;
        }
        out.push((start, sz));
        start += sz;
    }
    out
}

/// Parallel point-selection scan: positions whose tail equals `v`, in
/// operand order. Equivalent to the sequential scan inside
/// [`crate::ops::select_eq`]; benchmarked against it in `bench`.
pub fn par_select_eq_positions(ab: &Bat, v: &AtomValue, threads: usize) -> Vec<u32> {
    let blocks = blocks(ab.len(), threads);
    if blocks.len() <= 1 {
        let tail = ab.tail();
        return (0..ab.len()).filter(|&i| tail.cmp_val(i, v).is_eq()).map(|i| i as u32).collect();
    }
    let mut results: Vec<Vec<u32>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .iter()
            .map(|&(start, len)| {
                let tail = ab.tail();
                scope.spawn(move || {
                    (start..start + len)
                        .filter(|&i| tail.cmp_val(i, v).is_eq())
                        .map(|i| i as u32)
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        results = handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
    });
    let mut out = Vec::with_capacity(results.iter().map(Vec::len).sum());
    for r in results {
        out.extend(r);
    }
    out
}

/// Parallel fold over contiguous blocks of a column, combining per-block
/// accumulators in block order. Used for parallel scalar aggregation.
/// `f` must be associative; `init` enters the fold exactly once, so the
/// result is independent of `threads`.
pub fn par_fold_dbl(col: &Column, threads: usize, init: f64, f: fn(f64, f64) -> f64) -> f64 {
    let Some(slice) = col.as_dbl_slice() else {
        // Non-dbl columns fold sequentially via the generic accessor.
        return (0..col.len()).filter_map(|i| col.get(i).as_f64()).fold(init, f);
    };
    let blocks = blocks(slice.len(), threads);
    if blocks.len() <= 1 {
        return slice.iter().copied().fold(init, f);
    }
    let mut acc = init;
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .iter()
            .map(|&(start, len)| {
                let chunk = &slice[start..start + len];
                scope.spawn(move || chunk.iter().copied().reduce(f))
            })
            .collect();
        for h in handles {
            if let Some(partial) = h.join().expect("worker panicked") {
                acc = f(acc, partial);
            }
        }
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_exactly() {
        for (len, t) in [(10, 3), (7, 7), (5, 16), (0, 4), (100, 1)] {
            let b = blocks(len, t);
            let total: usize = b.iter().map(|x| x.1).sum();
            assert_eq!(total, len, "len={len} t={t}");
            let mut pos = 0;
            for (s, l) in b {
                assert_eq!(s, pos);
                pos += l;
            }
        }
    }

    #[test]
    fn parallel_select_matches_sequential() {
        let ab = Bat::new(
            Column::from_oids((0..10_000).collect()),
            Column::from_ints((0..10_000).map(|i| i % 7).collect()),
        );
        let seq = par_select_eq_positions(&ab, &AtomValue::Int(3), 1);
        let par = par_select_eq_positions(&ab, &AtomValue::Int(3), 4);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 10_000 / 7 + usize::from(10_000 % 7 > 3));
    }

    #[test]
    fn parallel_fold_sums() {
        let col = Column::from_dbls((0..1000).map(|i| i as f64).collect());
        let s = par_fold_dbl(&col, 8, 0.0, |a, b| a + b);
        assert_eq!(s, 999.0 * 1000.0 / 2.0);
    }

    #[test]
    fn parallel_fold_counts_init_once() {
        let col = Column::from_dbls((0..1000).map(|i| i as f64).collect());
        for threads in [1, 2, 8, 16] {
            let s = par_fold_dbl(&col, threads, 10.0, |a, b| a + b);
            assert_eq!(s, 10.0 + 999.0 * 1000.0 / 2.0, "threads={threads}");
        }
    }
}
