//! Atomic (base) types of the kernel.
//!
//! Monet's binary model stores pairs of *atoms*. The internal structure of a
//! base type is not accessible to the algebra; it is only manipulated through
//! operations (Section 3 of the paper). The base types here are the ones MOA
//! inherits from Monet — `bool, chr, int, lng, dbl, str, oid` — plus `date`
//! (the paper's `instant`, needed by the TPC-D schema) and the virtual `void`
//! type used for dense object-identifier sequences.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Object identifier. Monet supports the base type `oid`; `V_oid` is the set
/// of object identifiers (Section 3.3).
pub type Oid = u64;

/// The atom types supported by this kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomType {
    /// Virtual dense sequence; occupies zero bytes of heap space.
    Void,
    /// Object identifier.
    Oid,
    /// Boolean.
    Bool,
    /// Single character (TPC-D `returnflag`, `linestatus`).
    Chr,
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Lng,
    /// 64-bit float.
    Dbl,
    /// Variable-length string, stored in a separate heap (Figure 2).
    Str,
    /// Calendar date, stored as days since 1970-01-01 (the paper's `instant`).
    Date,
}

impl AtomType {
    /// Width in bytes of one value in the fixed-size BUN heap. Strings count
    /// their 4-byte heap offset; the variable part lives in the tail heap.
    /// `void` is virtual and occupies no storage at all.
    pub fn width(self) -> usize {
        match self {
            AtomType::Void => 0,
            AtomType::Bool | AtomType::Chr => 1,
            AtomType::Int | AtomType::Date | AtomType::Str => 4,
            AtomType::Oid | AtomType::Lng | AtomType::Dbl => 8,
        }
    }

    /// True for types whose column representation is an order-preserving
    /// fixed-width array (everything except `str`, whose comparison goes
    /// through the heap).
    pub fn is_fixed(self) -> bool {
        !matches!(self, AtomType::Str)
    }
}

impl fmt::Display for AtomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomType::Void => "void",
            AtomType::Oid => "oid",
            AtomType::Bool => "bool",
            AtomType::Chr => "chr",
            AtomType::Int => "int",
            AtomType::Lng => "lng",
            AtomType::Dbl => "dbl",
            AtomType::Str => "str",
            AtomType::Date => "date",
        };
        f.write_str(s)
    }
}

/// A calendar date, stored as the number of days since 1970-01-01.
///
/// TPC-D predicates compare dates and extract years (the `[year]` multiplex
/// of Figure 5/10), so the kernel supports `date` as a base type — an
/// instance of Monet's base-type extensibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a civil calendar date. Uses the standard
    /// days-from-civil algorithm, valid for all Gregorian dates.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Date {
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = ((m + 9) % 12) as i64; // March -> 0
        let doy = (153 * mp + 2) / 5 + (d as i64 - 1); // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date((era as i64 * 146_097 + doe - 719_468) as i32)
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
    }

    /// Calendar year, used by the `[year]` multiplex operator.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// Month of year in `[1, 12]`.
    pub fn month(self) -> u32 {
        self.to_ymd().1
    }

    /// Add a number of days (may be negative).
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Add (approximately) `months` months, clamping the day of month.
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.to_ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
        let nd = d.min(days_in_month(ny, nm));
        Date::from_ymd(ny, nm, nd)
    }
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month out of range"),
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A single atomic value.
///
/// Scalar values appear as MIL constants (selection bounds, multiplex
/// constant arguments like the `1.0` in `[-](1.0, discount)`) and as the
/// result of whole-BAT aggregates.
#[derive(Debug, Clone)]
pub enum AtomValue {
    Void(Oid),
    Oid(Oid),
    Bool(bool),
    Chr(u8),
    Int(i32),
    Lng(i64),
    Dbl(f64),
    Str(Box<str>),
    Date(Date),
}

impl AtomValue {
    /// The type of this value.
    pub fn atom_type(&self) -> AtomType {
        match self {
            AtomValue::Void(_) => AtomType::Void,
            AtomValue::Oid(_) => AtomType::Oid,
            AtomValue::Bool(_) => AtomType::Bool,
            AtomValue::Chr(_) => AtomType::Chr,
            AtomValue::Int(_) => AtomType::Int,
            AtomValue::Lng(_) => AtomType::Lng,
            AtomValue::Dbl(_) => AtomType::Dbl,
            AtomValue::Str(_) => AtomType::Str,
            AtomValue::Date(_) => AtomType::Date,
        }
    }

    /// String constructor convenience.
    pub fn str(s: impl Into<Box<str>>) -> AtomValue {
        AtomValue::Str(s.into())
    }

    /// Interpret as an oid (void values are dense oids).
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            AtomValue::Oid(o) | AtomValue::Void(o) => Some(*o),
            _ => None,
        }
    }

    /// Numeric view as f64 for cross-type arithmetic and aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AtomValue::Int(v) => Some(*v as f64),
            AtomValue::Lng(v) => Some(*v as f64),
            AtomValue::Dbl(v) => Some(*v),
            _ => None,
        }
    }

    /// Total-order comparison between two values **of the same type**.
    /// Doubles use IEEE total ordering so sorting is well defined.
    pub fn cmp_same_type(&self, other: &AtomValue) -> Ordering {
        use AtomValue::*;
        match (self, other) {
            (Void(a), Void(b)) | (Oid(a), Oid(b)) => a.cmp(b),
            (Void(a), Oid(b)) | (Oid(a), Void(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Chr(a), Chr(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Lng(a), Lng(b)) => a.cmp(b),
            (Dbl(a), Dbl(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => panic!(
                "cmp_same_type on mixed types {:?} vs {:?}",
                self.atom_type(),
                other.atom_type()
            ),
        }
    }
}

impl PartialEq for AtomValue {
    fn eq(&self, other: &Self) -> bool {
        let comparable = self.atom_type() == other.atom_type()
            || (self.as_oid().is_some() && other.as_oid().is_some());
        comparable && self.cmp_same_type(other) == Ordering::Equal
    }
}

impl Eq for AtomValue {}

impl Hash for AtomValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            AtomValue::Void(v) | AtomValue::Oid(v) => v.hash(state),
            AtomValue::Bool(v) => v.hash(state),
            AtomValue::Chr(v) => v.hash(state),
            AtomValue::Int(v) => v.hash(state),
            AtomValue::Lng(v) => v.hash(state),
            AtomValue::Dbl(v) => v.to_bits().hash(state),
            AtomValue::Str(v) => v.hash(state),
            AtomValue::Date(v) => v.hash(state),
        }
    }
}

impl fmt::Display for AtomValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomValue::Void(v) => write!(f, "{v}@void"),
            AtomValue::Oid(v) => write!(f, "{v}@0"),
            AtomValue::Bool(v) => write!(f, "{v}"),
            AtomValue::Chr(v) => write!(f, "'{}'", *v as char),
            AtomValue::Int(v) => write!(f, "{v}"),
            AtomValue::Lng(v) => write!(f, "{v}L"),
            AtomValue::Dbl(v) => write!(f, "{v}"),
            AtomValue::Str(v) => write!(f, "\"{v}\""),
            AtomValue::Date(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date(0).to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrip_sweep() {
        // Every 13 days across several decades including leap years.
        let mut d = Date::from_ymd(1992, 1, 1);
        let end = Date::from_ymd(1999, 1, 1);
        while d < end {
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d);
            d = d.add_days(13);
        }
    }

    #[test]
    fn date_year_extraction() {
        assert_eq!(Date::from_ymd(1995, 6, 17).year(), 1995);
        assert_eq!(Date::from_ymd(1996, 12, 31).year(), 1996);
        assert_eq!(Date::from_ymd(1996, 2, 29).month(), 2);
    }

    #[test]
    fn date_add_months_clamps() {
        let d = Date::from_ymd(1995, 1, 31);
        assert_eq!(d.add_months(1).to_ymd(), (1995, 2, 28));
        assert_eq!(d.add_months(3).to_ymd(), (1995, 4, 30));
        assert_eq!(d.add_months(12).to_ymd(), (1996, 1, 31));
        assert_eq!(d.add_months(-1).to_ymd(), (1994, 12, 31));
    }

    #[test]
    fn date_ordering_matches_days() {
        assert!(Date::from_ymd(1994, 3, 1) < Date::from_ymd(1994, 3, 2));
        assert!(Date::from_ymd(1998, 12, 1) > Date::from_ymd(1995, 3, 2));
    }

    #[test]
    fn atom_value_equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AtomValue::Int(42));
        set.insert(AtomValue::Int(42));
        set.insert(AtomValue::str("abc"));
        set.insert(AtomValue::str("abc"));
        set.insert(AtomValue::Dbl(1.5));
        set.insert(AtomValue::Dbl(1.5));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn atom_widths() {
        assert_eq!(AtomType::Void.width(), 0);
        assert_eq!(AtomType::Chr.width(), 1);
        assert_eq!(AtomType::Int.width(), 4);
        assert_eq!(AtomType::Str.width(), 4);
        assert_eq!(AtomType::Dbl.width(), 8);
    }

    #[test]
    fn cmp_void_vs_oid_interoperates() {
        assert_eq!(AtomValue::Void(5).cmp_same_type(&AtomValue::Oid(5)), Ordering::Equal);
        assert_eq!(AtomValue::Void(5), AtomValue::Oid(5));
    }
}
