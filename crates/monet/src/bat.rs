//! The Binary Association Table (Figure 2).
//!
//! All data in Monet is stored in BATs: two-column tables whose left column
//! is the *head* and right column the *tail*. Due to the design of its data
//! structure, any BAT can be viewed from two perspectives: its normal form
//! `bat[X,Y]` and the mirror `bat[Y,X]` with head and tail swapped — an
//! operation free of cost (here: two `Arc` clones).

use std::fmt;
use std::sync::Arc;

use crate::atom::{AtomType, AtomValue};
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::props::{ColProps, Props};

/// Search accelerators attached to a BAT (Figure 2 shows them as extra
/// heaps). Intermediate results usually carry none; persistent BATs may
/// carry hash tables and — for tail-sorted attribute BATs — a datavector.
#[derive(Debug, Clone, Default)]
pub struct Accel {
    /// Hash table over head values.
    pub head_hash: Option<Arc<crate::accel::hash::HashIndex>>,
    /// Hash table over tail values.
    pub tail_hash: Option<Arc<crate::accel::hash::HashIndex>>,
    /// Datavector accelerator (Section 5.2); meaningful for `[oid,T]` BATs.
    pub datavector: Option<Arc<crate::accel::datavector::Datavector>>,
}

impl Accel {
    fn mirrored(&self) -> Accel {
        Accel {
            head_hash: self.tail_hash.clone(),
            tail_hash: self.head_hash.clone(),
            // A datavector accelerates oid->value fetches of the normal
            // orientation; it does not transfer to the mirror.
            datavector: None,
        }
    }
}

/// A Binary Association Table.
#[derive(Clone)]
pub struct Bat {
    head: Column,
    tail: Column,
    props: Props,
    accel: Accel,
}

impl Bat {
    /// Construct with no known properties. Panics if the columns disagree
    /// on length (a BUN is always a *pair*).
    pub fn new(head: Column, tail: Column) -> Bat {
        assert_eq!(
            head.len(),
            tail.len(),
            "BAT columns must have equal length ({} vs {})",
            head.len(),
            tail.len()
        );
        let mut props = Props::NONE;
        // Void columns are dense by construction; claim it for free.
        if head.atom_type() == AtomType::Void {
            props.head = ColProps::DENSE;
        }
        if tail.atom_type() == AtomType::Void {
            props.tail = ColProps::DENSE;
        }
        // The encoding fact is ground truth read off the storage (O(1)),
        // never a caller claim — see [`Column::encoding`].
        props.head.enc = head.encoding();
        props.tail.enc = tail.encoding();
        Bat { head, tail, props, accel: Accel::default() }
    }

    /// Construct with caller-supplied properties. The claims are trusted
    /// (operators derive them from propagation rules); `debug_assertions`
    /// builds verify them, mirroring how the kernel "actively guards"
    /// properties (Section 5.1).
    pub fn with_props(head: Column, tail: Column, props: Props) -> Bat {
        let mut b = Bat::new(head, tail);
        // Claims are trusted for the semantic properties, but the encoding
        // fact is overridden with the storage truth: operators don't have
        // to (and must not) reason about which layout their output columns
        // ended up with.
        b.props = Props::new(
            props.head.with_enc(b.head.encoding()),
            props.tail.with_enc(b.tail.encoding()),
        );
        debug_assert!(
            b.validate().is_ok(),
            "property claim violated: {:?}",
            b.validate().unwrap_err()
        );
        b
    }

    /// Construct and *infer* properties by scanning (O(n log n)); used by
    /// loaders and tests, not by operators.
    pub fn with_inferred_props(head: Column, tail: Column) -> Bat {
        let mut b = Bat::new(head, tail);
        b.props = Props::new(
            ColProps {
                sorted: b.head.check_sorted(),
                key: b.head.check_key(),
                dense: b.head.check_dense(),
                enc: b.head.encoding(),
            },
            ColProps {
                sorted: b.tail.check_sorted(),
                key: b.tail.check_key(),
                dense: b.tail.check_dense(),
                enc: b.tail.encoding(),
            },
        );
        b
    }

    /// Build a small BAT from atom pairs (test/helper convenience).
    pub fn from_pairs(
        head_ty: AtomType,
        tail_ty: AtomType,
        pairs: &[(AtomValue, AtomValue)],
    ) -> Bat {
        let head = Column::from_atoms(head_ty, pairs.iter().map(|(h, _)| h.clone()));
        let tail = Column::from_atoms(tail_ty, pairs.iter().map(|(_, t)| t.clone()));
        Bat::with_inferred_props(head, tail)
    }

    pub fn head(&self) -> &Column {
        &self.head
    }

    pub fn tail(&self) -> &Column {
        &self.tail
    }

    pub fn props(&self) -> Props {
        self.props
    }

    pub fn accel(&self) -> &Accel {
        &self.accel
    }

    /// Attach a hash index over the tail column.
    pub fn set_tail_hash(&mut self, h: Arc<crate::accel::hash::HashIndex>) {
        self.accel.tail_hash = Some(h);
    }

    /// Attach a hash index over the head column.
    pub fn set_head_hash(&mut self, h: Arc<crate::accel::hash::HashIndex>) {
        self.accel.head_hash = Some(h);
    }

    /// Attach a datavector accelerator.
    pub fn set_datavector(&mut self, dv: Arc<crate::accel::datavector::Datavector>) {
        self.accel.datavector = Some(dv);
    }

    /// Number of BUNs.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mirror view `bat[Y,X]` — free of cost.
    pub fn mirror(&self) -> Bat {
        Bat {
            head: self.tail.clone(),
            tail: self.head.clone(),
            props: self.props.mirrored(),
            accel: self.accel.mirrored(),
        }
    }

    /// Zero-copy sub-range view; order/key/dense properties survive
    /// windowing, accelerators do not (their positions would be stale).
    pub fn slice(&self, start: usize, len: usize) -> Bat {
        Bat {
            head: self.head.slice(start, len),
            tail: self.tail.slice(start, len),
            props: self.props,
            accel: Accel::default(),
        }
    }

    /// BUN at position `i` as a generic pair.
    pub fn bun(&self, i: usize) -> (AtomValue, AtomValue) {
        (self.head.get(i), self.tail.get(i))
    }

    /// Iterate all BUNs generically (test/debug path).
    pub fn iter(&self) -> impl Iterator<Item = (AtomValue, AtomValue)> + '_ {
        (0..self.len()).map(move |i| self.bun(i))
    }

    /// Two BATs are `synced` when their BUNs correspond by position; the
    /// most common case is that their head columns are exactly identical
    /// (Section 5.1) — which is what shared column identity certifies.
    pub fn synced(&self, other: &Bat) -> bool {
        self.len() == other.len() && self.head.identity() == other.head.identity()
    }

    /// Total heap bytes of both columns.
    pub fn bytes(&self) -> usize {
        self.head.bytes() + self.tail.bytes()
    }

    /// Head/tail atom types as a pair, e.g. `(oid, str)`.
    pub fn signature(&self) -> (AtomType, AtomType) {
        (self.head.atom_type(), self.tail.atom_type())
    }

    /// Verify that every claimed descriptor property actually holds.
    pub fn validate(&self) -> Result<()> {
        let check = |col: &Column, p: ColProps, side: &str| -> Result<()> {
            if p.sorted && !col.check_sorted() {
                return Err(MonetError::InvalidProperties(format!(
                    "{side} claims sorted but is not"
                )));
            }
            if p.key && !col.check_key() {
                return Err(MonetError::InvalidProperties(format!(
                    "{side} claims key but has duplicates"
                )));
            }
            if p.dense && !col.check_dense() {
                return Err(MonetError::InvalidProperties(format!(
                    "{side} claims dense but is not consecutive"
                )));
            }
            if p.enc != crate::props::Enc::None && p.enc != col.encoding() {
                return Err(MonetError::InvalidProperties(format!(
                    "{side} claims encoding {:?} but storage is {:?}",
                    p.enc,
                    col.encoding()
                )));
            }
            Ok(())
        };
        check(&self.head, self.props.head, "head")?;
        check(&self.tail, self.props.tail, "tail")?;
        Ok(())
    }

    /// Render the first `limit` BUNs as a small table (debugging aid,
    /// in the spirit of Figure 2's example BAT).
    pub fn dump(&self, limit: usize) -> String {
        let mut s = format!(
            "BAT[{},{}] {} BUNs (hs:{} hk:{} hd:{} | ts:{} tk:{} td:{})\n",
            self.head.atom_type(),
            self.tail.atom_type(),
            self.len(),
            self.props.head.sorted as u8,
            self.props.head.key as u8,
            self.props.head.dense as u8,
            self.props.tail.sorted as u8,
            self.props.tail.key as u8,
            self.props.tail.dense as u8,
        );
        for i in 0..self.len().min(limit) {
            let (h, t) = self.bun(i);
            s.push_str(&format!("  [ {h}, {t} ]\n"));
        }
        if self.len() > limit {
            s.push_str(&format!("  ... {} more\n", self.len() - limit));
        }
        s
    }
}

impl fmt::Debug for Bat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.dump(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Oid;

    fn name_bat() -> Bat {
        // The Customer_name example of Figure 2.
        let head = Column::from_oids(vec![101, 102, 103, 104]);
        let tail = Column::from_strs(["Annita", "Martin", "Peter", "Annita"]);
        Bat::with_inferred_props(head, tail)
    }

    #[test]
    fn figure2_example() {
        let b = name_bat();
        assert_eq!(b.len(), 4);
        assert_eq!(b.signature(), (AtomType::Oid, AtomType::Str));
        assert!(b.props().head.sorted && b.props().head.key && b.props().head.dense);
        assert!(!b.props().tail.key); // "Annita" occurs twice
        assert_eq!(b.bun(2), (AtomValue::Oid(103), AtomValue::str("Peter")));
    }

    #[test]
    fn mirror_swaps_columns_and_props() {
        let b = name_bat();
        let m = b.mirror();
        assert_eq!(m.signature(), (AtomType::Str, AtomType::Oid));
        assert_eq!(m.bun(0), (AtomValue::str("Annita"), AtomValue::Oid(101)));
        assert!(m.props().tail.dense);
        // mirror of mirror is the original
        let mm = m.mirror();
        assert_eq!(mm.bun(3), b.bun(3));
        assert_eq!(mm.props(), b.props());
    }

    #[test]
    fn synced_by_shared_head() {
        let head = Column::from_oids(vec![1, 2, 3]);
        let a = Bat::new(head.clone(), Column::from_ints(vec![10, 20, 30]));
        let b = Bat::new(head, Column::from_dbls(vec![0.1, 0.2, 0.3]));
        assert!(a.synced(&b));
        let c = Bat::new(Column::from_oids(vec![1, 2, 3]), Column::from_ints(vec![1, 2, 3]));
        assert!(!a.synced(&c)); // equal values, different allocation
    }

    #[test]
    fn slice_preserves_props() {
        let b = name_bat();
        let s = b.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bun(0).0, AtomValue::Oid(102));
        assert!(s.props().head.dense);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bogus_claims() {
        let head = Column::from_oids(vec![3, 1, 2]);
        let tail = Column::from_ints(vec![1, 1, 2]);
        let mut b = Bat::new(head, tail);
        b.props = Props::new(ColProps::SORTED, ColProps::NONE);
        assert!(b.validate().is_err());
        b.props = Props::new(ColProps::NONE, ColProps { key: true, ..ColProps::NONE });
        assert!(b.validate().is_err());
        b.props = Props::NONE;
        assert!(b.validate().is_ok());
    }

    #[test]
    fn void_tail_extent() {
        // The extent[oid,void] of Section 6.
        let ext = Bat::new(Column::from_oids(vec![7, 8, 9]), Column::void(0, 3));
        assert!(ext.props().tail.dense);
        assert_eq!(ext.bun(1), (AtomValue::Oid(8), AtomValue::Oid(1)));
        assert_eq!(ext.tail().bytes(), 0);
    }

    #[test]
    fn from_pairs_helper() {
        let b = Bat::from_pairs(
            AtomType::Oid,
            AtomType::Int,
            &[(AtomValue::Oid(1), AtomValue::Int(5)), (AtomValue::Oid(2), AtomValue::Int(3))],
        );
        assert_eq!(b.len(), 2);
        assert!(b.props().head.key);
        assert!(!b.props().tail.sorted);
        let _ = b.len() as Oid;
    }
}
