//! BAT descriptor properties (Section 5.1).
//!
//! Monet keeps track of properties of permanent and intermediate BATs so
//! that algebraic commands can make a run-time choice between alternative
//! implementations. Each MIL command has a *propagation rule* carrying the
//! properties of its parameters onto its result; the rules live with the
//! operators in [`crate::ops`].

/// Physical encoding fact of a column (see [`crate::enc`]). Unlike
/// `sorted`/`key`/`dense`, this is not a semantic claim about the values —
/// it describes the storage layout, which is why [`crate::bat::Bat`]
/// constructors derive it from the actual column instead of trusting the
/// caller. `None` means "no encoding known", the always-sound default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Enc {
    /// Raw layout, or encoding unknown.
    #[default]
    None,
    /// Order-preserving dictionary codes over the string heap: code order
    /// equals string order, so range predicates map to code ranges.
    Dict,
    /// Frame-of-reference: `base + narrow delta` for int/lng/date.
    For,
    /// Run-length encoding of a sorted column.
    Rle,
}

/// Per-column properties.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColProps {
    /// Values are in ascending (non-strict) order — `ordered(BAT)`.
    pub sorted: bool,
    /// Values contain no duplicates — `key(BAT)`.
    pub key: bool,
    /// Values form a dense consecutive sequence (implies `sorted` and
    /// `key`); true for `void` columns and freshly marked oid ranges.
    pub dense: bool,
    /// Physical encoding of the column storage.
    pub enc: Enc,
}

impl ColProps {
    /// No properties known.
    pub const NONE: ColProps = ColProps { sorted: false, key: false, dense: false, enc: Enc::None };

    /// Sorted + key + dense (void columns, `mark` results).
    pub const DENSE: ColProps = ColProps { sorted: true, key: true, dense: true, enc: Enc::None };

    /// Sorted and duplicate-free.
    pub const SORTED_KEY: ColProps =
        ColProps { sorted: true, key: true, dense: false, enc: Enc::None };

    /// Sorted, possibly with duplicates.
    pub const SORTED: ColProps =
        ColProps { sorted: true, key: false, dense: false, enc: Enc::None };

    /// Duplicate-free, unordered.
    pub const KEY: ColProps = ColProps { sorted: false, key: true, dense: false, enc: Enc::None };

    /// Normalize: dense implies sorted and key.
    pub fn normalized(mut self) -> ColProps {
        if self.dense {
            self.sorted = true;
            self.key = true;
        }
        self
    }

    /// This column layout claim with a different encoding fact.
    pub fn with_enc(mut self, enc: Enc) -> ColProps {
        self.enc = enc;
        self
    }

    /// Intersection of guarantees (safe weakening when merging unknowns).
    pub fn and(self, other: ColProps) -> ColProps {
        ColProps {
            sorted: self.sorted && other.sorted,
            key: self.key && other.key,
            dense: self.dense && other.dense,
            enc: if self.enc == other.enc { self.enc } else { Enc::None },
        }
    }

    /// Claim subsumption: every property claimed here is also claimed by
    /// `stronger`. This is the soundness order of the plan optimizer's
    /// static inference — a plan-time prediction must `implies` whatever
    /// the kernel derives (or a scan verifies) at run time. Claiming a
    /// specific encoding requires `stronger` to carry the same one;
    /// `Enc::None` claims nothing.
    pub fn implies(self, stronger: ColProps) -> bool {
        (!self.sorted || stronger.sorted)
            && (!self.key || stronger.key)
            && (!self.dense || stronger.dense)
            && (self.enc == Enc::None || stronger.enc == self.enc)
    }
}

/// Properties of a BAT: head column and tail column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Props {
    pub head: ColProps,
    pub tail: ColProps,
}

impl Props {
    /// Nothing known about either column.
    pub const NONE: Props = Props { head: ColProps::NONE, tail: ColProps::NONE };

    pub fn new(head: ColProps, tail: ColProps) -> Props {
        Props { head: head.normalized(), tail: tail.normalized() }
    }

    /// The mirrored BAT swaps the column roles — and so swaps the
    /// properties (part of `mirror`'s propagation rule).
    pub fn mirrored(self) -> Props {
        Props { head: self.tail, tail: self.head }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_normalizes() {
        let p = ColProps { dense: true, ..ColProps::NONE }.normalized();
        assert!(p.sorted && p.key && p.dense);
    }

    #[test]
    fn mirror_swaps() {
        let p = Props::new(ColProps::DENSE, ColProps::SORTED);
        let m = p.mirrored();
        assert_eq!(m.head, ColProps::SORTED);
        assert_eq!(m.tail, ColProps::DENSE);
        assert_eq!(m.mirrored(), p);
    }

    #[test]
    fn and_weakens() {
        let a = ColProps::SORTED_KEY;
        let b = ColProps::SORTED;
        let c = a.and(b);
        assert!(c.sorted && !c.key && !c.dense);
    }

    #[test]
    fn implies_is_the_soundness_order() {
        assert!(ColProps::NONE.implies(ColProps::DENSE));
        assert!(ColProps::SORTED.implies(ColProps::SORTED_KEY));
        assert!(!ColProps::SORTED_KEY.implies(ColProps::SORTED));
        assert!(!ColProps::DENSE.implies(ColProps::SORTED_KEY));
        assert!(ColProps::DENSE.implies(ColProps::DENSE));
        // `and` of two claims implies both.
        let a = ColProps::SORTED_KEY;
        let b = ColProps::SORTED;
        assert!(a.and(b).implies(a) && a.and(b).implies(b));
    }
}
