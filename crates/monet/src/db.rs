//! The persistent BAT catalog.
//!
//! A loaded database is a set of named BATs (the vertical decomposition of
//! the MOA classes, Figure 3) plus their accelerators. The catalog is what
//! MIL `load` statements resolve against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::bat::Bat;
use crate::error::{MonetError, Result};

static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

/// Named collection of persistent BATs.
///
/// Every catalog carries a process-unique `id` and a monotonically
/// increasing `epoch` that bumps on any mutation reachable through the
/// catalog (`register`, and `get_mut` — which hands out the hook used to
/// attach accelerators, so a plan's pinned algorithm choices may depend
/// on state changed through it). Plan caches key on `(id, epoch)`, so a
/// catalog change silently invalidates every plan compiled against the
/// old state.
pub struct Db {
    bats: BTreeMap<String, Bat>,
    id: u64,
    epoch: u64,
}

impl Default for Db {
    fn default() -> Db {
        Db::new()
    }
}

impl Db {
    pub fn new() -> Db {
        Db { bats: BTreeMap::new(), id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed), epoch: 0 }
    }

    /// Process-unique identity of this catalog (plan-cache key part).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Mutation counter: bumps whenever the catalog's contents may have
    /// changed (plan-cache key part).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Register (or replace) a persistent BAT under `name`.
    pub fn register(&mut self, name: &str, bat: Bat) {
        self.epoch += 1;
        self.bats.insert(name.to_string(), bat);
    }

    /// Look up a BAT by name.
    pub fn get(&self, name: &str) -> Result<&Bat> {
        self.bats.get(name).ok_or_else(|| MonetError::UnknownName(name.to_string()))
    }

    /// Mutable access, for attaching accelerators after load.
    ///
    /// Accelerators feed the optimizer's property inference (e.g.
    /// datavector provenance), so handing out mutable access counts as a
    /// potential catalog change and bumps the epoch.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Bat> {
        self.epoch += 1;
        self.bats.get_mut(name).ok_or_else(|| MonetError::UnknownName(name.to_string()))
    }

    /// Re-encode the tail of a registered BAT into a compressed layout
    /// (see [`crate::column::Column::encode`]); `sorted` unlocks RLE when
    /// the caller knows the tail ascends. No-op (and no epoch bump) when no
    /// encoding pays off. A successful re-encode replaces the stored BAT
    /// and goes through [`register`](Db::register), so the epoch bumps and
    /// every plan compiled against the raw layout — including pinned
    /// algorithm choices that depended on it — is silently invalidated.
    pub fn reencode_tail(&mut self, name: &str, sorted: bool) -> Result<bool> {
        let bat = self.get(name)?;
        let enc = bat.tail().encode(sorted);
        if enc.encoding() == crate::props::Enc::None {
            return Ok(false);
        }
        let props = bat.props();
        let replacement = Bat::with_props(bat.head().clone(), enc, props);
        self.register(name, replacement);
        Ok(true)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.bats.contains_key(name)
    }

    /// Iterate all (name, BAT) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Bat)> {
        self.bats.iter().map(|(n, b)| (n.as_str(), b))
    }

    pub fn len(&self) -> usize {
        self.bats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bats.is_empty()
    }

    /// Total base-data bytes (column heaps, without accelerators).
    pub fn bytes(&self) -> usize {
        self.bats.values().map(Bat::bytes).sum()
    }

    /// Total datavector bytes (Figure 9 reports them separately: "300MB in
    /// data vectors, 1.3GB as base data").
    pub fn datavector_bytes(&self) -> usize {
        self.bats.values().filter_map(|b| b.accel().datavector.as_ref()).map(|dv| dv.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn register_and_lookup() {
        let mut db = Db::new();
        db.register(
            "Supplier_name",
            Bat::new(Column::from_oids(vec![1]), Column::from_strs(["Acme"])),
        );
        assert!(db.contains("Supplier_name"));
        assert_eq!(db.get("Supplier_name").unwrap().len(), 1);
        assert!(db.get("Supplier_phone").is_err());
        assert_eq!(db.len(), 1);
        assert!(db.bytes() > 0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut db = Db::new();
        for name in ["b", "a", "c"] {
            db.register(name, Bat::new(Column::void(0, 0), Column::void(0, 0)));
        }
        let names: Vec<&str> = db.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
