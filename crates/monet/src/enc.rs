//! The `FLATALG_ENC` knob: whether loaders build encoded column layouts.
//!
//! Encoding is a *load-time* decision — kernels always accept whatever
//! layout a column carries (see [`crate::typed::TypedSlice`]) — so one
//! process-wide switch plus a scoped per-thread override is enough. With
//! `FLATALG_ENC=0` the tpcd loader reproduces the raw layouts byte for
//! byte, which is the encodings-off oracle leg of the acceptance suite.

use std::sync::OnceLock;

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// The effective setting: the scoped override of [`with_enc`] if set, else
/// `FLATALG_ENC` (`0` disables; anything else — including unset — enables).
/// Parsed once per process, like every other `FLATALG_*` knob.
pub fn enc_enabled() -> bool {
    if let Some(e) = OVERRIDE.with(|c| c.get()) {
        return e;
    }
    *ENV_ENABLED.get_or_init(|| !matches!(std::env::var("FLATALG_ENC"), Ok(v) if v.trim() == "0"))
}

/// Run `f` with encodings scoped on or off on this thread. Restores the
/// previous setting on exit — panic-safe — and never touches the process
/// environment, so concurrent tests can sweep both legs without racing
/// (the same contract as [`crate::mil::opt::with_opt_config`]).
pub fn with_enc<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    OVERRIDE.with(|c| c.set(Some(enabled)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_scopes_and_restores() {
        let ambient = enc_enabled();
        with_enc(false, || {
            assert!(!enc_enabled());
            with_enc(true, || assert!(enc_enabled()));
            assert!(!enc_enabled());
        });
        assert_eq!(enc_enabled(), ambient);
    }
}
