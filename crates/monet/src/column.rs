//! Typed, immutable, `Arc`-shared column arrays.
//!
//! A BAT (Figure 2) stores its BUNs in dense array-like heaps. This module
//! provides the per-type heap representation. Columns are immutable and
//! cheaply cloneable; `mirror` and zero-copy slicing are what make the MIL
//! commands `mirror` and sorted-range selection "operations free of cost".
//!
//! Every distinct column allocation carries a [`ColumnId`]; two BATs are
//! *synced* (Section 5.1) when their head columns have the same identity —
//! the kernel can then use positional algorithms.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

use crate::atom::{AtomType, AtomValue, Date, Oid};
use crate::buf::Buf;
use crate::props::Enc;
use crate::strheap::{StrHeapBuilder, StrVec};

/// Unique identity of a column allocation, used for `synced` detection and
/// as the pager's heap identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u64);

static NEXT_COLUMN_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_column_id() -> ColumnId {
    ColumnId(NEXT_COLUMN_ID.fetch_add(1, AtomicOrdering::Relaxed))
}

/// The typed storage of a column.
#[derive(Debug, Clone)]
pub enum ColumnVals {
    /// Virtual dense sequence starting at `seq`: value at position `i` is
    /// `seq + i`. Occupies zero bytes (the paper's `void` type).
    Void {
        seq: Oid,
    },
    Oid(Arc<Buf<Oid>>),
    Bool(Arc<Buf<bool>>),
    Chr(Arc<Buf<u8>>),
    Int(Arc<Buf<i32>>),
    Lng(Arc<Buf<i64>>),
    Dbl(Arc<Buf<f64>>),
    Str(StrVec),
    Date(Arc<Buf<i32>>),
    /// Order-preserving dictionary codes over a sorted, duplicate-free
    /// string dictionary: code order equals string order.
    DictStr(Arc<DictStrData>),
    /// Frame-of-reference int/date storage: `base + narrow delta`.
    ForInt(Arc<ForIntData>),
    /// Frame-of-reference lng storage.
    ForLng(Arc<ForLngData>),
    /// Run-length encoding (sorted columns): run values + cumulative ends.
    Rle(Arc<RleData>),
}

/// Per-row dictionary codes at the narrowest width the dictionary size
/// allows. The width reduction is what makes dict encoding pay on columns
/// whose raw heap is already deduplicated (the loader's): u32 codes would
/// merely mirror the raw offset array, u8/u16 codes shrink it 4x/2x.
#[derive(Debug)]
pub(crate) enum DictCodes {
    W8(Buf<u8>),
    W16(Buf<u16>),
    W32(Buf<u32>),
}

impl DictCodes {
    fn len(&self) -> usize {
        match self {
            DictCodes::W8(v) => v.len(),
            DictCodes::W16(v) => v.len(),
            DictCodes::W32(v) => v.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            DictCodes::W8(v) => v[i] as usize,
            DictCodes::W16(v) => v[i] as usize,
            DictCodes::W32(v) => v[i] as usize,
        }
    }

    /// Physical bytes per code.
    fn width(&self) -> usize {
        match self {
            DictCodes::W8(_) => 1,
            DictCodes::W16(_) => 2,
            DictCodes::W32(_) => 4,
        }
    }

    /// Narrowest width able to hold codes `0..dict_len`.
    pub(crate) fn width_for(dict_len: usize) -> usize {
        if dict_len <= 1 << 8 {
            1
        } else if dict_len <= 1 << 16 {
            2
        } else {
            4
        }
    }
}

/// Dictionary-encoded string storage. The dictionary is a sorted,
/// duplicate-free [`StrVec`]; per-row narrow codes index into it, so the
/// encoding is *order-preserving*: comparing codes compares strings.
#[derive(Debug)]
pub struct DictStrData {
    codes: DictCodes,
    dict: StrVec,
    /// Lazy raw decode (`dict.gather(codes)`); shares the dictionary's
    /// byte heap, so the cache costs only the rebuilt offset arrays.
    decoded: OnceLock<StrVec>,
}

impl DictStrData {
    /// Assemble from pre-built parts (the store's open path).
    pub(crate) fn from_parts(codes: DictCodes, dict: StrVec) -> DictStrData {
        DictStrData { codes, dict, decoded: OnceLock::new() }
    }

    #[inline]
    fn code(&self, i: usize) -> usize {
        self.codes.get(i)
    }

    fn decoded(&self) -> &StrVec {
        self.decoded.get_or_init(|| {
            let wide: Vec<u32> = (0..self.codes.len()).map(|i| self.code(i) as u32).collect();
            self.dict.gather(&wide)
        })
    }
}

#[derive(Debug)]
pub(crate) enum ForIntDeltas {
    W8(Buf<u8>),
    W16(Buf<u16>),
}

/// Frame-of-reference storage for `int`/`date` columns: the minimum as the
/// frame base plus one narrow unsigned delta per row.
#[derive(Debug)]
pub struct ForIntData {
    base: i32,
    deltas: ForIntDeltas,
    /// Day-count dates share the `i32` representation (see
    /// [`crate::typed`]: `&[i32]` backs both `int` and `date`).
    date: bool,
    decoded: OnceLock<Arc<Buf<i32>>>,
}

impl ForIntData {
    /// Assemble from pre-built parts (the store's open path).
    pub(crate) fn from_parts(base: i32, deltas: ForIntDeltas, date: bool) -> ForIntData {
        ForIntData { base, deltas, date, decoded: OnceLock::new() }
    }

    fn len(&self) -> usize {
        match &self.deltas {
            ForIntDeltas::W8(v) => v.len(),
            ForIntDeltas::W16(v) => v.len(),
        }
    }

    #[inline]
    fn value(&self, i: usize) -> i32 {
        match &self.deltas {
            ForIntDeltas::W8(v) => self.base + v[i] as i32,
            ForIntDeltas::W16(v) => self.base + v[i] as i32,
        }
    }

    fn width(&self) -> usize {
        match &self.deltas {
            ForIntDeltas::W8(_) => 1,
            ForIntDeltas::W16(_) => 2,
        }
    }

    fn decoded(&self) -> &Arc<Buf<i32>> {
        self.decoded.get_or_init(|| Arc::new((0..self.len()).map(|i| self.value(i)).collect()))
    }
}

#[derive(Debug)]
pub(crate) enum ForLngDeltas {
    W8(Buf<u8>),
    W16(Buf<u16>),
    W32(Buf<u32>),
}

/// Frame-of-reference storage for `lng` columns.
#[derive(Debug)]
pub struct ForLngData {
    base: i64,
    deltas: ForLngDeltas,
    decoded: OnceLock<Arc<Buf<i64>>>,
}

impl ForLngData {
    /// Assemble from pre-built parts (the store's open path).
    pub(crate) fn from_parts(base: i64, deltas: ForLngDeltas) -> ForLngData {
        ForLngData { base, deltas, decoded: OnceLock::new() }
    }

    fn len(&self) -> usize {
        match &self.deltas {
            ForLngDeltas::W8(v) => v.len(),
            ForLngDeltas::W16(v) => v.len(),
            ForLngDeltas::W32(v) => v.len(),
        }
    }

    #[inline]
    fn value(&self, i: usize) -> i64 {
        match &self.deltas {
            ForLngDeltas::W8(v) => self.base + v[i] as i64,
            ForLngDeltas::W16(v) => self.base + v[i] as i64,
            ForLngDeltas::W32(v) => self.base + v[i] as i64,
        }
    }

    fn width(&self) -> usize {
        match &self.deltas {
            ForLngDeltas::W8(_) => 1,
            ForLngDeltas::W16(_) => 2,
            ForLngDeltas::W32(_) => 4,
        }
    }

    fn decoded(&self) -> &Arc<Buf<i64>> {
        self.decoded.get_or_init(|| Arc::new((0..self.len()).map(|i| self.value(i)).collect()))
    }
}

/// Run-length storage: one value per run (a raw column of the logical
/// type) plus cumulative exclusive run ends. There is no RLE kernel
/// variant — [`Column::typed`] resolves RLE windows through the cached
/// decode, so every kernel runs on it transparently; the physical layout
/// only pays off in storage and load accounting.
#[derive(Debug)]
pub struct RleData {
    /// Cumulative run ends (exclusive); `ends.last() == total rows`.
    ends: Buf<u32>,
    /// Run values, a raw column (`off == 0`) of the logical atom type.
    vals: Column,
    decoded: OnceLock<Column>,
}

impl RleData {
    /// Assemble from pre-built parts (the store's open path). `ends` must
    /// be non-decreasing and `vals.len()` must equal `ends.len()` — the
    /// store validates before constructing.
    pub(crate) fn from_parts(ends: Buf<u32>, vals: Column) -> RleData {
        RleData { ends, vals, decoded: OnceLock::new() }
    }

    fn rows(&self) -> usize {
        self.ends.last().copied().unwrap_or(0) as usize
    }

    /// Index of the run containing row `i`.
    #[inline]
    fn run_of(&self, i: usize) -> usize {
        self.ends.partition_point(|&e| e as usize <= i)
    }

    fn decoded(&self) -> &Column {
        self.decoded.get_or_init(|| {
            let mut idx: Vec<u32> = Vec::with_capacity(self.rows());
            let mut at = 0u32;
            for (r, &e) in self.ends.iter().enumerate() {
                for _ in at..e {
                    idx.push(r as u32);
                }
                at = e;
            }
            self.vals.gather(&idx)
        })
    }
}

/// An immutable column: shared storage plus a `[off, off+len)` view window.
///
/// Slicing produces a new `Column` sharing the same storage; the identity
/// triple `(id, off, len)` distinguishes views for synced-ness.
#[derive(Debug, Clone)]
pub struct Column {
    vals: ColumnVals,
    id: ColumnId,
    off: usize,
    len: usize,
}

/// Identity of a column *view*: storage id plus window. Two synced columns
/// expose identical values at identical positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnIdentity {
    pub id: ColumnId,
    pub off: usize,
    pub len: usize,
}

impl Column {
    pub(crate) fn new(vals: ColumnVals, len: usize) -> Column {
        Column { vals, id: fresh_column_id(), off: 0, len }
    }

    /// Dense void column (`[void]`), the zero-space tail of extent BATs.
    pub fn void(seq: Oid, len: usize) -> Column {
        Column::new(ColumnVals::Void { seq }, len)
    }

    pub fn from_oids(v: Vec<Oid>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Oid(Arc::new(v.into())), len)
    }

    pub fn from_bools(v: Vec<bool>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Bool(Arc::new(v.into())), len)
    }

    pub fn from_chrs(v: Vec<u8>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Chr(Arc::new(v.into())), len)
    }

    pub fn from_ints(v: Vec<i32>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Int(Arc::new(v.into())), len)
    }

    pub fn from_lngs(v: Vec<i64>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Lng(Arc::new(v.into())), len)
    }

    pub fn from_dbls(v: Vec<f64>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Dbl(Arc::new(v.into())), len)
    }

    pub fn from_dates(v: Vec<Date>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Date(Arc::new(v.into_iter().map(|d| d.0).collect())), len)
    }

    pub fn from_date_days(v: Vec<i32>) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Date(Arc::new(v.into())), len)
    }

    pub fn from_strvec(v: StrVec) -> Column {
        let len = v.len();
        Column::new(ColumnVals::Str(v), len)
    }

    pub fn from_strs<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Column {
        let mut b = StrHeapBuilder::new();
        for s in items {
            b.push(s.as_ref());
        }
        Column::from_strvec(b.finish())
    }

    /// Build a column of the given type from generic atom values. Values
    /// must all match `ty` (void accepts oids and becomes a materialized oid
    /// column when non-dense).
    pub fn from_atoms(ty: AtomType, items: impl IntoIterator<Item = AtomValue>) -> Column {
        match ty {
            AtomType::Void | AtomType::Oid => Column::from_oids(
                items.into_iter().map(|v| v.as_oid().expect("oid-typed atom")).collect(),
            ),
            AtomType::Bool => Column::from_bools(
                items
                    .into_iter()
                    .map(|v| match v {
                        AtomValue::Bool(b) => b,
                        other => panic!("expected bool, got {other:?}"),
                    })
                    .collect(),
            ),
            AtomType::Chr => Column::from_chrs(
                items
                    .into_iter()
                    .map(|v| match v {
                        AtomValue::Chr(c) => c,
                        other => panic!("expected chr, got {other:?}"),
                    })
                    .collect(),
            ),
            AtomType::Int => Column::from_ints(
                items
                    .into_iter()
                    .map(|v| match v {
                        AtomValue::Int(i) => i,
                        other => panic!("expected int, got {other:?}"),
                    })
                    .collect(),
            ),
            AtomType::Lng => Column::from_lngs(
                items
                    .into_iter()
                    .map(|v| match v {
                        AtomValue::Lng(i) => i,
                        other => panic!("expected lng, got {other:?}"),
                    })
                    .collect(),
            ),
            AtomType::Dbl => Column::from_dbls(
                items
                    .into_iter()
                    .map(|v| match v {
                        AtomValue::Dbl(d) => d,
                        other => panic!("expected dbl, got {other:?}"),
                    })
                    .collect(),
            ),
            AtomType::Date => Column::from_date_days(
                items
                    .into_iter()
                    .map(|v| match v {
                        AtomValue::Date(d) => d.0,
                        other => panic!("expected date, got {other:?}"),
                    })
                    .collect(),
            ),
            AtomType::Str => {
                let mut b = StrHeapBuilder::new();
                for v in items {
                    match v {
                        AtomValue::Str(s) => b.push(&s),
                        other => panic!("expected str, got {other:?}"),
                    }
                }
                Column::from_strvec(b.finish())
            }
        }
    }

    /// The atom type stored in this column.
    pub fn atom_type(&self) -> AtomType {
        match &self.vals {
            ColumnVals::Void { .. } => AtomType::Void,
            ColumnVals::Oid(_) => AtomType::Oid,
            ColumnVals::Bool(_) => AtomType::Bool,
            ColumnVals::Chr(_) => AtomType::Chr,
            ColumnVals::Int(_) => AtomType::Int,
            ColumnVals::Lng(_) => AtomType::Lng,
            ColumnVals::Dbl(_) => AtomType::Dbl,
            ColumnVals::Str(_) => AtomType::Str,
            ColumnVals::Date(_) => AtomType::Date,
            ColumnVals::DictStr(_) => AtomType::Str,
            ColumnVals::ForInt(f) => {
                if f.date {
                    AtomType::Date
                } else {
                    AtomType::Int
                }
            }
            ColumnVals::ForLng(_) => AtomType::Lng,
            ColumnVals::Rle(r) => r.vals.atom_type(),
        }
    }

    /// The physical encoding of this column's storage (`Enc::None` for the
    /// raw layouts). An O(1) storage fact, not a semantic claim — which is
    /// why [`crate::bat::Bat`] derives the `enc` property from it instead
    /// of trusting callers.
    pub fn encoding(&self) -> Enc {
        match &self.vals {
            ColumnVals::DictStr(_) => Enc::Dict,
            ColumnVals::ForInt(_) | ColumnVals::ForLng(_) => Enc::For,
            ColumnVals::Rle(_) => Enc::Rle,
            _ => Enc::None,
        }
    }

    /// Oid-compatible view: both `oid` and `void` columns yield oids.
    pub fn is_oidlike(&self) -> bool {
        matches!(self.atom_type(), AtomType::Oid | AtomType::Void)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Identity of this view (storage + window); equal identities imply
    /// positionally identical values, the basis of the `synced` property.
    pub fn identity(&self) -> ColumnIdentity {
        ColumnIdentity { id: self.id, off: self.off, len: self.len }
    }

    /// Storage identity, ignoring the view window (pager heap id).
    pub fn storage_id(&self) -> ColumnId {
        self.id
    }

    /// Window `(offset, length)` into the shared storage, used by the pager
    /// to compute byte addresses.
    pub(crate) fn window(&self) -> (usize, usize) {
        (self.off, self.len)
    }

    /// Zero-copy sub-window view: shares the storage (`ColumnVals` clones
    /// are `Arc` bumps) and keeps the storage id, so slices of synced
    /// columns remain comparable — the window tells them apart.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        assert!(start + len <= self.len, "slice out of bounds");
        Column { vals: self.vals.clone(), id: self.id, off: self.off + start, len }
    }

    /// Generic accessor. Allocates for strings; bulk code should prefer the
    /// typed slice accessors.
    pub fn get(&self, i: usize) -> AtomValue {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let j = self.off + i;
        match &self.vals {
            ColumnVals::Void { seq } => AtomValue::Oid(seq + j as Oid),
            ColumnVals::Oid(v) => AtomValue::Oid(v[j]),
            ColumnVals::Bool(v) => AtomValue::Bool(v[j]),
            ColumnVals::Chr(v) => AtomValue::Chr(v[j]),
            ColumnVals::Int(v) => AtomValue::Int(v[j]),
            ColumnVals::Lng(v) => AtomValue::Lng(v[j]),
            ColumnVals::Dbl(v) => AtomValue::Dbl(v[j]),
            ColumnVals::Str(v) => AtomValue::Str(v.get(j).into()),
            ColumnVals::Date(v) => AtomValue::Date(Date(v[j])),
            ColumnVals::DictStr(d) => AtomValue::Str(d.dict.get(d.code(j)).into()),
            ColumnVals::ForInt(f) => {
                if f.date {
                    AtomValue::Date(Date(f.value(j)))
                } else {
                    AtomValue::Int(f.value(j))
                }
            }
            ColumnVals::ForLng(f) => AtomValue::Lng(f.value(j)),
            ColumnVals::Rle(r) => r.vals.get(r.run_of(j)),
        }
    }

    /// Oid at position `i`; works for both `oid` and `void` columns.
    pub fn oid_at(&self, i: usize) -> Oid {
        debug_assert!(i < self.len);
        let j = self.off + i;
        match &self.vals {
            ColumnVals::Void { seq } => seq + j as Oid,
            ColumnVals::Oid(v) => v[j],
            other => panic!("oid_at on {:?} column", type_of(other)),
        }
    }

    pub fn int_at(&self, i: usize) -> i32 {
        match &self.vals {
            ColumnVals::Int(v) => v[self.off + i],
            ColumnVals::ForInt(f) if !f.date => f.value(self.off + i),
            ColumnVals::Rle(r) if r.vals.atom_type() == AtomType::Int => {
                r.vals.int_at(r.run_of(self.off + i))
            }
            other => panic!("int_at on {:?} column", type_of(other)),
        }
    }

    pub fn lng_at(&self, i: usize) -> i64 {
        match &self.vals {
            ColumnVals::Lng(v) => v[self.off + i],
            ColumnVals::ForLng(f) => f.value(self.off + i),
            ColumnVals::Rle(r) if r.vals.atom_type() == AtomType::Lng => {
                r.vals.lng_at(r.run_of(self.off + i))
            }
            other => panic!("lng_at on {:?} column", type_of(other)),
        }
    }

    pub fn dbl_at(&self, i: usize) -> f64 {
        match &self.vals {
            ColumnVals::Dbl(v) => v[self.off + i],
            other => panic!("dbl_at on {:?} column", type_of(other)),
        }
    }

    pub fn chr_at(&self, i: usize) -> u8 {
        match &self.vals {
            ColumnVals::Chr(v) => v[self.off + i],
            other => panic!("chr_at on {:?} column", type_of(other)),
        }
    }

    pub fn bool_at(&self, i: usize) -> bool {
        match &self.vals {
            ColumnVals::Bool(v) => v[self.off + i],
            other => panic!("bool_at on {:?} column", type_of(other)),
        }
    }

    pub fn date_at(&self, i: usize) -> Date {
        match &self.vals {
            ColumnVals::Date(v) => Date(v[self.off + i]),
            ColumnVals::ForInt(f) if f.date => Date(f.value(self.off + i)),
            ColumnVals::Rle(r) if r.vals.atom_type() == AtomType::Date => {
                r.vals.date_at(r.run_of(self.off + i))
            }
            other => panic!("date_at on {:?} column", type_of(other)),
        }
    }

    pub fn str_at(&self, i: usize) -> &str {
        match &self.vals {
            ColumnVals::Str(v) => v.get(self.off + i),
            ColumnVals::DictStr(d) => d.dict.get(d.code(self.off + i)),
            other => panic!("str_at on {:?} column", type_of(other)),
        }
    }

    /// Resolve this window to a [`crate::typed::TypedSlice`] **once** — the
    /// entry point of the dispatch-once kernel layer (see [`crate::typed`]
    /// and the `for_each_typed!` family of macros). Bulk code must prefer
    /// this over the per-element `get`/`cmp_at`/`hash_at` accessors.
    pub fn typed(&self) -> crate::typed::TypedSlice<'_> {
        typed_vals(&self.vals, self.off, self.len)
    }

    /// Typed whole-window slice for fixed-width types (None for void/str).
    pub fn as_oid_slice(&self) -> Option<&[Oid]> {
        match &self.vals {
            ColumnVals::Oid(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    pub fn as_int_slice(&self) -> Option<&[i32]> {
        match &self.vals {
            ColumnVals::Int(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    pub fn as_lng_slice(&self) -> Option<&[i64]> {
        match &self.vals {
            ColumnVals::Lng(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    pub fn as_dbl_slice(&self) -> Option<&[f64]> {
        match &self.vals {
            ColumnVals::Dbl(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    pub fn as_chr_slice(&self) -> Option<&[u8]> {
        match &self.vals {
            ColumnVals::Chr(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    pub fn as_bool_slice(&self) -> Option<&[bool]> {
        match &self.vals {
            ColumnVals::Bool(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    pub fn as_date_slice(&self) -> Option<&[i32]> {
        match &self.vals {
            ColumnVals::Date(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// String storage view, if this is a string column.
    pub fn as_strvec(&self) -> Option<StrVecView<'_>> {
        match &self.vals {
            ColumnVals::Str(v) => Some(StrVecView { sv: v, off: self.off, len: self.len }),
            _ => None,
        }
    }

    /// The dense start for void columns.
    pub fn void_seq(&self) -> Option<Oid> {
        match &self.vals {
            ColumnVals::Void { seq } => Some(seq + self.off as Oid),
            _ => None,
        }
    }

    /// Compare values at positions `i` (self) and `j` (other). Columns must
    /// hold the same atom type (oid/void interoperate).
    pub fn cmp_at(&self, i: usize, other: &Column, j: usize) -> Ordering {
        use ColumnVals::*;
        if self.encoding() != Enc::None || other.encoding() != Enc::None {
            // Generic comparisons route through the cached decode; bulk
            // code reaches encoded layouts through the typed kernels.
            return self.decoded().cmp_at(i, &other.decoded(), j);
        }
        match (&self.vals, &other.vals) {
            (Int(a), Int(b)) => a[self.off + i].cmp(&b[other.off + j]),
            (Lng(a), Lng(b)) => a[self.off + i].cmp(&b[other.off + j]),
            (Dbl(a), Dbl(b)) => a[self.off + i].total_cmp(&b[other.off + j]),
            (Chr(a), Chr(b)) => a[self.off + i].cmp(&b[other.off + j]),
            (Bool(a), Bool(b)) => a[self.off + i].cmp(&b[other.off + j]),
            (Date(a), Date(b)) => a[self.off + i].cmp(&b[other.off + j]),
            (Str(a), Str(b)) => a.get(self.off + i).cmp(b.get(other.off + j)),
            _ if self.is_oidlike() && other.is_oidlike() => self.oid_at(i).cmp(&other.oid_at(j)),
            _ => {
                panic!("cmp_at on mixed column types {} vs {}", self.atom_type(), other.atom_type())
            }
        }
    }

    /// Compare the value at position `i` against a scalar of the same type.
    pub fn cmp_val(&self, i: usize, v: &AtomValue) -> Ordering {
        use ColumnVals::*;
        if self.encoding() != Enc::None {
            return self.decoded().cmp_val(i, v);
        }
        match (&self.vals, v) {
            (Int(a), AtomValue::Int(b)) => a[self.off + i].cmp(b),
            (Lng(a), AtomValue::Lng(b)) => a[self.off + i].cmp(b),
            (Dbl(a), AtomValue::Dbl(b)) => a[self.off + i].total_cmp(b),
            (Chr(a), AtomValue::Chr(b)) => a[self.off + i].cmp(b),
            (Bool(a), AtomValue::Bool(b)) => a[self.off + i].cmp(b),
            (Date(a), AtomValue::Date(b)) => crate::atom::Date(a[self.off + i]).cmp(b),
            (Str(a), AtomValue::Str(b)) => a.get(self.off + i).cmp(&**b),
            _ if self.is_oidlike() && v.as_oid().is_some() => {
                self.oid_at(i).cmp(&v.as_oid().unwrap())
            }
            _ => panic!("cmp_val on mixed types {} vs {}", self.atom_type(), v.atom_type()),
        }
    }

    /// Equality of values at positions `i` (self) and `j` (other).
    pub fn eq_at(&self, i: usize, other: &Column, j: usize) -> bool {
        self.cmp_at(i, other, j) == Ordering::Equal
    }

    /// 64-bit hash of the value at `i`, suitable for hash joins. Equal
    /// values (per `cmp_at == Equal`) hash equally, including oid vs void.
    pub fn hash_at(&self, i: usize) -> u64 {
        use ColumnVals::*;
        let j = self.off + i;
        match &self.vals {
            Void { seq } => fxhash64(seq + j as u64),
            Oid(v) => fxhash64(v[j]),
            Bool(v) => fxhash64(v[j] as u64),
            Chr(v) => fxhash64(v[j] as u64),
            Int(v) => fxhash64(v[j] as u64),
            Lng(v) => fxhash64(v[j] as u64),
            Dbl(v) => fxhash64(v[j].to_bits()),
            Date(v) => fxhash64(v[j] as u64),
            Str(v) => fnv1a(v.get(j).as_bytes()),
            DictStr(d) => fnv1a(d.dict.get(d.code(j)).as_bytes()),
            ForInt(f) => fxhash64(f.value(j) as u64),
            ForLng(f) => fxhash64(f.value(j) as u64),
            Rle(r) => r.vals.hash_at(r.run_of(j)),
        }
    }

    /// Materialize the values selected by `idx` (in order) into a fresh
    /// column. Void columns materialize into oid columns.
    pub fn gather(&self, idx: &[u32]) -> Column {
        use ColumnVals::*;
        match &self.vals {
            Void { seq } => Column::from_oids(
                idx.iter().map(|&i| seq + (self.off + i as usize) as u64).collect(),
            ),
            Oid(v) => Column::from_oids(idx.iter().map(|&i| v[self.off + i as usize]).collect()),
            Bool(v) => Column::from_bools(idx.iter().map(|&i| v[self.off + i as usize]).collect()),
            Chr(v) => Column::from_chrs(idx.iter().map(|&i| v[self.off + i as usize]).collect()),
            Int(v) => Column::from_ints(idx.iter().map(|&i| v[self.off + i as usize]).collect()),
            Lng(v) => Column::from_lngs(idx.iter().map(|&i| v[self.off + i as usize]).collect()),
            Dbl(v) => Column::from_dbls(idx.iter().map(|&i| v[self.off + i as usize]).collect()),
            Date(v) => {
                Column::from_date_days(idx.iter().map(|&i| v[self.off + i as usize]).collect())
            }
            Str(v) => {
                let adjusted: Vec<u32> =
                    idx.iter().map(|&i| (self.off + i as usize) as u32).collect();
                Column::from_strvec(v.gather(&adjusted))
            }
            DictStr(d) => {
                // Gather the codes at their width; the dictionary is shared
                // untouched, so the result stays dict-encoded (and
                // order-preserving).
                let codes = match &d.codes {
                    DictCodes::W8(v) => {
                        DictCodes::W8(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                    DictCodes::W16(v) => {
                        DictCodes::W16(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                    DictCodes::W32(v) => {
                        DictCodes::W32(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                };
                let len = codes.len();
                Column::new(
                    ColumnVals::DictStr(Arc::new(DictStrData {
                        codes,
                        dict: d.dict.clone(),
                        decoded: OnceLock::new(),
                    })),
                    len,
                )
            }
            ForInt(f) => {
                let deltas = match &f.deltas {
                    ForIntDeltas::W8(v) => {
                        ForIntDeltas::W8(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                    ForIntDeltas::W16(v) => {
                        ForIntDeltas::W16(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                };
                Column::new(
                    ColumnVals::ForInt(Arc::new(ForIntData {
                        base: f.base,
                        deltas,
                        date: f.date,
                        decoded: OnceLock::new(),
                    })),
                    idx.len(),
                )
            }
            ForLng(f) => {
                let deltas = match &f.deltas {
                    ForLngDeltas::W8(v) => {
                        ForLngDeltas::W8(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                    ForLngDeltas::W16(v) => {
                        ForLngDeltas::W16(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                    ForLngDeltas::W32(v) => {
                        ForLngDeltas::W32(idx.iter().map(|&i| v[self.off + i as usize]).collect())
                    }
                };
                Column::new(
                    ColumnVals::ForLng(Arc::new(ForLngData {
                        base: f.base,
                        deltas,
                        decoded: OnceLock::new(),
                    })),
                    idx.len(),
                )
            }
            Rle(_) => self.decoded().gather(idx),
        }
    }

    /// Typed concatenation of two columns holding the same atom type.
    /// `void` and `oid` operands combine into a materialized oid column;
    /// genuinely mixed types panic (operators type-check first).
    pub fn concat(a: &Column, b: &Column) -> Column {
        use ColumnVals::*;
        if a.encoding() != Enc::None || b.encoding() != Enc::None {
            if let Some(c) = dict_splice(&[a.clone(), b.clone()], a.len + b.len) {
                return c;
            }
            return Column::concat(&a.decoded(), &b.decoded());
        }
        fn win<T: Clone>(v: &[T], off: usize, len: usize) -> &[T] {
            &v[off..off + len]
        }
        match (&a.vals, &b.vals) {
            (Bool(x), Bool(y)) => {
                let mut out = Vec::with_capacity(a.len + b.len);
                out.extend_from_slice(win(x, a.off, a.len));
                out.extend_from_slice(win(y, b.off, b.len));
                Column::from_bools(out)
            }
            (Chr(x), Chr(y)) => {
                let mut out = Vec::with_capacity(a.len + b.len);
                out.extend_from_slice(win(x, a.off, a.len));
                out.extend_from_slice(win(y, b.off, b.len));
                Column::from_chrs(out)
            }
            (Int(x), Int(y)) => {
                let mut out = Vec::with_capacity(a.len + b.len);
                out.extend_from_slice(win(x, a.off, a.len));
                out.extend_from_slice(win(y, b.off, b.len));
                Column::from_ints(out)
            }
            (Lng(x), Lng(y)) => {
                let mut out = Vec::with_capacity(a.len + b.len);
                out.extend_from_slice(win(x, a.off, a.len));
                out.extend_from_slice(win(y, b.off, b.len));
                Column::from_lngs(out)
            }
            (Dbl(x), Dbl(y)) => {
                let mut out = Vec::with_capacity(a.len + b.len);
                out.extend_from_slice(win(x, a.off, a.len));
                out.extend_from_slice(win(y, b.off, b.len));
                Column::from_dbls(out)
            }
            (Date(x), Date(y)) => {
                let mut out = Vec::with_capacity(a.len + b.len);
                out.extend_from_slice(win(x, a.off, a.len));
                out.extend_from_slice(win(y, b.off, b.len));
                Column::from_date_days(out)
            }
            (Str(_), Str(_)) => {
                let (av, bv) = (a.as_strvec().unwrap(), b.as_strvec().unwrap());
                let mut builder = StrHeapBuilder::with_capacity(
                    a.len + b.len,
                    (av.heap_bytes() + bv.heap_bytes()) / (a.len + b.len).max(1),
                );
                for i in 0..a.len {
                    builder.push(av.get(i));
                }
                for i in 0..b.len {
                    builder.push(bv.get(i));
                }
                Column::from_strvec(builder.finish())
            }
            _ if a.is_oidlike() && b.is_oidlike() => {
                let mut out = Vec::with_capacity(a.len + b.len);
                for i in 0..a.len {
                    out.push(a.oid_at(i));
                }
                for i in 0..b.len {
                    out.push(b.oid_at(i));
                }
                Column::from_oids(out)
            }
            _ => panic!("concat on mixed column types {} vs {}", a.atom_type(), b.atom_type()),
        }
    }

    /// Concatenate many same-typed columns in order with a single output
    /// allocation (pairwise [`Column::concat`] would re-copy the prefix for
    /// every part). This is how the morsel executor stitches per-morsel
    /// output columns back together; part order is the determinism
    /// contract, so callers pass parts in morsel order.
    pub fn concat_all(parts: &[Column]) -> Column {
        use ColumnVals::*;
        let total: usize = parts.iter().map(Column::len).sum();
        let first = parts.first().expect("concat_all of zero columns");
        if parts.iter().any(|p| p.encoding() != Enc::None) {
            // Morsel outputs of a dict-coded scan all share the source
            // dictionary: splice their codes and keep the encoding. Any
            // other encoded mix routes through the raw decode — values are
            // identical either way, so the serial/parallel determinism
            // contract is unaffected by which path runs.
            if let Some(c) = dict_splice(parts, total) {
                return c;
            }
            let decoded: Vec<Column> = parts.iter().map(Column::decoded).collect();
            return Column::concat_all(&decoded);
        }
        macro_rules! splice_fixed {
            ($variant:ident, $ty:ty, $build:path) => {{
                let mut out: Vec<$ty> = Vec::with_capacity(total);
                for p in parts {
                    match &p.vals {
                        $variant(v) => out.extend_from_slice(&v[p.off..p.off + p.len]),
                        _ => panic!(
                            "concat_all on mixed column types {} vs {}",
                            first.atom_type(),
                            p.atom_type()
                        ),
                    }
                }
                $build(out)
            }};
        }
        match &first.vals {
            Bool(_) => splice_fixed!(Bool, bool, Column::from_bools),
            Chr(_) => splice_fixed!(Chr, u8, Column::from_chrs),
            Int(_) => splice_fixed!(Int, i32, Column::from_ints),
            Lng(_) => splice_fixed!(Lng, i64, Column::from_lngs),
            Dbl(_) => splice_fixed!(Dbl, f64, Column::from_dbls),
            Date(_) => splice_fixed!(Date, i32, Column::from_date_days),
            Str(_) => {
                let bytes: usize =
                    parts.iter().filter_map(|p| p.as_strvec()).map(|v| v.heap_bytes()).sum();
                let mut builder = StrHeapBuilder::with_capacity(total, bytes / total.max(1));
                for p in parts {
                    let v = p.as_strvec().unwrap_or_else(|| {
                        panic!(
                            "concat_all on mixed column types {} vs {}",
                            first.atom_type(),
                            p.atom_type()
                        )
                    });
                    for i in 0..p.len {
                        builder.push(v.get(i));
                    }
                }
                Column::from_strvec(builder.finish())
            }
            Void { .. } | Oid(_) => {
                let mut out: Vec<crate::atom::Oid> = Vec::with_capacity(total);
                for p in parts {
                    assert!(p.is_oidlike(), "concat_all on mixed column types");
                    for i in 0..p.len {
                        out.push(p.oid_at(i));
                    }
                }
                Column::from_oids(out)
            }
            DictStr(_) | ForInt(_) | ForLng(_) | Rle(_) => {
                unreachable!("encoded parts routed through the decode prelude above")
            }
        }
    }

    /// Stable argsort of the window: returns positions in ascending value
    /// order. Used for datavector creation ("Sort on Tail", Figure 7) and
    /// the load-phase reordering of Section 6. Typed **direct** sort: the
    /// fixed-width types map to order-preserving `u64` keys sorted by an
    /// adaptive counting/LSD-radix pass (O(n), no comparisons) directly on
    /// the primitive slice — no per-compare indirection through the
    /// permutation.
    pub fn sort_perm(&self) -> Vec<u32> {
        self.sort_typed(false).1
    }

    /// Typed direct sort of the window: the stable ascending permutation
    /// *and* the sorted column in one pass — `sort_tail` consumes both,
    /// skipping the tail re-gather of the old argsort+gather path. The
    /// sorted values fall out of the key sort itself (un-mapped from the
    /// order-preserving keys), so the tail column is built sequentially.
    pub fn sort_direct(&self) -> (Column, Vec<u32>) {
        let (col, perm) = self.sort_typed(true);
        (col.expect("sort_typed(true) returns the sorted column"), perm)
    }

    fn sort_typed(&self, want_column: bool) -> (Option<Column>, Vec<u32>) {
        let n = self.len;
        let col_of = |perm: &[u32]| if want_column { Some(self.gather(perm)) } else { None };
        match &self.vals {
            ColumnVals::Void { .. } => {
                let perm: Vec<u32> = (0..n as u32).collect(); // already sorted
                (want_column.then(|| self.clone()), perm)
            }
            ColumnVals::Oid(v) => {
                let w = &v[self.off..self.off + n];
                let (keys, perm) = radix_sort_keys(w.to_vec());
                (want_column.then(|| Column::from_oids(keys)), perm)
            }
            ColumnVals::Int(v) => {
                let w = &v[self.off..self.off + n];
                let (keys, perm) = radix_sort_keys(w.iter().map(|&x| i32_key(x)).collect());
                let col = want_column
                    .then(|| Column::from_ints(keys.into_iter().map(i32_from_key).collect()));
                (col, perm)
            }
            ColumnVals::Lng(v) => {
                let w = &v[self.off..self.off + n];
                let (keys, perm) = radix_sort_keys(w.iter().map(|&x| i64_key(x)).collect());
                let col = want_column
                    .then(|| Column::from_lngs(keys.into_iter().map(i64_from_key).collect()));
                (col, perm)
            }
            ColumnVals::Dbl(v) => {
                // Order-preserving bit transform: integer order of the keys
                // is exactly IEEE total order, matching `cmp_at`. The
                // un-map is bit-exact, so NaN payloads survive the round
                // trip.
                let w = &v[self.off..self.off + n];
                let (keys, perm) = radix_sort_keys(w.iter().map(|&x| f64_total_key(x)).collect());
                let col = want_column
                    .then(|| Column::from_dbls(keys.into_iter().map(f64_from_total_key).collect()));
                (col, perm)
            }
            ColumnVals::Chr(v) => {
                let w = &v[self.off..self.off + n];
                let perm = counting_sort_perm(w.iter().map(|&c| c as usize), n, 1 << 8);
                (col_of(&perm), perm)
            }
            ColumnVals::Bool(v) => {
                let w = &v[self.off..self.off + n];
                let perm = counting_sort_perm(w.iter().map(|&b| b as usize), n, 2);
                (col_of(&perm), perm)
            }
            ColumnVals::Date(v) => {
                let w = &v[self.off..self.off + n];
                let (keys, perm) = radix_sort_keys(w.iter().map(|&x| i32_key(x)).collect());
                let col = want_column
                    .then(|| Column::from_date_days(keys.into_iter().map(i32_from_key).collect()));
                (col, perm)
            }
            ColumnVals::Str(sv) => {
                let mut pairs: Vec<(&str, u32)> =
                    (0..n).map(|i| (sv.get(self.off + i), i as u32)).collect();
                pairs.sort_unstable();
                let perm: Vec<u32> = pairs.iter().map(|p| p.1).collect();
                (col_of(&perm), perm)
            }
            ColumnVals::DictStr(d) => {
                // Codes are order-preserving, so a stable counting sort over
                // the code domain reproduces the raw string sort exactly —
                // without touching a single byte of string data.
                let perm = counting_sort_perm(
                    (0..n).map(|i| d.code(self.off + i)),
                    n,
                    d.dict.len().max(1),
                );
                (col_of(&perm), perm)
            }
            ColumnVals::ForInt(f) => {
                // Deltas are unsigned offsets from one base: delta order is
                // value order, and the domain is at most 2^16.
                let perm = match &f.deltas {
                    ForIntDeltas::W8(v) => counting_sort_perm(
                        v[self.off..self.off + n].iter().map(|&x| x as usize),
                        n,
                        1 << 8,
                    ),
                    ForIntDeltas::W16(v) => counting_sort_perm(
                        v[self.off..self.off + n].iter().map(|&x| x as usize),
                        n,
                        1 << 16,
                    ),
                };
                (col_of(&perm), perm)
            }
            ColumnVals::ForLng(f) => {
                let perm = match &f.deltas {
                    ForLngDeltas::W8(v) => counting_sort_perm(
                        v[self.off..self.off + n].iter().map(|&x| x as usize),
                        n,
                        1 << 8,
                    ),
                    ForLngDeltas::W16(v) => counting_sort_perm(
                        v[self.off..self.off + n].iter().map(|&x| x as usize),
                        n,
                        1 << 16,
                    ),
                    ForLngDeltas::W32(v) => {
                        let w = &v[self.off..self.off + n];
                        radix_sort_keys(w.iter().map(|&x| x as u64).collect()).1
                    }
                };
                (col_of(&perm), perm)
            }
            ColumnVals::Rle(_) => self.decoded().sort_typed(want_column),
        }
    }

    /// O(n) check: ascending (non-strict) order.
    pub fn check_sorted(&self) -> bool {
        use crate::typed::TypedVals;
        if matches!(self.vals, ColumnVals::Void { .. }) {
            return true;
        }
        crate::for_each_typed!(self, |t| {
            (1..t.len()).all(|i| !t.cmp_one(t.value(i - 1), t.value(i)).is_gt())
        })
    }

    /// Check that all values are distinct (key property).
    pub fn check_key(&self) -> bool {
        use crate::typed::TypedVals;
        if matches!(self.vals, ColumnVals::Void { .. }) {
            return true;
        }
        if self.check_sorted() {
            return crate::for_each_typed!(self, |t| {
                (1..t.len()).all(|i| t.cmp_one(t.value(i - 1), t.value(i)).is_lt())
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(self.len);
        (0..self.len).all(|i| seen.insert(OwnedKey::of(self, i)))
    }

    /// Check that the column is the dense sequence `start..start+len`.
    pub fn check_dense(&self) -> bool {
        match &self.vals {
            ColumnVals::Void { .. } => true,
            ColumnVals::Oid(v) => {
                let w = &v[self.off..self.off + self.len];
                w.windows(2).all(|p| p[1] == p[0] + 1)
            }
            _ => false,
        }
    }

    /// First position whose value is `>= v` (requires ascending order).
    pub fn lower_bound(&self, v: &AtomValue) -> usize {
        use crate::typed::TypedVals;
        crate::for_each_typed!(self, |t| {
            let (mut lo, mut hi) = (0usize, t.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if t.cmp_atom(t.value(mid), v).is_lt() {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        })
    }

    /// First position whose value is `> v` (requires ascending order).
    pub fn upper_bound(&self, v: &AtomValue) -> usize {
        use crate::typed::TypedVals;
        crate::for_each_typed!(self, |t| {
            let (mut lo, mut hi) = (0usize, t.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if t.cmp_atom(t.value(mid), v).is_gt() {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        })
    }

    /// Bytes of heap storage attributable to this window: fixed part plus,
    /// for strings, the shared variable heap (counted in full — consistent
    /// with how Monet accounts a BAT's heaps). Encoded layouts report their
    /// *physical* size — codes/deltas/runs, not the logical decode — which
    /// is what `ctx.record` and the MemTracker budget charge.
    pub fn bytes(&self) -> usize {
        match &self.vals {
            ColumnVals::Str(v) => self.atom_type().width() * self.len + v.heap_bytes(),
            ColumnVals::DictStr(d) => {
                // Narrow codes + the dictionary's own entries and byte heap.
                d.codes.width() * self.len
                    + AtomType::Str.width() * d.dict.len()
                    + d.dict.heap_bytes()
            }
            ColumnVals::ForInt(f) => f.width() * self.len,
            ColumnVals::ForLng(f) => f.width() * self.len,
            ColumnVals::Rle(r) => 4 * r.ends.len() + r.vals.bytes(),
            _ => self.atom_type().width() * self.len,
        }
    }

    /// A raw-layout column holding the same values at the same positions.
    /// The result keeps this view's identity triple `(id, off, len)` —
    /// decoding is positionally exact, so synced-ness survives it. Raw
    /// columns return themselves (an `Arc` bump).
    pub fn decoded(&self) -> Column {
        let vals = match &self.vals {
            ColumnVals::DictStr(d) => ColumnVals::Str(d.decoded().clone()),
            ColumnVals::ForInt(f) => {
                if f.date {
                    ColumnVals::Date(Arc::clone(f.decoded()))
                } else {
                    ColumnVals::Int(Arc::clone(f.decoded()))
                }
            }
            ColumnVals::ForLng(f) => ColumnVals::Lng(Arc::clone(f.decoded())),
            ColumnVals::Rle(r) => r.decoded().vals.clone(),
            _ => return self.clone(),
        };
        Column { vals, id: self.id, off: self.off, len: self.len }
    }

    /// Decode the `[start, start+len)` window of an RLE-encoded `dbl` view
    /// into `out` (appending), walking the runs directly: element order is
    /// exactly the logical row order, so summing `out` sequentially is
    /// bit-identical to summing the decoded column's window — but no
    /// full-column decode is materialized or cached. Returns `false`
    /// (leaving `out` untouched) when this column is not RLE with `dbl`
    /// run values.
    pub fn rle_dbl_window_into(&self, start: usize, len: usize, out: &mut Vec<f64>) -> bool {
        assert!(start + len <= self.len, "window out of bounds");
        let ColumnVals::Rle(r) = &self.vals else { return false };
        let Some(vals) = r.vals.as_dbl_slice() else { return false };
        let lo = self.off + start;
        let hi = lo + len;
        let mut run = r.run_of(lo);
        let mut at = lo;
        while at < hi {
            let end = (r.ends[run] as usize).min(hi);
            out.resize(out.len() + (end - at), vals[run]);
            at = end;
            run += 1;
        }
        true
    }

    /// Whether this RLE view's full-column decode cache is populated
    /// (`None` for non-RLE columns) — the observability hook for tests
    /// asserting that run-aware kernels avoided the full materialization.
    pub fn rle_decode_cached(&self) -> Option<bool> {
        match &self.vals {
            ColumnVals::Rle(r) => Some(r.decoded.get().is_some()),
            _ => None,
        }
    }

    /// Re-encode this window into a compressed layout when one pays off;
    /// returns a clone unchanged when no encoding applies (already encoded,
    /// unsupported type, or no size win). `sorted` lets callers who *know*
    /// the column is ascending unlock RLE. Encoded results carry the same
    /// values — verified by the `ops_props` equivalence suite — but a fresh
    /// storage identity (re-encoding a base column must bump the Db epoch).
    pub fn encode(&self, sorted: bool) -> Column {
        if self.encoding() != Enc::None || self.len == 0 {
            return self.clone();
        }
        if sorted {
            if let Some(c) = self.encode_rle() {
                return c;
            }
        }
        match self.atom_type() {
            AtomType::Str => self.encode_dict().unwrap_or_else(|| self.clone()),
            AtomType::Int | AtomType::Date | AtomType::Lng => {
                self.encode_for().unwrap_or_else(|| self.clone())
            }
            _ => self.clone(),
        }
    }

    /// Order-preserving dictionary encoding for string columns: sorted
    /// duplicate-free dictionary + codes at the narrowest width the
    /// dictionary size allows. `None` when the encoded form would not be
    /// smaller than the raw layout (e.g. mostly-unique values, where even
    /// u8 codes cannot pay for the extra dictionary offsets).
    fn encode_dict(&self) -> Option<Column> {
        let sv = self.as_strvec()?;
        let n = self.len;
        let mut uniq: Vec<&str> = (0..n).map(|i| sv.get(i)).collect();
        uniq.sort_unstable();
        uniq.dedup();
        let u = uniq.len();
        let dict_heap: usize = uniq.iter().map(|s| s.len()).sum();
        let enc_bytes = DictCodes::width_for(u) * n + AtomType::Str.width() * u + dict_heap;
        if enc_bytes >= self.bytes() {
            return None;
        }
        let code_of: std::collections::HashMap<&str, u32> =
            uniq.iter().enumerate().map(|(c, &s)| (s, c as u32)).collect();
        let mut b = StrHeapBuilder::with_capacity(u, dict_heap / u.max(1));
        for s in &uniq {
            b.push(s);
        }
        let dict = b.finish();
        let wide = (0..n).map(|i| code_of[sv.get(i)]);
        let codes = match DictCodes::width_for(u) {
            1 => DictCodes::W8(wide.map(|c| c as u8).collect()),
            2 => DictCodes::W16(wide.map(|c| c as u16).collect()),
            _ => DictCodes::W32(wide.collect()),
        };
        Some(Column::new(
            ColumnVals::DictStr(Arc::new(DictStrData { codes, dict, decoded: OnceLock::new() })),
            n,
        ))
    }

    /// Frame-of-reference encoding for int/date/lng columns whose value
    /// range fits a narrower unsigned delta. `None` when it doesn't.
    fn encode_for(&self) -> Option<Column> {
        let n = self.len;
        match &self.vals {
            ColumnVals::Int(_) | ColumnVals::Date(_) => {
                let date = matches!(self.vals, ColumnVals::Date(_));
                let w = match &self.vals {
                    ColumnVals::Int(v) | ColumnVals::Date(v) => &v[self.off..self.off + n],
                    _ => unreachable!(),
                };
                let min = *w.iter().min()?;
                let max = *w.iter().max()?;
                let range = max as i64 - min as i64;
                let deltas = if range <= u8::MAX as i64 {
                    ForIntDeltas::W8(w.iter().map(|&x| x.wrapping_sub(min) as u8).collect())
                } else if range <= u16::MAX as i64 {
                    ForIntDeltas::W16(w.iter().map(|&x| x.wrapping_sub(min) as u16).collect())
                } else {
                    return None;
                };
                Some(Column::new(
                    ColumnVals::ForInt(Arc::new(ForIntData {
                        base: min,
                        deltas,
                        date,
                        decoded: OnceLock::new(),
                    })),
                    n,
                ))
            }
            ColumnVals::Lng(v) => {
                let w = &v[self.off..self.off + n];
                let min = *w.iter().min()?;
                let max = *w.iter().max()?;
                let range = max as i128 - min as i128;
                let deltas = if range <= u8::MAX as i128 {
                    ForLngDeltas::W8(w.iter().map(|&x| x.wrapping_sub(min) as u8).collect())
                } else if range <= u16::MAX as i128 {
                    ForLngDeltas::W16(w.iter().map(|&x| x.wrapping_sub(min) as u16).collect())
                } else if range <= u32::MAX as i128 {
                    ForLngDeltas::W32(w.iter().map(|&x| x.wrapping_sub(min) as u32).collect())
                } else {
                    return None;
                };
                Some(Column::new(
                    ColumnVals::ForLng(Arc::new(ForLngData {
                        base: min,
                        deltas,
                        decoded: OnceLock::new(),
                    })),
                    n,
                ))
            }
            _ => None,
        }
    }

    /// Run-length encoding for an ascending window: one stored value per
    /// run. Only taken when runs are scarce (≤ len/4) — RLE has no kernel
    /// variant, so a weak compression ratio isn't worth the decode cache.
    fn encode_rle(&self) -> Option<Column> {
        let n = self.len;
        if n == 0 || n > u32::MAX as usize || self.atom_type() == AtomType::Void {
            return None;
        }
        let mut starts: Vec<u32> = vec![0];
        for i in 1..n {
            if self.cmp_at(i - 1, self, i) != Ordering::Equal {
                starts.push(i as u32);
            }
        }
        if starts.len() * 4 > n {
            return None;
        }
        let mut ends: Vec<u32> = starts[1..].to_vec();
        ends.push(n as u32);
        let vals = self.gather(&starts);
        Some(Column::new(
            ColumnVals::Rle(Arc::new(RleData {
                ends: ends.into(),
                vals,
                decoded: OnceLock::new(),
            })),
            n,
        ))
    }

    /// Iterate generically over the window.
    pub fn iter(&self) -> impl Iterator<Item = AtomValue> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Whether this view covers its entire backing storage — the
    /// precondition of [`Column::storage_repr`]. The store writer compacts
    /// partial windows (via an identity gather) before serializing.
    pub(crate) fn is_full_window(&self) -> bool {
        if self.off != 0 {
            return false;
        }
        let storage_len = match &self.vals {
            ColumnVals::Void { .. } => return true,
            ColumnVals::Oid(v) => v.len(),
            ColumnVals::Bool(v) => v.len(),
            ColumnVals::Chr(v) => v.len(),
            ColumnVals::Int(v) => v.len(),
            ColumnVals::Lng(v) => v.len(),
            ColumnVals::Dbl(v) => v.len(),
            ColumnVals::Date(v) => v.len(),
            ColumnVals::Str(v) => v.len(),
            ColumnVals::DictStr(d) => d.codes.len(),
            ColumnVals::ForInt(f) => f.len(),
            ColumnVals::ForLng(f) => f.len(),
            ColumnVals::Rle(r) => r.rows(),
        };
        self.len == storage_len
    }

    /// Borrow the full physical storage for the store writer. Panics when
    /// the view is a partial window (callers compact first, see
    /// [`Column::is_full_window`]).
    pub(crate) fn storage_repr(&self) -> StorageRepr<'_> {
        assert!(self.is_full_window(), "storage_repr on a partial window");
        match &self.vals {
            ColumnVals::Void { seq } => StorageRepr::Void { seq: *seq },
            ColumnVals::Oid(v) => StorageRepr::Oid(v),
            ColumnVals::Bool(v) => StorageRepr::Bool(v),
            ColumnVals::Chr(v) => StorageRepr::Chr(v),
            ColumnVals::Int(v) => StorageRepr::Int(v),
            ColumnVals::Lng(v) => StorageRepr::Lng(v),
            ColumnVals::Dbl(v) => StorageRepr::Dbl(v),
            ColumnVals::Date(v) => StorageRepr::Date(v),
            ColumnVals::Str(v) => StorageRepr::Str(v),
            ColumnVals::DictStr(d) => {
                let codes = match &d.codes {
                    DictCodes::W8(v) => CodeSlice::W8(v),
                    DictCodes::W16(v) => CodeSlice::W16(v),
                    DictCodes::W32(v) => CodeSlice::W32(v),
                };
                StorageRepr::DictStr { codes, dict: &d.dict }
            }
            ColumnVals::ForInt(f) => {
                let deltas = match &f.deltas {
                    ForIntDeltas::W8(v) => CodeSlice::W8(v),
                    ForIntDeltas::W16(v) => CodeSlice::W16(v),
                };
                StorageRepr::ForInt { base: f.base, date: f.date, deltas }
            }
            ColumnVals::ForLng(f) => {
                let deltas = match &f.deltas {
                    ForLngDeltas::W8(v) => CodeSlice::W8(v),
                    ForLngDeltas::W16(v) => CodeSlice::W16(v),
                    ForLngDeltas::W32(v) => CodeSlice::W32(v),
                };
                StorageRepr::ForLng { base: f.base, deltas }
            }
            ColumnVals::Rle(r) => StorageRepr::Rle { ends: &r.ends, vals: &r.vals },
        }
    }
}

/// Narrow unsigned code/delta slice at its physical width (store writer).
pub(crate) enum CodeSlice<'a> {
    W8(&'a [u8]),
    W16(&'a [u16]),
    W32(&'a [u32]),
}

/// The full physical storage of a column, borrowed for serialization.
pub(crate) enum StorageRepr<'a> {
    Void { seq: Oid },
    Oid(&'a [Oid]),
    Bool(&'a [bool]),
    Chr(&'a [u8]),
    Int(&'a [i32]),
    Lng(&'a [i64]),
    Dbl(&'a [f64]),
    Date(&'a [i32]),
    Str(&'a StrVec),
    DictStr { codes: CodeSlice<'a>, dict: &'a StrVec },
    ForInt { base: i32, date: bool, deltas: CodeSlice<'a> },
    ForLng { base: i64, deltas: CodeSlice<'a> },
    Rle { ends: &'a [u32], vals: &'a Column },
}

/// Borrowed view over the string storage of a column window.
pub struct StrVecView<'a> {
    sv: &'a StrVec,
    off: usize,
    len: usize,
}

impl<'a> StrVecView<'a> {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, i: usize) -> &'a str {
        assert!(i < self.len);
        self.sv.get(self.off + i)
    }

    /// (heap offset, byte length) of value `i`, for pager accounting.
    pub fn heap_offset(&self, i: usize) -> (u64, u64) {
        self.sv.heap_offset(self.off + i)
    }

    pub fn heap_bytes(&self) -> usize {
        self.sv.heap_bytes()
    }
}

/// Map an `f64` to a `u64` whose unsigned integer order equals IEEE total
/// order (the order of [`f64::total_cmp`]): flip all bits of negatives, the
/// sign bit of non-negatives.
#[inline]
fn f64_total_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Exact inverse of [`f64_total_key`] (bit-identical round trip).
#[inline]
fn f64_from_total_key(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k & !(1 << 63) } else { !k })
}

/// Order-preserving `i32 → u64` key (sign-bit flip) and its inverse.
#[inline]
fn i32_key(v: i32) -> u64 {
    (v as u32 ^ 0x8000_0000) as u64
}

#[inline]
fn i32_from_key(k: u64) -> i32 {
    (k as u32 ^ 0x8000_0000) as i32
}

/// Order-preserving `i64 → u64` key (sign-bit flip) and its inverse.
#[inline]
fn i64_key(v: i64) -> u64 {
    v as u64 ^ (1 << 63)
}

#[inline]
fn i64_from_key(k: u64) -> i64 {
    (k ^ (1 << 63)) as i64
}

/// Stable ascending sort of order-preserving `u64` keys without a single
/// comparison: a counting sort over `key - min` when the range is narrow
/// (at most `max(4n, 2^16)` distinct buckets), else LSD byte-radix passes
/// where a one-scan histogram detects constant bytes so only significant
/// bytes pay a scatter. Returns the sorted keys (the input buffer, reused)
/// and the stable permutation.
fn radix_sort_keys(mut keys: Vec<u64>) -> (Vec<u64>, Vec<u32>) {
    let n = keys.len();
    if n <= 1 {
        return (keys, (0..n as u32).collect());
    }
    let (mut min, mut max) = (u64::MAX, 0u64);
    for &k in &keys {
        min = min.min(k);
        max = max.max(k);
    }
    let range = max - min;
    if range < (4 * n as u64).max(1 << 16) {
        // Counting sort: one histogram, one perm scatter, then the sorted
        // keys are rebuilt by sequential run expansion — no value gather.
        let domain = range as usize + 1;
        let mut offs = vec![0u32; domain];
        for &k in &keys {
            offs[(k - min) as usize] += 1;
        }
        let mut sum = 0u32;
        for o in offs.iter_mut() {
            let c = *o;
            *o = sum;
            sum += c;
        }
        let mut perm = vec![0u32; n];
        for (i, &k) in keys.iter().enumerate() {
            let dst = &mut offs[(k - min) as usize];
            perm[*dst as usize] = i as u32;
            *dst += 1;
        }
        // Post-scatter, `offs[d]` is the end offset of bucket `d`.
        let mut at = 0usize;
        for (d, &end) in offs.iter().enumerate() {
            keys[at..end as usize].fill(min + d as u64);
            at = end as usize;
        }
        return (keys, perm);
    }
    // LSD radix over the bytes of `key - min`; bytes above the range's
    // width are zero for every key and never even histogrammed.
    let passes = ((64 - range.leading_zeros() as usize) + 7) / 8;
    let mut hist = vec![[0u32; 256]; passes];
    for &k in &keys {
        let b = k - min;
        for (p, h) in hist.iter_mut().enumerate() {
            h[((b >> (8 * p)) & 255) as usize] += 1;
        }
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut keys2 = vec![0u64; n];
    let mut perm2 = vec![0u32; n];
    for (p, h) in hist.iter_mut().enumerate() {
        if h.iter().any(|&c| c as usize == n) {
            continue; // every key agrees on this byte
        }
        let mut sum = 0u32;
        for c in h.iter_mut() {
            let x = *c;
            *c = sum;
            sum += x;
        }
        for i in 0..n {
            let k = keys[i];
            let dst = &mut h[(((k - min) >> (8 * p)) & 255) as usize];
            keys2[*dst as usize] = k;
            perm2[*dst as usize] = perm[i];
            *dst += 1;
        }
        std::mem::swap(&mut keys, &mut keys2);
        std::mem::swap(&mut perm, &mut perm2);
    }
    (keys, perm)
}

/// Stable counting sort for keys from a small domain (`chr`, `bool`, narrow
/// `date` ranges): O(n + domain) with no comparisons at all.
fn counting_sort_perm(
    keys: impl Iterator<Item = usize> + Clone,
    n: usize,
    domain: usize,
) -> Vec<u32> {
    let mut starts = vec![0u32; domain + 1];
    for k in keys.clone() {
        starts[k + 1] += 1;
    }
    for d in 0..domain {
        starts[d + 1] += starts[d];
    }
    let mut perm = vec![0u32; n];
    for (i, k) in keys.enumerate() {
        let dst = &mut starts[k];
        perm[*dst as usize] = i as u32;
        *dst += 1;
    }
    perm
}

/// Concatenate dict-encoded parts that all share one dictionary allocation
/// by splicing their code windows — the common shape when morsel outputs of
/// a dict-coded scan are stitched back together. `None` when any part
/// breaks the pattern (caller falls back to the decoding concat).
fn dict_splice(parts: &[Column], total: usize) -> Option<Column> {
    let first = match &parts.first()?.vals {
        ColumnVals::DictStr(d) => d,
        _ => return None,
    };
    // One shared dictionary implies one encode call, hence one code width;
    // a mismatch would be a different encoding generation — bail to the
    // decoding fallback rather than widen silently.
    macro_rules! splice {
        ($variant:ident) => {{
            let mut codes = Vec::with_capacity(total);
            for p in parts {
                match &p.vals {
                    ColumnVals::DictStr(d) if d.dict.same_storage(&first.dict) => match &d.codes {
                        DictCodes::$variant(v) => codes.extend_from_slice(&v[p.off..p.off + p.len]),
                        _ => return None,
                    },
                    _ => return None,
                }
            }
            codes.into()
        }};
    }
    let codes = match &first.codes {
        DictCodes::W8(_) => DictCodes::W8(splice!(W8)),
        DictCodes::W16(_) => DictCodes::W16(splice!(W16)),
        DictCodes::W32(_) => DictCodes::W32(splice!(W32)),
    };
    Some(Column::new(
        ColumnVals::DictStr(Arc::new(DictStrData {
            codes,
            dict: first.dict.clone(),
            decoded: OnceLock::new(),
        })),
        total,
    ))
}

/// Resolve a storage window to a [`crate::typed::TypedSlice`]. RLE storage
/// has no kernel variant: it dispatches through its cached decode, the
/// transparent fallback every unspecialized kernel shape takes.
fn typed_vals(vals: &ColumnVals, off: usize, len: usize) -> crate::typed::TypedSlice<'_> {
    use crate::typed::{DictStrVals, ForIntVals, ForLngVals, StrVals, TypedSlice, VoidVals};
    match vals {
        ColumnVals::Void { seq } => TypedSlice::Void(VoidVals { seq: seq + off as Oid, len }),
        ColumnVals::Oid(v) => TypedSlice::Oid(&v[off..off + len]),
        ColumnVals::Bool(v) => TypedSlice::Bool(&v[off..off + len]),
        ColumnVals::Chr(v) => TypedSlice::Chr(&v[off..off + len]),
        ColumnVals::Int(v) => TypedSlice::Int(&v[off..off + len]),
        ColumnVals::Lng(v) => TypedSlice::Lng(&v[off..off + len]),
        ColumnVals::Dbl(v) => TypedSlice::Dbl(&v[off..off + len]),
        ColumnVals::Date(v) => TypedSlice::Date(&v[off..off + len]),
        ColumnVals::Str(v) => {
            let (offsets, lens, heap) = v.parts(off, len);
            TypedSlice::Str(StrVals::new(offsets, lens, heap))
        }
        ColumnVals::DictStr(d) => {
            let codes = match &d.codes {
                DictCodes::W8(v) => crate::typed::ForDeltaSlice::W8(&v[off..off + len]),
                DictCodes::W16(v) => crate::typed::ForDeltaSlice::W16(&v[off..off + len]),
                DictCodes::W32(v) => crate::typed::ForDeltaSlice::W32(&v[off..off + len]),
            };
            let (offsets, lens, heap) = d.dict.parts(0, d.dict.len());
            TypedSlice::DictStr(DictStrVals::new(codes, StrVals::new(offsets, lens, heap)))
        }
        ColumnVals::ForInt(f) => {
            let deltas = match &f.deltas {
                ForIntDeltas::W8(v) => crate::typed::ForDeltaSlice::W8(&v[off..off + len]),
                ForIntDeltas::W16(v) => crate::typed::ForDeltaSlice::W16(&v[off..off + len]),
            };
            TypedSlice::ForInt(ForIntVals::new(f.base, deltas, f.date))
        }
        ColumnVals::ForLng(f) => {
            let deltas = match &f.deltas {
                ForLngDeltas::W8(v) => crate::typed::ForDeltaSlice::W8(&v[off..off + len]),
                ForLngDeltas::W16(v) => crate::typed::ForDeltaSlice::W16(&v[off..off + len]),
                ForLngDeltas::W32(v) => crate::typed::ForDeltaSlice::W32(&v[off..off + len]),
            };
            TypedSlice::ForLng(ForLngVals::new(f.base, deltas))
        }
        ColumnVals::Rle(r) => typed_vals(&r.decoded().vals, off, len),
    }
}

fn type_of(v: &ColumnVals) -> AtomType {
    match v {
        ColumnVals::Void { .. } => AtomType::Void,
        ColumnVals::Oid(_) => AtomType::Oid,
        ColumnVals::Bool(_) => AtomType::Bool,
        ColumnVals::Chr(_) => AtomType::Chr,
        ColumnVals::Int(_) => AtomType::Int,
        ColumnVals::Lng(_) => AtomType::Lng,
        ColumnVals::Dbl(_) => AtomType::Dbl,
        ColumnVals::Str(_) => AtomType::Str,
        ColumnVals::Date(_) => AtomType::Date,
        ColumnVals::DictStr(_) => AtomType::Str,
        ColumnVals::ForInt(f) => {
            if f.date {
                AtomType::Date
            } else {
                AtomType::Int
            }
        }
        ColumnVals::ForLng(_) => AtomType::Lng,
        ColumnVals::Rle(r) => r.vals.atom_type(),
    }
}

/// Owned hashable key for deduplication across all atom types.
#[derive(PartialEq, Eq, Hash)]
enum OwnedKey {
    U64(u64),
    I64(i64),
    Bits(u64),
    Str(Box<str>),
}

impl OwnedKey {
    fn of(c: &Column, i: usize) -> OwnedKey {
        match c.get(i) {
            AtomValue::Void(o) | AtomValue::Oid(o) => OwnedKey::U64(o),
            AtomValue::Bool(b) => OwnedKey::U64(b as u64),
            AtomValue::Chr(v) => OwnedKey::U64(v as u64),
            AtomValue::Int(v) => OwnedKey::I64(v as i64),
            AtomValue::Lng(v) => OwnedKey::I64(v),
            AtomValue::Date(d) => OwnedKey::I64(d.0 as i64),
            AtomValue::Dbl(v) => OwnedKey::Bits(v.to_bits()),
            AtomValue::Str(s) => OwnedKey::Str(s),
        }
    }
}

/// Fast multiplicative hash for 64-bit keys (FxHash-style).
#[inline]
pub fn fxhash64(x: u64) -> u64 {
    // Two rounds of the splitmix64 finalizer: cheap and well distributed.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, for string hashing.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash an [`AtomValue`] consistently with [`Column::hash_at`].
pub fn hash_atom(v: &AtomValue) -> u64 {
    match v {
        AtomValue::Void(o) | AtomValue::Oid(o) => fxhash64(*o),
        AtomValue::Bool(b) => fxhash64(*b as u64),
        AtomValue::Chr(c) => fxhash64(*c as u64),
        AtomValue::Int(i) => fxhash64(*i as u64),
        AtomValue::Lng(i) => fxhash64(*i as u64),
        AtomValue::Dbl(d) => fxhash64(d.to_bits()),
        AtomValue::Date(d) => fxhash64(d.0 as u64),
        AtomValue::Str(s) => fnv1a(s.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_column_values() {
        let c = Column::void(100, 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.oid_at(0), 100);
        assert_eq!(c.oid_at(3), 103);
        assert_eq!(c.get(2), AtomValue::Oid(102));
        assert_eq!(c.bytes(), 0);
        assert!(c.check_sorted() && c.check_key() && c.check_dense());
    }

    #[test]
    fn slice_is_zero_copy_and_keeps_identity() {
        let c = Column::from_ints(vec![1, 2, 3, 4, 5]);
        let s = c.slice(1, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.int_at(0), 2);
        assert_eq!(s.int_at(2), 4);
        assert_eq!(s.storage_id(), c.storage_id());
        assert_ne!(s.identity(), c.identity());
        let s2 = c.slice(1, 3);
        assert_eq!(s.identity(), s2.identity()); // same window, same identity
    }

    #[test]
    fn void_slice_shifts_seq() {
        let c = Column::void(10, 6);
        let s = c.slice(2, 3);
        assert_eq!(s.void_seq(), Some(12));
        assert_eq!(s.oid_at(0), 12);
    }

    #[test]
    fn gather_all_types() {
        let idx = vec![2u32, 0];
        assert_eq!(
            Column::from_ints(vec![10, 20, 30]).gather(&idx).as_int_slice().unwrap(),
            &[30, 10]
        );
        let sc = Column::from_strs(["x", "y", "z"]).gather(&idx);
        assert_eq!(sc.str_at(0), "z");
        assert_eq!(sc.str_at(1), "x");
        let vc = Column::void(5, 3).gather(&idx);
        assert_eq!(vc.as_oid_slice().unwrap(), &[7, 5]);
    }

    #[test]
    fn concat_all_dict_parts_share_dictionary_or_fall_back() {
        // Two dict columns from *different* encode calls carry different
        // dictionaries (here even different vocabularies): splicing their
        // codes would rebind them through the wrong dictionary, so
        // `dict_splice` must refuse and `concat_all` must route through
        // the decoding fallback with the values intact.
        let a_vals: Vec<String> = (0..64).map(|i| format!("Clerk#{:012}", i % 3)).collect();
        let b_vals: Vec<String> = (0..64).map(|i| format!("Broker#{:012}", i % 5)).collect();
        let a = Column::from_strs(&a_vals).encode(false);
        let b = Column::from_strs(&b_vals).encode(false);
        assert_eq!(a.encoding(), Enc::Dict);
        assert_eq!(b.encoding(), Enc::Dict);
        let c = Column::concat_all(&[a.clone(), b.clone()]);
        assert_eq!(c.len(), 128);
        for i in 0..64 {
            assert_eq!(c.str_at(i), a_vals[i], "row {i}: first part corrupted");
            assert_eq!(c.str_at(64 + i), b_vals[i], "row {}: second part corrupted", 64 + i);
        }
        // Pairwise concat takes the same guard.
        let c2 = Column::concat(&a, &b);
        assert_eq!(c2.len(), 128);
        assert_eq!(c2.str_at(0), a_vals[0]);
        assert_eq!(c2.str_at(127), b_vals[63]);

        // Windows of ONE encode call share storage: the splice fast path
        // applies and the result stays dict-encoded.
        let parts = [a.slice(0, 20), a.slice(20, 30), a.slice(50, 14)];
        let spliced = Column::concat_all(&parts);
        assert_eq!(spliced.encoding(), Enc::Dict, "shared-dict parts must splice");
        for i in 0..64 {
            assert_eq!(spliced.str_at(i), a_vals[i], "row {i}: spliced part corrupted");
        }
    }

    #[test]
    fn sort_perm_stable() {
        let c = Column::from_ints(vec![3, 1, 3, 2]);
        assert_eq!(c.sort_perm(), vec![1, 3, 0, 2]);
        let s = Column::from_strs(["b", "a", "b"]);
        assert_eq!(s.sort_perm(), vec![1, 0, 2]);
    }

    #[test]
    fn bounds_on_sorted() {
        let c = Column::from_ints(vec![1, 3, 3, 3, 7, 9]);
        assert_eq!(c.lower_bound(&AtomValue::Int(3)), 1);
        assert_eq!(c.upper_bound(&AtomValue::Int(3)), 4);
        assert_eq!(c.lower_bound(&AtomValue::Int(0)), 0);
        assert_eq!(c.upper_bound(&AtomValue::Int(99)), 6);
        assert_eq!(c.lower_bound(&AtomValue::Int(8)), 5);
    }

    #[test]
    fn cmp_and_hash_consistency() {
        let a = Column::from_strs(["alpha", "beta"]);
        let b = Column::from_strs(["beta", "alpha"]);
        assert!(a.eq_at(0, &b, 1));
        assert!(!a.eq_at(0, &b, 0));
        assert_eq!(a.hash_at(1), b.hash_at(0));
        // oid/void interop
        let o = Column::from_oids(vec![5, 6]);
        let v = Column::void(5, 2);
        assert!(o.eq_at(0, &v, 0));
        assert_eq!(o.hash_at(1), v.hash_at(1));
    }

    #[test]
    fn checks_detect_violations() {
        assert!(Column::from_ints(vec![1, 2, 2, 3]).check_sorted());
        assert!(!Column::from_ints(vec![1, 2, 2, 3]).check_key());
        assert!(!Column::from_ints(vec![2, 1]).check_sorted());
        assert!(Column::from_oids(vec![4, 5, 6]).check_dense());
        assert!(!Column::from_oids(vec![4, 6]).check_dense());
        assert!(Column::from_strs(["a", "b", "c"]).check_key());
    }

    #[test]
    fn from_atoms_roundtrip() {
        let vals = vec![AtomValue::Dbl(1.0), AtomValue::Dbl(2.5)];
        let c = Column::from_atoms(AtomType::Dbl, vals.clone());
        assert_eq!(c.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn dbl_total_order_sort() {
        let c = Column::from_dbls(vec![2.0, -1.0, 0.5]);
        assert_eq!(c.sort_perm(), vec![1, 2, 0]);
    }
}
