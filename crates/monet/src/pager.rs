//! Simulated virtual-memory pager.
//!
//! Monet relies on memory-mapped files and lets the hardware MMU do buffer
//! management (Section 2). Our substitution (DESIGN.md §5.3) models every
//! column heap as a range of `B`-byte pages; operators declare their access
//! patterns and the pager counts *page faults*: first touches of pages not
//! currently resident. An optional resident-set capacity with FIFO
//! second-chance eviction models the 128 MB memory bound of the paper's
//! experiments (the Q1 hot-set overflow of Section 6.2).

use std::collections::{HashMap, VecDeque};

use crate::sync::Mutex;

use crate::column::{Column, ColumnId};

/// Which heap of a column a page belongs to (Figure 2 shows a BAT owning a
/// BUN heap plus optional variable-size tail heaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapKind {
    /// The fixed-width BUN part.
    Fixed,
    /// The variable-size (string) heap.
    Var,
}

/// A page address: (column storage, heap, page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageAddr {
    pub col: ColumnId,
    pub heap: HeapKind,
    pub page: u64,
}

#[derive(Default)]
struct PagerInner {
    resident: HashMap<PageAddr, bool>, // value = referenced bit (second chance)
    fifo: VecDeque<PageAddr>,
    faults: u64,
    touches: u64,
}

/// The simulated pager.
///
/// `capacity_pages = None` models the unbounded ("everything stays mapped")
/// case used for fault *counting*; `Some(n)` bounds the resident set and
/// triggers eviction, reproducing IO-bound behaviour.
pub struct Pager {
    page_size: usize,
    capacity_pages: Option<usize>,
    inner: Mutex<PagerInner>,
}

impl Pager {
    /// Default page size used throughout the paper's cost model: 4096 bytes.
    pub const DEFAULT_PAGE_SIZE: usize = 4096;

    pub fn new(page_size: usize) -> Pager {
        assert!(page_size > 0);
        Pager { page_size, capacity_pages: None, inner: Mutex::new(PagerInner::default()) }
    }

    /// Pager with a bounded resident set (in pages).
    pub fn with_capacity(page_size: usize, capacity_pages: usize) -> Pager {
        Pager {
            page_size,
            capacity_pages: Some(capacity_pages.max(1)),
            inner: Mutex::new(PagerInner::default()),
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total page faults since construction or the last [`Pager::reset`].
    pub fn faults(&self) -> u64 {
        self.inner.lock().faults
    }

    /// Total page touches (faulting or not).
    pub fn touches(&self) -> u64 {
        self.inner.lock().touches
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().resident.len()
    }

    /// Forget all residency and zero the counters (cold start).
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.resident.clear();
        g.fifo.clear();
        g.faults = 0;
        g.touches = 0;
    }

    /// Zero the fault/touch counters but keep residency (measure a warm run).
    pub fn reset_counters(&self) {
        let mut g = self.inner.lock();
        g.faults = 0;
        g.touches = 0;
    }

    fn touch_addr(g: &mut PagerInner, cap: Option<usize>, addr: PageAddr) {
        g.touches += 1;
        if let Some(refbit) = g.resident.get_mut(&addr) {
            *refbit = true;
            return;
        }
        g.faults += 1;
        if let Some(cap) = cap {
            // FIFO second-chance eviction.
            while g.resident.len() >= cap {
                let Some(victim) = g.fifo.pop_front() else { break };
                match g.resident.get_mut(&victim) {
                    Some(refbit) if *refbit => {
                        *refbit = false;
                        g.fifo.push_back(victim);
                    }
                    Some(_) => {
                        g.resident.remove(&victim);
                    }
                    None => {}
                }
            }
        }
        g.resident.insert(addr, false);
        g.fifo.push_back(addr);
    }

    /// Touch every page overlapping `[byte_off, byte_off + byte_len)` of the
    /// given heap.
    pub fn touch_range(&self, col: ColumnId, heap: HeapKind, byte_off: u64, byte_len: u64) {
        if byte_len == 0 {
            return;
        }
        let ps = self.page_size as u64;
        let first = byte_off / ps;
        let last = (byte_off + byte_len - 1) / ps;
        let mut g = self.inner.lock();
        for page in first..=last {
            Self::touch_addr(&mut g, self.capacity_pages, PageAddr { col, heap, page });
        }
    }

    /// Touch the single page containing `byte_off`.
    pub fn touch_byte(&self, col: ColumnId, heap: HeapKind, byte_off: u64) {
        let page = byte_off / self.page_size as u64;
        let mut g = self.inner.lock();
        Self::touch_addr(&mut g, self.capacity_pages, PageAddr { col, heap, page });
    }
}

impl Default for Pager {
    fn default() -> Pager {
        Pager::new(Pager::DEFAULT_PAGE_SIZE)
    }
}

// ---------------------------------------------------------------------------
// Access-pattern helpers on columns.
// ---------------------------------------------------------------------------

/// Sequentially scan the whole window of a column: touches the fixed heap
/// range and, for strings, the full variable heap (a scan dereferences
/// every offset).
pub fn touch_scan(pager: &Pager, col: &Column) {
    let (off, len) = col.window();
    let w = col.atom_type().width() as u64;
    if w > 0 && len > 0 {
        pager.touch_range(col.storage_id(), HeapKind::Fixed, off as u64 * w, len as u64 * w);
    }
    if let Some(sv) = col.as_strvec() {
        if sv.heap_bytes() > 0 {
            pager.touch_range(col.storage_id(), HeapKind::Var, 0, sv.heap_bytes() as u64);
        }
    }
}

/// Random (unclustered) fetch of BUN `i`: one fixed-heap page, plus the
/// variable-heap page holding the string bytes.
pub fn touch_fetch(pager: &Pager, col: &Column, i: usize) {
    let (off, _) = col.window();
    let w = col.atom_type().width() as u64;
    if w > 0 {
        pager.touch_byte(col.storage_id(), HeapKind::Fixed, (off + i) as u64 * w);
    }
    if let Some(sv) = col.as_strvec() {
        let (hoff, _) = sv.heap_offset(i);
        pager.touch_byte(col.storage_id(), HeapKind::Var, hoff);
    }
}

/// Probe-based binary search over a sorted column: touches the page of each
/// probe position. Early probes land on few distinct pages that stay
/// resident, so repeated searches are nearly free — exactly the effect the
/// datavector semijoin exploits.
pub fn touch_binary_search(pager: &Pager, col: &Column) {
    let (off, len) = col.window();
    let w = col.atom_type().width() as u64;
    if w == 0 || len == 0 {
        return;
    }
    let (lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = (lo + hi) / 2;
        pager.touch_byte(col.storage_id(), HeapKind::Fixed, (off + mid) as u64 * w);
        // Direction is irrelevant for page accounting; descend left.
        hi = mid;
    }
}

// ---------------------------------------------------------------------------
// The real pager: read-only file mappings for store-backed columns.
//
// The simulated `Pager` above models fault behaviour for anonymous
// in-memory worlds. Columns opened from `monet::store` do not need the
// model — they live in actual `mmap`ed files, so the operating system's
// MMU is the pager and the process fault counters are the oracle. The two
// coexist: simulated worlds keep their touch accounting, store-backed
// worlds report through [`process_faults`].
// ---------------------------------------------------------------------------

/// A read-only mapping of one store file. `mmap` on unix (private,
/// `PROT_READ`); a heap copy everywhere else (and on empty files, which
/// cannot be mapped). Dropping unmaps.
pub struct Mapping {
    repr: MapRepr,
}

enum MapRepr {
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    /// Heap fallback: the file read into an 8-byte-aligned buffer, so the
    /// page-aligned segment offsets of the store format stay aligned for
    /// every fixed-width element type.
    Heap(Vec<u64>, usize),
}

// SAFETY: the mapping is private and read-only for its whole lifetime.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(unix)]
mod mmap_sys {
    // Minimal libc surface, declared locally: the container builds with no
    // external crates, and std already links the platform libc.
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

impl Mapping {
    /// Map `file` read-only in O(1); fall back to reading it into memory
    /// when mapping is unavailable.
    pub fn map(file: &std::fs::File) -> std::io::Result<Mapping> {
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            if len > 0 {
                let ptr = unsafe {
                    mmap_sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        mmap_sys::PROT_READ,
                        mmap_sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 && !ptr.is_null() {
                    return Ok(Mapping { repr: MapRepr::Mmap { ptr: ptr as *mut u8, len } });
                }
            }
        }
        Mapping::read_fallback(file, len)
    }

    fn read_fallback(file: &std::fs::File, len: usize) -> std::io::Result<Mapping> {
        use std::io::Read;
        let words = len.div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, words * 8) };
        let mut f = file;
        let mut at = 0usize;
        while at < len {
            let n = f.read(&mut bytes[at..len])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "file shrank while reading",
                ));
            }
            at += n;
        }
        Ok(Mapping { repr: MapRepr::Heap(buf, len) })
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives
            // until drop.
            MapRepr::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            MapRepr::Heap(buf, len) => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// True when this is a real `mmap` (not the heap fallback).
    pub fn is_mmap(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.repr, MapRepr::Mmap { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapRepr::Mmap { ptr, len } = self.repr {
            unsafe { mmap_sys::munmap(ptr as *mut core::ffi::c_void, len) };
        }
    }
}

/// Process-wide `(minor, major)` page-fault counts — the real pager's
/// fault oracle for store-backed (mmap) columns, read from
/// `/proc/self/stat` on Linux; `(0, 0)` where unavailable. Diff two
/// readings around an operation to attribute faults to it (single-threaded
/// harnesses only; the counters are process-global).
pub fn process_faults() -> (u64, u64) {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return (0, 0);
    };
    // Fields after the parenthesized comm (which may contain spaces):
    // minflt is field 10, majflt field 12 (1-based over the whole line).
    let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
        return (0, 0);
    };
    let f: Vec<&str> = rest.split_whitespace().collect();
    let g = |i: usize| f.get(i).and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    // rest starts at field 3 ("state"), so minflt (field 10) is index 7
    // and majflt (field 12) is index 9.
    (g(7), g(9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_faults_once_per_page() {
        let pager = Pager::new(4096);
        let col = Column::from_ints((0..4096).collect()); // 16 KiB = 4 pages
        touch_scan(&pager, &col);
        assert_eq!(pager.faults(), 4);
        touch_scan(&pager, &col); // warm: no new faults
        assert_eq!(pager.faults(), 4);
        assert_eq!(pager.touches(), 8);
    }

    #[test]
    fn void_columns_never_fault() {
        let pager = Pager::default();
        let col = Column::void(0, 1_000_000);
        touch_scan(&pager, &col);
        assert_eq!(pager.faults(), 0);
    }

    #[test]
    fn string_scan_touches_var_heap() {
        let pager = Pager::new(64);
        let col = Column::from_strs(std::iter::repeat("abcdefgh").take(64));
        touch_scan(&pager, &col);
        // 64 offsets * 4B = 256B = 4 pages fixed; 512B heap = 8 pages var.
        assert_eq!(pager.faults(), 12);
    }

    #[test]
    fn random_fetch_counts_distinct_pages() {
        let pager = Pager::new(4096);
        let col = Column::from_ints((0..10240).collect()); // 10 pages
        touch_fetch(&pager, &col, 0);
        touch_fetch(&pager, &col, 1); // same page
        touch_fetch(&pager, &col, 2048); // page 2
        assert_eq!(pager.faults(), 2);
    }

    #[test]
    fn capacity_evicts() {
        let pager = Pager::with_capacity(4096, 2);
        let col = Column::from_ints((0..4096).collect()); // 4 pages
        touch_scan(&pager, &col);
        assert_eq!(pager.faults(), 4);
        assert!(pager.resident_pages() <= 2);
        // Re-scan: the early pages were evicted, so they fault again.
        touch_scan(&pager, &col);
        assert!(pager.faults() > 4);
    }

    #[test]
    fn binary_search_touch_is_logarithmic() {
        let pager = Pager::new(4096);
        let col = Column::from_ints((0..1 << 20).collect()); // 1M ints, 1024 pages
        touch_binary_search(&pager, &col);
        let first = pager.faults();
        assert!(first <= 21, "expected <= log2(1M) touches, got {first}");
        // Second search: top probe pages are resident.
        touch_binary_search(&pager, &col);
        assert_eq!(pager.faults(), first);
    }

    #[test]
    fn reset_clears() {
        let pager = Pager::default();
        let col = Column::from_ints((0..10000).collect());
        touch_scan(&pager, &col);
        assert!(pager.faults() > 0);
        pager.reset();
        assert_eq!(pager.faults(), 0);
        assert_eq!(pager.resident_pages(), 0);
    }
}
