//! Owned-or-mapped column storage.
//!
//! Every fixed-width array a [`crate::column::Column`] holds lives in a
//! [`Buf<T>`]: either a plain owned `Vec<T>` (columns built at load/query
//! time) or a typed window into a [`crate::pager::Mapping`] of a store
//! file (columns opened from `monet::store`). `Buf` dereferences to
//! `&[T]`, so the typed kernel layer — which only ever sees slices — runs
//! on both representations unchanged; nothing downstream of the column
//! constructors can tell a mapped column from an owned one.
//!
//! Mapped buffers are **read-only** by construction (the mapping is
//! `PROT_READ`; there is no `&mut` accessor), which is the store's
//! binding rule: a BAT opened from disk can be sliced, gathered, and
//! re-encoded — all of which allocate fresh owned buffers — but never
//! mutated in place.

use std::ops::Deref;
use std::sync::Arc;

use crate::pager::Mapping;

/// An immutable element buffer: owned vector or typed mapping window.
pub struct Buf<T> {
    repr: Repr<T>,
}

enum Repr<T> {
    Owned(Vec<T>),
    /// A `[T]` window into a file mapping. The `Arc` keeps the mapping
    /// (and with it the pointed-to bytes) alive for the buffer's
    /// lifetime; `ptr` is derived from it at construction.
    Mapped {
        _map: Arc<Mapping>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: a mapped buffer is an immutable view of a private, read-only
// file mapping; the owned variant is a Vec. Either way `Buf` is a plain
// shared-read container, so it is Send/Sync whenever its elements are.
unsafe impl<T: Send> Send for Buf<T> {}
unsafe impl<T: Sync> Sync for Buf<T> {}

impl<T> Buf<T> {
    /// View a `[byte_off, byte_off + len * size_of::<T>())` window of the
    /// mapping as `&[T]`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the window lies inside the mapping, is
    /// aligned for `T`, and holds `len` valid values of `T` — i.e. `T` is
    /// plain old data (any bit pattern valid), or the bytes were
    /// validated first (the store validates `bool` segments and string
    /// heaps at open). The store's segment table is the single place
    /// that establishes these invariants.
    pub(crate) unsafe fn from_mapping(map: Arc<Mapping>, byte_off: usize, len: usize) -> Buf<T> {
        let bytes = map.bytes();
        debug_assert!(byte_off.checked_add(len * std::mem::size_of::<T>()).unwrap() <= bytes.len());
        let ptr = bytes.as_ptr().add(byte_off) as *const T;
        debug_assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0, "misaligned mapped buffer");
        Buf { repr: Repr::Mapped { _map: map, ptr, len } }
    }

    /// True when this buffer is a file-mapping window (perf reporting).
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }
}

impl<T> From<Vec<T>> for Buf<T> {
    fn from(v: Vec<T>) -> Buf<T> {
        Buf { repr: Repr::Owned(v) }
    }
}

impl<T> FromIterator<T> for Buf<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Buf<T> {
        Vec::from_iter(iter).into()
    }
}

impl<T> Deref for Buf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            // SAFETY: construction established validity of the window.
            Repr::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Buf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Mirror Vec's Debug (the pre-Buf representation) so derived
        // Column/ColumnVals output is unchanged.
        std::fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_buf_derefs_like_vec() {
        let b: Buf<i32> = vec![1, 2, 3].into();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_mapped());
        assert_eq!(format!("{b:?}"), "[1, 2, 3]");
    }
}
