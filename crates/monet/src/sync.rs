//! Minimal mutex with `parking_lot`'s infallible `lock()` shape, backed by
//! `std::sync::Mutex`. Kept local so the kernel builds without external
//! crates; a poisoned lock (a worker panicked while holding it) is treated
//! as fatal.

use std::sync::MutexGuard;

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }
}
