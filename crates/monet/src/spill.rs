//! Out-of-core spill partitions for the radix operators.
//!
//! When [`crate::ctx::MemTracker`] says an operator's in-memory working
//! set will not fit the query's byte budget, the radix join and hash
//! grouping switch to a partition-then-process shape: both passes of
//! [`crate::typed::radix_cluster_typed`] are replayed against a spill
//! file — count, then scatter packed `(hash, pos)` pairs into per-cluster
//! file regions — and each cluster is read back and processed alone, so
//! only one cluster's build table is ever resident. The pair format, the
//! cluster assignment (top hash bits), and the stable within-cluster row
//! order are identical to the in-memory clustering, which is what lets
//! the spilling operators reproduce the in-memory result bit for bit.
//!
//! Spill files live in `FLATALG_SPILL_DIR` (default: the system temp
//! directory), are deleted on drop, and route through the governor
//! ([`crate::gov::site::SPILL_WRITE`] / [`crate::gov::site::SPILL_READ`]
//! probes before every partition flush and read-back — each one a
//! cancellation/deadline/fault point) and the memory tracker
//! ([`crate::ctx::MemTracker::add_spilled`]).
//!
//! `FLATALG_SPILL` overrides the dispatch: `0`/`never` disables spilling
//! even under a budget, `1`/`force`/`always` spills every eligible
//! operator (the bit-identity test legs), unset/`auto` follows the
//! [`crate::costmodel`] headroom estimates.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};
use crate::gov::site;
use crate::typed::TypedVals;

/// Spill dispatch override from `FLATALG_SPILL` (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillMode {
    /// Follow the cost model's budget-headroom estimates.
    Auto,
    /// Never spill, even when the estimate overflows the budget.
    Never,
    /// Spill every eligible operator (test legs: bit-identity vs in-mem).
    Always,
}

pub(crate) fn parse_mode(raw: &str) -> SpillMode {
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "never" | "off" => SpillMode::Never,
        "1" | "force" | "always" => SpillMode::Always,
        _ => SpillMode::Auto,
    }
}

/// The process-wide spill mode (`FLATALG_SPILL`, parsed once).
pub fn mode() -> SpillMode {
    static MODE: OnceLock<SpillMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("FLATALG_SPILL") {
        Ok(v) => parse_mode(&v),
        Err(_) => SpillMode::Auto,
    })
}

fn io_err(op: &'static str, path: &std::path::Path, e: std::io::Error) -> MonetError {
    MonetError::Store { op, path: path.display().to_string(), detail: e.to_string() }
}

/// Create a fresh spill file in `FLATALG_SPILL_DIR` (default: temp dir).
fn create_spill_file() -> Result<(File, PathBuf)> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match std::env::var_os("FLATALG_SPILL_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir(),
    };
    let pid = std::process::id();
    for _ in 0..64 {
        let path =
            dir.join(format!("flatalg-spill-{pid}-{}.tmp", SEQ.fetch_add(1, Ordering::Relaxed)));
        match std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(&path) {
            Ok(f) => return Ok((f, path)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(io_err("spill/write", &path, e)),
        }
    }
    Err(MonetError::Store {
        op: "spill/write",
        path: dir.display().to_string(),
        detail: "could not create a unique spill file".into(),
    })
}

/// Pairs staged per cluster before a positioned flush; bounds the staging
/// buffer at `clusters * 256 * 8` bytes (2 MiB at the radix fan-out cap).
const STAGE_PAIRS: usize = 256;

/// One column's packed `(hash, pos)` pairs, hash-clustered on the top
/// `bits` like [`crate::typed::radix_cluster_typed`] but scattered into
/// per-cluster regions of a spill file instead of memory. Within a
/// cluster, positions ascend (rows are appended in scan order), exactly
/// as in the in-memory clustering. The file is deleted on drop.
pub(crate) struct SpilledClusters {
    file: File,
    path: PathBuf,
    /// Element (pair) offset of each cluster's region in the file.
    starts: Vec<u64>,
    /// Pairs in each cluster.
    lens: Vec<u32>,
}

impl SpilledClusters {
    /// Two streaming passes over `t`: count pairs per cluster, then
    /// scatter them (staged, [`STAGE_PAIRS`] per cluster) into the
    /// cluster regions. Probes [`site::SPILL_WRITE`] before every flush.
    pub(crate) fn build<V: TypedVals>(ctx: &ExecCtx, t: V, bits: u32) -> Result<SpilledClusters> {
        assert!(bits <= 16, "spill cluster: {bits} cluster bits (max 16)");
        let n = t.len();
        let nclusters = 1usize << bits;
        let cluster_of = |h: u64| if bits == 0 { 0 } else { (h >> (64 - bits)) as usize };
        let mut lens = vec![0u32; nclusters];
        for i in 0..n {
            lens[cluster_of(t.hash_one(t.value(i)))] += 1;
        }
        let mut starts = vec![0u64; nclusters];
        let mut acc = 0u64;
        for (s, &l) in starts.iter_mut().zip(&lens) {
            *s = acc;
            acc += l as u64;
        }
        let (file, path) = create_spill_file()?;
        let sc = SpilledClusters { file, path, starts, lens };
        // Per-cluster staging plus a write cursor per cluster region.
        let mut stage = vec![0u64; nclusters * STAGE_PAIRS];
        let mut fill = vec![0u32; nclusters];
        let mut cursor = sc.starts.clone();
        for i in 0..n {
            let h = t.hash_one(t.value(i));
            let c = cluster_of(h);
            let f = fill[c] as usize;
            stage[c * STAGE_PAIRS + f] = crate::typed::pack_pair(h, i);
            if f + 1 == STAGE_PAIRS {
                sc.flush(ctx, &stage[c * STAGE_PAIRS..(c + 1) * STAGE_PAIRS], cursor[c])?;
                cursor[c] += STAGE_PAIRS as u64;
                fill[c] = 0;
            } else {
                fill[c] = f as u32 + 1;
            }
        }
        for c in 0..nclusters {
            let f = fill[c] as usize;
            if f > 0 {
                sc.flush(ctx, &stage[c * STAGE_PAIRS..c * STAGE_PAIRS + f], cursor[c])?;
            }
        }
        ctx.mem.add_spilled(n as u64 * 8);
        Ok(sc)
    }

    /// Positioned write of `pairs` at element offset `at` (serial writer:
    /// the seek+write pair is not thread-safe, and does not need to be).
    fn flush(&self, ctx: &ExecCtx, pairs: &[u64], at: u64) -> Result<()> {
        ctx.probe(site::SPILL_WRITE)?;
        // SAFETY: u64 -> bytes reinterpretation of an initialized slice.
        let bytes =
            unsafe { std::slice::from_raw_parts(pairs.as_ptr() as *const u8, pairs.len() * 8) };
        (&self.file)
            .seek(SeekFrom::Start(at * 8))
            .and_then(|_| (&self.file).write_all(bytes))
            .map_err(|e| io_err("spill/write", &self.path, e))
    }

    pub(crate) fn num_clusters(&self) -> usize {
        self.starts.len()
    }

    pub(crate) fn cluster_len(&self, c: usize) -> usize {
        self.lens[c] as usize
    }

    /// Total pairs across all clusters.
    #[cfg(test)]
    pub(crate) fn rows(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Read cluster `c` back into `buf` (cleared first). Probes
    /// [`site::SPILL_READ`] before the read.
    pub(crate) fn read_cluster(&self, ctx: &ExecCtx, c: usize, buf: &mut Vec<u64>) -> Result<()> {
        ctx.probe(site::SPILL_READ)?;
        let n = self.lens[c] as usize;
        buf.clear();
        buf.resize(n, 0);
        // SAFETY: any byte pattern is a valid u64; the slice covers
        // exactly the vector's n initialized elements.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, n * 8) };
        (&self.file)
            .seek(SeekFrom::Start(self.starts[c] * 8))
            .and_then(|_| (&self.file).read_exact(bytes))
            .map_err(|e| io_err("spill/read", &self.path, e))
    }
}

impl Drop for SpilledClusters {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn mode_spelling() {
        assert_eq!(parse_mode("0"), SpillMode::Never);
        assert_eq!(parse_mode("never"), SpillMode::Never);
        assert_eq!(parse_mode(" OFF "), SpillMode::Never);
        assert_eq!(parse_mode("1"), SpillMode::Always);
        assert_eq!(parse_mode("force"), SpillMode::Always);
        assert_eq!(parse_mode("Always"), SpillMode::Always);
        assert_eq!(parse_mode("auto"), SpillMode::Auto);
        assert_eq!(parse_mode(""), SpillMode::Auto);
    }

    #[test]
    fn spilled_clusters_match_in_memory_clustering() {
        let ctx = ExecCtx::new();
        // Enough rows to fill several staging chunks per cluster, with
        // string values so the hash path is non-trivial.
        let vals: Vec<String> = (0..5000).map(|i| format!("v{}", i % 700)).collect();
        let col = Column::from_strs(vals.iter().map(|s| s.as_str()));
        for bits in [0u32, 3] {
            let sc = crate::for_each_typed!(&col, |t| SpilledClusters::build(&ctx, t, bits))
                .expect("spill build");
            let rc = crate::for_each_typed!(&col, |t| crate::typed::radix_cluster_typed(t, bits));
            assert_eq!(sc.num_clusters(), rc.num_clusters());
            assert_eq!(sc.rows(), col.len());
            let mut buf = Vec::new();
            for c in 0..sc.num_clusters() {
                sc.read_cluster(&ctx, c, &mut buf).expect("spill read");
                assert_eq!(&buf[..], &rc.pairs[rc.cluster(c)], "cluster {c} (bits {bits})");
            }
            let path = sc.path.clone();
            assert!(path.exists());
            drop(sc);
            assert!(!path.exists(), "spill file must be deleted on drop");
            rc.recycle();
        }
        // One spill file per bits setting, 8 bytes per pair.
        assert_eq!(ctx.mem.spilled_bytes(), 2 * 5000 * 8);
    }

    #[test]
    fn spill_probes_are_governed_fault_points() {
        let ctx = ExecCtx::new();
        let col = Column::from_ints((0..100).collect());
        ctx.gov.arm_fault(site::SPILL_WRITE, 1);
        let r = crate::for_each_typed!(&col, |t| SpilledClusters::build(&ctx, t, 2));
        assert!(matches!(r, Err(MonetError::Injected { site: s, .. }) if s == site::SPILL_WRITE));
        let sc = crate::for_each_typed!(&col, |t| SpilledClusters::build(&ctx, t, 2)).unwrap();
        ctx.gov.arm_fault(site::SPILL_READ, 1);
        let mut buf = Vec::new();
        let r = sc.read_cluster(&ctx, 0, &mut buf);
        assert!(matches!(r, Err(MonetError::Injected { site: s, .. }) if s == site::SPILL_READ));
        assert!(sc.read_cluster(&ctx, 0, &mut buf).is_ok(), "one-shot fault: retry clean");
    }
}
