//! The `FLATALG_FUSE` knob: whether the optimizer fuses operator pipelines.
//!
//! Fusion is a *plan-time* decision — the `fuse` pass (see
//! [`crate::mil::opt`]) collapses provably-fusable producer/consumer
//! statement chains into one fused-pipeline statement the interpreter
//! executes morsel-at-a-time — so one process-wide switch plus a scoped
//! per-thread override is enough. With `FLATALG_FUSE=0` the optimizer
//! reproduces the unfused emission statement for statement, which is the
//! fusion-off oracle leg of the acceptance suite.

use std::sync::OnceLock;

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// The effective setting: the scoped override of [`with_fuse`] if set, else
/// `FLATALG_FUSE` (`0` disables; anything else — including unset — enables).
/// Parsed once per process, like every other `FLATALG_*` knob.
pub fn fuse_enabled() -> bool {
    if let Some(e) = OVERRIDE.with(|c| c.get()) {
        return e;
    }
    *ENV_ENABLED.get_or_init(|| !matches!(std::env::var("FLATALG_FUSE"), Ok(v) if v.trim() == "0"))
}

/// Run `f` with pipeline fusion scoped on or off on this thread. Restores
/// the previous setting on exit — panic-safe — and never touches the
/// process environment, so concurrent tests can sweep both legs without
/// racing (the same contract as [`crate::enc::with_enc`]).
pub fn with_fuse<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    OVERRIDE.with(|c| c.set(Some(enabled)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_scopes_and_restores() {
        let ambient = fuse_enabled();
        with_fuse(false, || {
            assert!(!fuse_enabled());
            with_fuse(true, || assert!(fuse_enabled()));
            assert!(!fuse_enabled());
        });
        assert_eq!(fuse_enabled(), ambient);
    }
}
