//! # monet — a binary-relational database kernel
//!
//! A from-scratch Rust implementation of the Monet database kernel as
//! described in *Boncz, Wilschut, Kersten: "Flattening an Object Algebra to
//! Provide Performance" (ICDE 1998)*, Section 2/4.2/5. Monet stores all
//! data in **Binary Association Tables** ([`Bat`], Figure 2) — two-column
//! tables of atomic values — and executes queries with a small algebra of
//! bulk operators ([`ops`], Figure 4) driven by **property management** and
//! **dynamic optimization**: every command inspects the `ordered`/`key`/
//! `synced` properties and the accelerators of its operands just before
//! execution and picks the cheapest implementation.
//!
//! The pieces:
//!
//! * [`atom`] — the extensible base types (`int`, `dbl`, `str`, `oid`,
//!   `date`, the virtual `void`, …);
//! * [`column`], [`strheap`] — dense array heaps, string heaps, zero-copy
//!   slicing and mirroring;
//! * [`bat`], [`props`] — the BAT descriptor and its guarded properties;
//! * [`ops`] — the BAT algebra: select, join, semijoin, unique, group,
//!   multiplex `[f]`, set-aggregate `{g}`, set ops, sort/topn/mark;
//! * [`typed`] — the typed-kernel layer: resolve a column's element type
//!   **once per operator call** and monomorphize the loop body
//!   (`for_each_typed!`), so hot loops run over plain `&[T]` slices;
//! * [`accel`] — search accelerators: hash tables and the **datavector**
//!   (Section 5.2) with its memoized positional LOOKUP;
//! * [`mil`] — MIL programs: the straight-line execution language emitted
//!   by the MOA translator, with interpreter and Figure-10-style tracing;
//! * [`db`] — the persistent BAT catalog;
//! * [`pager`] — the simulated virtual-memory pager counting page faults;
//! * [`costmodel`] — the analytic IO cost model of Section 5.2.2 (Fig 8),
//!   plus the main-memory dispatch thresholds (partitioned join, morsel
//!   parallelism);
//! * [`par`] — intra-query parallelism: the persistent worker pool and the
//!   morsel executor the hot kernels fan out over (`FLATALG_THREADS`),
//!   with results bit-identical to the serial paths;
//! * [`gov`] — the resource governor: per-query memory budgets
//!   (`FLATALG_MEM_BUDGET`), cooperative cancellation and deadlines, and
//!   the deterministic fault injector (`FLATALG_FAULT`) whose probe points
//!   double as the cancellation points.
//!
//! ```
//! use monet::prelude::*;
//!
//! // Build the Customer_name BAT of Figure 2 and select a value.
//! let bat = Bat::with_inferred_props(
//!     Column::from_oids(vec![101, 102, 103, 104]),
//!     Column::from_strs(["Annita", "Martin", "Peter", "Annita"]),
//! );
//! let ctx = ExecCtx::new();
//! let martins = ops::select_eq(&ctx, &bat.mirror().mirror(), &AtomValue::str("Martin")).unwrap();
//! assert_eq!(martins.len(), 1);
//! assert_eq!(martins.head().oid_at(0), 102);
//! ```

pub mod accel;
pub mod atom;
pub mod bat;
pub mod buf;
pub mod column;
pub mod costmodel;
pub mod ctx;
pub mod db;
pub mod enc;
pub mod error;
pub mod fuse;
pub mod gov;
pub mod mil;
pub mod ops;
pub mod pager;
pub mod par;
pub mod props;
pub mod spill;
pub mod store;
pub mod strheap;
pub(crate) mod sync;
pub mod typed;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::atom::{AtomType, AtomValue, Date, Oid};
    pub use crate::bat::Bat;
    pub use crate::column::Column;
    pub use crate::ctx::ExecCtx;
    pub use crate::db::Db;
    pub use crate::enc::{enc_enabled, with_enc};
    pub use crate::error::{MonetError, Result};
    pub use crate::mil::{MilArg, MilOp, MilProgram, Var};
    pub use crate::ops;
    pub use crate::ops::{AggFunc, MultArg, ScalarFunc};
    pub use crate::pager::Pager;
    pub use crate::props::{ColProps, Enc, Props};
}
