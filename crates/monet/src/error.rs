//! Error type for the Monet kernel.

use std::fmt;

use crate::atom::AtomType;

/// Errors raised by kernel operations.
///
/// BAT-algebra operations have fixed expectations about the types found in
/// the columns of their parameters (Section 4.2 of the paper); violating
/// those expectations yields a [`MonetError`] rather than a panic so that
/// the MIL interpreter can report which statement failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MonetError {
    /// An operation received a column of the wrong atom type.
    TypeMismatch { op: &'static str, expected: AtomType, found: AtomType },
    /// Two columns that must have equal types differ.
    IncompatibleColumns { op: &'static str, left: AtomType, right: AtomType },
    /// An operation is undefined for the given atom type.
    Unsupported { op: &'static str, ty: AtomType },
    /// A BAT failed its descriptor-property validation.
    InvalidProperties(String),
    /// A MIL program referenced an unknown variable or catalog name.
    UnknownName(String),
    /// A MIL variable held a scalar where a BAT was required (or vice versa).
    KindMismatch { op: &'static str, detail: String },
    /// Arithmetic error (division by zero, overflow in checked contexts).
    Arithmetic(&'static str),
    /// Malformed operand (e.g. aggregate over empty BAT with no identity).
    Malformed { op: &'static str, detail: String },
    /// The query's tracked allocations exceeded its memory budget
    /// (`FLATALG_MEM_BUDGET` / [`crate::ctx::MemTracker::set_budget`]).
    /// Aborts that query only; the context stays usable.
    BudgetExceeded { op: &'static str, live_bytes: u64, budget_bytes: u64 },
    /// The query's cancellation token was triggered
    /// ([`crate::gov::CancelToken::cancel`]); observed cooperatively at the
    /// next governor probe (statement or morsel boundary).
    Cancelled,
    /// The query ran past its deadline ([`crate::gov::Governor`]); observed
    /// cooperatively at the next governor probe.
    DeadlineExceeded { site: &'static str },
    /// A deterministic injected fault (`FLATALG_FAULT=site:count` or the
    /// scoped [`crate::gov::Governor::arm_fault`] test API) fired at a
    /// governor probe point.
    Injected { site: &'static str, hit: u64 },
    /// A statement waited at the service admission gate past the configured
    /// timeout and was shed instead of queueing unboundedly.
    AdmissionTimeout { waited_ms: u64 },
    /// A persistent-store file failed validation (bad magic/version,
    /// checksum mismatch, truncation, descriptor inconsistency) or an
    /// out-of-core spill file could not be written/read. `path` names the
    /// offending file where one exists.
    Store { op: &'static str, path: String, detail: String },
}

impl fmt::Display for MonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonetError::TypeMismatch { op, expected, found } => {
                write!(f, "{op}: expected column of type {expected}, found {found}")
            }
            MonetError::IncompatibleColumns { op, left, right } => {
                write!(f, "{op}: incompatible column types {left} vs {right}")
            }
            MonetError::Unsupported { op, ty } => {
                write!(f, "{op}: unsupported for atom type {ty}")
            }
            MonetError::InvalidProperties(s) => write!(f, "invalid BAT properties: {s}"),
            MonetError::UnknownName(s) => write!(f, "unknown name: {s}"),
            MonetError::KindMismatch { op, detail } => write!(f, "{op}: {detail}"),
            MonetError::Arithmetic(s) => write!(f, "arithmetic error: {s}"),
            MonetError::Malformed { op, detail } => write!(f, "{op}: {detail}"),
            MonetError::BudgetExceeded { op, live_bytes, budget_bytes } => write!(
                f,
                "{op}: memory budget exceeded ({live_bytes} live bytes > {budget_bytes} budget)"
            ),
            MonetError::Cancelled => write!(f, "query cancelled"),
            MonetError::DeadlineExceeded { site } => {
                write!(f, "deadline exceeded (observed at {site})")
            }
            MonetError::Injected { site, hit } => {
                write!(f, "injected fault at {site} (probe hit {hit})")
            }
            MonetError::AdmissionTimeout { waited_ms } => {
                write!(f, "admission timed out after {waited_ms} ms; statement shed")
            }
            MonetError::Store { op, path, detail } => {
                if path.is_empty() {
                    write!(f, "{op}: {detail}")
                } else {
                    write!(f, "{op}: {path}: {detail}")
                }
            }
        }
    }
}

impl std::error::Error for MonetError {}

impl MonetError {
    /// True for errors raised by the resource governor (budget, deadline,
    /// cancellation, admission shedding, injected faults) as opposed to
    /// malformed programs or operands. Governor errors abort one query and
    /// leave every shared structure (gate, pool, caches) reusable.
    pub fn is_governor(&self) -> bool {
        matches!(
            self,
            MonetError::BudgetExceeded { .. }
                | MonetError::Cancelled
                | MonetError::DeadlineExceeded { .. }
                | MonetError::Injected { .. }
                | MonetError::AdmissionTimeout { .. }
        )
    }
}

/// The fallible-execution error type threaded through the MIL interpreter
/// and the hot operator entry points. Alias of [`MonetError`]: the governor
/// variants (budget / cancel / deadline / injected / shed) extend the
/// original operand-shape errors rather than forming a second hierarchy.
pub type ExecError = MonetError;

/// Convenience result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, MonetError>;
