//! Error type for the Monet kernel.

use std::fmt;

use crate::atom::AtomType;

/// Errors raised by kernel operations.
///
/// BAT-algebra operations have fixed expectations about the types found in
/// the columns of their parameters (Section 4.2 of the paper); violating
/// those expectations yields a [`MonetError`] rather than a panic so that
/// the MIL interpreter can report which statement failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MonetError {
    /// An operation received a column of the wrong atom type.
    TypeMismatch { op: &'static str, expected: AtomType, found: AtomType },
    /// Two columns that must have equal types differ.
    IncompatibleColumns { op: &'static str, left: AtomType, right: AtomType },
    /// An operation is undefined for the given atom type.
    Unsupported { op: &'static str, ty: AtomType },
    /// A BAT failed its descriptor-property validation.
    InvalidProperties(String),
    /// A MIL program referenced an unknown variable or catalog name.
    UnknownName(String),
    /// A MIL variable held a scalar where a BAT was required (or vice versa).
    KindMismatch { op: &'static str, detail: String },
    /// Arithmetic error (division by zero, overflow in checked contexts).
    Arithmetic(&'static str),
    /// Malformed operand (e.g. aggregate over empty BAT with no identity).
    Malformed { op: &'static str, detail: String },
}

impl fmt::Display for MonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonetError::TypeMismatch { op, expected, found } => {
                write!(f, "{op}: expected column of type {expected}, found {found}")
            }
            MonetError::IncompatibleColumns { op, left, right } => {
                write!(f, "{op}: incompatible column types {left} vs {right}")
            }
            MonetError::Unsupported { op, ty } => {
                write!(f, "{op}: unsupported for atom type {ty}")
            }
            MonetError::InvalidProperties(s) => write!(f, "invalid BAT properties: {s}"),
            MonetError::UnknownName(s) => write!(f, "unknown name: {s}"),
            MonetError::KindMismatch { op, detail } => write!(f, "{op}: {detail}"),
            MonetError::Arithmetic(s) => write!(f, "arithmetic error: {s}"),
            MonetError::Malformed { op, detail } => write!(f, "{op}: {detail}"),
        }
    }
}

impl std::error::Error for MonetError {}

/// Convenience result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, MonetError>;
