//! Intra-query parallelism: a morsel executor over the typed-kernel layer
//! (Section 2: "parallel iteration and parallel block execution").
//!
//! Monet's execution model exploits vertically fragmented BATs for
//! coarse-grained data parallelism: once layout is factored into dense
//! regions, a scan-shaped operator splits into independent **morsels**
//! (fixed-size contiguous row ranges) and the radix-partitioned join into
//! independent per-cluster tasks. This module provides the worker pool and
//! the task plumbing; the operators in [`crate::ops`] decide *whether* to
//! parallelize through [`crate::costmodel::par_threads`].
//!
//! # Determinism contract
//!
//! Every parallel kernel must be **bit-identical** to its serial form:
//!
//! * tasks are indexed, and their results are concatenated (or reduced) in
//!   task order — never in completion order — so operand order and tie
//!   rules survive any scheduling;
//! * morsel boundaries are a property of the *operand* (fixed
//!   [`MORSEL_ROWS`]), never of the thread count, so order-sensitive
//!   reductions (floating-point sums) give the same bits at every
//!   `FLATALG_THREADS` setting — including `1`, because the serial path
//!   walks the same morsels in the same order.
//!
//! The cross-crate harness `tests/par_determinism.rs` asserts this for
//! every parallelized kernel against both `ops::reference` and the
//! kernel's own serial path; new parallel kernels must be added there
//! (ROADMAP rule: *parallel kernels ship with a parallel-vs-serial oracle
//! test*).
//!
//! # The pool
//!
//! Workers are **persistent** `std::thread`s (no rayon; the build container
//! is vendor-only), spawned lazily up to the configured thread count and
//! parked on a channel between queries. Persistence matters beyond spawn
//! cost: the bounded thread-local scratch pool (`typed::take_u32`/`take_u64`)
//! lives per worker, so per-task hash tables and cluster buffers reuse
//! committed pages across operator calls instead of faulting fresh mmaps.
//!
//! `FLATALG_THREADS` sets the thread count (`=1` forces the serial path);
//! [`with_par_config`] scopes an override to the current thread, which is
//! what the determinism tests use to sweep thread counts race-free.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::{MonetError, Result};
use crate::gov::Governor;

/// Rows per morsel for scan-shaped operators: big enough that one task
/// amortizes dispatch (a channel send + an atomic increment), small enough
/// that 4-8 workers stay balanced on the ~100k-1M row operands where
/// parallelism first pays. Fixed — never derived from the thread count —
/// so morsel-decomposed reductions are bit-identical at every thread
/// count. Overridable per thread via [`with_par_config`] (tests use tiny
/// odd sizes to exercise remainder morsels).
pub const MORSEL_ROWS: usize = 64 * 1024;

/// Hard cap on pool size; `FLATALG_THREADS` beyond this is clamped.
pub const MAX_THREADS: usize = 32;

/// Per-thread override of the parallel configuration (tests; scoped).
#[derive(Clone, Copy, Default)]
struct ParOverride {
    threads: Option<usize>,
    min_rows: Option<usize>,
    morsel_rows: Option<usize>,
}

thread_local! {
    static OVERRIDE: std::cell::Cell<ParOverride> = const { std::cell::Cell::new(ParOverride { threads: None, min_rows: None, morsel_rows: None }) };
}

/// Environment knobs are parsed **once per process**: `configured_threads`
/// and the row threshold sit on every operator's dispatch path, and an
/// `env::var` per call would take the process environment lock (contended
/// exactly when many drivers dispatch at once) and allocate. Scoped
/// overrides exist precisely so tests never need to mutate the
/// environment mid-process.
fn env_usize_cached(cell: &'static OnceLock<Option<usize>>, var: &'static str) -> Option<usize> {
    *cell.get_or_init(|| std::env::var(var).ok()?.trim().parse::<usize>().ok())
}

static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
static ENV_MIN_ROWS: OnceLock<Option<usize>> = OnceLock::new();
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// The thread count parallel kernels run at: the scoped override, else
/// `FLATALG_THREADS`, else the machine's available parallelism. Always at
/// least 1; at most [`MAX_THREADS`]. A value of 1 forces the serial path
/// everywhere (the dispatchers check this before cutting morsels).
pub fn configured_threads() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    let raw = o
        .threads
        .or_else(|| env_usize_cached(&ENV_THREADS, "FLATALG_THREADS"))
        .unwrap_or_else(|| {
            *DEFAULT_THREADS
                .get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        });
    raw.clamp(1, MAX_THREADS)
}

/// The scoped-or-env override of `costmodel::PAR_MIN_ROWS`
/// (`FLATALG_PAR_MIN_ROWS`), if any.
pub(crate) fn min_rows_override() -> Option<usize> {
    OVERRIDE
        .with(|c| c.get())
        .min_rows
        .or_else(|| env_usize_cached(&ENV_MIN_ROWS, "FLATALG_PAR_MIN_ROWS"))
}

/// The effective morsel size (override, else [`MORSEL_ROWS`]).
pub fn morsel_rows() -> usize {
    OVERRIDE.with(|c| c.get()).morsel_rows.unwrap_or(MORSEL_ROWS).max(1)
}

/// Run `f` with a scoped parallel configuration on this thread: thread
/// count, parallelism row threshold, and morsel size (each `None` keeps
/// the ambient setting). Restores the previous configuration on exit —
/// panic-safe — and never touches the process environment, so concurrent
/// tests can sweep configurations without racing.
pub fn with_par_config<R>(
    threads: Option<usize>,
    min_rows: Option<usize>,
    morsel_rows: Option<usize>,
    f: impl FnOnce() -> R,
) -> R {
    struct Restore(ParOverride);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    OVERRIDE.with(|c| {
        c.set(ParOverride {
            threads: threads.or(prev.threads),
            min_rows: min_rows.or(prev.min_rows),
            morsel_rows: morsel_rows.or(prev.morsel_rows),
        })
    });
    f()
}

/// [`with_par_config`] fixing only the thread count.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    with_par_config(Some(threads), None, None, f)
}

/// The full effective parallel configuration as a hashable key:
/// `(threads, min-rows override, morsel rows)`. Plan caches include this
/// so a plan cached under one scoped/env configuration is never served
/// under another.
pub fn config_key() -> (usize, Option<usize>, usize) {
    (configured_threads(), min_rows_override(), morsel_rows())
}

// ---------------------------------------------------------------------------
// The worker pool.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lazily grown set of persistent workers, each parked on its own channel.
/// Senders are handed out round-robin per dispatch; a worker executes one
/// job at a time in arrival order.
struct Pool {
    senders: Mutex<Vec<Sender<Job>>>,
    /// Rotates the starting worker between dispatches so short bursts do
    /// not always load worker 0.
    rr: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads. A `run_tasks` issued *from* a worker
    /// (a nested parallel kernel inside a task) must run inline: its
    /// helper jobs would queue behind the very job that is waiting for
    /// them — a deadlock. Inline execution is always correct (results are
    /// combined in task order either way).
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool { senders: Mutex::new(Vec::new()), rr: AtomicUsize::new(0) })
}

/// Number of persistent workers the process-wide pool has spawned so far.
/// The pool grows lazily up to [`MAX_THREADS`] and is shared by every
/// caller in the process — a query service reports this to show that
/// concurrent sessions share one pool instead of spawning per-session
/// threads.
pub fn pool_workers() -> usize {
    POOL.get().map_or(0, |p| p.senders.lock().expect("worker pool poisoned").len())
}

/// Ensure at least `n` workers exist and dispatch one copy of `make_job`'s
/// product to each of `n` distinct workers. Returns the number dispatched
/// (always `n`; growth is infallible short of thread-spawn failure, which
/// panics — the kernel cannot degrade safely mid-operator).
fn dispatch_to_workers(n: usize, make_job: impl Fn() -> Job) {
    let p = pool();
    let mut senders = p.senders.lock().expect("worker pool poisoned");
    while senders.len() < n.min(MAX_THREADS) {
        let (tx, rx) = channel::<Job>();
        let id = senders.len();
        std::thread::Builder::new()
            .name(format!("monet-par-{id}"))
            .spawn(move || {
                IS_POOL_WORKER.with(|w| w.set(true));
                // Park between jobs; exit when the pool itself is dropped
                // (process end). A panicking job must not take the worker
                // down with it — the caller rethrows the payload.
                while let Ok(job) = rx.recv() {
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
                }
            })
            .expect("spawn parallel worker");
        senders.push(tx);
    }
    let start = p.rr.fetch_add(1, Ordering::Relaxed);
    for k in 0..n {
        let w = (start + k) % senders.len();
        senders[w].send(make_job()).expect("worker channel closed");
    }
}

/// Execute `ntasks` indexed tasks on `threads` threads (the caller
/// participates as one of them) and return the results **in task order**.
///
/// Scheduling is work-stealing over a shared atomic cursor, so skewed task
/// costs balance; determinism is unaffected because results are placed by
/// task index. With `threads <= 1` (or one task) the tasks run inline on
/// the caller, in order — the serial path of every parallel kernel.
///
/// A panicking task is re-thrown on the caller after all in-flight tasks
/// finish (workers survive; see the pool loop).
pub fn run_tasks<R, F>(ntasks: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    if ntasks == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(ntasks);
    // Inline serial execution when only one thread is wanted — and always
    // on pool worker threads, where dispatching helper jobs could queue
    // them behind the currently-executing job (deadlock; see
    // IS_POOL_WORKER).
    if threads == 1 || IS_POOL_WORKER.with(|w| w.get()) {
        return (0..ntasks).map(f).collect();
    }
    type TaskResult<R> = (usize, std::thread::Result<R>);
    let f = Arc::new(f);
    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = channel::<TaskResult<R>>();
    dispatch_to_workers(threads - 1, || {
        let f = Arc::clone(&f);
        let cursor = Arc::clone(&cursor);
        let tx = tx.clone();
        Box::new(move || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= ntasks {
                break;
            }
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| f(i)));
            let failed = r.is_err();
            if tx.send((i, r)).is_err() || failed {
                break;
            }
        })
    });
    drop(tx); // workers hold the remaining senders
    let mut out: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();
    let mut collected = 0usize;
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= ntasks {
            break;
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(r) => {
                out[i] = Some(r);
                collected += 1;
            }
            Err(p) => {
                panic_payload.get_or_insert(p);
                break;
            }
        }
    }
    // Collect worker results until every task is accounted for. Stopping
    // at `ntasks` (rather than at channel close) matters when several
    // drivers share the pool: this batch's helper jobs may still sit
    // queued behind another driver's — once all results are in, they
    // have nothing left to do, and waiting for them to reach the front of
    // the queue would couple this driver's latency to unrelated batches.
    // Every worker sends its result *before* checking for exit, so a
    // receive error (all senders dropped) with tasks missing can only
    // follow a panic.
    while collected < ntasks && panic_payload.is_none() {
        match rx.recv() {
            Ok((i, Ok(r))) => {
                out[i] = Some(r);
                collected += 1;
            }
            Ok((_, Err(p))) => {
                panic_payload.get_or_insert(p);
            }
            Err(_) => break,
        }
    }
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
    out.into_iter().map(|r| r.expect("parallel task dropped without panicking")).collect()
}

/// Governed [`run_tasks`]: before each task, check a shared stop flag and
/// probe the governor at `site` — a cancellation, deadline, or injected
/// fault makes the remaining tasks no-ops (workers abandon their morsels),
/// and the first-by-index error is returned after the batch drains.
///
/// The drain is total: every task index still settles (completed tasks
/// keep their results, abandoned ones are skipped), so the pool's
/// accounting is untouched and it stays reusable — an aborted query never
/// wedges concurrent drivers sharing the pool. `f` itself stays
/// infallible; partial results are dropped here, and kernels that hold
/// pooled scratch across the batch wrap it in recycle-on-drop guards so an
/// abort returns it (`tests/par_stress.rs` asserts the checkout balance).
pub fn try_run_tasks<R, F>(
    gov: &Arc<Governor>,
    site: &'static str,
    ntasks: usize,
    threads: usize,
    f: F,
) -> Result<Vec<R>>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let first_err: Arc<Mutex<Option<(usize, MonetError)>>> = Arc::new(Mutex::new(None));
    let results = {
        let gov = Arc::clone(gov);
        let stop = Arc::clone(&stop);
        let first_err = Arc::clone(&first_err);
        run_tasks(ntasks, threads, move |i| {
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            match gov.probe(site) {
                Ok(()) => Some(f(i)),
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    let mut slot =
                        first_err.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    // Keep the lowest task index: deterministic choice when
                    // several workers trip (e.g. all observing Cancelled).
                    if slot.as_ref().map_or(true, |(j, _)| i < *j) {
                        *slot = Some((i, e));
                    }
                    None
                }
            }
        })
    };
    let taken = first_err.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    if let Some((_, e)) = taken {
        return Err(e);
    }
    Ok(results.into_iter().map(|r| r.expect("no error recorded but a task was skipped")).collect())
}

/// Governed [`for_each_morsel`]: probe at every morsel boundary
/// ([`crate::gov::site::PAR_MORSEL`]); see [`try_run_tasks`].
pub fn try_for_each_morsel<R, F>(
    gov: &Arc<Governor>,
    len: usize,
    threads: usize,
    f: F,
) -> Result<Vec<R>>
where
    R: Send + 'static,
    F: Fn(std::ops::Range<usize>) -> R + Send + Sync + 'static,
{
    let ms = morsels(len);
    try_run_tasks(gov, crate::gov::site::PAR_MORSEL, ms.len(), threads, move |i| f(ms[i].clone()))
}

/// The fixed morsel ranges of a `len`-row operand: `ceil(len / morsel)`
/// contiguous windows in operand order, all but the last exactly
/// [`morsel_rows`] long.
pub fn morsels(len: usize) -> Vec<std::ops::Range<usize>> {
    let m = morsel_rows();
    let mut out = Vec::with_capacity(len.div_ceil(m).max(1));
    let mut at = 0;
    while at < len {
        let end = (at + m).min(len);
        out.push(at..end);
        at = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Map `f` over the fixed morsels of a `len`-row operand on `threads`
/// threads; results come back in morsel (= operand) order. This is the
/// scan-shaped entry point: `f` receives the global row range and returns
/// that range's partial result (matching positions, a partial accumulator,
/// an output column slice, ...), and the caller concatenates or reduces
/// the parts **in morsel order** — the determinism contract.
pub fn for_each_morsel<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(std::ops::Range<usize>) -> R + Send + Sync + 'static,
{
    let ms = morsels(len);
    run_tasks(ms.len(), threads, move |i| f(ms[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_exactly_in_order() {
        with_par_config(None, None, Some(7), || {
            for len in [0usize, 1, 6, 7, 8, 20, 21] {
                let ms = morsels(len);
                let mut at = 0;
                for m in &ms {
                    assert_eq!(m.start, at, "len={len}");
                    assert!(m.len() <= 7 && (!m.is_empty() || len == 0), "len={len}");
                    at = m.end;
                }
                assert_eq!(at, len, "len={len}");
            }
        });
    }

    #[test]
    fn run_tasks_returns_in_task_order_any_thread_count() {
        for threads in [1usize, 2, 4, 7] {
            let got = run_tasks(23, threads, |i| i * i);
            let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_tasks_balances_skewed_tasks() {
        // Tasks of wildly different cost still land in index order.
        let got = run_tasks(12, 4, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(got, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn config_override_is_scoped_and_restored() {
        let ambient = configured_threads();
        let inner = with_par_config(Some(5), Some(10), Some(3), || {
            assert_eq!(morsel_rows(), 3);
            assert_eq!(min_rows_override(), Some(10));
            configured_threads()
        });
        assert_eq!(inner, 5);
        assert_eq!(configured_threads(), ambient);
        assert_eq!(morsel_rows(), MORSEL_ROWS);
    }

    #[test]
    fn nested_overrides_compose() {
        with_par_config(Some(4), None, None, || {
            with_par_config(None, Some(77), None, || {
                assert_eq!(configured_threads(), 4); // inherited from outer
                assert_eq!(min_rows_override(), Some(77));
            });
            assert_eq!(min_rows_override(), None);
        });
    }

    #[test]
    fn nested_run_tasks_never_deadlocks() {
        // A task that itself fans out: on pool workers the inner batch
        // must run inline (its helper jobs would queue behind the very
        // job awaiting them); on the caller the inner batch completes as
        // soon as its results are in, even while the outer batch still
        // occupies the workers.
        let got = run_tasks(4, 4, |i| run_tasks(3, 4, move |j| i * 10 + j).iter().sum::<usize>());
        assert_eq!(got, (0..4).map(|i| 30 * i + 3).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let r = std::panic::catch_unwind(|| {
            run_tasks(8, 4, |i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
                i
            })
        });
        assert!(r.is_err());
        // The pool still executes subsequent batches correctly.
        let got = run_tasks(8, 4, |i| i + 1);
        assert_eq!(got, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn try_run_tasks_matches_run_tasks_when_ungoverned() {
        let gov = Arc::new(Governor::new());
        for threads in [1usize, 4] {
            let got = try_run_tasks(&gov, "par/task", 23, threads, |i| i * i).unwrap();
            let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn cancelled_batch_aborts_and_pool_stays_reusable() {
        let gov = Arc::new(Governor::new());
        gov.cancel_token().cancel();
        for threads in [1usize, 4] {
            let ran = Arc::new(AtomicUsize::new(0));
            let r = {
                let ran = Arc::clone(&ran);
                try_run_tasks(&gov, "par/task", 100, threads, move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            };
            assert_eq!(r.unwrap_err(), MonetError::Cancelled, "threads={threads}");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "pre-cancelled: no task body runs");
        }
        // The pool (and an un-cancelled governor) still works afterwards.
        gov.cancel_token().clear();
        let got = try_run_tasks(&gov, "par/task", 8, 4, |i| i + 1).unwrap();
        assert_eq!(got, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn injected_fault_mid_batch_drains_cleanly() {
        let gov = Arc::new(Governor::new());
        for threads in [1usize, 4] {
            gov.arm_fault("par/task", 5);
            let err = try_run_tasks(&gov, "par/task", 64, threads, |i| i).unwrap_err();
            assert!(
                matches!(err, MonetError::Injected { site: "par/task", .. }),
                "threads={threads}: {err:?}"
            );
            // Injector is one-shot: the retried batch completes.
            let got = try_run_tasks(&gov, "par/task", 64, threads, |i| i).unwrap();
            assert_eq!(got, (0..64).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn try_for_each_morsel_covers_in_order() {
        let gov = Arc::new(Governor::new());
        with_par_config(None, None, Some(7), || {
            let got = try_for_each_morsel(&gov, 20, 4, |r| (r.start, r.end)).unwrap();
            assert_eq!(got, vec![(0, 7), (7, 14), (14, 20)]);
        });
    }

    #[test]
    fn worker_thread_locals_persist_across_batches() {
        // The scratch pool is per worker thread; a warm buffer taken and
        // returned inside one batch must be reusable in the next. We can't
        // observe buffer identity across threads directly, so assert the
        // weaker, load-bearing property: take/put on worker threads never
        // corrupts data under repeated batches.
        for round in 0..3u64 {
            let ok = run_tasks(8, 4, move |i| {
                let mut v = crate::typed::take_u64(1024);
                v.extend((0..1024u64).map(|x| x * (i as u64 + 1) + round));
                let good =
                    v.iter().enumerate().all(|(x, &got)| got == x as u64 * (i as u64 + 1) + round);
                crate::typed::put_u64(v);
                good
            });
            assert!(ok.iter().all(|&b| b), "round {round}");
        }
    }
}
