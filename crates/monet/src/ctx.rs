//! Execution context: pager, trace, memory accounting, oid generation.
//!
//! Every BAT-algebra operator takes an [`ExecCtx`]. The default context is
//! entirely passive (no pager, no trace) and adds no measurable overhead;
//! the benchmark harnesses install a pager and a trace sink to produce the
//! page-fault and per-statement columns of Figures 8–10.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::pager::Pager;

/// One trace record per executed kernel operation, mirroring the rows of
/// the paper's Figure 10 (elapsed ms, page faults, and — our addition — the
/// dynamically chosen implementation).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Operator name (`semijoin`, `join`, ...).
    pub op: &'static str,
    /// Implementation selected by dynamic optimization
    /// (`merge`, `hash`, `sync`, `datavector`, `binary-search`, ...).
    pub algo: &'static str,
    /// Wall-clock milliseconds.
    pub ms: f64,
    /// Page faults caused by this operation (0 without a pager).
    pub faults: u64,
    /// Result size in BUNs.
    pub result_len: usize,
    /// Result heap bytes.
    pub result_bytes: usize,
}

/// Aggregate memory accounting for the "total / max (MB)" columns of
/// Figure 9.
#[derive(Debug, Default)]
pub struct MemTracker {
    /// Sum of all intermediate-result bytes materialized so far.
    total_bytes: AtomicU64,
    /// High-water mark of the live set, maintained by the MIL interpreter.
    max_live_bytes: AtomicU64,
}

impl MemTracker {
    pub fn add_total(&self, bytes: u64) {
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn observe_live(&self, bytes: u64) {
        self.max_live_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    pub fn max_live_bytes(&self) -> u64 {
        self.max_live_bytes.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.total_bytes.store(0, Ordering::Relaxed);
        self.max_live_bytes.store(0, Ordering::Relaxed);
    }
}

/// Shared execution context.
#[derive(Clone, Default)]
pub struct ExecCtx {
    /// Simulated pager; `None` disables fault accounting.
    pub pager: Option<Arc<Pager>>,
    /// Trace sink; `None` disables tracing.
    pub trace: Option<Arc<Mutex<Vec<TraceEvent>>>>,
    /// Memory accounting (always on; negligible cost).
    pub mem: Arc<MemTracker>,
    /// Generator for fresh oids (`unique_oid(..)` of the `group` operator).
    oid_gen: Arc<AtomicU64>,
}

/// Fresh oids start far above any base-data oid so that generated group
/// identifiers never collide with stored object identifiers.
const FRESH_OID_BASE: Oid = 1 << 40;

impl ExecCtx {
    /// Passive context: no pager, no trace.
    pub fn new() -> ExecCtx {
        ExecCtx {
            pager: None,
            trace: None,
            mem: Arc::new(MemTracker::default()),
            oid_gen: Arc::new(AtomicU64::new(FRESH_OID_BASE)),
        }
    }

    /// Attach a pager.
    pub fn with_pager(mut self, pager: Arc<Pager>) -> ExecCtx {
        self.pager = Some(pager);
        self
    }

    /// Attach a trace sink; retrieve events with [`ExecCtx::take_trace`].
    pub fn with_trace(mut self) -> ExecCtx {
        self.trace = Some(Arc::new(Mutex::new(Vec::new())));
        self
    }

    /// Drain collected trace events.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        match &self.trace {
            Some(t) => std::mem::take(&mut *t.lock()),
            None => Vec::new(),
        }
    }

    /// Reserve `n` fresh consecutive oids, returning the first.
    pub fn fresh_oids(&self, n: usize) -> Oid {
        self.oid_gen.fetch_add(n as u64, Ordering::Relaxed)
    }

    /// Current fault count (0 without a pager).
    pub fn faults(&self) -> u64 {
        self.pager.as_ref().map_or(0, |p| p.faults())
    }

    /// Record a completed operation: trace event + memory accounting.
    /// `faults_before` should be sampled via [`ExecCtx::faults`] before the
    /// operation ran.
    pub fn record(
        &self,
        op: &'static str,
        algo: &'static str,
        started: std::time::Instant,
        faults_before: u64,
        result: &Bat,
    ) {
        let bytes = result.bytes();
        self.mem.add_total(bytes as u64);
        if let Some(t) = &self.trace {
            t.lock().push(TraceEvent {
                op,
                algo,
                ms: started.elapsed().as_secs_f64() * 1e3,
                faults: self.faults().saturating_sub(faults_before),
                result_len: result.len(),
                result_bytes: bytes,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn fresh_oids_are_disjoint() {
        let ctx = ExecCtx::new();
        let a = ctx.fresh_oids(10);
        let b = ctx.fresh_oids(5);
        assert!(b >= a + 10);
        assert!(a >= FRESH_OID_BASE);
    }

    #[test]
    fn record_accumulates_total_and_trace() {
        let ctx = ExecCtx::new().with_trace();
        let bat = Bat::new(Column::void(0, 8), Column::from_ints(vec![1; 8]));
        let before = ctx.faults();
        ctx.record("test", "unit", std::time::Instant::now(), before, &bat);
        assert_eq!(ctx.mem.total_bytes(), bat.bytes() as u64);
        let trace = ctx.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].op, "test");
        assert_eq!(trace[0].result_len, 8);
    }

    #[test]
    fn mem_tracker_high_water() {
        let m = MemTracker::default();
        m.observe_live(100);
        m.observe_live(50);
        m.observe_live(200);
        assert_eq!(m.max_live_bytes(), 200);
    }
}
