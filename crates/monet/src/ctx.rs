//! Execution context: pager, trace, memory accounting, oid generation, and
//! the resource governor.
//!
//! Every BAT-algebra operator takes an [`ExecCtx`]. The default context is
//! entirely passive (no pager, no trace, no budget) and adds no measurable
//! overhead; the benchmark harnesses install a pager and a trace sink to
//! produce the page-fault and per-statement columns of Figures 8–10, and
//! the query service arms per-statement deadlines and memory budgets on the
//! same context.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::sync::Mutex;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::error::{MonetError, Result};
use crate::gov::{CancelToken, Governor};
use crate::pager::Pager;

/// `FLATALG_MEM_BUDGET` parsed once per process: default per-query byte
/// budget applied to every new context (0 or unset = unlimited). Accepts a
/// plain byte count or a `k`/`m`/`g` suffix (powers of 1024).
fn env_mem_budget() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| match std::env::var("FLATALG_MEM_BUDGET") {
        Ok(v) => parse_mem_budget(&v),
        Err(_) => 0,
    })
}

/// Parse a byte-budget string: a plain count or a `k`/`m`/`g` suffix
/// (powers of 1024); unparseable input is 0 (= unlimited).
pub fn parse_mem_budget(raw: &str) -> u64 {
    let s = raw.trim().to_ascii_lowercase();
    let (digits, unit) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (d, s.as_bytes()[s.len() - 1]),
        None => (s.as_str(), b' '),
    };
    let n: u64 = digits.trim().parse().unwrap_or(0);
    match unit {
        b'k' => n << 10,
        b'm' => n << 20,
        b'g' => n << 30,
        _ => n,
    }
}

/// One trace record per executed kernel operation, mirroring the rows of
/// the paper's Figure 10 (elapsed ms, page faults, and — our addition — the
/// dynamically chosen implementation).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Operator name (`semijoin`, `join`, ...).
    pub op: &'static str,
    /// Implementation selected by dynamic optimization
    /// (`merge`, `hash`, `sync`, `datavector`, `binary-search`, ...).
    pub algo: &'static str,
    /// Wall-clock milliseconds.
    pub ms: f64,
    /// Page faults caused by this operation (0 without a pager).
    pub faults: u64,
    /// Result size in BUNs.
    pub result_len: usize,
    /// Result heap bytes.
    pub result_bytes: usize,
}

/// Memory accounting and enforcement.
///
/// Two roles: (1) the observational "total / max (MB)" columns of Figure 9
/// (`total_bytes` / `max_live_bytes`, maintained by the MIL interpreter's
/// liveness analysis), and (2) the **governor's byte budget** — every
/// tracked allocation goes through [`MemTracker::charge`], which fails with
/// [`MonetError::BudgetExceeded`] once the charged live set passes the
/// budget. The interpreter releases a value's charge when liveness frees
/// it, so the budget bounds the *live* intermediate set, not the total.
#[derive(Debug, Default)]
pub struct MemTracker {
    /// Sum of all intermediate-result bytes materialized so far.
    total_bytes: AtomicU64,
    /// High-water mark of the live set, maintained by the MIL interpreter.
    max_live_bytes: AtomicU64,
    /// Charged-but-not-released bytes (the governor's live set).
    charged: AtomicU64,
    /// High-water mark of `charged` since the last [`MemTracker::begin`].
    charged_peak: AtomicU64,
    /// Enforced budget in bytes; 0 = unlimited.
    budget_bytes: AtomicU64,
    /// Cumulative bytes written to out-of-core spill files
    /// ([`crate::spill`]). Observational, like `total_bytes`: spilled
    /// pairs are on disk precisely so they do *not* count against the
    /// in-memory budget.
    spilled_bytes: AtomicU64,
}

impl MemTracker {
    pub fn add_total(&self, bytes: u64) {
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn observe_live(&self, bytes: u64) {
        self.max_live_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    pub fn max_live_bytes(&self) -> u64 {
        self.max_live_bytes.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.total_bytes.store(0, Ordering::Relaxed);
        self.max_live_bytes.store(0, Ordering::Relaxed);
        self.charged.store(0, Ordering::Relaxed);
        self.charged_peak.store(0, Ordering::Relaxed);
        self.spilled_bytes.store(0, Ordering::Relaxed);
    }

    /// Account bytes written to an out-of-core spill file.
    pub fn add_spilled(&self, bytes: u64) {
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Cumulative spill-file bytes written through this tracker.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Set (or lift, with `None`/0) the per-query byte budget. Sessions use
    /// this to override the `FLATALG_MEM_BUDGET` process default.
    pub fn set_budget(&self, bytes: Option<u64>) {
        self.budget_bytes.store(bytes.unwrap_or(0), Ordering::Relaxed);
    }

    /// Enforced budget in bytes; 0 = unlimited.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes.load(Ordering::Relaxed)
    }

    /// Start a fresh charge window (one MIL program): the live charge and
    /// its peak restart at zero.
    pub fn begin(&self) {
        self.charged.store(0, Ordering::Relaxed);
        self.charged_peak.store(0, Ordering::Relaxed);
    }

    /// Charge `bytes` against the budget on behalf of `op`. The charge
    /// sticks even on failure (the allocation already happened); the
    /// interpreter's liveness frees release it either way.
    pub fn charge(&self, op: &'static str, bytes: u64) -> Result<()> {
        let live = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.charged_peak.fetch_max(live, Ordering::Relaxed);
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        if budget != 0 && live > budget {
            return Err(MonetError::BudgetExceeded { op, live_bytes: live, budget_bytes: budget });
        }
        Ok(())
    }

    /// Return a previous charge (the value was freed).
    pub fn release(&self, bytes: u64) {
        // Saturating: an unmatched release must not wrap the live counter.
        let _ = self
            .charged
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
    }

    /// Currently charged (live) bytes.
    pub fn charged_bytes(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// High-water mark of the charged live set since [`MemTracker::begin`].
    pub fn charged_peak(&self) -> u64 {
        self.charged_peak.load(Ordering::Relaxed)
    }
}

/// Shared execution context.
#[derive(Clone)]
pub struct ExecCtx {
    /// Simulated pager; `None` disables fault accounting.
    pub pager: Option<Arc<Pager>>,
    /// Trace sink; `None` disables tracing.
    pub trace: Option<Arc<Mutex<Vec<TraceEvent>>>>,
    /// Memory accounting and budget enforcement (always on).
    pub mem: Arc<MemTracker>,
    /// Resource governor: cancellation, deadline, fault injection.
    pub gov: Arc<Governor>,
    /// Generator for fresh oids (`unique_oid(..)` of the `group` operator).
    oid_gen: Arc<AtomicU64>,
}

impl Default for ExecCtx {
    fn default() -> ExecCtx {
        ExecCtx::new()
    }
}

/// Fresh oids start far above any base-data oid so that generated group
/// identifiers never collide with stored object identifiers.
const FRESH_OID_BASE: Oid = 1 << 40;

impl ExecCtx {
    /// Passive context: no pager, no trace; the memory budget defaults to
    /// `FLATALG_MEM_BUDGET` (unlimited when unset) and the fault injector
    /// to `FLATALG_FAULT` (disarmed when unset).
    pub fn new() -> ExecCtx {
        let mem = MemTracker::default();
        mem.set_budget(Some(env_mem_budget()));
        ExecCtx {
            pager: None,
            trace: None,
            mem: Arc::new(mem),
            gov: Arc::new(Governor::new()),
            oid_gen: Arc::new(AtomicU64::new(FRESH_OID_BASE)),
        }
    }

    /// One governor probe (cancellation / deadline / fault-injection
    /// point). See [`Governor::probe`].
    #[inline]
    pub fn probe(&self, site: &'static str) -> Result<()> {
        self.gov.probe(site)
    }

    /// A cancellation handle for this context; usable from any thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.gov.cancel_token()
    }

    /// Attach a pager.
    pub fn with_pager(mut self, pager: Arc<Pager>) -> ExecCtx {
        self.pager = Some(pager);
        self
    }

    /// Attach a trace sink; retrieve events with [`ExecCtx::take_trace`].
    pub fn with_trace(mut self) -> ExecCtx {
        self.trace = Some(Arc::new(Mutex::new(Vec::new())));
        self
    }

    /// Drain collected trace events.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        match &self.trace {
            Some(t) => std::mem::take(&mut *t.lock()),
            None => Vec::new(),
        }
    }

    /// Reserve `n` fresh consecutive oids, returning the first.
    pub fn fresh_oids(&self, n: usize) -> Oid {
        self.oid_gen.fetch_add(n as u64, Ordering::Relaxed)
    }

    /// Current fault count (0 without a pager).
    pub fn faults(&self) -> u64 {
        self.pager.as_ref().map_or(0, |p| p.faults())
    }

    /// Record a completed operation: trace event + memory accounting + the
    /// governor's budget charge. `faults_before` should be sampled via
    /// [`ExecCtx::faults`] before the operation ran. Fails with
    /// [`MonetError::BudgetExceeded`] when the charge passes the budget —
    /// the trace event is still emitted so aborted queries remain
    /// diagnosable.
    pub fn record(
        &self,
        op: &'static str,
        algo: &'static str,
        started: std::time::Instant,
        faults_before: u64,
        result: &Bat,
    ) -> Result<()> {
        let bytes = result.bytes();
        self.mem.add_total(bytes as u64);
        if let Some(t) = &self.trace {
            t.lock().push(TraceEvent {
                op,
                algo,
                ms: started.elapsed().as_secs_f64() * 1e3,
                faults: self.faults().saturating_sub(faults_before),
                result_len: result.len(),
                result_bytes: bytes,
            });
        }
        self.mem.charge(op, bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn fresh_oids_are_disjoint() {
        let ctx = ExecCtx::new();
        let a = ctx.fresh_oids(10);
        let b = ctx.fresh_oids(5);
        assert!(b >= a + 10);
        assert!(a >= FRESH_OID_BASE);
    }

    #[test]
    fn record_accumulates_total_and_trace() {
        let ctx = ExecCtx::new().with_trace();
        let bat = Bat::new(Column::void(0, 8), Column::from_ints(vec![1; 8]));
        let before = ctx.faults();
        ctx.record("test", "unit", std::time::Instant::now(), before, &bat).unwrap();
        assert_eq!(ctx.mem.total_bytes(), bat.bytes() as u64);
        assert_eq!(ctx.mem.charged_bytes(), bat.bytes() as u64);
        let trace = ctx.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].op, "test");
        assert_eq!(trace[0].result_len, 8);
    }

    #[test]
    fn record_charges_physical_dict_bytes() {
        // Regression: `record` must charge the *physical* (encoded) size of
        // a dictionary column — u32 codes plus the deduplicated dictionary —
        // not the decoded string footprint.
        let ctx = ExecCtx::new();
        let s = "Clerk#000000000000000042";
        let raw = Column::from_strs(vec![s; 64]);
        let dict = raw.encode(false);
        assert_eq!(dict.encoding(), crate::props::Enc::Dict);
        // One u8 code per row (a single-entry dictionary fits 1-byte codes)
        // + one 4-byte dictionary offset + the single 24-byte entry. Pinned
        // so a layout change shows up here.
        assert_eq!(dict.bytes(), 64 + 4 + s.len());
        assert!(dict.bytes() < raw.bytes(), "encoding must shrink the column");
        let bat = Bat::new(Column::void(0, 64), dict);
        ctx.mem.begin();
        ctx.record("select", "dict-code", std::time::Instant::now(), 0, &bat).unwrap();
        assert_eq!(ctx.mem.charged_bytes(), bat.bytes() as u64);
        // The raw twin would have charged the full duplicated heap.
        assert!(ctx.mem.charged_bytes() < raw.bytes() as u64);
    }

    #[test]
    fn mem_tracker_high_water() {
        let m = MemTracker::default();
        m.observe_live(100);
        m.observe_live(50);
        m.observe_live(200);
        assert_eq!(m.max_live_bytes(), 200);
    }

    #[test]
    fn charge_enforces_the_budget_and_release_frees_headroom() {
        let m = MemTracker::default();
        assert!(m.charge("a", 1 << 30).is_ok(), "no budget: unlimited");
        m.begin();
        m.set_budget(Some(100));
        assert!(m.charge("a", 60).is_ok());
        assert!(m.charge("b", 40).is_ok(), "exactly at budget is fine");
        let err = m.charge("c", 1).unwrap_err();
        assert_eq!(err, MonetError::BudgetExceeded { op: "c", live_bytes: 101, budget_bytes: 100 });
        assert_eq!(m.charged_peak(), 101, "failed charge still counted (alloc happened)");
        // Liveness frees return headroom; the query-local peak survives.
        m.release(101);
        assert_eq!(m.charged_bytes(), 0);
        assert!(m.charge("d", 100).is_ok());
        // Lifting the budget makes the same charge pattern succeed.
        m.begin();
        m.set_budget(None);
        assert!(m.charge("e", 1 << 40).is_ok());
    }

    #[test]
    fn release_saturates_instead_of_wrapping() {
        let m = MemTracker::default();
        m.charge("a", 10).unwrap();
        m.release(1000);
        assert_eq!(m.charged_bytes(), 0);
    }

    #[test]
    fn begin_resets_the_charge_window() {
        let m = MemTracker::default();
        m.set_budget(Some(100));
        m.charge("a", 90).unwrap();
        m.begin();
        assert_eq!(m.charged_bytes(), 0);
        assert_eq!(m.charged_peak(), 0);
        assert!(m.charge("b", 90).is_ok(), "fresh window, fresh headroom");
        assert_eq!(m.budget_bytes(), 100, "begin() keeps the budget");
    }
}
