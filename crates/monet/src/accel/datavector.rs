//! The datavector accelerator (Section 5.2, Figure 7).
//!
//! OLAP queries first *select* on selection-attributes, then *compute* on
//! value-attributes of the selected objects. Selections want attribute BATs
//! sorted on tail (an inverted list per attribute); the oid→value path then
//! needs semijoins against the selection. The datavector resolves these
//! conflicting clustering requirements: next to each tail-sorted attribute
//! BAT, keep a fully vectorized representation — the class's sorted
//! **extent** of oids plus a per-attribute **value vector** in oid order,
//! positionally synced with the extent.
//!
//! The datavector semijoin (Section 5.2.1) looks every right-operand oid up
//! in the extent with probe-based binary search, memoizes the found
//! positions in a `LOOKUP` array keyed by the right operand's identity, and
//! then fetches head/tail values positionally. The extent — and with it the
//! memo — is **shared by all datavectors of a class** ("the MOA mapping of
//! objects already gave us the unary vector of oids, as the extent BAT"),
//! so subsequent semijoins of *any* attribute with the same selection skip
//! the lookup: "the previous datavector-semijoin has already blazed the
//! trail into the extent".

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::Mutex;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::column::{Column, ColumnIdentity};
use crate::ctx::ExecCtx;
use crate::pager;

/// Memoized result of a LOOKUP pass: the extent positions of the right
/// operand's oids, plus the *gathered head column*. Sharing the head column
/// across semijoins with the same selection is what makes their results
/// `synced` — "both stem from a semijoin with a 100% match with the small
/// relation, so they again are synced" (Section 6.2.1).
#[derive(Debug, Clone)]
pub struct Lookup {
    /// Positions into the extent (and every synced vector), in
    /// right-operand order.
    pub positions: Arc<Vec<u32>>,
    /// `extent.gather(positions)`: the matched oids, shared by identity.
    pub head: Column,
}

/// The sorted oid extent of a class, shared by all of its datavectors,
/// carrying the memoized LOOKUP arrays.
#[derive(Debug)]
pub struct Extent {
    oids: Column,
    lookup_memo: Mutex<HashMap<ColumnIdentity, Lookup>>,
}

impl Extent {
    /// Wrap a sorted, duplicate-free oid column (`extent[oid,void]` heads).
    pub fn new(oids: Column) -> Arc<Extent> {
        assert!(oids.is_oidlike(), "extent must hold oids");
        debug_assert!(oids.check_sorted(), "extent must be sorted");
        debug_assert!(oids.check_key(), "extent must be duplicate-free");
        Arc::new(Extent { oids, lookup_memo: Mutex::new(HashMap::new()) })
    }

    /// The extent column.
    pub fn oids(&self) -> &Column {
        &self.oids
    }

    pub fn len(&self) -> usize {
        self.oids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// True when a memoized LOOKUP for this operand already exists — the
    /// "trail has been blazed" fast path is available.
    pub fn lookup_cached(&self, right_head: &Column) -> bool {
        self.lookup_memo.lock().contains_key(&right_head.identity())
    }

    /// Positions in the extent of every right-operand head oid that exists
    /// there, in right-operand order (lines 07-15 of the pseudo code).
    /// Memoized per right-operand identity, so "subsequent semijoins with B
    /// do not re-do the lookup effort".
    pub fn lookup(&self, ctx: &ExecCtx, right_head: &Column) -> Lookup {
        let key = right_head.identity();
        if let Some(hit) = self.lookup_memo.lock().get(&key) {
            return hit.clone();
        }
        let pgr = ctx.pager.as_deref();
        let out: Vec<u32> = if let Some(seq) = self.oids.void_seq() {
            // Dense extent: direct positional computation, one typed
            // dispatch over the probe column.
            let n = self.oids.len() as Oid;
            crate::for_each_oidlike!(right_head, |rh| {
                use crate::typed::TypedVals;
                let mut out = Vec::with_capacity(rh.len());
                for i in 0..rh.len() {
                    if let Some(p) = pgr {
                        pager::touch_fetch(p, right_head, i);
                    }
                    let o = rh.value(i);
                    if o >= seq && o < seq + n {
                        out.push((o - seq) as u32);
                    }
                }
                out
            })
        } else {
            let ext_oids = self.oids.as_oid_slice().expect("materialized oid extent");
            crate::for_each_oidlike!(right_head, |rh| {
                use crate::typed::TypedVals;
                let mut out = Vec::with_capacity(rh.len());
                for i in 0..rh.len() {
                    if let Some(p) = pgr {
                        pager::touch_fetch(p, right_head, i);
                        pager::touch_binary_search(p, &self.oids);
                    }
                    let o = rh.value(i);
                    if let Ok(pos) = ext_oids.binary_search(&o) {
                        out.push(pos as u32);
                    }
                }
                out
            })
        };
        let head = self.oids.gather(&out);
        let result = Lookup { positions: Arc::new(out), head };
        self.lookup_memo.lock().insert(key, result.clone());
        result
    }

    /// Drop all memoized lookups (after updates in a real system; exposed
    /// here for benchmarks measuring cold vs. warm semijoins).
    pub fn clear_lookup_memo(&self) {
        self.lookup_memo.lock().clear();
    }
}

/// A datavector: the class extent plus one attribute's value vector in oid
/// order (`vector[i]` is the attribute value of object `extent[i]`).
#[derive(Debug)]
pub struct Datavector {
    extent: Arc<Extent>,
    vector: Column,
}

impl Datavector {
    /// Pair a shared class extent with a value vector (must be positionally
    /// aligned: `vector[i]` belongs to `extent.oids()[i]`).
    pub fn new(extent: Arc<Extent>, vector: Column) -> Datavector {
        assert_eq!(extent.len(), vector.len(), "vector must align with extent");
        Datavector { extent, vector }
    }

    /// Create from an oid-ordered attribute BAT `[oid, T]` (head sorted),
    /// building a private extent. This is the cheap creation path of
    /// Section 6: freshly loaded BATs are oid-ordered, so the datavector is
    /// just a projection (Figure 7 step 1). Loaders that decompose a whole
    /// class should build one [`Extent`] and use [`Datavector::new`] so the
    /// LOOKUP memo is shared.
    pub fn from_oid_ordered(bat: &Bat) -> Datavector {
        Datavector::new(Extent::new(bat.head().clone()), bat.tail().clone())
    }

    /// Create by explicitly sorting an arbitrary `[oid, T]` BAT on head.
    pub fn from_unordered(bat: &Bat) -> Datavector {
        assert!(bat.head().is_oidlike());
        let perm = bat.head().sort_perm();
        Datavector::new(Extent::new(bat.head().gather(&perm)), bat.tail().gather(&perm))
    }

    /// The shared class extent.
    pub fn extent(&self) -> &Arc<Extent> {
        &self.extent
    }

    /// The value vector, positionally synced with the extent.
    pub fn vector(&self) -> &Column {
        &self.vector
    }

    pub fn len(&self) -> usize {
        self.vector.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vector.is_empty()
    }

    /// Heap bytes of the value vector (Figure 9 counts datavector space
    /// separately from base data; the shared extent is counted once by the
    /// loader).
    pub fn bytes(&self) -> usize {
        self.vector.bytes()
    }

    /// Memoized LOOKUP through the shared extent.
    pub fn lookup(&self, ctx: &ExecCtx, right_head: &Column) -> Lookup {
        self.extent.lookup(ctx, right_head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomValue;

    fn customer_name_dv() -> (Bat, Datavector) {
        // Figure 7: Customer_name with oids 101..106.
        let oid_ordered = Bat::with_inferred_props(
            Column::from_oids(vec![101, 102, 103, 104, 105, 106]),
            Column::from_strs(["Annita", "Martin", "Peter", "Annita", "Peter", "Martin"]),
        );
        let dv = Datavector::from_oid_ordered(&oid_ordered);
        (oid_ordered, dv)
    }

    #[test]
    fn figure7_creation() {
        let (bat, dv) = customer_name_dv();
        assert_eq!(dv.len(), 6);
        assert_eq!(dv.extent().oids().oid_at(0), 101);
        assert_eq!(dv.vector().str_at(2), "Peter");
        assert!(dv.bytes() > 0);
        assert_eq!(dv.vector().str_at(5), bat.tail().str_at(5));
    }

    #[test]
    fn lookup_finds_positions_and_memoizes() {
        let (_, dv) = customer_name_dv();
        let ctx = ExecCtx::new();
        let probe = Column::from_oids(vec![103, 101, 999, 106]);
        assert!(!dv.extent().lookup_cached(&probe));
        let l1 = dv.lookup(&ctx, &probe);
        assert_eq!(&*l1.positions, &vec![2, 0, 5]); // 999 misses
        assert_eq!(l1.head.as_oid_slice().unwrap(), &[103, 101, 106]);
        assert!(dv.extent().lookup_cached(&probe));
        let l2 = dv.lookup(&ctx, &probe);
        assert!(Arc::ptr_eq(&l1.positions, &l2.positions), "must reuse the memo");
        // Shared head identity is what makes successive semijoin results synced.
        assert_eq!(l1.head.identity(), l2.head.identity());
    }

    #[test]
    fn extent_shared_across_attributes() {
        let ctx = ExecCtx::new();
        let extent = Extent::new(Column::from_oids(vec![10, 11, 12, 13]));
        let price =
            Datavector::new(Arc::clone(&extent), Column::from_dbls(vec![1.0, 2.0, 3.0, 4.0]));
        let disc =
            Datavector::new(Arc::clone(&extent), Column::from_dbls(vec![0.1, 0.2, 0.3, 0.4]));
        let probe = Column::from_oids(vec![11, 13]);
        let l1 = price.lookup(&ctx, &probe);
        // The second attribute's lookup hits the shared memo.
        assert!(disc.extent().lookup_cached(&probe));
        let l2 = disc.lookup(&ctx, &probe);
        assert!(Arc::ptr_eq(&l1.positions, &l2.positions));
        assert_eq!(l1.head.identity(), l2.head.identity());
    }

    #[test]
    fn dense_extent_positional_lookup() {
        let bat = Bat::new(Column::void(50, 10), Column::from_ints((0..10).collect()));
        let dv = Datavector::from_oid_ordered(&bat);
        let ctx = ExecCtx::new();
        let probe = Column::from_oids(vec![50, 59, 60, 49]);
        let l = dv.lookup(&ctx, &probe);
        assert_eq!(&*l.positions, &vec![0, 9]);
    }

    #[test]
    fn from_unordered_sorts() {
        let bat = Bat::new(Column::from_oids(vec![5, 3, 4]), Column::from_ints(vec![50, 30, 40]));
        let dv = Datavector::from_unordered(&bat);
        assert_eq!(dv.extent().oids().as_oid_slice().unwrap(), &[3, 4, 5]);
        assert_eq!(dv.vector().as_int_slice().unwrap(), &[30, 40, 50]);
        let _ = AtomValue::Int(0);
    }
}
