//! Chained hash index over one column of a BAT.
//!
//! Plays the role of the persistent `hash-table` heap of Figure 2: the
//! presence of a hash table on an operand "might lead the join to choose a
//! hashjoin implementation" (Section 5.2.1). The same structure is built
//! ad hoc inside hash-join/semijoin when no persistent index exists.

use crate::column::Column;
use crate::typed::TypedVals;

const EMPTY: u32 = u32::MAX;

/// Bucket-chained hash index: `buckets[h & mask]` holds the first position
/// of the chain, `next[pos]` the following one. Collisions are resolved by
/// the caller re-checking value equality (hashes of equal values are equal;
/// distinct values may share a bucket).
#[derive(Debug)]
pub struct HashIndex {
    mask: u64,
    buckets: Vec<u32>,
    next: Vec<u32>,
}

impl HashIndex {
    /// Build over all values of the column window. One typed dispatch, then
    /// a monomorphic hash-and-chain loop.
    pub fn build(col: &Column) -> HashIndex {
        let n = col.len();
        let nbuckets = (n.max(1) * 2).next_power_of_two();
        let mask = (nbuckets - 1) as u64;
        let mut buckets = vec![EMPTY; nbuckets];
        let mut next = vec![EMPTY; n];
        crate::for_each_typed!(col, |t| {
            for i in 0..n {
                let b = (t.hash_one(t.value(i)) & mask) as usize;
                next[i] = buckets[b];
                buckets[b] = i as u32;
            }
        });
        HashIndex { mask, buckets, next }
    }

    /// Iterate candidate positions whose values hash into the same bucket
    /// as `hash` (most recently inserted first).
    pub fn candidates(&self, hash: u64) -> Candidates<'_> {
        Candidates { next: &self.next, cur: self.buckets[(hash & self.mask) as usize] }
    }

    /// Approximate memory footprint in bytes (for accounting).
    pub fn bytes(&self) -> usize {
        (self.buckets.len() + self.next.len()) * std::mem::size_of::<u32>()
    }
}

/// Iterator over one hash chain.
pub struct Candidates<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur == EMPTY {
            return None;
        }
        let pos = self.cur as usize;
        self.cur = self.next[pos];
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_all_duplicates() {
        let col = Column::from_ints(vec![5, 7, 5, 9, 5]);
        let idx = HashIndex::build(&col);
        let h = col.hash_at(0);
        let mut hits: Vec<usize> = idx.candidates(h).filter(|&p| col.int_at(p) == 5).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 4]);
    }

    #[test]
    fn absent_value_yields_no_verified_hits() {
        let col = Column::from_ints(vec![1, 2, 3]);
        let idx = HashIndex::build(&col);
        let probe = Column::from_ints(vec![42]);
        let hits: Vec<usize> =
            idx.candidates(probe.hash_at(0)).filter(|&p| col.eq_at(p, &probe, 0)).collect();
        assert!(hits.is_empty());
    }

    #[test]
    fn works_on_strings() {
        let col = Column::from_strs(["x", "y", "x", "z"]);
        let idx = HashIndex::build(&col);
        let probe = Column::from_strs(["x"]);
        let mut hits: Vec<usize> =
            idx.candidates(probe.hash_at(0)).filter(|&p| col.eq_at(p, &probe, 0)).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn empty_column() {
        let col = Column::from_ints(vec![]);
        let idx = HashIndex::build(&col);
        assert_eq!(idx.candidates(12345).count(), 0);
    }
}
