//! Search accelerators (Figure 2 shows them as extra heaps of a BAT).
//!
//! Monet is run-time extensible with new accelerator structures; the two
//! the TPC-D experiments rely on are the hash table and the *datavector*
//! of Section 5.2.

pub mod datavector;
pub mod hash;
