//! Typed column views: dispatch **once per operator call**, not once per row.
//!
//! The paper's central performance claim is that bulk BAT primitives beat
//! tuple-at-a-time interpretation because every MIL operator runs a
//! type-expanded tight loop over dense arrays (Sections 4.2, 5.1). The
//! generic accessors on [`Column`] (`get`, `cmp_at`, `hash_at`, ...) decide
//! the column type again for *every element* — exactly the per-row
//! interpretation overhead the flattened algebra exists to avoid.
//!
//! This module is the kernel's answer: a [`TypedSlice`] is resolved from a
//! column *once*, and the [`for_each_typed!`]/[`for_each_typed2!`] macros
//! monomorphize an operator body over the concrete element type, so the
//! per-row work is a plain slice index plus an inlined compare/hash with no
//! enum dispatch. Every new operator must go through these macros — the
//! generic row-wise forms survive only in [`crate::ops::reference`], as the
//! oracle that property tests compare the specialized kernels against.
//!
//! # The dispatch-once contract, by example
//!
//! A selection scan written against the generic layer pays one
//! `ColumnVals` match (and for strings a UTF-8 revalidation) per row:
//!
//! ```ignore
//! let idx: Vec<u32> =
//!     (0..ab.len()).filter(|&i| tail.cmp_val(i, v).is_eq()).map(|i| i as u32).collect();
//! ```
//!
//! The typed form resolves the tail type a single time; the nine
//! monomorphized loop bodies compile down to branch-free scans over `&[T]`:
//!
//! ```
//! use monet::atom::AtomValue;
//! use monet::column::Column;
//! use monet::for_each_typed;
//! use monet::typed::TypedVals;
//!
//! let tail = Column::from_ints(vec![3, 7, 3, 9]);
//! let v = AtomValue::Int(3);
//! let idx: Vec<u32> = for_each_typed!(&tail, |t| {
//!     let mut idx = Vec::with_capacity(t.len());
//!     for i in 0..t.len() {
//!         if t.cmp_atom(t.value(i), &v).is_eq() {
//!             idx.push(i as u32);
//!         }
//!     }
//!     idx
//! });
//! assert_eq!(idx, vec![0, 2]);
//! ```
//!
//! `t` is bound to a different concrete [`TypedVals`] implementor in each
//! macro arm — `&[i32]` here — so `t.value(i)` is a slice index and
//! `t.cmp_atom` an integer compare, both inlined.

use std::cmp::Ordering;

use crate::atom::{AtomValue, Oid};
use crate::column::{fnv1a, fxhash64, Column};

/// Uniform element-level interface of one typed column window. Implementors
/// are `Copy` views (slices or tiny structs), so operator bodies can pass
/// them around freely; all methods are trivially inlinable.
///
/// Hashing and comparison agree exactly with the generic
/// [`Column::hash_at`]/[`Column::cmp_at`], so typed and generic code can
/// cooperate on the same hash tables.
pub trait TypedVals: Copy {
    /// Element type of the window (`i32`, `&str`, ...). `Copy` so values can
    /// be hoisted out of probe loops.
    type Elem: Copy;

    /// Number of elements in the window.
    fn len(&self) -> usize;

    /// True when the window is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at position `i` (a slice index; no type dispatch).
    fn value(&self, i: usize) -> Self::Elem;

    /// Hash of one element, consistent with [`Column::hash_at`].
    fn hash_one(&self, v: Self::Elem) -> u64;

    /// Total-order comparison of two elements, consistent with
    /// [`Column::cmp_at`] (doubles use IEEE total ordering).
    fn cmp_one(&self, a: Self::Elem, b: Self::Elem) -> Ordering;

    /// Equality of two elements.
    #[inline]
    fn eq_one(&self, a: Self::Elem, b: Self::Elem) -> bool {
        self.cmp_one(a, b).is_eq()
    }

    /// Compare one element against a scalar constant, consistent with
    /// [`Column::cmp_val`]. Panics on incomparable types — operators have
    /// already type-checked their arguments.
    fn cmp_atom(&self, v: Self::Elem, atom: &AtomValue) -> Ordering;
}

/// The virtual dense sequence (`void` columns): value at `i` is `seq + i`.
#[derive(Debug, Clone, Copy)]
pub struct VoidVals {
    pub seq: Oid,
    pub len: usize,
}

impl TypedVals for VoidVals {
    type Elem = Oid;

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn value(&self, i: usize) -> Oid {
        debug_assert!(i < self.len);
        self.seq + i as Oid
    }

    #[inline]
    fn hash_one(&self, v: Oid) -> u64 {
        fxhash64(v)
    }

    #[inline]
    fn cmp_one(&self, a: Oid, b: Oid) -> Ordering {
        a.cmp(&b)
    }

    #[inline]
    fn cmp_atom(&self, v: Oid, atom: &AtomValue) -> Ordering {
        match atom.as_oid() {
            Some(o) => v.cmp(&o),
            None => panic!("cmp_atom: oid column vs {} constant", atom.atom_type()),
        }
    }
}

macro_rules! impl_fixed_vals {
    ($ty:ty, |$v:ident| $hash:expr, |$a:ident, $b:ident| $cmp:expr,
     |$x:ident, $atom:ident| $cmp_atom:expr) => {
        impl<'a> TypedVals for &'a [$ty] {
            type Elem = $ty;

            #[inline]
            fn len(&self) -> usize {
                <[$ty]>::len(self)
            }

            #[inline]
            fn value(&self, i: usize) -> $ty {
                self[i]
            }

            #[inline]
            fn hash_one(&self, $v: $ty) -> u64 {
                $hash
            }

            #[inline]
            fn cmp_one(&self, $a: $ty, $b: $ty) -> Ordering {
                $cmp
            }

            #[inline]
            fn cmp_atom(&self, $x: $ty, $atom: &AtomValue) -> Ordering {
                $cmp_atom
            }
        }
    };
}

impl_fixed_vals!(Oid, |v| fxhash64(v), |a, b| a.cmp(&b), |x, atom| match atom.as_oid() {
    Some(o) => x.cmp(&o),
    None => panic!("cmp_atom: oid column vs {} constant", atom.atom_type()),
});

impl_fixed_vals!(bool, |v| fxhash64(v as u64), |a, b| a.cmp(&b), |x, atom| match atom {
    AtomValue::Bool(b) => x.cmp(b),
    other => panic!("cmp_atom: bool column vs {} constant", other.atom_type()),
});

impl_fixed_vals!(u8, |v| fxhash64(v as u64), |a, b| a.cmp(&b), |x, atom| match atom {
    AtomValue::Chr(c) => x.cmp(c),
    other => panic!("cmp_atom: chr column vs {} constant", other.atom_type()),
});

// `&[i32]` backs both `int` and `date` columns (dates are day counts); the
// scalar compare accepts either constant kind, the operator layer has
// already rejected genuinely mixed comparisons.
impl_fixed_vals!(i32, |v| fxhash64(v as u64), |a, b| a.cmp(&b), |x, atom| match atom {
    AtomValue::Int(b) => x.cmp(b),
    AtomValue::Date(d) => x.cmp(&d.0),
    other => panic!("cmp_atom: int/date column vs {} constant", other.atom_type()),
});

impl_fixed_vals!(i64, |v| fxhash64(v as u64), |a, b| a.cmp(&b), |x, atom| match atom {
    AtomValue::Lng(b) => x.cmp(b),
    other => panic!("cmp_atom: lng column vs {} constant", other.atom_type()),
});

impl_fixed_vals!(f64, |v| fxhash64(v.to_bits()), |a, b| a.total_cmp(&b), |x, atom| match atom {
    AtomValue::Dbl(b) => x.total_cmp(b),
    other => panic!("cmp_atom: dbl column vs {} constant", other.atom_type()),
});

/// Borrowed view of a string column window: per-value byte windows into the
/// shared heap. `value(i)` skips the UTF-8 revalidation of the generic path
/// (the heap invariant guarantees validity — see [`crate::strheap`]).
#[derive(Debug, Clone, Copy)]
pub struct StrVals<'a> {
    offsets: &'a [u32],
    lens: &'a [u32],
    heap: &'a [u8],
}

impl<'a> StrVals<'a> {
    pub(crate) fn new(offsets: &'a [u32], lens: &'a [u32], heap: &'a [u8]) -> StrVals<'a> {
        debug_assert_eq!(offsets.len(), lens.len());
        StrVals { offsets, lens, heap }
    }
}

impl<'a> TypedVals for StrVals<'a> {
    type Elem = &'a str;

    #[inline]
    fn len(&self) -> usize {
        self.offsets.len()
    }

    #[inline]
    fn value(&self, i: usize) -> &'a str {
        let off = self.offsets[i] as usize;
        let bytes = &self.heap[off..off + self.lens[i] as usize];
        debug_assert!(std::str::from_utf8(bytes).is_ok());
        // SAFETY: the heap is only ever written by `StrHeapBuilder`, which
        // copies whole `&str` values and records their exact byte windows in
        // (offsets, lens) — so every addressed window is valid UTF-8.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    #[inline]
    fn hash_one(&self, v: &'a str) -> u64 {
        fnv1a(v.as_bytes())
    }

    #[inline]
    fn cmp_one(&self, a: &'a str, b: &'a str) -> Ordering {
        a.cmp(b)
    }

    #[inline]
    fn cmp_atom(&self, x: &'a str, atom: &AtomValue) -> Ordering {
        match atom {
            AtomValue::Str(s) => x.cmp(&&**s),
            other => panic!("cmp_atom: str column vs {} constant", other.atom_type()),
        }
    }
}

/// Window over the narrow unsigned deltas of a frame-of-reference column,
/// shared by [`ForIntVals`] and [`ForLngVals`]. The width branch sits
/// inside each access; it predicts perfectly (one width per column), so
/// the per-row cost stays a load + add without tripling the macro arms.
#[derive(Debug, Clone, Copy)]
pub enum ForDeltaSlice<'a> {
    W8(&'a [u8]),
    W16(&'a [u16]),
    W32(&'a [u32]),
}

impl ForDeltaSlice<'_> {
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ForDeltaSlice::W8(v) => v.len(),
            ForDeltaSlice::W16(v) => v.len(),
            ForDeltaSlice::W32(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            ForDeltaSlice::W8(v) => v[i] as u64,
            ForDeltaSlice::W16(v) => v[i] as u64,
            ForDeltaSlice::W32(v) => v[i] as u64,
        }
    }

    /// `slice::partition_point` over the widened values; used by the
    /// dict-code binary-search select on sorted code windows.
    #[inline]
    pub fn partition_point(&self, mut pred: impl FnMut(u64) -> bool) -> usize {
        match self {
            ForDeltaSlice::W8(v) => v.partition_point(|&x| pred(x as u64)),
            ForDeltaSlice::W16(v) => v.partition_point(|&x| pred(x as u64)),
            ForDeltaSlice::W32(v) => v.partition_point(|&x| pred(x as u64)),
        }
    }
}

/// Window over a dictionary-encoded string column: per-row narrow codes
/// (u8/u16/u32, chosen by dictionary size — the bit-width reduction that
/// makes dict pay even against a deduplicated raw heap) plus the (sorted,
/// duplicate-free) dictionary as a [`StrVals`]. `Elem` is the decoded
/// `&str`, so every generic kernel body — hash, compare, equality —
/// behaves exactly like the raw string window; specialized paths reach the
/// codes through [`DictStrVals::codes`] and exploit order preservation.
#[derive(Debug, Clone, Copy)]
pub struct DictStrVals<'a> {
    codes: ForDeltaSlice<'a>,
    dict: StrVals<'a>,
}

impl<'a> DictStrVals<'a> {
    pub(crate) fn new(codes: ForDeltaSlice<'a>, dict: StrVals<'a>) -> DictStrVals<'a> {
        DictStrVals { codes, dict }
    }

    /// The per-row dictionary codes (order-preserving: code order is
    /// string order), at their physical width.
    #[inline]
    pub fn codes(&self) -> ForDeltaSlice<'a> {
        self.codes
    }

    /// The widened code of row `i`.
    #[inline]
    pub fn code_at(&self, i: usize) -> usize {
        self.codes.get(i) as usize
    }

    /// The dictionary window (sorted, duplicate-free strings).
    #[inline]
    pub fn dict(&self) -> StrVals<'a> {
        self.dict
    }

    /// Number of dictionary entries (the code domain).
    #[inline]
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }
}

impl<'a> TypedVals for DictStrVals<'a> {
    type Elem = &'a str;

    #[inline]
    fn len(&self) -> usize {
        self.codes.len()
    }

    #[inline]
    fn value(&self, i: usize) -> &'a str {
        self.dict.value(self.codes.get(i) as usize)
    }

    #[inline]
    fn hash_one(&self, v: &'a str) -> u64 {
        fnv1a(v.as_bytes())
    }

    #[inline]
    fn cmp_one(&self, a: &'a str, b: &'a str) -> Ordering {
        a.cmp(b)
    }

    #[inline]
    fn cmp_atom(&self, x: &'a str, atom: &AtomValue) -> Ordering {
        match atom {
            AtomValue::Str(s) => x.cmp(&&**s),
            other => panic!("cmp_atom: str column vs {} constant", other.atom_type()),
        }
    }
}

/// Window over a frame-of-reference `int`/`date` column: `base + delta`.
/// `Elem` is the decoded `i32`, so hashing and comparison agree with the
/// raw window bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct ForIntVals<'a> {
    base: i32,
    deltas: ForDeltaSlice<'a>,
    date: bool,
}

impl<'a> ForIntVals<'a> {
    pub(crate) fn new(base: i32, deltas: ForDeltaSlice<'a>, date: bool) -> ForIntVals<'a> {
        ForIntVals { base, deltas, date }
    }

    /// True when the logical type is `date` (day counts share the `i32`
    /// representation).
    #[inline]
    pub fn is_date(&self) -> bool {
        self.date
    }
}

impl<'a> TypedVals for ForIntVals<'a> {
    type Elem = i32;

    #[inline]
    fn len(&self) -> usize {
        self.deltas.len()
    }

    #[inline]
    fn value(&self, i: usize) -> i32 {
        self.base.wrapping_add(self.deltas.get(i) as i32)
    }

    #[inline]
    fn hash_one(&self, v: i32) -> u64 {
        fxhash64(v as u64)
    }

    #[inline]
    fn cmp_one(&self, a: i32, b: i32) -> Ordering {
        a.cmp(&b)
    }

    #[inline]
    fn cmp_atom(&self, x: i32, atom: &AtomValue) -> Ordering {
        match atom {
            AtomValue::Int(b) => x.cmp(b),
            AtomValue::Date(d) => x.cmp(&d.0),
            other => panic!("cmp_atom: int/date column vs {} constant", other.atom_type()),
        }
    }
}

/// Window over a frame-of-reference `lng` column: `base + delta`.
#[derive(Debug, Clone, Copy)]
pub struct ForLngVals<'a> {
    base: i64,
    deltas: ForDeltaSlice<'a>,
}

impl<'a> ForLngVals<'a> {
    pub(crate) fn new(base: i64, deltas: ForDeltaSlice<'a>) -> ForLngVals<'a> {
        ForLngVals { base, deltas }
    }
}

impl<'a> TypedVals for ForLngVals<'a> {
    type Elem = i64;

    #[inline]
    fn len(&self) -> usize {
        self.deltas.len()
    }

    #[inline]
    fn value(&self, i: usize) -> i64 {
        self.base.wrapping_add(self.deltas.get(i) as i64)
    }

    #[inline]
    fn hash_one(&self, v: i64) -> u64 {
        fxhash64(v as u64)
    }

    #[inline]
    fn cmp_one(&self, a: i64, b: i64) -> Ordering {
        a.cmp(&b)
    }

    #[inline]
    fn cmp_atom(&self, x: i64, atom: &AtomValue) -> Ordering {
        match atom {
            AtomValue::Lng(b) => x.cmp(b),
            other => panic!("cmp_atom: lng column vs {} constant", other.atom_type()),
        }
    }
}

/// A column window resolved to its concrete element type — the input of the
/// dispatch macros. Obtained via [`Column::typed`] (or [`TypedSlice::of`]).
///
/// The encoded variants (`DictStr`, `ForInt`, `ForLng`) expose the same
/// `Elem` as their raw counterparts, so every kernel compiled through the
/// dispatch macros runs on encoded data without decompression; RLE storage
/// has no variant here — it resolves through its cached decode inside
/// [`Column::typed`], the transparent fallback.
#[derive(Debug, Clone, Copy)]
pub enum TypedSlice<'a> {
    Void(VoidVals),
    Oid(&'a [Oid]),
    Bool(&'a [bool]),
    Chr(&'a [u8]),
    Int(&'a [i32]),
    Lng(&'a [i64]),
    Dbl(&'a [f64]),
    Date(&'a [i32]),
    Str(StrVals<'a>),
    DictStr(DictStrVals<'a>),
    ForInt(ForIntVals<'a>),
    ForLng(ForLngVals<'a>),
}

impl<'a> TypedSlice<'a> {
    /// Resolve a column window once.
    pub fn of(col: &'a Column) -> TypedSlice<'a> {
        col.typed()
    }

    /// The atom type of the window (for error messages).
    pub fn atom_type(&self) -> crate::atom::AtomType {
        use crate::atom::AtomType as T;
        match self {
            TypedSlice::Void(_) => T::Void,
            TypedSlice::Oid(_) => T::Oid,
            TypedSlice::Bool(_) => T::Bool,
            TypedSlice::Chr(_) => T::Chr,
            TypedSlice::Int(_) => T::Int,
            TypedSlice::Lng(_) => T::Lng,
            TypedSlice::Dbl(_) => T::Dbl,
            TypedSlice::Date(_) => T::Date,
            TypedSlice::Str(_) => T::Str,
            TypedSlice::DictStr(_) => T::Str,
            TypedSlice::ForInt(v) => {
                if v.is_date() {
                    T::Date
                } else {
                    T::Int
                }
            }
            TypedSlice::ForLng(_) => T::Lng,
        }
    }
}

/// Monomorphize `$body` over the element type of one column.
///
/// `$col` is a `&Column`; `$v` is bound to a [`TypedVals`] implementor in
/// each arm, so the body is compiled once per atom type with all element
/// accesses fully inlined. All arms must yield the same result type.
#[macro_export]
macro_rules! for_each_typed {
    ($col:expr, |$v:ident| $body:expr) => {{
        match $crate::typed::TypedSlice::of($col) {
            $crate::typed::TypedSlice::Void($v) => $body,
            $crate::typed::TypedSlice::Oid($v) => $body,
            $crate::typed::TypedSlice::Bool($v) => $body,
            $crate::typed::TypedSlice::Chr($v) => $body,
            $crate::typed::TypedSlice::Int($v) => $body,
            $crate::typed::TypedSlice::Lng($v) => $body,
            $crate::typed::TypedSlice::Dbl($v) => $body,
            $crate::typed::TypedSlice::Date($v) => $body,
            $crate::typed::TypedSlice::Str($v) => $body,
            $crate::typed::TypedSlice::DictStr($v) => $body,
            $crate::typed::TypedSlice::ForInt($v) => $body,
            $crate::typed::TypedSlice::ForLng($v) => $body,
        }
    }};
}

/// Monomorphize `$body` over a *pair* of columns holding the same atom type
/// (`oid` and `void` interoperate, as in joins). The two bindings may be
/// different [`TypedVals`] implementors but always share `Elem`, so values
/// flow freely between them (`a.eq_one(a.value(i), b.value(j))`).
///
/// Panics on genuinely mixed types — operators type-check first via
/// `check_comparable`.
#[macro_export]
macro_rules! for_each_typed2 {
    ($ca:expr, $cb:expr, |$a:ident, $b:ident| $body:expr) => {{
        use $crate::typed::TypedSlice as TS;
        match (TS::of($ca), TS::of($cb)) {
            (TS::Void($a), TS::Void($b)) => $body,
            (TS::Void($a), TS::Oid($b)) => $body,
            (TS::Oid($a), TS::Void($b)) => $body,
            (TS::Oid($a), TS::Oid($b)) => $body,
            (TS::Bool($a), TS::Bool($b)) => $body,
            (TS::Chr($a), TS::Chr($b)) => $body,
            (TS::Int($a), TS::Int($b)) => $body,
            (TS::Lng($a), TS::Lng($b)) => $body,
            (TS::Dbl($a), TS::Dbl($b)) => $body,
            (TS::Date($a), TS::Date($b)) => $body,
            (TS::Str($a), TS::Str($b)) => $body,
            (TS::Str($a), TS::DictStr($b)) => $body,
            (TS::DictStr($a), TS::Str($b)) => $body,
            (TS::DictStr($a), TS::DictStr($b)) => $body,
            (TS::Int($a), TS::ForInt($b)) => $body,
            (TS::ForInt($a), TS::Int($b)) => $body,
            (TS::Date($a), TS::ForInt($b)) => $body,
            (TS::ForInt($a), TS::Date($b)) => $body,
            (TS::ForInt($a), TS::ForInt($b)) => $body,
            (TS::Lng($a), TS::ForLng($b)) => $body,
            (TS::ForLng($a), TS::Lng($b)) => $body,
            (TS::ForLng($a), TS::ForLng($b)) => $body,
            (a, b) => {
                panic!(
                    "typed dispatch on mixed column types {} vs {}",
                    a.atom_type(),
                    b.atom_type()
                )
            }
        }
    }};
}

/// Monomorphize `$body` over an oid-like column (`oid` or `void`); the
/// binding always has `Elem = Oid`. Used by positional fetch paths.
#[macro_export]
macro_rules! for_each_oidlike {
    ($col:expr, |$v:ident| $body:expr) => {{
        match $crate::typed::TypedSlice::of($col) {
            $crate::typed::TypedSlice::Void($v) => $body,
            $crate::typed::TypedSlice::Oid($v) => $body,
            other => panic!("expected oid-like column, got {}", other.atom_type()),
        }
    }};
}

/// First position in the (ascending) window whose value is `>= x`.
#[inline]
pub fn lower_bound_by<V: TypedVals>(vals: V, x: V::Elem) -> usize {
    let (mut lo, mut hi) = (0usize, vals.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if vals.cmp_one(vals.value(mid), x).is_lt() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First position in the (ascending) window whose value is `> x`.
#[inline]
pub fn upper_bound_by<V: TypedVals>(vals: V, x: V::Elem) -> usize {
    let (mut lo, mut hi) = (0usize, vals.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if vals.cmp_one(vals.value(mid), x).is_gt() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Bulk-hash a whole column window in one typed pass (consistent with
/// [`Column::hash_at`]). Used by pair-keyed operators (set ops) to get the
/// per-row dispatch out of their probe loops.
pub fn hash_column(col: &Column) -> Vec<u64> {
    for_each_typed!(col, |v| (0..v.len()).map(|i| v.hash_one(v.value(i))).collect())
}

const EMPTY: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Thread-local scratch pool: the presized-buffer discipline for kernels.
// ---------------------------------------------------------------------------

thread_local! {
    static SCRATCH_U64: std::cell::RefCell<Vec<Vec<u64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    static SCRATCH_U32: std::cell::RefCell<Vec<Vec<u32>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    static SCRATCH_F64: std::cell::RefCell<Vec<Vec<f64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Buffers kept per pool; excess returns are dropped so scratch memory
/// stays bounded by a few working sets.
const SCRATCH_POOL_CAP: usize = 4;

/// Net `take` minus `put` balance across every thread's scratch pools.
/// Every checkout must be returned — including on the governor's abort
/// paths (budget, cancel, deadline, injected fault) — so this settles back
/// to its baseline whenever no kernel is in flight; the stress and
/// fault-injection harnesses assert exactly that.
static SCRATCH_CHECKED_OUT: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(0);

/// Current process-wide scratch checkout balance (see
/// [`SCRATCH_CHECKED_OUT`]). Quiescent baseline is stable but not
/// necessarily zero: compare against a reading taken before the work
/// under test.
pub fn scratch_checked_out() -> i64 {
    SCRATCH_CHECKED_OUT.load(std::sync::atomic::Ordering::Relaxed)
}

macro_rules! scratch_pool {
    ($take:ident, $take_zeroed:ident, $put:ident, $pool:ident, $ty:ty) => {
        /// Take an empty scratch vector with at least `cap` capacity from
        /// the thread-local pool. Freshly-mapped pages fault on first touch,
        /// which costs more than the kernel work writing them — pooling
        /// keeps the pages committed across calls. Return with the matching
        /// `put` once done.
        pub fn $take(cap: usize) -> Vec<$ty> {
            SCRATCH_CHECKED_OUT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut v = $pool
                .with(|p| {
                    let pool = &mut *p.borrow_mut();
                    let best = (0..pool.len()).max_by_key(|&i| pool[i].capacity())?;
                    Some(pool.swap_remove(best))
                })
                .unwrap_or_default();
            v.clear();
            v.reserve(cap);
            v
        }

        /// [`$take`], but zero-filled to length `n` (scatter targets).
        pub fn $take_zeroed(n: usize) -> Vec<$ty> {
            let mut v = $take(n);
            v.resize(n, 0 as $ty);
            v
        }

        /// Return a scratch vector to the thread-local pool.
        pub fn $put(v: Vec<$ty>) {
            SCRATCH_CHECKED_OUT.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            if v.capacity() == 0 {
                return;
            }
            $pool.with(|p| {
                let pool = &mut *p.borrow_mut();
                if pool.len() < SCRATCH_POOL_CAP {
                    pool.push(v);
                } else if let Some(min) = (0..pool.len()).min_by_key(|&i| pool[i].capacity()) {
                    if pool[min].capacity() < v.capacity() {
                        pool[min] = v;
                    }
                }
            });
        }
    };
}

scratch_pool!(take_u64, take_u64_zeroed, put_u64, SCRATCH_U64, u64);
scratch_pool!(take_u32, take_u32_zeroed, put_u32, SCRATCH_U32, u32);
scratch_pool!(take_f64, take_f64_zeroed, put_f64, SCRATCH_F64, f64);

// ---------------------------------------------------------------------------
// Radix clustering: the partition kernel of the partitioned hash join.
// ---------------------------------------------------------------------------

/// Maximum radix bits consumed per clustering pass. Each pass is a stable
/// counting sort with `2^RADIX_PASS_BITS` output runs; bounding the fan-out
/// keeps the scatter targets within the TLB/cache reach, which is the whole
/// point of multi-pass radix clustering.
pub const RADIX_PASS_BITS: u32 = 8;

/// Rows per cluster the partitioner aims for: small enough that a
/// bucket-chained table over one cluster (buckets + chain links + the pair
/// window, ~20 bytes/row) stays L1-resident during the build+probe of that
/// cluster. Inputs past `2^RADIX_PASS_BITS` times this target take a
/// second clustering pass, but that pass splits on only the leftover bits
/// (2-run/4-run streaming splits), far cheaper than the probe stalls the
/// bigger clusters would cost.
pub const RADIX_TARGET_CLUSTER_ROWS: usize = 1024;

/// Number of cluster bits for a build side of `rows`, so that the expected
/// cluster size is at most [`RADIX_TARGET_CLUSTER_ROWS`]. Capped at the
/// counting-free fan-out limit: past ~1M rows clusters grow beyond the
/// target (gently degrading the probe toward L2) rather than paying a
/// second scatter pass, which measures worse up to the tens of millions.
pub fn radix_bits(rows: usize) -> u32 {
    let mut bits = 0u32;
    while bits < COUNTING_FREE_MAX_BITS && (rows >> bits) > RADIX_TARGET_CLUSTER_ROWS {
        bits += 1;
    }
    bits
}

/// `(hash, position)` pairs clustered on the **top** `bits` of the hash and
/// packed into one `u64` per row (high hash half | pos): one scatter
/// stream during clustering, one sequential stream during the probe.
///
/// The retained half is the hash's *high* 32 bits, so the cluster id (top
/// `bits ≤ 16`) stays inside the packed word — multi-pass clustering and
/// cluster-id checks never need the original hash again. In-cluster bucket
/// masks use the *low* bits of the retained half; for typical cluster
/// sizes these stay below the cluster-id bits (an extreme-skew cluster can
/// push the mask into them, wasting bucket slots on constant bits — an
/// occupancy cost, never a correctness one). A false bucket match on the
/// retained half still fails value equality, so the 32-bit truncation is a
/// perf trade only. Clustering is stable: within a cluster, positions
/// ascend.
pub struct RadixClusters {
    /// Packed `(hash >> 32) << 32 | pos`, cluster-windowed. Windows may be
    /// padded apart (the counting-free scatter leaves headroom per
    /// cluster); always address through [`RadixClusters::cluster`].
    pub pairs: Vec<u64>,
    /// Start offset of each cluster's window in `pairs`.
    starts: Vec<usize>,
    /// End offset (exclusive) of each cluster's window in `pairs`.
    ends: Vec<usize>,
    bits: u32,
}

/// The retained (high) 32 hash bits of a packed cluster pair.
#[inline]
pub fn pair_hash(p: u64) -> u32 {
    (p >> 32) as u32
}

/// The original row position of a packed cluster pair.
#[inline]
pub fn pair_pos(p: u64) -> u32 {
    p as u32
}

/// Pack a full hash and a row position into one cluster pair (keeps hash
/// bits 32..64). Public for the out-of-core clustering in
/// [`crate::spill`], which must write bit-identical pairs to disk.
#[inline]
pub fn pack_pair(h: u64, pos: usize) -> u64 {
    (h & 0xFFFF_FFFF_0000_0000) | pos as u64
}

impl RadixClusters {
    /// Return the pair buffer to the scratch pool. Call when the clusters
    /// are no longer needed (the join does, once matches are emitted).
    pub fn recycle(self) {
        put_u64(self.pairs);
    }

    /// The window of cluster `c` into `pairs`.
    #[inline]
    pub fn cluster(&self, c: usize) -> std::ops::Range<usize> {
        self.starts[c]..self.ends[c]
    }

    /// Number of clusters (`2^bits`).
    pub fn num_clusters(&self) -> usize {
        self.starts.len()
    }

    /// Rows in the largest cluster (presizing per-cluster tables).
    pub fn max_cluster_rows(&self) -> usize {
        (0..self.num_clusters()).map(|c| self.cluster(c).len()).max().unwrap_or(0)
    }

    /// The cluster a full 64-bit hash belongs to.
    #[inline]
    pub fn cluster_of(&self, h: u64) -> usize {
        if self.bits == 0 {
            0
        } else {
            (h >> (64 - self.bits)) as usize
        }
    }
}

/// Cluster bits up to which the counting-free scatter applies (fan-out of
/// `2^10` padded write streams stays within TLB/cache reach).
const COUNTING_FREE_MAX_BITS: u32 = 10;

/// Cluster a column window on the top `bits` of each row's hash, hashing
/// on the fly (a few ALU ops per pass beat materializing — and re-reading
/// — a full-width hash array).
///
/// The fast path is **counting-free**: one scatter pass into padded
/// per-cluster regions sized `2×` the expected cluster plus slack, no
/// histogram pass at all. Hash-distributed inputs essentially never
/// overflow the padding; skewed inputs (a handful of distinct values) spill
/// and fall back to the counted two-pass scatter, costing one wasted pass
/// but never correctness. Inputs needing more than [`RADIX_PASS_BITS`]
/// cluster bits run extra LSD passes over pooled scratch so one scatter
/// never exceeds the cache/TLB reach.
pub fn radix_cluster_typed<V: TypedVals>(t: V, bits: u32) -> RadixClusters {
    assert!(bits <= 16, "radix_cluster: {bits} cluster bits (max 16)");
    let n = t.len();
    if bits == 0 {
        let mut pairs = take_u64_zeroed(n);
        for (i, p) in pairs.iter_mut().enumerate() {
            *p = pack_pair(t.hash_one(t.value(i)), i);
        }
        return RadixClusters { pairs, starts: vec![0], ends: vec![n], bits };
    }
    let field_shift = 64 - bits; // cluster id = h >> field_shift
    let nclusters = 1usize << bits;
    if bits <= COUNTING_FREE_MAX_BITS {
        // 1.5x the expected cluster plus slack: hash-distributed cluster
        // sizes concentrate tightly around the mean, so overflow odds are
        // astronomically small; skew spills to the counted path below.
        let cap = (n / nclusters) + (n / nclusters) / 2 + 16;
        let mut pairs = take_u64_zeroed(nclusters * cap);
        let mut ends: Vec<usize> = (0..nclusters).map(|c| c * cap).collect();
        let mut spilled = false;
        for i in 0..n {
            let h = t.hash_one(t.value(i));
            let c = (h >> field_shift) as usize;
            let dst = ends[c];
            if dst < (c + 1) * cap {
                pairs[dst] = pack_pair(h, i);
                ends[c] = dst + 1;
            } else {
                spilled = true;
                break;
            }
        }
        if !spilled {
            let starts = (0..nclusters).map(|c| c * cap).collect();
            return RadixClusters { pairs, starts, ends, bits };
        }
        put_u64(pairs); // skew overflowed the padding: redo counted
    }
    // Counted path: one fused histogram pass over the full cluster-id
    // field, then stable LSD scatter passes of at most [`RADIX_PASS_BITS`]
    // bits, lowest chunk first (chunk histograms are derived from the
    // full-field histogram without touching the input again). The cluster
    // id lives inside the packed pair (hash bits 48..64 are retained), so
    // after the first scatter packs the pairs from the source, later
    // passes stream pairs → pairs directly.
    let mut field_hist = vec![0usize; nclusters];
    for i in 0..n {
        field_hist[(t.hash_one(t.value(i)) >> field_shift) as usize] += 1;
    }
    let mut starts = vec![0usize; nclusters];
    let mut ends = vec![0usize; nclusters];
    let mut at = 0usize;
    for c in 0..nclusters {
        starts[c] = at;
        at += field_hist[c];
        ends[c] = at;
    }
    let mut pairs = take_u64_zeroed(n);
    if bits <= RADIX_PASS_BITS {
        // Single pass: scatter the packed pairs straight from the input.
        let mut offs = starts.clone();
        for i in 0..n {
            let h = t.hash_one(t.value(i));
            let dst = &mut offs[(h >> field_shift) as usize];
            pairs[*dst] = pack_pair(h, i);
            *dst += 1;
        }
        return RadixClusters { pairs, starts, ends, bits };
    }
    let mut out = take_u64_zeroed(n);
    let mut done = 0u32;
    let mut first = true;
    while done < bits {
        let pass_bits = RADIX_PASS_BITS.min(bits - done);
        let mask = (1usize << pass_bits) - 1;
        let nruns = 1usize << pass_bits;
        // Chunk histogram: aggregate the full-field histogram over the
        // other bits of the field.
        let mut offs = vec![0usize; nruns];
        for (f, &c) in field_hist.iter().enumerate() {
            offs[(f >> done) & mask] += c;
        }
        let mut sum = 0usize;
        for o in offs.iter_mut() {
            let here = *o;
            *o = sum;
            sum += here;
        }
        if first {
            let shift = field_shift + done;
            for i in 0..n {
                let h = t.hash_one(t.value(i));
                let dst = &mut offs[(h >> shift) as usize & mask];
                out[*dst] = pack_pair(h, i);
                *dst += 1;
            }
            first = false;
        } else {
            // Field chunk straight from the pair: hash bit k (k ≥ 32) sits
            // at pair bit k, so the same shift applies.
            let shift = field_shift + done;
            for &p in pairs.iter() {
                let dst = &mut offs[(p >> shift) as usize & mask];
                out[*dst] = p;
                *dst += 1;
            }
        }
        std::mem::swap(&mut pairs, &mut out);
        done += pass_bits;
    }
    put_u64(out);
    RadixClusters { pairs, starts, ends, bits }
}

/// [`radix_cluster_typed`] over a precomputed hash slice (kept as the
/// kernel-level entry point for callers that already hold bulk hashes).
pub fn radix_cluster(hashes: &[u64], bits: u32) -> RadixClusters {
    radix_cluster_typed(HashSliceVals(hashes), bits)
}

/// Adapter treating a `&[u64]` of precomputed hashes as a [`TypedVals`]
/// whose elements hash to themselves.
#[derive(Clone, Copy)]
struct HashSliceVals<'a>(&'a [u64]);

impl TypedVals for HashSliceVals<'_> {
    type Elem = u64;

    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn value(&self, i: usize) -> u64 {
        self.0[i]
    }

    #[inline]
    fn hash_one(&self, v: u64) -> u64 {
        v
    }

    fn cmp_one(&self, a: u64, b: u64) -> Ordering {
        a.cmp(&b)
    }

    fn cmp_atom(&self, _v: u64, _atom: &AtomValue) -> Ordering {
        unreachable!("hash-slice adapter has no atom comparisons")
    }
}

/// Stable ascending sort of packed `u64` pairs by their **high 32 bits**:
/// LSD byte-radix passes with constant bytes detected from a one-scan
/// histogram and skipped. The partitioned join uses this to restore
/// left-BUN order over `(left << 32) | right` match pairs with streaming
/// scatters (256 write runs) instead of one random scatter per match.
pub fn sort_pairs_by_hi(mut pairs: Vec<u64>) -> Vec<u64> {
    let n = pairs.len();
    if n <= 1 {
        return pairs;
    }
    let mut hist = [[0u32; 256]; 4];
    for &p in &pairs {
        for (b, h) in hist.iter_mut().enumerate() {
            h[((p >> (32 + 8 * b)) & 255) as usize] += 1;
        }
    }
    let mut out = take_u64_zeroed(n);
    for (b, h) in hist.iter_mut().enumerate() {
        if h.iter().any(|&c| c as usize == n) {
            continue; // every pair agrees on this byte
        }
        let mut sum = 0u32;
        for c in h.iter_mut() {
            let x = *c;
            *c = sum;
            sum += x;
        }
        for i in 0..n {
            let p = pairs[i];
            let dst = &mut h[((p >> (32 + 8 * b)) & 255) as usize];
            out[*dst as usize] = p;
            *dst += 1;
        }
        std::mem::swap(&mut pairs, &mut out);
    }
    put_u64(out);
    pairs
}

/// Bucket-chained grouping table, the same presized layout as
/// [`crate::accel::hash::HashIndex`] but with incremental insertion: one
/// entry per distinct key, entry id == group id. No per-bucket allocations;
/// chains store the full 64-bit hash so the caller-supplied equality check
/// only runs on true hash matches.
pub struct GroupTable {
    mask: u64,
    buckets: Vec<u32>,
    /// `next[gid]`: next entry in the same bucket chain.
    next: Vec<u32>,
    /// `rows[gid]`: representative row of the group.
    rows: Vec<u32>,
    /// `hashes[gid]`: full hash of the representative.
    hashes: Vec<u64>,
}

impl GroupTable {
    /// Presize for `n` input rows (buckets at 2x rows, like `HashIndex`).
    pub fn with_capacity(n: usize) -> GroupTable {
        let nbuckets = (n.max(1) * 2).next_power_of_two();
        let est = (n / 8).max(16);
        GroupTable {
            mask: (nbuckets - 1) as u64,
            buckets: vec![EMPTY; nbuckets],
            next: Vec::with_capacity(est),
            rows: Vec::with_capacity(est),
            hashes: Vec::with_capacity(est),
        }
    }

    /// [`GroupTable::with_capacity`], but drawing every backing buffer from
    /// the bounded thread-local scratch pool. This is the constructor the
    /// morsel executor's per-worker tables use: a persistent worker builds
    /// one table per task, and pooling keeps the bucket pages committed
    /// across tasks instead of faulting a fresh allocation each time.
    /// Return the buffers with [`GroupTable::recycle`] when done.
    pub fn pooled(n: usize) -> GroupTable {
        let nbuckets = (n.max(1) * 2).next_power_of_two();
        let mut buckets = take_u32(nbuckets);
        buckets.resize(nbuckets, EMPTY);
        let est = (n / 8).max(16);
        let mut next = take_u32(est);
        let mut rows = take_u32(est);
        let mut hashes = take_u64(est);
        next.clear();
        rows.clear();
        hashes.clear();
        GroupTable { mask: (nbuckets - 1) as u64, buckets, next, rows, hashes }
    }

    /// Return a [`GroupTable::pooled`] table's buffers to the scratch pool.
    pub fn recycle(self) {
        put_u32(self.buckets);
        put_u32(self.next);
        put_u32(self.rows);
        put_u64(self.hashes);
    }

    /// Find the group whose representative row satisfies `eq` (called only
    /// on entries whose full hash equals `h`) without inserting.
    #[inline]
    pub fn find(&self, h: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut cur = self.buckets[(h & self.mask) as usize];
        while cur != EMPTY {
            let g = cur as usize;
            if self.hashes[g] == h && eq(self.rows[g]) {
                return Some(cur);
            }
            cur = self.next[g];
        }
        None
    }

    /// Find the group whose representative row satisfies `eq`, or insert
    /// `row` as a new group. Returns `(group id, inserted)`.
    #[inline]
    pub fn find_or_insert(&mut self, h: u64, row: u32, eq: impl FnMut(u32) -> bool) -> (u32, bool) {
        if let Some(g) = self.find(h, eq) {
            return (g, false);
        }
        let b = (h & self.mask) as usize;
        let gid = self.rows.len() as u32;
        self.rows.push(row);
        self.hashes.push(h);
        self.next.push(self.buckets[b]);
        self.buckets[b] = gid;
        (gid, true)
    }

    /// Number of groups discovered so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no group has been inserted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Representative row per group, in group-id order.
    pub fn reps(&self) -> &[u32] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Date;

    #[test]
    fn typed_matches_generic_accessors() {
        let cols = [
            Column::from_ints(vec![3, -1, 7]),
            Column::from_dbls(vec![1.5, -0.0, 2.0]),
            Column::from_strs(["b", "a", "b"]),
            Column::from_oids(vec![9, 2, 5]),
            Column::void(40, 3),
            Column::from_dates(vec![Date::from_ymd(1994, 1, 1), Date(0), Date(77)]),
            Column::from_bools(vec![true, false, true]),
            Column::from_chrs(vec![b'x', b'a', b'x']),
            Column::from_lngs(vec![5, -9, 5]),
        ];
        for col in &cols {
            for i in 0..col.len() {
                let h = for_each_typed!(col, |t| t.hash_one(t.value(i)));
                assert_eq!(h, col.hash_at(i), "hash mismatch on {}", col.atom_type());
                for j in 0..col.len() {
                    let c = for_each_typed!(col, |t| t.cmp_one(t.value(i), t.value(j)));
                    assert_eq!(c, col.cmp_at(i, col, j), "cmp mismatch on {}", col.atom_type());
                }
                let atom = col.get(i);
                let c = for_each_typed!(col, |t| t.cmp_atom(t.value(i), &atom));
                assert!(c.is_eq(), "cmp_atom self mismatch on {}", col.atom_type());
            }
        }
    }

    #[test]
    fn typed_respects_windows() {
        let col = Column::from_ints(vec![10, 20, 30, 40, 50]).slice(1, 3);
        let n = for_each_typed!(&col, |t| t.len());
        assert_eq!(n, 3);
        let direct: Vec<u64> = (0..3).map(|i| col.hash_at(i)).collect();
        assert_eq!(direct, hash_column(&col));
        let sc = Column::from_strs(["aa", "bb", "cc", "dd"]).slice(1, 2);
        let first = for_each_typed!(&sc, |t| t.hash_one(t.value(0)));
        assert_eq!(first, sc.hash_at(0));
        let void = Column::void(100, 6).slice(2, 2);
        assert_eq!(hash_column(&void), vec![fxhash64(102), fxhash64(103)]);
    }

    #[test]
    fn typed2_interoperates_oid_and_void() {
        let o = Column::from_oids(vec![7, 8, 9]);
        let v = Column::void(7, 3);
        let all_eq = for_each_typed2!(&o, &v, |a, b| {
            (0..a.len()).all(|i| a.eq_one(a.value(i), b.value(i)))
        });
        assert!(all_eq);
    }

    #[test]
    #[should_panic(expected = "mixed column types")]
    fn typed2_rejects_mixed() {
        let a = Column::from_ints(vec![1]);
        let b = Column::from_dbls(vec![1.0]);
        for_each_typed2!(&a, &b, |x, y| {
            let _ = (x.len(), y.len());
        });
    }

    #[test]
    fn bounds_match_column_bounds() {
        let col = Column::from_ints(vec![1, 3, 3, 3, 7, 9]);
        for probe in [-1, 1, 3, 5, 9, 12] {
            let atom = AtomValue::Int(probe);
            let (lo, hi) = for_each_typed!(&col, |t| {
                // resolve the probe to an element via a binary-searchable pair
                let lo =
                    (0..t.len()).take_while(|&i| t.cmp_atom(t.value(i), &atom).is_lt()).count();
                let hi =
                    (0..t.len()).take_while(|&i| !t.cmp_atom(t.value(i), &atom).is_gt()).count();
                (lo, hi)
            });
            assert_eq!(lo, col.lower_bound(&atom), "lower_bound({probe})");
            assert_eq!(hi, col.upper_bound(&atom), "upper_bound({probe})");
        }
        let s = Column::from_ints(vec![2, 4, 6, 8]);
        let ts = TypedSlice::of(&s);
        if let TypedSlice::Int(v) = ts {
            assert_eq!(lower_bound_by(v, 5), 2);
            assert_eq!(upper_bound_by(v, 6), 3);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn radix_cluster_is_a_stable_partition() {
        // Hashes chosen so several values share a cluster; multi-pass is
        // exercised by asking for more bits than one pass covers.
        for bits in [0u32, 3, RADIX_PASS_BITS + 2] {
            let hashes: Vec<u64> = (0..500u64).map(|i| fxhash64(i % 97)).collect();
            let rc = radix_cluster(&hashes, bits);
            assert_eq!(rc.num_clusters(), 1 << bits);
            // Windows cover every row exactly once (the padded layout may
            // hold more backing slots than rows).
            let total: usize = (0..rc.num_clusters()).map(|c| rc.cluster(c).len()).sum();
            assert_eq!(total, hashes.len());
            let mut seen = vec![false; hashes.len()];
            for c in 0..rc.num_clusters() {
                let range = rc.cluster(c);
                let mut prev: Option<u32> = None;
                for k in range {
                    let p = pair_pos(rc.pairs[k]) as usize;
                    assert!(!seen[p], "bits {bits}: position {p} clustered twice");
                    seen[p] = true;
                    assert_eq!(
                        pair_hash(rc.pairs[k]),
                        (hashes[p] >> 32) as u32,
                        "bits {bits}: retained hash half not parallel"
                    );
                    assert_eq!(rc.cluster_of(hashes[p]), c, "bits {bits}: wrong cluster");
                    // Stability: positions ascend within a cluster.
                    if let Some(q) = prev {
                        assert!(q < pair_pos(rc.pairs[k]), "bits {bits}: cluster {c} not stable");
                    }
                    prev = Some(pair_pos(rc.pairs[k]));
                }
            }
            assert!(seen.iter().all(|&s| s), "bits {bits}: rows lost");
        }
    }

    #[test]
    fn sort_pairs_by_hi_is_stable_on_low_bits() {
        // Same high key → low halves keep insertion order (they ride along
        // untouched); distinct high keys sort ascending.
        let pairs: Vec<u64> = vec![
            (7 << 32) | 3,
            (2 << 32) | 9,
            (7 << 32) | 1,
            (2 << 32) | 2,
            (0x01_0000 << 32) | 5, // exercises a second byte pass
            (2 << 32) | 7,
        ];
        let sorted = sort_pairs_by_hi(pairs);
        let key_lo: Vec<(u64, u64)> = sorted.iter().map(|&p| (p >> 32, p & 0xffff_ffff)).collect();
        assert_eq!(key_lo, vec![(2, 9), (2, 2), (2, 7), (7, 3), (7, 1), (0x01_0000, 5)]);
    }

    #[test]
    fn radix_bits_targets_cluster_size() {
        assert_eq!(radix_bits(0), 0);
        assert_eq!(radix_bits(RADIX_TARGET_CLUSTER_ROWS), 0);
        assert_eq!(radix_bits(RADIX_TARGET_CLUSTER_ROWS + 1), 1);
        let bits = radix_bits(1 << 20);
        assert!((1 << 20 >> bits) <= RADIX_TARGET_CLUSTER_ROWS);
        // Capped at the counting-free fan-out even for absurd inputs.
        assert_eq!(radix_bits(usize::MAX), COUNTING_FREE_MAX_BITS);
    }

    #[test]
    fn group_table_groups_by_key() {
        let keys = [5u64, 9, 5, 5, 9, 1];
        let mut t = GroupTable::with_capacity(keys.len());
        let gids: Vec<u32> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| t.find_or_insert(fxhash64(k), i as u32, |r| keys[r as usize] == k).0)
            .collect();
        assert_eq!(gids, vec![0, 1, 0, 0, 1, 2]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.reps(), &[0, 1, 5]);
    }
}
