//! Selection: `AB.select(T)` and `AB.select(Tl,Th)` of Figure 4.
//!
//! `select` returns the BUNs whose *tail* matches the predicate. When the
//! tail is stored in ascending order — the load pipeline of Section 6 keeps
//! every attribute BAT sorted on tail exactly for this — the operator uses
//! probe-based binary search and returns a zero-copy slice of the operand.
//! A persistent hash table enables point lookups; otherwise it scans.

use std::time::Instant;

use crate::atom::AtomValue;
use crate::bat::Bat;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::props::{ColProps, Enc, Props};
use crate::typed::TypedVals;

use super::check_comparable;

/// Point selection: `{ab | ab ∈ AB ∧ b = v}`.
pub fn select_eq(ctx: &ExecCtx, ab: &Bat, v: &AtomValue) -> Result<Bat> {
    ctx.probe("op/select")?;
    check_comparable("select", ab.tail().atom_type(), v.atom_type())?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    // The dict check comes before sorted/hash: the encoding is a static
    // storage fact (unlike sortedness it can never be *gained* at run
    // time), so the plan optimizer can pin this choice — and the code-range
    // path subsumes the sorted one on dict tails anyway.
    let (result, algo) = if ab.tail().encoding() == Enc::Dict {
        (select_dict(ctx, ab, Some(v), Some(v), true, true, true)?, "dict-code")
    } else if ab.props().tail.sorted {
        (select_sorted(ctx, ab, Some(v), Some(v), true, true), "binary-search")
    } else if let Some(hash) = &ab.accel().tail_hash {
        let hash = hash.clone();
        (select_hash(ctx, ab, &hash, v), "hash")
    } else {
        let threads = super::par_threads(ctx, ab.len());
        (select_scan_eq(ctx, ab, v, threads)?, if threads > 1 { "par-scan" } else { "scan" })
    };
    ctx.record("select", algo, started, faults0, &result)?;
    Ok(result)
}

/// Range selection: `{ab | ab ∈ AB ∧ lo ≤ b ≤ hi}` with configurable bound
/// inclusivity; `None` leaves that side unbounded.
pub fn select_range(
    ctx: &ExecCtx,
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
) -> Result<Bat> {
    ctx.probe("op/select")?;
    for v in [lo, hi].into_iter().flatten() {
        check_comparable("select", ab.tail().atom_type(), v.atom_type())?;
    }
    let started = Instant::now();
    let faults0 = ctx.faults();
    let (result, algo) = if ab.tail().encoding() == Enc::Dict {
        (select_dict(ctx, ab, lo, hi, inc_lo, inc_hi, false)?, "dict-code")
    } else if ab.props().tail.sorted {
        (select_sorted(ctx, ab, lo, hi, inc_lo, inc_hi), "binary-search")
    } else {
        let threads = super::par_threads(ctx, ab.len());
        (
            select_scan_range(ctx, ab, lo, hi, inc_lo, inc_hi, threads)?,
            if threads > 1 { "par-scan" } else { "scan" },
        )
    };
    ctx.record("select", algo, started, faults0, &result)?;
    Ok(result)
}

/// Binary-search selection on a tail-sorted BAT: zero-copy slice.
fn select_sorted(
    ctx: &ExecCtx,
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_binary_search(p, ab.tail());
    }
    let start = match lo {
        Some(v) if inc_lo => ab.tail().lower_bound(v),
        Some(v) => ab.tail().upper_bound(v),
        None => 0,
    };
    let end = match hi {
        Some(v) if inc_hi => ab.tail().upper_bound(v),
        Some(v) => ab.tail().lower_bound(v),
        None => ab.len(),
    };
    let (start, end) = (start.min(ab.len()), end.min(ab.len()));
    let result = if start >= end { ab.slice(0, 0) } else { ab.slice(start, end - start) };
    if let Some(p) = ctx.pager.as_deref() {
        // Reading the qualifying range of the inverted list touches both
        // columns of the matching BUNs (the sX/C_inv term of the cost
        // model in Section 5.2.2).
        pager::touch_scan(p, result.head());
        pager::touch_scan(p, result.tail());
    }
    result
}

fn select_hash(
    ctx: &ExecCtx,
    ab: &Bat,
    hash: &crate::accel::hash::HashIndex,
    v: &AtomValue,
) -> Bat {
    let h = crate::column::hash_atom(v);
    let mut idx: Vec<u32> = crate::for_each_typed!(ab.tail(), |t| {
        hash.candidates(h)
            .filter(|&p| t.cmp_atom(t.value(p), v).is_eq())
            .map(|p| p as u32)
            .collect()
    });
    idx.reverse(); // chains iterate newest-first; restore BUN order
    if let Some(p) = ctx.pager.as_deref() {
        for &i in &idx {
            pager::touch_fetch(p, ab.head(), i as usize);
            pager::touch_fetch(p, ab.tail(), i as usize);
        }
    }
    build_selected(ab, &idx, true)
}

fn select_scan_eq(ctx: &ExecCtx, ab: &Bat, v: &AtomValue, threads: usize) -> Result<Bat> {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let idx: Vec<u32> = if threads > 1 {
        // Morsel-parallel scan: each morsel collects its matching global
        // positions; concatenating the parts in morsel order reproduces
        // the serial position sequence exactly.
        let tail = ab.tail().clone();
        let v = v.clone();
        let parts = crate::par::try_for_each_morsel(&ctx.gov, ab.len(), threads, move |r| {
            crate::for_each_typed!(&tail, |t| {
                let mut idx: Vec<u32> = Vec::new();
                for i in r {
                    if t.cmp_atom(t.value(i), &v).is_eq() {
                        idx.push(i as u32);
                    }
                }
                idx
            })
        })?;
        concat_positions(&parts)
    } else {
        // Monomorphic scan: one typed dispatch, then a tight loop over
        // `&[T]`.
        crate::for_each_typed!(ab.tail(), |t| {
            let mut idx = Vec::with_capacity(ab.len());
            for i in 0..t.len() {
                if t.cmp_atom(t.value(i), v).is_eq() {
                    idx.push(i as u32);
                }
            }
            idx
        })
    };
    if let Some(p) = ctx.pager.as_deref() {
        for &i in &idx {
            pager::touch_fetch(p, ab.head(), i as usize);
        }
    }
    Ok(build_selected(ab, &idx, true))
}

/// Concatenate per-morsel position vectors in morsel order.
fn concat_positions(parts: &[Vec<u32>]) -> Vec<u32> {
    let mut idx = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        idx.extend_from_slice(p);
    }
    idx
}

fn select_scan_range(
    ctx: &ExecCtx,
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
    threads: usize,
) -> Result<Bat> {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let idx: Vec<u32> = if threads > 1 {
        let tail = ab.tail().clone();
        let (lo, hi) = (lo.cloned(), hi.cloned());
        let parts = crate::par::try_for_each_morsel(&ctx.gov, ab.len(), threads, move |r| {
            crate::for_each_typed!(&tail, |t| {
                let mut idx: Vec<u32> = Vec::new();
                'row: for i in r {
                    let x = t.value(i);
                    if let Some(v) = &lo {
                        let c = t.cmp_atom(x, v);
                        if c.is_lt() || (!inc_lo && c.is_eq()) {
                            continue 'row;
                        }
                    }
                    if let Some(v) = &hi {
                        let c = t.cmp_atom(x, v);
                        if c.is_gt() || (!inc_hi && c.is_eq()) {
                            continue 'row;
                        }
                    }
                    idx.push(i as u32);
                }
                idx
            })
        })?;
        concat_positions(&parts)
    } else {
        crate::for_each_typed!(ab.tail(), |t| {
            let mut idx = Vec::with_capacity(ab.len());
            'row: for i in 0..t.len() {
                let x = t.value(i);
                if let Some(v) = lo {
                    let c = t.cmp_atom(x, v);
                    if c.is_lt() || (!inc_lo && c.is_eq()) {
                        continue 'row;
                    }
                }
                if let Some(v) = hi {
                    let c = t.cmp_atom(x, v);
                    if c.is_gt() || (!inc_hi && c.is_eq()) {
                        continue 'row;
                    }
                }
                idx.push(i as u32);
            }
            idx
        })
    };
    if let Some(p) = ctx.pager.as_deref() {
        for &i in &idx {
            pager::touch_fetch(p, ab.head(), i as usize);
        }
    }
    Ok(build_selected(ab, &idx, false))
}

/// Dict-code selection: the tail is dictionary-encoded and the dictionary
/// is sorted, so string order equals code order. Two binary searches over
/// the (small) dictionary resolve the predicate to a half-open code range,
/// then the selection runs on plain `u32` codes — no per-row string
/// comparison. A tail-sorted operand binary-searches the codes and returns
/// a zero-copy slice (exactly the result of the raw binary-search path);
/// an unsorted one scans the codes serially or morsel-parallel.
fn select_dict(
    ctx: &ExecCtx,
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
    point: bool,
) -> Result<Bat> {
    fn dict_vals(c: &crate::column::Column) -> crate::typed::DictStrVals<'_> {
        match c.typed() {
            crate::typed::TypedSlice::DictStr(d) => d,
            _ => unreachable!("dict-code select dispatched on a non-dict tail"),
        }
    }
    fn bound_str<'v>(v: &'v AtomValue) -> &'v str {
        match v {
            AtomValue::Str(s) => s,
            // `check_comparable` only lets a str constant through for a str
            // tail, so this cannot be reached from the public entry points.
            other => unreachable!("dict-code select with {} bound", other.atom_type()),
        }
    }
    let (code_lo, code_hi) = {
        let d = dict_vals(ab.tail());
        let start = match lo {
            Some(v) if inc_lo => crate::typed::lower_bound_by(d.dict(), bound_str(v)),
            Some(v) => crate::typed::upper_bound_by(d.dict(), bound_str(v)),
            None => 0,
        };
        let end = match hi {
            Some(v) if inc_hi => crate::typed::upper_bound_by(d.dict(), bound_str(v)),
            Some(v) => crate::typed::lower_bound_by(d.dict(), bound_str(v)),
            None => d.dict_len(),
        };
        (start as u32, end as u32)
    };
    if ab.props().tail.sorted {
        // Codes ascend with the strings, so binary-search the code window
        // and slice; positionally identical to the raw binary-search path.
        if let Some(p) = ctx.pager.as_deref() {
            pager::touch_binary_search(p, ab.tail());
        }
        let (start, end) = {
            let codes = dict_vals(ab.tail()).codes();
            (
                codes.partition_point(|c| c < code_lo as u64),
                codes.partition_point(|c| c < code_hi as u64),
            )
        };
        let result = if start >= end { ab.slice(0, 0) } else { ab.slice(start, end - start) };
        if let Some(p) = ctx.pager.as_deref() {
            pager::touch_scan(p, result.head());
            pager::touch_scan(p, result.tail());
        }
        return Ok(result);
    }
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let (code_lo, code_hi) = (code_lo as u64, code_hi as u64);
    let threads = super::par_threads(ctx, ab.len());
    let idx: Vec<u32> = if threads > 1 {
        let tail = ab.tail().clone();
        let parts = crate::par::try_for_each_morsel(&ctx.gov, ab.len(), threads, move |r| {
            let codes = dict_vals(&tail).codes();
            let mut idx: Vec<u32> = Vec::new();
            for i in r {
                let c = codes.get(i);
                if c >= code_lo && c < code_hi {
                    idx.push(i as u32);
                }
            }
            idx
        })?;
        concat_positions(&parts)
    } else {
        let codes = dict_vals(ab.tail()).codes();
        let mut idx = Vec::with_capacity(ab.len());
        for i in 0..codes.len() {
            let c = codes.get(i);
            if c >= code_lo && c < code_hi {
                idx.push(i as u32);
            }
        }
        idx
    };
    if let Some(p) = ctx.pager.as_deref() {
        for &i in &idx {
            pager::touch_fetch(p, ab.head(), i as usize);
        }
    }
    Ok(build_selected(ab, &idx, point))
}

/// The `select` propagation rule (Section 5.1), shared by every
/// implementation and reused by the plan optimizer's static property
/// inference: subsequences preserve `sorted`/`key` of both columns but not
/// density; a point selection additionally makes the tail constant, hence
/// sorted. Holds for the zero-copy binary-search slice too (which at run
/// time may claim *more*, e.g. a still-dense head).
pub fn propagated_props(src: Props, point: bool) -> Props {
    Props::new(
        ColProps { sorted: src.head.sorted, key: src.head.key, dense: false, ..ColProps::NONE },
        ColProps {
            sorted: src.tail.sorted || point,
            key: src.tail.key,
            dense: false,
            ..ColProps::NONE
        },
    )
}

/// Materialize a selection given matching positions in ascending order.
fn build_selected(ab: &Bat, idx: &[u32], point: bool) -> Bat {
    let head = ab.head().gather(idx);
    let tail = ab.tail().gather(idx);
    let mut props = propagated_props(ab.props(), point);
    // Runtime-only strengthening the static rule cannot claim: a point
    // selection with at most one hit is trivially duplicate-free.
    props.tail.key = props.tail.key || (point && idx.len() <= 1);
    Bat::with_props(head, tail, props)
}

/// Pinned point selection: the plan optimizer proved the tail sorted from
/// propagated descriptor properties, so the binary-search implementation
/// runs without re-deriving the choice (dynamic dispatch would pick the
/// same one — sortedness only ever *gains* facts at run time).
pub fn select_eq_sorted(ctx: &ExecCtx, ab: &Bat, v: &AtomValue) -> Result<Bat> {
    ctx.probe("op/select")?;
    check_comparable("select", ab.tail().atom_type(), v.atom_type())?;
    debug_assert!(ab.props().tail.sorted, "pinned binary-search select on unsorted tail");
    let started = Instant::now();
    let faults0 = ctx.faults();
    let result = select_sorted(ctx, ab, Some(v), Some(v), true, true);
    ctx.record("select", "binary-search", started, faults0, &result)?;
    Ok(result)
}

/// Pinned range selection on a proven-sorted tail (see
/// [`select_eq_sorted`]).
pub fn select_range_sorted(
    ctx: &ExecCtx,
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
) -> Result<Bat> {
    ctx.probe("op/select")?;
    for v in [lo, hi].into_iter().flatten() {
        check_comparable("select", ab.tail().atom_type(), v.atom_type())?;
    }
    debug_assert!(ab.props().tail.sorted, "pinned binary-search select on unsorted tail");
    let started = Instant::now();
    let faults0 = ctx.faults();
    let result = select_sorted(ctx, ab, lo, hi, inc_lo, inc_hi);
    ctx.record("select", "binary-search", started, faults0, &result)?;
    Ok(result)
}

/// Pinned point selection on a proven dictionary-encoded tail: the
/// encoding is a storage fact carried by the descriptor (guarded by the Db
/// epoch like every other pinned precondition), so the code-range
/// implementation runs without re-deriving the choice.
pub fn select_eq_dict(ctx: &ExecCtx, ab: &Bat, v: &AtomValue) -> Result<Bat> {
    ctx.probe("op/select")?;
    check_comparable("select", ab.tail().atom_type(), v.atom_type())?;
    debug_assert_eq!(ab.tail().encoding(), Enc::Dict, "pinned dict-code select on non-dict tail");
    let started = Instant::now();
    let faults0 = ctx.faults();
    let result = select_dict(ctx, ab, Some(v), Some(v), true, true, true)?;
    ctx.record("select", "dict-code", started, faults0, &result)?;
    Ok(result)
}

/// Pinned range selection on a proven dictionary-encoded tail (see
/// [`select_eq_dict`]).
pub fn select_range_dict(
    ctx: &ExecCtx,
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
) -> Result<Bat> {
    ctx.probe("op/select")?;
    for v in [lo, hi].into_iter().flatten() {
        check_comparable("select", ab.tail().atom_type(), v.atom_type())?;
    }
    debug_assert_eq!(ab.tail().encoding(), Enc::Dict, "pinned dict-code select on non-dict tail");
    let started = Instant::now();
    let faults0 = ctx.faults();
    let result = select_dict(ctx, ab, lo, hi, inc_lo, inc_hi, false)?;
    ctx.record("select", "dict-code", started, faults0, &result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomType;
    use crate::column::Column;

    fn clerk_bat() -> Bat {
        // Tail-sorted, like a loaded attribute BAT.
        Bat::with_inferred_props(
            Column::from_oids(vec![4, 2, 7, 1, 5]),
            Column::from_strs(["a", "b", "b", "c", "d"]),
        )
    }

    #[test]
    fn point_select_on_sorted_is_slice() {
        let ctx = ExecCtx::new();
        let b = clerk_bat();
        assert!(b.props().tail.sorted);
        let r = select_eq(&ctx, &b, &AtomValue::str("b")).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.bun(0), (AtomValue::Oid(2), AtomValue::str("b")));
        assert_eq!(r.bun(1), (AtomValue::Oid(7), AtomValue::str("b")));
        // zero copy: same storage identity as the operand
        assert_eq!(r.head().storage_id(), b.head().storage_id());
    }

    #[test]
    fn point_select_miss_is_empty() {
        let ctx = ExecCtx::new();
        let b = clerk_bat();
        let r = select_eq(&ctx, &b, &AtomValue::str("zz")).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn scan_select_unsorted() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![1, 2, 3, 4]), Column::from_ints(vec![9, 5, 9, 1]));
        let r = select_eq(&ctx, &b, &AtomValue::Int(9)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[1, 3]);
        assert!(r.props().tail.sorted); // constant tail
        assert!(r.validate().is_ok());
    }

    #[test]
    fn hash_select_via_accelerator() {
        let ctx = ExecCtx::new();
        let mut b =
            Bat::new(Column::from_oids(vec![1, 2, 3, 4]), Column::from_ints(vec![9, 5, 9, 1]));
        b.set_tail_hash(std::sync::Arc::new(crate::accel::hash::HashIndex::build(b.tail())));
        let ctx2 = ctx.with_trace();
        let r = select_eq(&ctx2, &b, &AtomValue::Int(9)).unwrap();
        assert_eq!(r.head().as_oid_slice().unwrap(), &[1, 3]);
        assert_eq!(ctx2.take_trace()[0].algo, "hash");
    }

    #[test]
    fn range_select_sorted_and_unsorted_agree() {
        let ctx = ExecCtx::new();
        let vals = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let unsorted =
            Bat::new(Column::from_oids((0..8).collect()), Column::from_ints(vals.clone()));
        let perm = unsorted.tail().sort_perm();
        let sorted =
            Bat::with_inferred_props(unsorted.head().gather(&perm), unsorted.tail().gather(&perm));
        for (lo, hi, il, ih) in [(2, 5, true, true), (2, 5, false, true), (1, 9, true, false)] {
            let a = select_range(
                &ctx,
                &unsorted,
                Some(&AtomValue::Int(lo)),
                Some(&AtomValue::Int(hi)),
                il,
                ih,
            )
            .unwrap();
            let b = select_range(
                &ctx,
                &sorted,
                Some(&AtomValue::Int(lo)),
                Some(&AtomValue::Int(hi)),
                il,
                ih,
            )
            .unwrap();
            let mut av: Vec<_> = a.iter().collect();
            let mut bv: Vec<_> = b.iter().collect();
            av.sort_by(|x, y| x.0.cmp_same_type(&y.0));
            bv.sort_by(|x, y| x.0.cmp_same_type(&y.0));
            assert_eq!(av, bv, "range [{lo},{hi}] il={il} ih={ih}");
        }
    }

    #[test]
    fn half_open_ranges() {
        let ctx = ExecCtx::new();
        let b = Bat::with_inferred_props(
            Column::from_oids(vec![1, 2, 3]),
            Column::from_ints(vec![10, 20, 30]),
        );
        let r = select_range(&ctx, &b, Some(&AtomValue::Int(20)), None, true, true).unwrap();
        assert_eq!(r.len(), 2);
        let r = select_range(&ctx, &b, None, Some(&AtomValue::Int(20)), true, false).unwrap();
        assert_eq!(r.len(), 1);
    }

    // Long values so dictionary encoding passes its size gate.
    fn w(s: &str) -> String {
        format!("Clerk#00000000{s}")
    }

    fn dict_bat(sorted_tail: bool) -> Bat {
        let strs: Vec<String> = if sorted_tail {
            ["a", "b", "b", "c", "d", "d"].map(|s| w(s)).to_vec()
        } else {
            ["d", "b", "a", "b", "d", "c"].map(|s| w(s)).to_vec()
        };
        let tail = Column::from_strs(strs).encode(false);
        assert_eq!(tail.encoding(), crate::props::Enc::Dict);
        Bat::with_inferred_props(Column::from_oids((0..6).collect()), tail)
    }

    #[test]
    fn dict_select_eq_matches_decoded() {
        let ctx = ExecCtx::new().with_trace();
        for sorted in [true, false] {
            let b = dict_bat(sorted);
            let raw = Bat::with_inferred_props(b.head().clone(), b.tail().decoded());
            for probe in [w("a"), w("b"), w("d"), w("zz"), String::new()] {
                let e = select_eq(&ctx, &b, &AtomValue::str(&*probe)).unwrap();
                let r = select_eq(&ctx, &raw, &AtomValue::str(&*probe)).unwrap();
                let ev: Vec<_> = e.iter().collect();
                let rv: Vec<_> = r.iter().collect();
                assert_eq!(ev, rv, "probe {probe} sorted={sorted}");
            }
            let trace = ctx.take_trace();
            assert!(trace.iter().any(|t| t.algo == "dict-code"), "sorted={sorted}");
        }
    }

    #[test]
    fn dict_select_range_matches_decoded() {
        let ctx = ExecCtx::new();
        for sorted in [true, false] {
            let b = dict_bat(sorted);
            let raw = Bat::with_inferred_props(b.head().clone(), b.tail().decoded());
            for (lo, hi, il, ih) in [
                (Some("a"), Some("c"), true, true),
                (Some("a"), Some("c"), false, false),
                (Some("b"), None, true, true),
                (None, Some("b"), true, false),
                (None, None, true, true),
                (Some("bb"), Some("cz"), true, true),
            ] {
                let lo = lo.map(|s| AtomValue::str(w(s)));
                let hi = hi.map(|s| AtomValue::str(w(s)));
                let e = select_range(&ctx, &b, lo.as_ref(), hi.as_ref(), il, ih).unwrap();
                let r = select_range(&ctx, &raw, lo.as_ref(), hi.as_ref(), il, ih).unwrap();
                let ev: Vec<_> = e.iter().collect();
                let rv: Vec<_> = r.iter().collect();
                assert_eq!(ev, rv, "[{lo:?},{hi:?}] il={il} ih={ih} sorted={sorted}");
            }
        }
    }

    #[test]
    fn dict_select_on_sorted_tail_is_zero_copy_slice() {
        let ctx = ExecCtx::new();
        let b = dict_bat(true);
        let r = select_eq(&ctx, &b, &AtomValue::str(w("b"))).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.head().storage_id(), b.head().storage_id());
        // The slice of a dict column is still dict-encoded.
        assert_eq!(r.tail().encoding(), crate::props::Enc::Dict);
    }

    #[test]
    fn pinned_dict_select_agrees_with_dynamic() {
        let ctx = ExecCtx::new();
        let b = dict_bat(false);
        let dynamic = select_eq(&ctx, &b, &AtomValue::str(w("d"))).unwrap();
        let pinned = select_eq_dict(&ctx, &b, &AtomValue::str(w("d"))).unwrap();
        assert_eq!(dynamic.iter().collect::<Vec<_>>(), pinned.iter().collect::<Vec<_>>());
        let lo = AtomValue::str(w("b"));
        let pinned = select_range_dict(&ctx, &b, Some(&lo), None, true, true).unwrap();
        let dynamic = select_range(&ctx, &b, Some(&lo), None, true, true).unwrap();
        assert_eq!(dynamic.iter().collect::<Vec<_>>(), pinned.iter().collect::<Vec<_>>());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let ctx = ExecCtx::new();
        let b = clerk_bat();
        assert!(select_eq(&ctx, &b, &AtomValue::Int(1)).is_err());
        let _ = AtomType::Int;
    }

    #[test]
    fn empty_bat_select() {
        let ctx = ExecCtx::new();
        let b = Bat::with_inferred_props(Column::from_oids(vec![]), Column::from_ints(vec![]));
        let r = select_eq(&ctx, &b, &AtomValue::Int(5)).unwrap();
        assert!(r.is_empty());
    }
}
