//! Equi-join: `AB.join(CD) = {ad | ab ∈ AB ∧ cd ∈ CD ∧ b = c}`.
//!
//! The equi-join projects out the join columns to keep the operation closed
//! in the binary model (Section 4.2). Implementations, picked dynamically:
//!
//! * `fetch` — the right head is a dense (void) sequence: pure positional
//!   array lookup;
//! * `merge` — left tail and right head sorted: linear merge with
//!   duplicate-group cross products;
//! * `hash` — general fallback, building (or reusing) a hash table on the
//!   right head.

use std::time::Instant;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::props::{ColProps, Props};
use crate::typed::TypedVals;

use super::check_comparable;

/// Dynamic-dispatch equi-join.
pub fn join(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/join")?;
    check_comparable("join", ab.tail().atom_type(), cd.head().atom_type())?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    let dense_right = cd.props().head.dense && cd.head().is_oidlike();
    let (result, algo) = if dense_right && ab.tail().is_oidlike() {
        (join_fetch(ctx, ab, cd), "fetch")
    } else if ab.props().tail.sorted && cd.props().head.sorted {
        (join_merge(ctx, ab, cd), "merge")
    } else if cd.accel().head_hash.is_none()
        && crate::costmodel::join_prefers_spill(&ctx.mem, ab.len(), cd.len())
    {
        // The in-memory working set won't fit the budget headroom (or a
        // FLATALG_SPILL override is active): radix-partition both sides
        // into spill files and build+probe one cluster at a time.
        (join_spill(ctx, ab, cd)?, "spill")
    } else if cd.accel().head_hash.is_none()
        && crate::costmodel::join_prefers_partitioned(ab.len(), cd.len())
    {
        // No persistent accelerator to reuse and the build side overflows
        // the cache: radix-partition so each build+probe is cache-resident.
        (join_partitioned(ctx, ab, cd)?, "partition")
    } else {
        (join_hash(ctx, ab, cd), "hash")
    };
    ctx.record("join", algo, started, faults0, &result)?;
    Ok(result)
}

/// Theta-join: `{ad | ab ∈ AB ∧ cd ∈ CD ∧ b θ c}` for an order predicate
/// θ ∈ {<, ≤, >, ≥, ≠}. Part of MIL ("the theta-join … omitted for
/// brevity", Section 4.2). Sort-based when the right head is sorted
/// (emitting prefix/suffix ranges), nested-loop otherwise.
pub fn join_theta(ctx: &ExecCtx, ab: &Bat, cd: &Bat, theta: crate::ops::ScalarFunc) -> Result<Bat> {
    use crate::ops::ScalarFunc as F;
    ctx.probe("op/theta-join")?;
    check_comparable("theta-join", ab.tail().atom_type(), cd.head().atom_type())?;
    if !matches!(theta, F::Lt | F::Le | F::Gt | F::Ge | F::Ne) {
        return Err(crate::error::MonetError::Malformed {
            op: "theta-join",
            detail: format!("unsupported theta operator {:?}", theta),
        });
    }
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.head());
    }
    let keep = |o: std::cmp::Ordering| match theta {
        F::Lt => o.is_lt(),
        F::Le => o.is_le(),
        F::Gt => o.is_gt(),
        F::Ge => o.is_ge(),
        F::Ne => !o.is_eq(),
        _ => unreachable!(),
    };
    let sorted_range = cd.props().head.sorted && !matches!(theta, F::Ne);
    let algo = if sorted_range { "sorted-range" } else { "nested-loop" };
    let (left_idx, right_idx) = crate::for_each_typed2!(ab.tail(), cd.head(), |bt, ch| {
        let mut left_idx: Vec<u32> = Vec::with_capacity(ab.len());
        let mut right_idx: Vec<u32> = Vec::with_capacity(ab.len());
        if sorted_range {
            // Binary-search the boundary per left BUN, emit the matching
            // prefix or suffix of CD.
            for i in 0..bt.len() {
                let v = bt.value(i);
                let (start, end) = match theta {
                    F::Lt => (crate::typed::upper_bound_by(ch, v), ch.len()),
                    F::Le => (crate::typed::lower_bound_by(ch, v), ch.len()),
                    F::Gt => (0, crate::typed::lower_bound_by(ch, v)),
                    F::Ge => (0, crate::typed::upper_bound_by(ch, v)),
                    _ => unreachable!(),
                };
                for j in start..end {
                    left_idx.push(i as u32);
                    right_idx.push(j as u32);
                }
            }
        } else {
            for i in 0..bt.len() {
                let v = bt.value(i);
                for j in 0..ch.len() {
                    if keep(bt.cmp_one(v, ch.value(j))) {
                        left_idx.push(i as u32);
                        right_idx.push(j as u32);
                    }
                }
            }
        }
        (left_idx, right_idx)
    });
    if let Some(p) = ctx.pager.as_deref() {
        for &r in &right_idx {
            pager::touch_fetch(p, cd.tail(), r as usize);
        }
    }
    // One left BUN can match many rights, so only order survives (left
    // positions emitted ascending).
    let result = Bat::with_props(
        ab.head().gather(&left_idx),
        cd.tail().gather(&right_idx),
        Props::new(
            ColProps { sorted: ab.props().head.sorted, key: false, dense: false, ..ColProps::NONE },
            ColProps::NONE,
        ),
    );
    ctx.record("theta-join", algo, started, faults0, &result)?;
    Ok(result)
}

/// Positional fetch join against a dense right head.
fn join_fetch(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let seq: Oid = if cd.is_empty() { 0 } else { cd.head().oid_at(0) };
    let n = cd.len() as Oid;
    let (left_idx, right_idx) = crate::for_each_oidlike!(ab.tail(), |bt| {
        let mut left_idx: Vec<u32> = Vec::with_capacity(ab.len());
        let mut right_idx: Vec<u32> = Vec::with_capacity(ab.len());
        for i in 0..bt.len() {
            let b = bt.value(i);
            if b >= seq && b < seq + n {
                left_idx.push(i as u32);
                right_idx.push((b - seq) as u32);
            }
        }
        (left_idx, right_idx)
    });
    if let Some(p) = ctx.pager.as_deref() {
        for &r in &right_idx {
            pager::touch_fetch(p, cd.tail(), r as usize);
        }
    }
    // 100% match: the head column can be *shared* with the left operand,
    // keeping the result synced with AB (and any other full-match joins).
    let full = left_idx.len() == ab.len();
    let head = if full { ab.head().clone() } else { ab.head().gather(&left_idx) };
    let tail = cd.tail().gather(&right_idx);
    let p = ab.props();
    let props = Props::new(
        ColProps {
            sorted: p.head.sorted,
            key: p.head.key,
            dense: p.head.dense && full,
            ..ColProps::NONE
        },
        tail_props(ab, cd),
    );
    Bat::with_props(head, tail, props)
}

/// Merge join: left sorted on tail, right sorted on head.
fn join_merge(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.head());
    }
    let (left_idx, right_idx) = crate::for_each_typed2!(ab.tail(), cd.head(), |bt, ch| {
        let mut left_idx: Vec<u32> = Vec::with_capacity(ab.len());
        let mut right_idx: Vec<u32> = Vec::with_capacity(ab.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < bt.len() && j < ch.len() {
            let v = bt.value(i);
            match bt.cmp_one(v, ch.value(j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Cross product of the equal groups.
                    let mut j2 = j;
                    while j2 < ch.len() && bt.cmp_one(v, ch.value(j2)).is_eq() {
                        left_idx.push(i as u32);
                        right_idx.push(j2 as u32);
                        j2 += 1;
                    }
                    i += 1;
                    // j stays at group start: the next equal b rescans it.
                }
            }
        }
        (left_idx, right_idx)
    });
    build_join(ctx, ab, cd, &left_idx, &right_idx)
}

/// Hash join: build on right head (reusing a persistent accelerator when
/// present), probe left tails in order.
pub fn join_hash(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, ab.tail());
    }
    let rindex =
        cd.accel().head_hash.clone().unwrap_or_else(|| {
            std::sync::Arc::new(crate::accel::hash::HashIndex::build(cd.head()))
        });
    let (left_idx, right_idx) = crate::for_each_typed2!(ab.tail(), cd.head(), |bt, ch| {
        let mut left_idx: Vec<u32> = Vec::with_capacity(ab.len());
        let mut right_idx: Vec<u32> = Vec::with_capacity(ab.len());
        for i in 0..bt.len() {
            let v = bt.value(i);
            let h = bt.hash_one(v);
            // Chains iterate newest-first; collect then reverse for stable
            // order.
            let start = right_idx.len();
            for p in rindex.candidates(h) {
                if ch.eq_one(ch.value(p), v) {
                    left_idx.push(i as u32);
                    right_idx.push(p as u32);
                }
            }
            right_idx[start..].reverse();
        }
        (left_idx, right_idx)
    });
    build_join(ctx, ab, cd, &left_idx, &right_idx)
}

/// Radix-partitioned hash join: cluster both inputs on the same high hash
/// bits so that every per-cluster build table stays cache-resident
/// ([`crate::typed::radix_cluster`]), then build+probe cluster by cluster.
/// The probe walks packed `(hash, pos)` pairs sequentially and compares 32
/// retained hash bits first, touching actual column values only on a hash
/// match — so the monolithic path's per-candidate random value reads are
/// replaced by streaming access over cache-sized windows.
///
/// The output is re-emitted in left-BUN order (left positions ascending,
/// right positions ascending per left BUN), bit-identical to [`join_hash`]
/// and [`super::reference::join`]: each left BUN lands in exactly one
/// cluster with its matches contiguous and right-ascending, so a stable
/// radix sort of packed `(left, right)` pairs on the left half
/// ([`crate::typed::sort_pairs_by_hi`]) restores the global order with
/// streaming passes.
pub fn join_partitioned(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, ab.tail());
    }
    const EMPTY: u32 = u32::MAX;
    // Cluster count is sized to the *build* side: its per-cluster table is
    // what must stay cache-resident. The probe side only streams through
    // its clusters, whatever their size.
    let bits = crate::typed::radix_bits(cd.len());
    let threads = super::par_threads(ctx, ab.len().max(cd.len()));
    // Matches as packed `left << 32 | right`, in cluster order.
    let mut matches: Vec<u64> = crate::typed::take_u64(ab.len());
    let lc = crate::for_each_typed!(ab.tail(), |bt| crate::typed::radix_cluster_typed(bt, bits));
    let rc = crate::for_each_typed!(cd.head(), |ch| crate::typed::radix_cluster_typed(ch, bits));
    let max_build = rc.max_cluster_rows();
    if max_build <= SLOT_MASK as usize {
        if threads > 1 && lc.num_clusters() > 1 {
            // Clusters are independent: build+probe them in parallel, one
            // task per contiguous cluster range (balanced by rows, so a
            // heavy cluster does not serialize the batch). Each task emits
            // its matches locally; concatenating the parts in range (=
            // cluster) order reproduces the serial match sequence exactly,
            // and the final left-radix sort below is the same stable pass
            // either way.
            let ranges = cluster_task_ranges(&lc, &rc, threads * 4);
            let ntasks = ranges.len();
            // RAII recycling: the dispatched job closures hold `Arc`
            // clones that can outlive `run_tasks` (a queued job behind
            // another driver's batch drops its clone only when the worker
            // dequeues it), so the pair buffers go back to the scratch
            // pool of whichever thread drops the *last* reference —
            // promptly in every schedule, instead of leaking to the
            // allocator whenever a `try_unwrap` lost that race.
            let lc2 = std::sync::Arc::new(RecycleOnDrop(Some(lc)));
            let rc2 = std::sync::Arc::new(RecycleOnDrop(Some(rc)));
            let ltail = ab.tail().clone();
            let rhead = cd.head().clone();
            let parts = crate::par::try_run_tasks(
                &ctx.gov,
                crate::gov::site::PAR_TASK,
                ntasks,
                threads,
                move |k| {
                    crate::for_each_typed2!(&ltail, &rhead, |bt, ch| {
                        let mut local: Vec<u64> = Vec::new();
                        probe_cluster_range(bt, ch, &lc2, &rc2, ranges[k].clone(), &mut local);
                        local
                    })
                },
            );
            // An aborted batch (cancel/deadline/injected fault) must still
            // return the match buffer to the scratch pool; the cluster
            // buffers come back via the RecycleOnDrop Arcs either way.
            let parts: Vec<Vec<u64>> = match parts {
                Ok(parts) => parts,
                Err(e) => {
                    crate::typed::put_u64(matches);
                    return Err(e);
                }
            };
            for p in &parts {
                matches.extend_from_slice(p);
            }
        } else {
            crate::for_each_typed2!(ab.tail(), cd.head(), |bt, ch| {
                probe_cluster_range(bt, ch, &lc, &rc, 0..lc.num_clusters(), &mut matches)
            });
            lc.recycle();
            rc.recycle();
        }
        return Ok(finish_partitioned(ctx, ab, cd, matches));
    }
    crate::for_each_typed2!(ab.tail(), cd.head(), |bt, ch| {
        // Pathological skew: one cluster exceeds the 2^21 rows the slot
        // field of an epoch-tagged entry can address (duplicate-heavy
        // build sides hash-collapse into one cluster). Same algorithm with
        // full-width slot entries and a per-cluster bucket reset — correct
        // for any cluster size, just without the no-reset trick (and kept
        // serial: this regime is a degenerate join, not a hot path).
        {
            let nbuckets = (max_build.max(1) * 4).next_power_of_two();
            let mask = (nbuckets - 1) as u32;
            let mut buckets: Vec<u32> = crate::typed::take_u32(nbuckets);
            let mut next: Vec<u32> = crate::typed::take_u32(max_build);
            next.resize(max_build, EMPTY);
            buckets.resize(nbuckets, EMPTY);
            for c in 0..lc.num_clusters() {
                let (lr, rr) = (lc.cluster(c), rc.cluster(c));
                if lr.is_empty() || rr.is_empty() {
                    continue;
                }
                let rpairs = &rc.pairs[rr.clone()];
                for (slot, &rp) in rpairs.iter().enumerate().rev() {
                    let b = (crate::typed::pair_hash(rp) & mask) as usize;
                    next[slot] = buckets[b];
                    buckets[b] = slot as u32;
                }
                for &lp in &lc.pairs[lr] {
                    let h = crate::typed::pair_hash(lp);
                    let mut cur = buckets[(h & mask) as usize];
                    while cur != EMPTY {
                        let rp = rpairs[cur as usize];
                        if crate::typed::pair_hash(rp) == h {
                            let li = crate::typed::pair_pos(lp);
                            let ri = crate::typed::pair_pos(rp);
                            if ch.eq_one(ch.value(ri as usize), bt.value(li as usize)) {
                                matches.push(((li as u64) << 32) | ri as u64);
                            }
                        }
                        cur = next[cur as usize];
                    }
                }
                buckets.fill(EMPTY);
            }
            crate::typed::put_u32(buckets);
            crate::typed::put_u32(next);
        }
    });
    lc.recycle();
    rc.recycle();
    Ok(finish_partitioned(ctx, ab, cd, matches))
}

/// Out-of-core radix join: the same partition/build/probe algorithm as
/// [`join_partitioned`], but both sides' `(hash, pos)` pairs are
/// scattered into per-cluster regions of spill files
/// ([`crate::spill::SpilledClusters`]) instead of memory, and each
/// cluster is read back and joined alone — only one cluster's pairs and
/// build table are ever resident, so the transient working set is
/// bounded by the largest cluster, not the operand.
///
/// Bit-identical to the in-memory paths: the spilled clustering preserves
/// the stable within-cluster row order, the per-cluster build inserts
/// newest-first in reverse so chains ascend in right position, the probe
/// walks left pairs in order, and [`finish_partitioned`] restores global
/// left-BUN order with the same stable sort. (The bucket count differs
/// from [`probe_cluster_range`]'s, which cannot affect emission order:
/// a match's chain position depends only on its slot, and non-matching
/// chain members emit nothing.)
pub(crate) fn join_spill(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, ab.tail());
    }
    const EMPTY: u32 = u32::MAX;
    let bits = crate::typed::radix_bits(cd.len());
    let mut matches: Vec<u64> = crate::typed::take_u64(ab.len());
    // Immediately-invoked so an abort (spill IO error, injected fault,
    // cancellation at a spill probe) still recycles the match buffer.
    let r = (|| -> Result<()> {
        let ls = crate::for_each_typed!(ab.tail(), |bt| {
            crate::spill::SpilledClusters::build(ctx, bt, bits)
        })?;
        let rs = crate::for_each_typed!(cd.head(), |ch| {
            crate::spill::SpilledClusters::build(ctx, ch, bits)
        })?;
        crate::for_each_typed2!(ab.tail(), cd.head(), |bt, ch| {
            let mut lbuf: Vec<u64> = Vec::new();
            let mut rbuf: Vec<u64> = Vec::new();
            for c in 0..ls.num_clusters() {
                if ls.cluster_len(c) == 0 || rs.cluster_len(c) == 0 {
                    continue;
                }
                rs.read_cluster(ctx, c, &mut rbuf)?;
                ls.read_cluster(ctx, c, &mut lbuf)?;
                let nbuckets = (rbuf.len() * 4).next_power_of_two();
                let mask = (nbuckets - 1) as u32;
                let mut buckets: Vec<u32> = crate::typed::take_u32(nbuckets);
                buckets.resize(nbuckets, EMPTY);
                let mut next: Vec<u32> = crate::typed::take_u32(rbuf.len());
                next.resize(rbuf.len(), EMPTY);
                for (slot, &rp) in rbuf.iter().enumerate().rev() {
                    let b = (crate::typed::pair_hash(rp) & mask) as usize;
                    next[slot] = buckets[b];
                    buckets[b] = slot as u32;
                }
                for &lp in &lbuf {
                    let h = crate::typed::pair_hash(lp);
                    let mut cur = buckets[(h & mask) as usize];
                    while cur != EMPTY {
                        let rp = rbuf[cur as usize];
                        if crate::typed::pair_hash(rp) == h {
                            let li = crate::typed::pair_pos(lp);
                            let ri = crate::typed::pair_pos(rp);
                            if ch.eq_one(ch.value(ri as usize), bt.value(li as usize)) {
                                matches.push(((li as u64) << 32) | ri as u64);
                            }
                        }
                        cur = next[cur as usize];
                    }
                }
                crate::typed::put_u32(buckets);
                crate::typed::put_u32(next);
            }
            Ok(())
        })
    })();
    if let Err(e) = r {
        crate::typed::put_u64(matches);
        return Err(e);
    }
    Ok(finish_partitioned(ctx, ab, cd, matches))
}

/// Bits of an epoch-tagged bucket entry addressing the build slot within
/// one cluster; the remaining high bits carry the cluster id (the epoch),
/// so stale entries from other clusters are self-invalidating.
const SLOT_BITS: u32 = 21;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;

/// Shares [`RadixClusters`] across parallel probe tasks and returns the
/// pair buffer to the scratch pool when the last `Arc` holder — caller or
/// worker, whichever drops later — lets go.
struct RecycleOnDrop(Option<crate::typed::RadixClusters>);

impl std::ops::Deref for RecycleOnDrop {
    type Target = crate::typed::RadixClusters;

    fn deref(&self) -> &crate::typed::RadixClusters {
        self.0.as_ref().expect("clusters live until drop")
    }
}

impl Drop for RecycleOnDrop {
    fn drop(&mut self) {
        if let Some(c) = self.0.take() {
            c.recycle();
        }
    }
}

/// Build+probe the clusters in `crange`, appending packed
/// `left << 32 | right` matches to `matches` in cluster order (left
/// positions ascending within a cluster, right positions ascending per
/// left BUN). One epoch-tagged chain table — presized for the range's
/// largest build cluster, buffers from the caller thread's scratch pool —
/// serves every cluster of the range without per-cluster resets: bucket
/// entries carry the (global) cluster id in their top bits, so entries
/// left by a previous cluster are self-invalidating, and `next` needs no
/// reset because a chain only references slots the current cluster's
/// build just wrote. The serial join passes the full cluster range; the
/// parallel join hands disjoint ranges to the worker pool, where each
/// worker's thread-local pool keeps the table pages warm across tasks.
///
/// Caller guarantees every build cluster in range fits [`SLOT_MASK`]
/// slots (the dispatcher falls back to the full-width reset variant on
/// pathological skew).
fn probe_cluster_range<VL, VR>(
    bt: VL,
    ch: VR,
    lc: &crate::typed::RadixClusters,
    rc: &crate::typed::RadixClusters,
    crange: std::ops::Range<usize>,
    matches: &mut Vec<u64>,
) where
    VL: TypedVals,
    VR: TypedVals<Elem = VL::Elem>,
{
    const EMPTY: u32 = u32::MAX;
    let max_build = crange.clone().map(|c| rc.cluster(c).len()).max().unwrap_or(0);
    if max_build == 0 {
        return;
    }
    debug_assert!(max_build <= SLOT_MASK as usize);
    // 4x buckets: ~25% occupancy keeps the chain-entry branch predictably
    // not-taken (at 2x it is a coin flip, and the mispredicts cost more
    // than the extra — still L1-resident — rows).
    let nbuckets = (max_build * 4).next_power_of_two();
    let mask = (nbuckets - 1) as u32;
    let mut buckets: Vec<u32> = crate::typed::take_u32(nbuckets);
    buckets.resize(nbuckets, u32::MAX); // a tag no cluster id can match
    let mut next: Vec<u32> = crate::typed::take_u32(max_build);
    next.resize(max_build, EMPTY);
    for c in crange {
        let (lr, rr) = (lc.cluster(c), rc.cluster(c));
        if lr.is_empty() || rr.is_empty() {
            continue;
        }
        let tag = (c as u32) << SLOT_BITS;
        let rpairs = &rc.pairs[rr.clone()];
        // Build on the right cluster, newest-first chains: inserting in
        // reverse makes each chain iterate in ascending right position.
        for (slot, &rp) in rpairs.iter().enumerate().rev() {
            let b = (crate::typed::pair_hash(rp) & mask) as usize;
            let head = buckets[b];
            next[slot] = if head >> SLOT_BITS == c as u32 { head & SLOT_MASK } else { EMPTY };
            buckets[b] = tag | slot as u32;
        }
        // Probe the left cluster in (stable, ascending-position) order:
        // sequential pair reads, cache-resident chain walks, and value
        // fetches only on a 32-bit hash match.
        for &lp in &lc.pairs[lr] {
            let h = crate::typed::pair_hash(lp);
            let head = buckets[(h & mask) as usize];
            let mut cur = if head >> SLOT_BITS == c as u32 { head & SLOT_MASK } else { EMPTY };
            while cur != EMPTY {
                let rp = rpairs[cur as usize];
                if crate::typed::pair_hash(rp) == h {
                    let li = crate::typed::pair_pos(lp);
                    let ri = crate::typed::pair_pos(rp);
                    if ch.eq_one(ch.value(ri as usize), bt.value(li as usize)) {
                        matches.push(((li as u64) << 32) | ri as u64);
                    }
                }
                cur = next[cur as usize];
            }
        }
    }
    crate::typed::put_u32(buckets);
    crate::typed::put_u32(next);
}

/// Cut `[0, nclusters)` into at most `target_tasks` contiguous ranges of
/// roughly equal combined (probe + build) row count, so one heavy cluster
/// does not serialize the parallel batch.
fn cluster_task_ranges(
    lc: &crate::typed::RadixClusters,
    rc: &crate::typed::RadixClusters,
    target_tasks: usize,
) -> Vec<std::ops::Range<usize>> {
    let n = lc.num_clusters();
    let total: usize = (0..n).map(|c| lc.cluster(c).len() + rc.cluster(c).len()).sum();
    let per_task = (total / target_tasks.max(1)).max(1);
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(target_tasks);
    let (mut start, mut acc) = (0usize, 0usize);
    for c in 0..n {
        acc += lc.cluster(c).len() + rc.cluster(c).len();
        if acc >= per_task {
            ranges.push(start..c + 1);
            start = c + 1;
            acc = 0;
        }
    }
    if start < n {
        ranges.push(start..n);
    }
    if ranges.is_empty() {
        ranges.push(0..n);
    }
    ranges
}

/// Shared tail of the partitioned join: restore global left-BUN order
/// (stable streaming sort on the left half; equal left positions keep
/// their right-ascending probe order) and materialize the result.
fn finish_partitioned(ctx: &ExecCtx, ab: &Bat, cd: &Bat, matches: Vec<u64>) -> Bat {
    let matches = crate::typed::sort_pairs_by_hi(matches);
    let mut left_idx: Vec<u32> = crate::typed::take_u32(matches.len());
    let mut right_idx: Vec<u32> = crate::typed::take_u32(matches.len());
    left_idx.extend(matches.iter().map(|&m| (m >> 32) as u32));
    right_idx.extend(matches.iter().map(|&m| m as u32));
    crate::typed::put_u64(matches);
    let out = build_join(ctx, ab, cd, &left_idx, &right_idx);
    crate::typed::put_u32(left_idx);
    crate::typed::put_u32(right_idx);
    out
}

fn tail_props(ab: &Bat, cd: &Bat) -> ColProps {
    propagated_props(ab.props(), cd.props()).tail
}

/// The equi-join propagation rule (Section 5.1), shared by every
/// implementation and reused by the plan optimizer's static property
/// inference. All implementations emit left positions in ascending order,
/// so a sorted left head stays sorted (duplicates may appear when the
/// right head has duplicates — non-strict order survives that); the head
/// is key when both operand heads are; each right BUN is used at most once
/// iff the left tail is key, so the result tail preserves key when both
/// tails are key (not order — emission follows the left operand).
pub fn propagated_props(ab: Props, cd: Props) -> Props {
    Props::new(
        ColProps {
            sorted: ab.head.sorted,
            key: ab.head.key && cd.head.key,
            dense: false,
            ..ColProps::NONE
        },
        ColProps { sorted: false, key: cd.tail.key && ab.tail.key, dense: false, ..ColProps::NONE },
    )
}

/// Pinned positional fetch join: the plan optimizer proved the right head
/// dense and both join columns oid-like from propagated descriptors, so
/// dynamic dispatch would necessarily pick `fetch` — the interpreter skips
/// the re-derivation.
pub fn join_fetch_pinned(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/join")?;
    check_comparable("join", ab.tail().atom_type(), cd.head().atom_type())?;
    debug_assert!(
        cd.props().head.dense && cd.head().is_oidlike() && ab.tail().is_oidlike(),
        "pinned fetch join preconditions violated"
    );
    let started = Instant::now();
    let faults0 = ctx.faults();
    let result = join_fetch(ctx, ab, cd);
    ctx.record("join", "fetch", started, faults0, &result)?;
    Ok(result)
}

/// Pinned merge join: the plan optimizer proved the left tail and right
/// head sorted *and* the fetch variant type-impossible (a non-oid-like
/// join column), so dynamic dispatch would necessarily pick `merge`.
pub fn join_merge_pinned(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/join")?;
    check_comparable("join", ab.tail().atom_type(), cd.head().atom_type())?;
    debug_assert!(
        ab.props().tail.sorted && cd.props().head.sorted,
        "pinned merge join preconditions violated"
    );
    let started = Instant::now();
    let faults0 = ctx.faults();
    let result = join_merge(ctx, ab, cd);
    ctx.record("join", "merge", started, faults0, &result)?;
    Ok(result)
}

fn build_join(ctx: &ExecCtx, ab: &Bat, cd: &Bat, li: &[u32], ri: &[u32]) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        for &r in ri {
            pager::touch_fetch(p, cd.tail(), r as usize);
        }
    }
    let head = ab.head().gather(li);
    let tail = cd.tail().gather(ri);
    Bat::with_props(head, tail, propagated_props(ab.props(), cd.props()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomValue;
    use crate::column::Column;

    fn item_order() -> Bat {
        // [item_oid, order_oid]
        Bat::new(Column::from_oids(vec![100, 101, 102, 103]), Column::from_oids(vec![7, 5, 7, 6]))
    }

    #[test]
    fn hash_join_basic() {
        let ctx = ExecCtx::new();
        let orders = Bat::new(Column::from_oids(vec![5, 6, 7]), Column::from_strs(["a", "b", "c"]));
        let r = join(&ctx, &item_order(), &orders).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[100, 101, 102, 103]);
        let tails: Vec<&str> = (0..4).map(|i| r.tail().str_at(i)).collect();
        assert_eq!(tails, vec!["c", "a", "c", "b"]);
    }

    #[test]
    fn fetch_join_on_dense_head() {
        let ctx = ExecCtx::new().with_trace();
        let io = item_order();
        let dense = Bat::new(Column::void(5, 3), Column::from_ints(vec![50, 60, 70]));
        let r = join(&ctx, &io, &dense).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "fetch");
        assert_eq!(r.len(), 4);
        assert_eq!(r.tail().as_int_slice().unwrap(), &[70, 50, 70, 60]);
        // 100% match keeps the head column shared: result synced with left.
        assert!(r.synced(&io));
    }

    #[test]
    fn fetch_join_partial_match() {
        let ctx = ExecCtx::new();
        let io = item_order(); // order oids 5..=7
        let dense = Bat::new(Column::void(6, 2), Column::from_ints(vec![60, 70]));
        let r = join(&ctx, &io, &dense).unwrap();
        assert_eq!(r.len(), 3); // order 5 misses
        assert_eq!(r.head().as_oid_slice().unwrap(), &[100, 102, 103]);
        assert_eq!(r.tail().as_int_slice().unwrap(), &[70, 70, 60]);
        assert!(!r.synced(&io));
    }

    #[test]
    fn merge_join_with_duplicate_groups() {
        let ctx = ExecCtx::new().with_trace();
        let left = Bat::with_inferred_props(
            Column::from_oids(vec![1, 2, 3]),
            Column::from_ints(vec![10, 10, 20]),
        );
        let right = Bat::with_inferred_props(
            Column::from_ints(vec![10, 10, 20, 30]),
            Column::from_chrs(vec![b'a', b'b', b'c', b'd']),
        );
        let r = join(&ctx, &left, &right).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "merge");
        // 2 left tens x 2 right tens + 1 twenty = 5
        assert_eq!(r.len(), 5);
        let pairs: Vec<(u64, u8)> =
            (0..r.len()).map(|i| (r.head().oid_at(i), r.tail().chr_at(i))).collect();
        assert_eq!(pairs, vec![(1, b'a'), (1, b'b'), (2, b'a'), (2, b'b'), (3, b'c')]);
    }

    #[test]
    fn merge_and_hash_agree() {
        let ctx = ExecCtx::new();
        let left = Bat::with_inferred_props(
            Column::from_oids(vec![1, 2, 3, 4]),
            Column::from_ints(vec![5, 5, 7, 9]),
        );
        let right = Bat::with_inferred_props(
            Column::from_ints(vec![5, 6, 7, 7]),
            Column::from_oids(vec![50, 60, 70, 71]),
        );
        let m = join_merge(&ctx, &left, &right);
        let h = join_hash(&ctx, &left, &right);
        let norm = |b: &Bat| {
            let mut v: Vec<(u64, u64)> =
                (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().oid_at(i))).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&m), norm(&h));
        assert_eq!(m.len(), 4); // (1,50),(2,50),(3,70),(3,71)
    }

    #[test]
    fn partitioned_join_agrees_with_hash_and_dispatches_above_threshold() {
        let ctx = ExecCtx::new().with_trace();
        // Build side large enough that its chain table overflows the cache
        // budget (costmodel::join_prefers_partitioned) and duplicates exist
        // on both sides.
        let m = crate::costmodel::JOIN_CACHE_BYTES / crate::costmodel::JOIN_BUILD_BYTES_PER_ROW + 1;
        let n = m + 1000;
        let left = Bat::new(
            Column::from_oids((0..n as u64).collect()),
            Column::from_ints((0..n).map(|i| ((i * 7) % (m + 500)) as i32).collect()),
        );
        let right = Bat::new(
            Column::from_ints((0..m).map(|i| (i % (m - 100)) as i32).collect()),
            Column::from_oids((0..m as u64).map(|i| 10_000 + i).collect()),
        );
        let p = join_partitioned(&ctx, &left, &right).unwrap();
        let h = join_hash(&ctx, &left, &right);
        assert_eq!(p.len(), h.len());
        for i in 0..p.len() {
            assert_eq!(p.head().oid_at(i), h.head().oid_at(i), "head order differs at {i}");
            assert_eq!(p.tail().oid_at(i), h.tail().oid_at(i), "tail order differs at {i}");
        }
        // The dynamic dispatch picks the partitioned path at this size...
        let _ = ctx.take_trace();
        let _ = join(&ctx, &left, &right).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "partition");
        // ...but reuses a persistent hash accelerator when one exists.
        let mut right_accel = right.clone();
        right_accel
            .set_head_hash(std::sync::Arc::new(crate::accel::hash::HashIndex::build(right.head())));
        let _ = join(&ctx, &left, &right_accel).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "hash");
    }

    #[test]
    fn spill_join_is_bit_identical_to_hash_and_partitioned() {
        let ctx = ExecCtx::new();
        // Enough rows for several clusters, duplicates on both sides, and
        // misses in both directions.
        let n = 6000usize;
        let m = 4000usize;
        let left = Bat::new(
            Column::from_oids((0..n as u64).collect()),
            Column::from_ints((0..n).map(|i| ((i * 13) % (m + 700)) as i32).collect()),
        );
        let right = Bat::new(
            Column::from_ints((0..m).map(|i| (i % (m - 300)) as i32).collect()),
            Column::from_oids((0..m as u64).map(|i| 50_000 + i).collect()),
        );
        let s = join_spill(&ctx, &left, &right).unwrap();
        let h = join_hash(&ctx, &left, &right);
        let p = join_partitioned(&ctx, &left, &right).unwrap();
        assert_eq!(s.len(), h.len());
        for i in 0..s.len() {
            assert_eq!(s.head().oid_at(i), h.head().oid_at(i), "head vs hash at {i}");
            assert_eq!(s.tail().oid_at(i), h.tail().oid_at(i), "tail vs hash at {i}");
            assert_eq!(s.head().oid_at(i), p.head().oid_at(i), "head vs partition at {i}");
            assert_eq!(s.tail().oid_at(i), p.tail().oid_at(i), "tail vs partition at {i}");
        }
        assert!(ctx.mem.spilled_bytes() >= ((n + m) * 8) as u64, "both sides hit the spill file");
    }

    #[test]
    fn spill_join_empty_and_string_operands() {
        let ctx = ExecCtx::new();
        let l = Bat::new(Column::from_oids(vec![]), Column::from_ints(vec![]));
        let r = Bat::new(Column::from_ints(vec![1, 2]), Column::from_oids(vec![5, 6]));
        assert_eq!(join_spill(&ctx, &l, &r).unwrap().len(), 0);
        assert_eq!(join_spill(&ctx, &r.mirror(), &l.mirror()).unwrap().len(), 0);
        let names: Vec<String> = (0..900).map(|i| format!("n{}", i % 320)).collect();
        let left = Bat::new(
            Column::from_oids((0..900).collect()),
            Column::from_strs(names.iter().map(|s| s.as_str())),
        );
        let right = Bat::new(
            Column::from_strs((0..400).map(|i| format!("n{i}")).collect::<Vec<_>>()),
            Column::from_oids((1000..1400).collect()),
        );
        let s = join_spill(&ctx, &left, &right).unwrap();
        let h = join_hash(&ctx, &left, &right);
        assert_eq!(s.len(), h.len());
        for i in 0..s.len() {
            assert_eq!(s.head().oid_at(i), h.head().oid_at(i));
            assert_eq!(s.tail().oid_at(i), h.tail().oid_at(i));
        }
    }

    #[test]
    fn join_dispatches_to_spill_under_budget_pressure() {
        let ctx = ExecCtx::new().with_trace();
        let n = 3000usize;
        let left = Bat::new(
            Column::from_oids((0..n as u64).collect()),
            Column::from_ints((0..n).map(|i| (i % 1700) as i32).collect()),
        );
        let right = Bat::new(
            Column::from_ints((0..n).map(|i| (i % 2100) as i32).collect()),
            Column::from_oids((0..n as u64).collect()),
        );
        // Unlimited budget: the in-memory dispatch is unchanged.
        let a = join(&ctx, &left, &right).unwrap();
        assert_ne!(ctx.take_trace()[0].algo, "spill");
        // A budget below the partitioned working set (costmodel::
        // join_inmem_bytes = 96 KiB here) but above the result charge
        // routes through the spilling join — same bits.
        ctx.mem.begin();
        ctx.mem.set_budget(Some(crate::costmodel::join_inmem_bytes(n, n) - 1));
        let b = join(&ctx, &left, &right).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "spill");
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.head().oid_at(i), b.head().oid_at(i));
            assert_eq!(a.tail().oid_at(i), b.tail().oid_at(i));
        }
    }

    #[test]
    fn partitioned_join_empty_operands() {
        let ctx = ExecCtx::new();
        let l = Bat::new(Column::from_oids(vec![]), Column::from_ints(vec![]));
        let r = Bat::new(Column::from_ints(vec![1, 2]), Column::from_oids(vec![5, 6]));
        assert_eq!(join_partitioned(&ctx, &l, &r).unwrap().len(), 0);
        assert_eq!(join_partitioned(&ctx, &r.mirror(), &l.mirror()).unwrap().len(), 0);
    }

    #[test]
    fn join_projects_out_join_columns() {
        // result is [a, d] — heads from left, tails from right
        let ctx = ExecCtx::new();
        let l = Bat::new(Column::from_strs(["x"]), Column::from_oids(vec![1]));
        let r = Bat::new(Column::from_oids(vec![1]), Column::from_dbls(vec![2.5]));
        let j = join(&ctx, &l, &r).unwrap();
        assert_eq!(j.bun(0), (AtomValue::str("x"), AtomValue::Dbl(2.5)));
    }

    #[test]
    fn theta_join_lt_sorted_and_nested_agree() {
        let ctx = ExecCtx::new();
        let left = Bat::new(Column::from_oids(vec![1, 2]), Column::from_ints(vec![5, 20]));
        let right_sorted = Bat::with_inferred_props(
            Column::from_ints(vec![1, 10, 30]),
            Column::from_chrs(vec![b'a', b'b', b'c']),
        );
        let right_plain =
            Bat::new(Column::from_ints(vec![30, 1, 10]), Column::from_chrs(vec![b'c', b'a', b'b']));
        for op in [
            crate::ops::ScalarFunc::Lt,
            crate::ops::ScalarFunc::Le,
            crate::ops::ScalarFunc::Gt,
            crate::ops::ScalarFunc::Ge,
        ] {
            let a = join_theta(&ctx, &left, &right_sorted, op).unwrap();
            let b = join_theta(&ctx, &left, &right_plain, op).unwrap();
            let norm = |x: &Bat| {
                let mut v: Vec<(u64, u8)> =
                    (0..x.len()).map(|i| (x.head().oid_at(i), x.tail().chr_at(i))).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(norm(&a), norm(&b), "theta {op:?}");
            assert!(a.validate().is_ok());
        }
        // b=5: rights > 5 are {10, 30} → Lt gives 2 pairs for left oid 1.
        let lt = join_theta(&ctx, &left, &right_sorted, crate::ops::ScalarFunc::Lt).unwrap();
        assert_eq!(lt.len(), 2 + 1); // oid1 matches 10,30; oid2 matches 30
                                     // Ne is nested-loop only
        let ne = join_theta(&ctx, &left, &right_plain, crate::ops::ScalarFunc::Ne).unwrap();
        assert_eq!(ne.len(), 6);
        // Eq is rejected (that's the equi-join's job)
        assert!(join_theta(&ctx, &left, &right_plain, crate::ops::ScalarFunc::Eq).is_err());
    }

    #[test]
    fn empty_and_mismatched() {
        let ctx = ExecCtx::new();
        let l = Bat::new(Column::from_oids(vec![]), Column::from_oids(vec![]));
        let r = Bat::new(Column::from_oids(vec![1]), Column::from_ints(vec![5]));
        assert_eq!(join(&ctx, &l, &r).unwrap().len(), 0);
        let bad = Bat::new(Column::from_oids(vec![1]), Column::from_strs(["s"]));
        assert!(join(&ctx, &bad, &r).is_err());
    }
}
