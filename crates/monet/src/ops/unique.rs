//! Duplicate elimination: `AB.unique = {ab | ab ∈ AB}` as a *set* — the
//! first occurrence of every distinct BUN pair is kept, in operand order.
//!
//! Both variants run under nested typed dispatch: the (head, tail) type
//! pair is resolved once and the per-row work — pair hash, chain walk,
//! pair equality — is fully monomorphic.

use std::time::Instant;

use crate::bat::Bat;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::props::{ColProps, Props};
use crate::typed::{GroupTable, TypedVals};

/// Remove duplicate BUNs.
pub fn unique(ctx: &ExecCtx, ab: &Bat) -> Result<Bat> {
    ctx.probe("op/unique")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
    }
    let (result, algo) = if ab.props().head.key || ab.props().tail.key {
        // Either column being duplicate-free means all pairs are distinct.
        (ab.clone(), "noop")
    } else if ab.props().head.sorted {
        (unique_grouped(ab), "merge")
    } else {
        let threads = super::par_threads(ctx, ab.len());
        (unique_hash(ctx, ab, threads)?, if threads > 1 { "par-hash" } else { "hash" })
    };
    ctx.record("unique", algo, started, faults0, &result)?;
    Ok(result)
}

/// Head sorted: duplicates can only occur inside runs of equal heads. Keep
/// a per-run list of distinct tails (runs have few distinct values in the
/// nest/group plans this op serves).
fn unique_grouped(ab: &Bat) -> Bat {
    let idx: Vec<u32> = crate::for_each_typed!(ab.head(), |h| {
        crate::for_each_typed!(ab.tail(), |t| {
            let mut idx: Vec<u32> = Vec::with_capacity(ab.len());
            let mut kept_in_run: Vec<u32> = Vec::new();
            for i in 0..h.len() {
                if i > 0 && !h.eq_one(h.value(i), h.value(i - 1)) {
                    kept_in_run.clear();
                }
                let tv = t.value(i);
                if !kept_in_run.iter().any(|&k| t.eq_one(t.value(k as usize), tv)) {
                    kept_in_run.push(i as u32);
                    idx.push(i as u32);
                }
            }
            idx
        })
    });
    build_unique(ab, &idx)
}

fn unique_hash(ctx: &ExecCtx, ab: &Bat, threads: usize) -> Result<Bat> {
    let idx: Vec<u32> = if threads > 1 {
        // Morsel-parallel dedup: every global first occurrence is also a
        // first occurrence within its own morsel, so per-worker tables
        // (scratch-pool backed) shrink each morsel to its local survivors;
        // a serial merge pass re-checks only those against the global
        // table **in morsel order**, which reproduces the serial keep-set
        // and its ascending position order exactly.
        let hc = ab.head().clone();
        let tc = ab.tail().clone();
        let parts: Vec<Vec<u32>> =
            crate::par::try_for_each_morsel(&ctx.gov, ab.len(), threads, move |r| {
                crate::for_each_typed!(&hc, |h| {
                    crate::for_each_typed!(&tc, |t| {
                        let mut table = GroupTable::pooled(r.len());
                        let mut kept: Vec<u32> = Vec::new();
                        for i in r.clone() {
                            let hv = h.value(i);
                            let tv = t.value(i);
                            let key = h.hash_one(hv).rotate_left(17) ^ t.hash_one(tv);
                            let (_, inserted) = table.find_or_insert(key, i as u32, |rep| {
                                let k = rep as usize;
                                h.eq_one(h.value(k), hv) && t.eq_one(t.value(k), tv)
                            });
                            if inserted {
                                kept.push(i as u32);
                            }
                        }
                        table.recycle();
                        kept
                    })
                })
            })?;
        crate::for_each_typed!(ab.head(), |h| {
            crate::for_each_typed!(ab.tail(), |t| {
                let candidates: usize = parts.iter().map(Vec::len).sum();
                let mut table = GroupTable::with_capacity(candidates);
                let mut idx: Vec<u32> = Vec::with_capacity(candidates);
                for kept in &parts {
                    for &i in kept {
                        let hv = h.value(i as usize);
                        let tv = t.value(i as usize);
                        let key = h.hash_one(hv).rotate_left(17) ^ t.hash_one(tv);
                        let (_, inserted) = table.find_or_insert(key, i, |rep| {
                            let k = rep as usize;
                            h.eq_one(h.value(k), hv) && t.eq_one(t.value(k), tv)
                        });
                        if inserted {
                            idx.push(i);
                        }
                    }
                }
                idx
            })
        })
    } else {
        crate::for_each_typed!(ab.head(), |h| {
            crate::for_each_typed!(ab.tail(), |t| {
                // Pair-hash chains; equality only on full-hash matches.
                let mut table = GroupTable::with_capacity(ab.len());
                let mut idx: Vec<u32> = Vec::with_capacity(ab.len());
                for i in 0..h.len() {
                    let hv = h.value(i);
                    let tv = t.value(i);
                    let key = h.hash_one(hv).rotate_left(17) ^ t.hash_one(tv);
                    let (_, inserted) = table.find_or_insert(key, i as u32, |rep| {
                        let k = rep as usize;
                        h.eq_one(h.value(k), hv) && t.eq_one(t.value(k), tv)
                    });
                    if inserted {
                        idx.push(i as u32);
                    }
                }
                idx
            })
        })
    };
    Ok(build_unique(ab, &idx))
}

fn build_unique(ab: &Bat, idx: &[u32]) -> Bat {
    let p = ab.props();
    let props = Props::new(
        ColProps { sorted: p.head.sorted, key: p.head.key, dense: false, ..ColProps::NONE },
        ColProps { sorted: p.tail.sorted, key: p.tail.key, dense: false, ..ColProps::NONE },
    );
    Bat::with_props(ab.head().gather(idx), ab.tail().gather(idx), props)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn removes_duplicate_pairs_keeps_distinct_tails() {
        let ctx = ExecCtx::new();
        let b = Bat::new(
            Column::from_oids(vec![1, 1, 1, 2, 2]),
            Column::from_ints(vec![5, 5, 6, 5, 5]),
        );
        let r = unique(&ctx, &b).unwrap();
        let pairs: Vec<(u64, i32)> =
            (0..r.len()).map(|i| (r.head().oid_at(i), r.tail().int_at(i))).collect();
        assert_eq!(pairs, vec![(1, 5), (1, 6), (2, 5)]);
    }

    #[test]
    fn merge_variant_on_sorted_head() {
        let ctx = ExecCtx::new().with_trace();
        let b = Bat::with_props(
            Column::from_oids(vec![1, 1, 2, 3, 3, 3]),
            Column::from_ints(vec![9, 9, 9, 7, 8, 7]),
            Props::new(ColProps::SORTED, ColProps::NONE),
        );
        let r = unique(&ctx, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "merge");
        let pairs: Vec<(u64, i32)> =
            (0..r.len()).map(|i| (r.head().oid_at(i), r.tail().int_at(i))).collect();
        assert_eq!(pairs, vec![(1, 9), (2, 9), (3, 7), (3, 8)]);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn key_column_short_circuits() {
        let ctx = ExecCtx::new().with_trace();
        let b = Bat::with_inferred_props(
            Column::from_oids(vec![1, 2, 3]),
            Column::from_ints(vec![5, 5, 5]),
        );
        let r = unique(&ctx, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "noop");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn empty() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![]), Column::from_ints(vec![]));
        assert_eq!(unique(&ctx, &b).unwrap().len(), 0);
    }

    #[test]
    fn string_pairs() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_strs(["x", "x", "y"]), Column::from_strs(["1", "1", "1"]));
        let r = unique(&ctx, &b).unwrap();
        assert_eq!(r.len(), 2);
    }
}
